// Ablation (Figure 4's mechanism): the deadlock-free serialization of
// concurrent joins. Measures join completion, wall (virtual) time, balance
// and preemption counts for sequential vs fully concurrent joins at several
// overlay sizes — the property the protocol must deliver is that *all*
// concurrent joins finish with a complete, balanced code cover.
#include <cstdio>

#include "bench/common.h"
#include "overlay/overlay_node.h"

using namespace mind;
using namespace mind::bench;

namespace {

struct JoinRun {
  size_t joined = 0;
  double seconds = 0;
  int max_code = 0;
  bool complete_cover = false;
  uint64_t attempts = 0;
  uint64_t preemptions = 0;
};

JoinRun Run(size_t n, bool concurrent, uint64_t seed) {
  MindNetOptions mopts;
  mopts.sim.seed = seed;
  MindNet net(n, mopts);
  Status st = net.Build(concurrent);
  JoinRun r;
  r.joined = net.JoinedCount();
  r.seconds = ToSeconds(net.sim().now());
  r.complete_cover = net.CodesFormCompleteCover();
  for (size_t i = 0; i < n; ++i) {
    r.max_code = std::max(r.max_code, net.node(i).overlay().code().length());
  }
  // Join counters are aggregated across the run's registry (one per sim).
  r.attempts = net.sim().metrics().counter("overlay.join.attempts").value();
  r.preemptions =
      net.sim().metrics().counter("overlay.join.preemptions").value();
  (void)st;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: concurrent-join serialization (Figure 4 mechanism) ===\n\n");
  std::printf("%6s %12s %8s %10s %9s %9s %10s %12s\n", "nodes", "mode",
              "joined", "time(s)", "max-code", "cover", "attempts",
              "preemptions");
  for (size_t n : {16, 34, 64, 102}) {
    for (bool concurrent : {false, true}) {
      JoinRun r = Run(n, concurrent, 0xAB1 + n);
      std::printf("%6zu %12s %5zu/%-3zu %10.1f %9d %9s %10llu %12llu\n", n,
                  concurrent ? "concurrent" : "sequential", r.joined, n,
                  r.seconds, r.max_code, r.complete_cover ? "ok" : "BROKEN",
                  (unsigned long long)r.attempts,
                  (unsigned long long)r.preemptions);
    }
  }
  std::printf("\n(expected: every run joins all nodes with a complete cover and "
              "max code length near log2 N; concurrency costs retries/preemptions, "
              "never correctness)\n");
  return 0;
}
