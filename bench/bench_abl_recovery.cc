// Ablation: the expanding-ring routing recovery of §3.8. With recovery
// disabled (ring TTL 0), dead-end envelopes during link flaps are dropped;
// with it enabled, routing finds an equal-or-better prefix match elsewhere
// and the message gets through.
#include <cstdio>

#include "bench/common.h"
#include "overlay/overlay_node.h"

using namespace mind;
using namespace mind::bench;

namespace {

struct AppMsg : Message {
  const char* TypeName() const override { return "App"; }
};

struct RecoveryRun {
  size_t sent = 0;
  size_t delivered = 0;
  uint64_t dead_ends = 0;
  uint64_t ring_detours = 0;
};

RecoveryRun Run(bool ring_enabled, uint64_t seed) {
  SimulatorOptions sopts;
  sopts.seed = seed;
  // Continuous heavy link flapping while messages route.
  sopts.failures.link_flaps_per_pair_hour = 15.0;
  sopts.failures.mean_flap_duration = FromSeconds(30);
  sopts.failures.seed = seed ^ 0xF1A9;
  Simulator sim(sopts);
  OverlayOptions oopts;
  oopts.ring_max_ttl = ring_enabled ? 4 : 0;
  oopts.reconnect_backoff = FromMillis(200);
  oopts.reconnect_max_attempts = 2;  // fail over to rerouting quickly
  // A spartan routing table (one peer per prefix level): losing the single
  // next hop for a target forces a dead end, which only the expanding-ring
  // search can recover from.
  oopts.max_peers_per_level = 1;

  const size_t kNodes = 32;
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    oopts.seed = seed + i;
    nodes.push_back(std::make_unique<OverlayNode>(&sim, oopts));
  }
  nodes[0]->BecomeFirst();
  for (size_t i = 1; i < kNodes; ++i) {
    OverlayNode* n = nodes[i].get();
    sim.events().Schedule(FromMillis(300) * i, [n] { n->Join(0); });
  }
  SimTime deadline = FromSeconds(1200);
  size_t joined = 0;
  while (joined < kNodes && sim.now() < deadline) {
    sim.RunFor(FromSeconds(1));
    joined = 0;
    for (auto& n : nodes) {
      if (n->joined()) ++joined;
    }
  }

  RecoveryRun r;
  for (auto& n : nodes) {
    n->set_on_deliver([&r](NodeId, const MessagePtr&, int) { ++r.delivered; });
  }
  // Count ring searches that actually found a detour.


  sim.failures().Start(FromSeconds(300));

  Rng rng(seed ^ 77);
  for (int i = 0; i < 400; ++i) {
    sim.RunFor(FromMillis(500));
    BitCode target = BitCode::FromBits(rng.Next(), 64);
    nodes[rng.Uniform(kNodes)]->Route(target, std::make_shared<AppMsg>());
    ++r.sent;
  }
  sim.RunFor(FromSeconds(240));
  r.dead_ends = sim.metrics().counter("overlay.route.dead_ends").value();
  r.ring_detours = sim.metrics().counter("overlay.ring.found").value();
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: expanding-ring routing recovery under link flaps ===\n\n");
  std::printf("%10s %8s %10s %10s %11s %13s\n", "recovery", "sent",
              "delivered", "rate", "dead-ends", "ring-detours");
  for (bool ring : {false, true}) {
    RecoveryRun r = Run(ring, 0xAB2);
    std::printf("%10s %8zu %10zu %9.1f%% %11llu %13llu\n", ring ? "on" : "off",
                r.sent, r.delivered,
                100.0 * static_cast<double>(r.delivered) /
                    static_cast<double>(r.sent),
                (unsigned long long)r.dead_ends,
                (unsigned long long)r.ring_detours);
  }
  std::printf("\n(expected: recovery on delivers a higher fraction under the "
              "same flap schedule)\n");
  return 0;
}
