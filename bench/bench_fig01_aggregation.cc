// Figure 1: number of flow records after aggregating and filtering one
// router's day of sampled NetFlow data, as a function of the aggregation
// time window and the octet filter threshold. The paper reports ~2 orders of
// magnitude reduction at a 30 s window with a 50 KB threshold.
//
// Substitution note: thresholds here apply to *reported* (post-sampling)
// octets of the synthetic trace, whose absolute volumes are smaller than
// Abilene's; the shape — monotone reduction in both window size and
// threshold, orders of magnitude at the paper's operating point — is the
// reproduction target (see EXPERIMENTS.md).
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 150;
  gopts.seed = 101;
  FlowGenerator gen(topo, gopts);

  // One router (index 0 = STTL), a 3-hour midday slice standing in for the
  // paper's full day (Sept 1, 2004).
  const int kRouter = 0;
  const double t0 = 36000, t1 = 46800;

  std::vector<FlowRecord> raw;
  gen.Generate(0, t0, t1, [&](const FlowRecord& f) {
    if (f.router == kRouter) raw.push_back(f);
  });

  const double windows[] = {1, 5, 30, 60, 300};
  const uint64_t thresholds[] = {0, 512, 2 * 1024, 10 * 1024, 50 * 1024};

  std::printf("=== Figure 1: flow-record count vs aggregation window & filter threshold ===\n");
  std::printf("router %s, %.0f s of trace, %zu raw sampled flow records\n\n",
              topo.router(kRouter).name.c_str(), t1 - t0, raw.size());
  std::printf("%10s", "window(s)");
  for (uint64_t th : thresholds) std::printf("  >=%6lluB", (unsigned long long)th);
  std::printf("\n");

  for (double w : windows) {
    AggregatorOptions aopts;
    aopts.window_sec = w;
    auto aggregates = AggregateAll(raw, aopts);
    std::printf("%10.0f", w);
    for (uint64_t th : thresholds) {
      size_t kept = 0;
      for (const auto& rec : aggregates) {
        if (rec.octets >= th) ++kept;
      }
      std::printf("  %8zu", kept);
    }
    std::printf("\n");
  }

  // The paper's operating point.
  AggregatorOptions aopts;
  aopts.window_sec = 30;
  auto aggregates = AggregateAll(raw, aopts);
  size_t kept = 0;
  for (const auto& rec : aggregates) {
    if (rec.octets >= 2 * 1024) ++kept;
  }
  std::printf("\nreduction at 30s window + 2KB threshold: %zu -> %zu (%.0fx)\n",
              raw.size(), kept,
              kept ? static_cast<double>(raw.size()) / kept : 0.0);
  return 0;
}
