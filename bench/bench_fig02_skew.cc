// Figure 2: number of flow records falling into each bin of a 64-bin
// multi-dimensional histogram built over one day's traffic summaries, for
// the three paper indices. The point: without balanced cuts, per-region
// data volumes vary by an order of magnitude or more.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

void PrintSkew(const char* label, const IndexDef& def,
               const std::vector<Point>& points) {
  // 64 bins total: 4 bins per dimension for the 3-d indices.
  Histogram h(def.schema, 4);
  for (const auto& p : points) h.Add(p);
  std::vector<double> masses;
  for (const auto& [center, mass] : h.WeightedCellCenters()) {
    masses.push_back(mass);
  }
  std::sort(masses.rbegin(), masses.rend());
  double total = h.total_mass();
  double mean = total / 64.0;
  std::printf("%-18s tuples=%7.0f  nonzero-bins=%2zu/64  max-bin=%7.0f  "
              "mean-bin=%7.1f  max/mean=%6.1fx\n",
              label, total, masses.size(), masses.empty() ? 0 : masses[0],
              mean, masses.empty() || mean == 0 ? 0 : masses[0] / mean);
  std::printf("  top bins: ");
  for (size_t i = 0; i < std::min<size_t>(8, masses.size()); ++i) {
    std::printf("%.0f ", masses[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 202;
  FlowGenerator gen(topo, gopts);

  std::printf("=== Figure 2: storage skew — tuples per bin of a 64-bin histogram ===\n");
  std::printf("(one trace slice, Abilene+GEANT, 30 s aggregation, paper filters)\n\n");

  // 2 hours of trace standing in for the paper's day.
  const double t0 = 36000, t1 = 43200;
  PaperIndexOptions iopts;
  auto p1 = SampleIndexPoints(gen, 0, t0, t1, 1, iopts);
  auto p2 = SampleIndexPoints(gen, 0, t0, t1, 2, iopts);
  auto p3 = SampleIndexPoints(gen, 0, t0, t1, 3, iopts);

  PrintSkew("Index-1 (fanout)", MakeIndex1(iopts), p1);
  PrintSkew("Index-2 (octets)", MakeIndex2(iopts), p2);
  PrintSkew("Index-3 (flowsz)", MakeIndex3(iopts), p3);
  return 0;
}
