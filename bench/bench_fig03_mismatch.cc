// Figure 3: stationarity of the traffic-summary distribution. Day-to-day
// mismatch of the 6-attribute index stays bounded (paper: <= ~20% even at
// the finest granularity) while hour-to-hour mismatch approaches 1 once the
// histogram granularity reaches ~64 bins per dimension (time-of-day bins
// finer than an hour make consecutive hours disjoint), justifying daily —
// not continuous — re-balancing.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "space/mismatch.h"

using namespace mind;
using namespace mind::bench;

namespace {

// The paper's 6-attribute unfiltered index: source and destination prefixes,
// time-of-day, total bytes, number of connections, average connection size.
IndexDef SixAttrIndex() {
  IndexDef def;
  def.name = "index6";
  def.schema = Schema({{"dst_prefix", 0, 0xFFFFFFFFull},
                       {"src_prefix", 0, 0xFFFFFFFFull},
                       {"tod", 0, 86400},
                       {"octets", 0, 2 * 1024 * 1024},
                       {"connections", 0, 5024},
                       {"avg_size", 0, 128 * 1024}});
  def.time_attr = 2;
  return def;
}

Point ToPoint(const AggregateRecord& rec) {
  return {rec.dst_prefix.First(),
          rec.src_prefix.First(),
          rec.window_start % 86400,
          std::min<uint64_t>(rec.octets, 2 * 1024 * 1024),
          std::min<uint64_t>(rec.flows, 5024),
          std::min<uint64_t>(rec.avg_flow_size, 128 * 1024)};
}

std::vector<Point> SlicePoints(FlowGenerator& gen, int day, double t0,
                               double t1) {
  std::vector<Point> points;
  const double window = 30;
  for (double t = t0; t < t1; t += window) {
    Aggregator agg({window, 16, 300});
    gen.Generate(day, t, std::min(t + window, t1),
                 [&](const FlowRecord& f) { agg.Add(f); });
    for (const auto& rec : agg.DrainAll()) points.push_back(ToPoint(rec));
  }
  return points;
}

Histogram BuildHistogram(const Schema& schema, int bins,
                         const std::vector<Point>& points) {
  Histogram h(schema, bins);
  for (const auto& p : points) h.Add(p);
  return h;
}

}  // namespace

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 30;
  gopts.seed = 303;
  FlowGenerator gen(topo, gopts);
  IndexDef def = SixAttrIndex();

  std::printf("=== Figure 3: day-to-day vs hour-to-hour mismatch of the 6-attr index ===\n");
  std::printf("(14 days; matched 30-minute slices stand in for the paper's full days)\n\n");

  // Generate the trace slices once; sweep granularities over cached points.
  const int kDays = 14;
  const double kSliceStart = 39600, kSliceLen = 1800;  // 11:00-11:30
  std::vector<std::vector<Point>> day_slices;
  for (int d = 0; d < kDays; ++d) {
    day_slices.push_back(
        SlicePoints(gen, d, kSliceStart, kSliceStart + kSliceLen));
  }
  std::vector<std::vector<Point>> hour_slices;
  for (int hr = 8; hr < 16; ++hr) {
    hour_slices.push_back(
        SlicePoints(gen, 0, hr * 3600.0, hr * 3600.0 + kSliceLen));
  }
  size_t total_pts = 0;
  for (auto& s : day_slices) total_pts += s.size();
  std::printf("aggregate records: %zu across %d daily slices\n\n", total_pts,
              kDays);

  // Sampling-noise baseline: two interleaved halves of the same slice have
  // identical underlying distributions; their mismatch is pure Poisson noise
  // (the paper's full-day histograms hold ~25x more records per cell).
  std::vector<Point> half_a, half_b;
  for (size_t i = 0; i < day_slices[0].size(); ++i) {
    (i % 2 ? half_a : half_b).push_back(day_slices[0][i]);
  }

  std::printf("%8s %10s %10s %12s %12s %12s\n", "k/dim", "day mean", "day max",
              "hour mean", "hour max", "self(noise)");
  // Granularity k = bins per dimension (the paper's k in "k^d bins").
  for (int bins : {2, 4, 8, 16, 32, 64}) {
    std::vector<Histogram> days;
    for (const auto& s : day_slices) {
      days.push_back(BuildHistogram(def.schema, bins, s));
    }
    double max_day = 0, sum_day = 0;
    for (int d = 1; d < kDays; ++d) {
      double m = MismatchFraction(days[d - 1], days[d]).value();
      max_day = std::max(max_day, m);
      sum_day += m;
    }

    std::vector<Histogram> hours;
    for (const auto& s : hour_slices) {
      hours.push_back(BuildHistogram(def.schema, bins, s));
    }
    double max_hour = 0, sum_hour = 0;
    int n_hour = 0;
    for (size_t i = 1; i < hours.size(); ++i) {
      double m = MismatchFraction(hours[i - 1], hours[i]).value();
      max_hour = std::max(max_hour, m);
      sum_hour += m;
      ++n_hour;
    }
    double self_noise =
        MismatchFraction(BuildHistogram(def.schema, bins, half_a),
                         BuildHistogram(def.schema, bins, half_b))
            .value();
    std::printf("%8d %10.3f %10.3f %12.3f %12.3f %12.3f\n", bins,
                sum_day / (kDays - 1), max_day, sum_hour / n_hour, max_hour,
                self_noise);
  }
  std::printf("\n(paper: day-to-day <= ~0.20 even at the finest granularity; "
              "hour-to-hour ~1 at k >= 64.\n"
              " Our day-to-day values at fine k are dominated by sampling "
              "noise — compare the self column.)\n");
  return 0;
}
