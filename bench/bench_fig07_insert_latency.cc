// Figure 7: insertion latency of the baseline 34-node geographic deployment
// (nodes co-located with Abilene + GÉANT routers), measured over six
// periods (11:00 and 23:00 on each of three days). Paper shape: medians of
// ~1-2 s, means 1-5 s, long 99th-percentile tails driven by queuing and
// transient network dynamics.
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 707;
  FlowGenerator gen(topo, gopts);

  DeploymentOptions dopts;
  dopts.seed = 7070;
  MindNetOptions mopts;
  mopts.sim.seed = dopts.seed;
  // PlanetLab realism: heavy-tailed per-hop jitter (shared, loaded hosts).
  mopts.sim.network.jitter_mu_ln_ms = 5.3;  // median ~200 ms per hop (shared, loaded hosts)
  mopts.sim.network.jitter_sigma_ln = 1.1;
  mopts.overlay.heartbeat_interval = FromSeconds(5);
  mopts.mind.replication = 1;
  // MySQL-over-JDBC on a shared PlanetLab slice: tens of ms per commit.
  mopts.mind.insert_proc_time = 25 * kUsPerMs;
  // Transient link flaps like the paper's observed routing failures.
  mopts.sim.failures.link_flaps_per_pair_hour = 0.02;
  mopts.sim.failures.mean_flap_duration = FromSeconds(15);
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net);
  net.sim().failures().Start(FromSeconds(6 * 900 + 600));

  std::printf("=== Figure 7: insertion latency, 34-node Abilene+GEANT deployment ===\n");
  std::printf("(six trace periods; 10-minute slices stand in for the paper's hours)\n\n");

  struct Period {
    int day;
    double start;
    const char* label;
    const char* key;  // metric-name segment
  };
  const Period periods[] = {
      {0, 39600, "day1 11:00", "day1_1100"}, {0, 82800, "day1 23:00", "day1_2300"},
      {1, 39600, "day2 11:00", "day2_1100"}, {1, 82800, "day2 23:00", "day2_2300"},
      {2, 39600, "day3 11:00", "day3_1100"}, {2, 82800, "day3 23:00", "day3_2300"},
  };

  // Bench-level registry: per-period latency histograms. The printed table
  // and BENCH_fig07_insert_latency.json read the same histograms.
  telemetry::MetricsRegistry bench_metrics;
  for (const Period& p : periods) {
    net.ClearStored();
    TraceDriveOptions topts;
    topts.day = p.day;
    topts.t0_sec = p.start;
    topts.t1_sec = p.start + 600;
    DriveTrace(net, gen, topts);
    auto& hist = bench_metrics.histogram(
        std::string("bench.fig07.") + p.key + ".insert_latency_ms");
    for (const auto& info : net.stored()) {
      hist.Record(ToSeconds(info.latency) * 1e3);
    }
    PrintLatencyRowHist(p.label, hist);
  }
  std::printf("\n(paper: median 1-2 s, mean 1-5 s, long 99th-percentile tail)\n");

  // Fold a few run-wide aggregates from the simulator's own registry in, then
  // export everything machine-readably.
  auto& sm = net.sim().metrics();
  bench_metrics.counter("mind.insert.count")
      .Inc(sm.counter("mind.insert.count").value());
  bench_metrics.counter("sim.events.processed")
      .Inc(sm.counter("sim.events.processed").value());
  bench_metrics.counter("sim.net.messages")
      .Inc(sm.counter("sim.net.messages").value());
  telemetry::RunMeta meta;
  meta.bench = "fig07_insert_latency";
  meta.seed = dopts.seed;
  meta.topology = "abilene_geant";
  meta.nodes = static_cast<int>(topo.size());
  meta.extra["slice_seconds"] = "600";
  ExportBench(bench_metrics, meta);
  return 0;
}
