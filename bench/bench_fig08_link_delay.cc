// Figure 8: transmission delays observed on the slowest overlay link during
// the baseline run. The paper traces a pathological case where queuing on
// successive links delayed one tuple by 48 s; the per-link delay time series
// shows multi-second spikes when a hotspot builds a queue.
//
// We reproduce the mechanism by constricting link bandwidth and injecting a
// scan burst whose records all hash to one region: the link into that owner
// builds a FIFO backlog and its delivery delays spike.
#include <cstdio>
#include <map>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 808;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 8080;
  mopts.sim.network.bandwidth_bytes_per_sec = 4 * 1024;  // constricted links
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net, {}, true, true, false);

  // Record per-directed-link delay maxima in 10 s buckets.
  struct Bucket {
    double max_delay = 0;
    size_t count = 0;
  };
  std::map<std::pair<NodeId, NodeId>, std::map<uint64_t, Bucket>> series;
  net.network().SetDelayObserver([&](NodeId from, NodeId to, SimTime d) {
    uint64_t bucket = net.sim().now() / (10 * kUsPerSec);
    Bucket& b = series[{from, to}][bucket];
    b.max_delay = std::max(b.max_delay, ToSeconds(d));
    b.count++;
  });

  // 10 minutes of trace with a distributed DoS burst: spoofed sources across
  // every customer prefix flood one victim, so aggregation emits one record
  // per (source prefix, window) — hundreds of tuples per window, all routed
  // to the victim's region owner, queuing on the links into it.
  TraceDriveOptions topts;
  topts.t0_sec = 39600;
  topts.t1_sec = 40200;
  AnomalyEvent burst;
  burst.type = AnomalyType::kDos;
  burst.distributed = true;
  burst.day = 0;
  burst.start_sec = 39840;
  burst.duration_sec = 150;
  burst.src_prefix = 3;
  burst.dst_prefix = 17;
  burst.magnitude = 250000;  // raw flood pps (2004-era DDoS scale)
  topts.anomalies = {burst};
  DriveTrace(net, gen, topts);

  // Find the slowest link (largest bucket max).
  std::pair<NodeId, NodeId> worst{-1, -1};
  double worst_delay = 0;
  for (const auto& [link, buckets] : series) {
    for (const auto& [bkt, b] : buckets) {
      if (b.max_delay > worst_delay) {
        worst_delay = b.max_delay;
        worst = link;
      }
    }
  }

  std::printf("=== Figure 8: transmission delay time series on the slowest link ===\n");
  if (worst.first < 0) {
    std::printf("no deliveries observed\n");
    return 1;
  }
  std::printf("slowest link: %s -> %s (max one-way delay %.2f s)\n\n",
              topo.router(worst.first).name.c_str(),
              topo.router(worst.second).name.c_str(), worst_delay);
  std::printf("%10s  %12s  %8s\n", "t(s)", "max-delay(s)", "msgs");
  for (const auto& [bkt, b] : series[worst]) {
    std::printf("%10llu  %12.3f  %8zu\n",
                (unsigned long long)(bkt * 10), b.max_delay, b.count);
  }
  std::printf("\n(paper: delays on the slowest link spike to tens of seconds "
              "under queuing; one insertion took 48 s)\n");
  return 0;
}
