// Figure 9: query cost — the number of overlay nodes visited per query —
// for random monitoring queries over all three indices on the baseline
// 34-node deployment. Paper: over 90% of queries involve 4 nodes or fewer.
//
// The whole experiment runs once per index backend (sorted runs /
// hierarchical bitmaps / adaptive). Backends are physical layout only
// (docs/BACKENDS.md), so every run must produce identical query costs and an
// identical deployment digest — the bench asserts that and exits nonzero on
// divergence. Per-backend results export as bench.fig09.<backend>.*; the
// unprefixed bench.fig09.* names stay on the sorted run for continuity with
// older BENCH_fig09_query_cost.json files.
#include <cstdio>
#include <map>
#include <string>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

struct Fig09Outcome {
  std::map<size_t, size_t> retrieval_hist, resolver_hist, visit_hist;
  size_t total = 0, le4_retrieval = 0, le4_resolver = 0;
  size_t inserted = 0;
  uint64_t digest = 0;
};

Fig09Outcome RunFig09(IndexBackendKind backend,
                      telemetry::MetricsRegistry& bench_metrics,
                      bool legacy_names) {
  const std::string prefix =
      std::string("bench.fig09.") + IndexBackendKindName(backend) + ".";
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 909;
  FlowGenerator gen(topo, gopts);

  auto net = MakeDeployment(topo, {.replication = 1, .seed = 9090,
                                   .backend = backend});
  CreatePaperIndices(*net);

  // Balanced cuts from the previous day's distribution (§3.7): these give
  // the locality that keeps query costs low — empty space collapses into
  // few shallow regions.
  const IndexDef defs[] = {MakeIndex1(), MakeIndex2(), MakeIndex3()};
  const char* names3[] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  for (int which = 1; which <= 3; ++which) {
    auto yesterday = SampleIndexPoints(gen, 0, 39600, 41400, which);
    ShiftTimeAttr(&yesterday, defs[which - 1].time_attr);
    InstallBalancedCuts(*net, names3[which - 1], defs[which - 1], yesterday, 256, 12, 2, 0);
  }

  TraceDriveOptions topts;
  topts.day = 1;
  topts.t0_sec = 39600;
  topts.t1_sec = 41400;  // 30 minutes
  auto drive = DriveTrace(*net, gen, topts);

  Rng rng(9);
  // Three cost metrics, strictest to widest:
  //  * retrieval cost: nodes that supplied results (the paper's headline);
  //  * resolver cost: all (incl. negative) responders;
  //  * visit cost: every node the query touched, forwarders included.
  // The same instruments feed the table below and the BENCH_*.json export.
  auto& retrieval_h = bench_metrics.histogram(prefix + "retrieval_cost_nodes");
  auto& resolver_h = bench_metrics.histogram(prefix + "resolver_cost_nodes");
  auto& visit_h = bench_metrics.histogram(prefix + "visit_cost_nodes");
  Fig09Outcome out;
  out.inserted = drive.inserted1 + drive.inserted2 + drive.inserted3;
  for (int iter = 0; iter < 150; ++iter) {
    const char* index = names3[iter % 3];
    const IndexDef* def = net->node(0).GetIndexDef(index);
    uint64_t t_end = static_cast<uint64_t>(topts.t1_sec);
    Rect q = RandomMonitoringQuery(&rng, *def, t_end);
    size_t from = rng.Uniform(net->size());
    auto result = RunQueryBlocking(*net, from, index, q);
    if (!result || !result->complete) continue;
    out.retrieval_hist[result->positive_responders]++;
    out.resolver_hist[result->responders]++;
    size_t visits = net->QueryVisitCount(result->query_id);
    out.visit_hist[visits]++;
    retrieval_h.Record(static_cast<double>(result->positive_responders));
    resolver_h.Record(static_cast<double>(result->responders));
    visit_h.Record(static_cast<double>(visits));
    if (legacy_names) {
      bench_metrics.histogram("bench.fig09.retrieval_cost_nodes")
          .Record(static_cast<double>(result->positive_responders));
      bench_metrics.histogram("bench.fig09.resolver_cost_nodes")
          .Record(static_cast<double>(result->responders));
      bench_metrics.histogram("bench.fig09.visit_cost_nodes")
          .Record(static_cast<double>(visits));
    }
    ++out.total;
    if (result->positive_responders <= 4) ++out.le4_retrieval;
    if (result->responders <= 4) ++out.le4_resolver;
  }
  out.digest = net->StateDigest();

  const double denom = static_cast<double>(out.total);
  bench_metrics.gauge(prefix + "le4_retrieval_pct")
      .Set(100.0 * static_cast<double>(out.le4_retrieval) / denom);
  bench_metrics.gauge(prefix + "le4_resolver_pct")
      .Set(100.0 * static_cast<double>(out.le4_resolver) / denom);
  bench_metrics.counter(prefix + "queries_complete")
      .Inc(static_cast<uint64_t>(out.total));
  if (legacy_names) {
    bench_metrics.gauge("bench.fig09.le4_retrieval_pct")
        .Set(100.0 * static_cast<double>(out.le4_retrieval) / denom);
    bench_metrics.gauge("bench.fig09.le4_resolver_pct")
        .Set(100.0 * static_cast<double>(out.le4_resolver) / denom);
    bench_metrics.counter("bench.fig09.queries_complete")
        .Inc(static_cast<uint64_t>(out.total));
  }
  return out;
}

}  // namespace

int main() {
  telemetry::MetricsRegistry bench_metrics;
  const IndexBackendKind kBackends[] = {IndexBackendKind::kSortedRuns,
                                        IndexBackendKind::kBitmap,
                                        IndexBackendKind::kAdaptive};
  std::map<IndexBackendKind, Fig09Outcome> runs;
  for (IndexBackendKind b : kBackends) {
    runs[b] = RunFig09(b, bench_metrics,
                       /*legacy_names=*/b == IndexBackendKind::kSortedRuns);
  }
  const Fig09Outcome& base = runs[IndexBackendKind::kSortedRuns];

  std::printf("=== Figure 9: query cost distribution (nodes visited) ===\n");
  std::printf("inserted: %zu tuples across the three indices\n\n", base.inserted);
  auto print_hist = [&](const char* label, const std::map<size_t, size_t>& h) {
    std::printf("%s:\n%8s  %8s  %8s\n", label, "nodes", "queries", "cum%");
    size_t cum = 0;
    for (const auto& [cost, count] : h) {
      cum += count;
      std::printf("%8zu  %8zu  %7.1f%%\n", cost, count,
                  100.0 * static_cast<double>(cum) /
                      static_cast<double>(base.total));
    }
    std::printf("\n");
  };
  print_hist("retrieval cost (nodes supplying results)", base.retrieval_hist);
  print_hist("resolver cost (incl. negative replies)", base.resolver_hist);
  print_hist("visit cost (incl. forwarders)", base.visit_hist);
  std::printf("queries retrieving from <= 4 nodes: %.1f%%  (paper: >90%%)\n",
              100.0 * static_cast<double>(base.le4_retrieval) /
                  static_cast<double>(base.total));
  std::printf("queries resolved by <= 4 nodes: %.1f%%\n\n",
              100.0 * static_cast<double>(base.le4_resolver) /
                  static_cast<double>(base.total));

  // Backend transparency: identical query costs and deployment digest.
  bool diverged = false;
  for (IndexBackendKind b : kBackends) {
    const Fig09Outcome& o = runs[b];
    std::printf("backend %-7s: %zu queries complete, digest %016llx\n",
                IndexBackendKindName(b), o.total,
                static_cast<unsigned long long>(o.digest));
    if (o.retrieval_hist != base.retrieval_hist ||
        o.resolver_hist != base.resolver_hist ||
        o.visit_hist != base.visit_hist || o.total != base.total ||
        o.digest != base.digest) {
      std::fprintf(stderr, "FAIL: backend %s diverged from sorted baseline\n",
                   IndexBackendKindName(b));
      diverged = true;
    }
  }

  telemetry::RunMeta meta;
  meta.bench = "fig09_query_cost";
  meta.seed = 9090;
  meta.topology = "abilene_geant";
  meta.nodes = static_cast<int>(Topology::AbileneGeant().size());
  meta.extra["queries"] = "150";
  meta.extra["backends"] = "sorted,bitmap,adaptive";
  ExportBench(bench_metrics, meta);
  return diverged ? 1 : 0;
}
