// Figure 9: query cost — the number of overlay nodes visited per query —
// for random monitoring queries over all three indices on the baseline
// 34-node deployment. Paper: over 90% of queries involve 4 nodes or fewer.
#include <cstdio>
#include <map>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 909;
  FlowGenerator gen(topo, gopts);

  auto net = MakeDeployment(topo, {.replication = 1, .seed = 9090});
  CreatePaperIndices(*net);

  // Balanced cuts from the previous day's distribution (§3.7): these give
  // the locality that keeps query costs low — empty space collapses into
  // few shallow regions.
  const IndexDef defs[] = {MakeIndex1(), MakeIndex2(), MakeIndex3()};
  const char* names3[] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  for (int which = 1; which <= 3; ++which) {
    auto yesterday = SampleIndexPoints(gen, 0, 39600, 41400, which);
    ShiftTimeAttr(&yesterday, defs[which - 1].time_attr);
    InstallBalancedCuts(*net, names3[which - 1], defs[which - 1], yesterday, 256, 12, 2, 0);
  }

  TraceDriveOptions topts;
  topts.day = 1;
  topts.t0_sec = 39600;
  topts.t1_sec = 41400;  // 30 minutes
  auto drive = DriveTrace(*net, gen, topts);
  std::printf("=== Figure 9: query cost distribution (nodes visited) ===\n");
  std::printf("inserted: idx1=%zu idx2=%zu idx3=%zu tuples\n\n", drive.inserted1,
              drive.inserted2, drive.inserted3);

  Rng rng(9);
  const char* names[] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  // Three cost metrics, strictest to widest:
  //  * retrieval cost: nodes that supplied results (the paper's headline);
  //  * resolver cost: all (incl. negative) responders;
  //  * visit cost: every node the query touched, forwarders included.
  // The same instruments feed the table below and the BENCH_*.json export.
  telemetry::MetricsRegistry bench_metrics;
  auto& retrieval_h = bench_metrics.histogram("bench.fig09.retrieval_cost_nodes");
  auto& resolver_h = bench_metrics.histogram("bench.fig09.resolver_cost_nodes");
  auto& visit_h = bench_metrics.histogram("bench.fig09.visit_cost_nodes");
  std::map<size_t, size_t> retrieval_hist, resolver_hist, visit_hist;
  size_t total = 0, le4_retrieval = 0, le4_resolver = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const char* index = names[iter % 3];
    const IndexDef* def = net->node(0).GetIndexDef(index);
    uint64_t t_end = static_cast<uint64_t>(topts.t1_sec);
    Rect q = RandomMonitoringQuery(&rng, *def, t_end);
    size_t from = rng.Uniform(net->size());
    auto result = RunQueryBlocking(*net, from, index, q);
    if (!result || !result->complete) continue;
    retrieval_hist[result->positive_responders]++;
    resolver_hist[result->responders]++;
    size_t visits = net->QueryVisitCount(result->query_id);
    visit_hist[visits]++;
    retrieval_h.Record(static_cast<double>(result->positive_responders));
    resolver_h.Record(static_cast<double>(result->responders));
    visit_h.Record(static_cast<double>(visits));
    ++total;
    if (result->positive_responders <= 4) ++le4_retrieval;
    if (result->responders <= 4) ++le4_resolver;
  }

  auto print_hist = [&](const char* label, const std::map<size_t, size_t>& h) {
    std::printf("%s:\n%8s  %8s  %8s\n", label, "nodes", "queries", "cum%");
    size_t cum = 0;
    for (const auto& [cost, count] : h) {
      cum += count;
      std::printf("%8zu  %8zu  %7.1f%%\n", cost, count,
                  100.0 * static_cast<double>(cum) / static_cast<double>(total));
    }
    std::printf("\n");
  };
  print_hist("retrieval cost (nodes supplying results)", retrieval_hist);
  print_hist("resolver cost (incl. negative replies)", resolver_hist);
  print_hist("visit cost (incl. forwarders)", visit_hist);
  std::printf("queries retrieving from <= 4 nodes: %.1f%%  (paper: >90%%)\n",
              100.0 * static_cast<double>(le4_retrieval) /
                  static_cast<double>(total));
  std::printf("queries resolved by <= 4 nodes: %.1f%%\n",
              100.0 * static_cast<double>(le4_resolver) /
                  static_cast<double>(total));

  bench_metrics.gauge("bench.fig09.le4_retrieval_pct")
      .Set(100.0 * static_cast<double>(le4_retrieval) /
           static_cast<double>(total));
  bench_metrics.gauge("bench.fig09.le4_resolver_pct")
      .Set(100.0 * static_cast<double>(le4_resolver) /
           static_cast<double>(total));
  bench_metrics.counter("bench.fig09.queries_complete")
      .Inc(static_cast<uint64_t>(total));
  telemetry::RunMeta meta;
  meta.bench = "fig09_query_cost";
  meta.seed = 9090;
  meta.topology = "abilene_geant";
  meta.nodes = static_cast<int>(topo.size());
  meta.extra["queries"] = "150";
  ExportBench(bench_metrics, meta);
  return 0;
}
