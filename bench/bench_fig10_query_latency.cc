// Figure 10: query latency statistics on the baseline 34-node deployment.
// Paper: low medians (~500 ms) — encouraging for on-line detection — but a
// skewed distribution with high 90th percentiles and means.
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1010;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 10100;
  mopts.sim.network.jitter_mu_ln_ms = 4.0;  // loaded PlanetLab hosts
  mopts.sim.network.jitter_sigma_ln = 1.1;
  mopts.overlay.heartbeat_interval = FromSeconds(5);
  mopts.mind.replication = 1;
  // Occasional link flaps add the tail the paper attributes to outages.
  mopts.sim.failures.link_flaps_per_pair_hour = 0.02;
  mopts.sim.failures.mean_flap_duration = FromSeconds(20);
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net);
  net.sim().failures().Start(FromSeconds(3600));

  TraceDriveOptions topts;
  topts.t0_sec = 39600;
  topts.t1_sec = 41400;
  DriveTrace(net, gen, topts);

  Rng rng(10);
  const char* names[] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  const char* keys[] = {"index1", "index2", "index3"};
  // Bench-level registry: per-index + combined latency histograms. The table
  // and BENCH_fig10_query_latency.json read the same instruments.
  telemetry::MetricsRegistry bench_metrics;
  telemetry::SimHistogram* latency_ms[3];
  for (int i = 0; i < 3; ++i) {
    latency_ms[i] = &bench_metrics.histogram(
        std::string("bench.fig10.") + keys[i] + ".query_latency_ms");
  }
  auto& all_ms = bench_metrics.histogram("bench.fig10.all.query_latency_ms");
  auto& incomplete_ctr = bench_metrics.counter("bench.fig10.incomplete");
  for (int iter = 0; iter < 150; ++iter) {
    int which = iter % 3;
    const IndexDef* def = net.node(0).GetIndexDef(names[which]);
    Rect q = RandomMonitoringQuery(&rng, *def,
                                   static_cast<uint64_t>(topts.t1_sec));
    auto result = RunQueryBlocking(net, rng.Uniform(net.size()), names[which], q);
    if (!result) continue;
    if (!result->complete) {
      incomplete_ctr.Inc();
      continue;
    }
    double ms = ToSeconds(result->latency) * 1e3;
    latency_ms[which]->Record(ms);
    all_ms.Record(ms);
  }

  std::printf("=== Figure 10: query latency, 34-node deployment ===\n\n");
  PrintLatencyRowHist("Index-1 (fanout)", *latency_ms[0]);
  PrintLatencyRowHist("Index-2 (octets)", *latency_ms[1]);
  PrintLatencyRowHist("Index-3 (flowsize)", *latency_ms[2]);
  PrintLatencyRowHist("all queries", all_ms);
  std::printf("incomplete (timed out): %llu\n",
              (unsigned long long)incomplete_ctr.value());
  std::printf("\n(paper: median ~0.5 s, skewed tail with high p90/mean)\n");

  auto& sm = net.sim().metrics();
  bench_metrics.counter("mind.query.count")
      .Inc(sm.counter("mind.query.count").value());
  bench_metrics.counter("mind.query.replies")
      .Inc(sm.counter("mind.query.replies").value());
  bench_metrics.counter("sim.net.messages")
      .Inc(sm.counter("sim.net.messages").value());
  telemetry::RunMeta meta;
  meta.bench = "fig10_query_latency";
  meta.seed = mopts.sim.seed;
  meta.topology = "abilene_geant";
  meta.nodes = static_cast<int>(topo.size());
  meta.extra["queries"] = "150";
  ExportBench(bench_metrics, meta);
  return 0;
}
