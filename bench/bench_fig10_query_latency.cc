// Figure 10: query latency statistics on the baseline 34-node deployment.
// Paper: low medians (~500 ms) — encouraging for on-line detection — but a
// skewed distribution with high 90th percentiles and means.
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1010;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 10100;
  mopts.sim.network.jitter_mu_ln_ms = 4.0;  // loaded PlanetLab hosts
  mopts.sim.network.jitter_sigma_ln = 1.1;
  mopts.overlay.heartbeat_interval = FromSeconds(5);
  mopts.mind.replication = 1;
  // Occasional link flaps add the tail the paper attributes to outages.
  mopts.sim.failures.link_flaps_per_pair_hour = 0.02;
  mopts.sim.failures.mean_flap_duration = FromSeconds(20);
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net);
  net.sim().failures().Start(FromSeconds(3600));

  TraceDriveOptions topts;
  topts.t0_sec = 39600;
  topts.t1_sec = 41400;
  DriveTrace(net, gen, topts);

  Rng rng(10);
  const char* names[] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  std::vector<double> latency[3];
  size_t incomplete = 0;
  for (int iter = 0; iter < 150; ++iter) {
    int which = iter % 3;
    const IndexDef* def = net.node(0).GetIndexDef(names[which]);
    Rect q = RandomMonitoringQuery(&rng, *def,
                                   static_cast<uint64_t>(topts.t1_sec));
    auto result = RunQueryBlocking(net, rng.Uniform(net.size()), names[which], q);
    if (!result) continue;
    if (!result->complete) {
      ++incomplete;
      continue;
    }
    latency[which].push_back(ToSeconds(result->latency));
  }

  std::printf("=== Figure 10: query latency, 34-node deployment ===\n\n");
  PrintLatencyRow("Index-1 (fanout)", latency[0]);
  PrintLatencyRow("Index-2 (octets)", latency[1]);
  PrintLatencyRow("Index-3 (flowsize)", latency[2]);
  std::vector<double> all;
  for (auto& v : latency) all.insert(all.end(), v.begin(), v.end());
  PrintLatencyRow("all queries", all);
  std::printf("incomplete (timed out): %zu\n", incomplete);
  std::printf("\n(paper: median ~0.5 s, skewed tail with high p90/mean)\n");
  return 0;
}
