// Figure 11: per-query processing delay at one node across a network
// outage. In the paper, a responder could not connect back to the query
// originator for ~45 s (repeated reconnection attempts before rerouting),
// producing back-to-back latency spikes for two indices; a queued query
// suffered an additional delay.
//
// We reproduce it by cutting the link between a chosen responder and the
// originator mid-run: the responder's direct replies enter reconnect backoff
// until the link heals.
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1111;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 11110;
  mopts.overlay.reconnect_backoff = FromSeconds(1);
  mopts.overlay.reconnect_max_attempts = 6;  // ~63 s of retries, like the paper
  mopts.mind.query_timeout = FromSeconds(90);
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net, {}, true, true, false);

  TraceDriveOptions topts;
  topts.t0_sec = 82800;  // 23:00, like the paper's day-3 hour
  topts.t1_sec = 83400;
  DriveTrace(net, gen, topts);

  // Issue a fixed narrow query pair (Index-1 + Index-2) every 10 s from one
  // node, recording latencies against issue time.
  const size_t kOriginator = 2;
  struct Sample {
    double at_sec;
    double latency_sec;
    const char* index;
    bool complete;
  };
  std::vector<Sample> samples;

  // Find which node resolves the query (the "hotspot" responder): probe once.
  const IndexDef* def1 = net.node(0).GetIndexDef("index1_fanout");
  const IndexDef* def2 = net.node(0).GetIndexDef("index2_octets");
  Rect q1({{0, 0xFFFFFFFFull},
           {static_cast<uint64_t>(topts.t1_sec) - 300,
            static_cast<uint64_t>(topts.t1_sec)},
           {100, def1->schema.attr(2).max}});
  Rect q2({{0, 0xFFFFFFFFull},
           {static_cast<uint64_t>(topts.t1_sec) - 300,
            static_cast<uint64_t>(topts.t1_sec)},
           {100 * 1024, def2->schema.attr(2).max}});

  // Cut every link from the originator 120 s into the probing for 45 s:
  // responders' direct replies stall in reconnect backoff.
  SimTime probe_start = net.sim().now();
  net.sim().events().Schedule(FromSeconds(120), [&] {
    for (size_t i = 0; i < net.size(); ++i) {
      if (i != kOriginator) {
        net.network().SetLinkDown(static_cast<NodeId>(kOriginator),
                                  static_cast<NodeId>(i), FromSeconds(45));
      }
    }
  });

  for (int round = 0; round < 30; ++round) {
    for (const auto& [index, rect] :
         {std::pair<const char*, Rect>{"index1_fanout", q1},
          std::pair<const char*, Rect>{"index2_octets", q2}}) {
      double at = ToSeconds(net.sim().now() - probe_start);
      auto result = RunQueryBlocking(net, kOriginator, index, rect);
      if (result) {
        samples.push_back(
            {at, ToSeconds(result->latency), index, result->complete});
      }
    }
    net.sim().RunFor(FromSeconds(10));
  }

  std::printf("=== Figure 11: query processing delay across a 45 s outage ===\n\n");
  std::printf("%10s  %-16s  %12s  %s\n", "t(s)", "index", "latency(s)",
              "complete");
  double peak = 0;
  for (const auto& s : samples) {
    std::printf("%10.1f  %-16s  %12.3f  %s\n", s.at_sec, s.index,
                s.latency_sec, s.complete ? "yes" : "TIMEOUT");
    peak = std::max(peak, s.latency_sec);
  }
  std::printf("\npeak query delay: %.1f s (paper: ~45 s reconnect stall, "
              "plus a queued second query)\n", peak);
  return 0;
}
