// Figure 12: the number of tuples traversing each overlay link over a day
// of insertions. The distribution is uneven — Abilene monitors inject ~10x
// more records than GÉANT ones (1/100 vs 1/1000 sampling) — but every link
// carries far less than a centralized collector would.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1212;
  FlowGenerator gen(topo, gopts);

  auto net = MakeDeployment(topo, {.replication = 1, .seed = 12120});
  CreatePaperIndices(*net);

  TraceDriveOptions topts;
  topts.t0_sec = 36000;
  topts.t1_sec = 39600;  // 1 hour standing in for the paper's day
  auto drive = DriveTrace(*net, gen, topts);

  std::printf("=== Figure 12: tuple messages per overlay link (1 trace hour) ===\n");
  std::printf("inserted idx1=%zu idx2=%zu idx3=%zu; raw records=%zu\n\n",
              drive.inserted1, drive.inserted2, drive.inserted3,
              drive.raw_records);

  struct LinkLoad {
    NodeId from, to;
    uint64_t messages;
  };
  std::vector<LinkLoad> loads;
  uint64_t total = 0;
  for (NodeId a = 0; a < static_cast<NodeId>(net->size()); ++a) {
    for (NodeId b = 0; b < static_cast<NodeId>(net->size()); ++b) {
      if (a == b) continue;
      auto stats = net->network().GetLinkStats(a, b);
      if (stats.messages > 0) {
        loads.push_back({a, b, stats.messages});
        total += stats.messages;
      }
    }
  }
  std::sort(loads.begin(), loads.end(),
            [](const LinkLoad& x, const LinkLoad& y) {
              return x.messages > y.messages;
            });

  std::printf("active links: %zu, total messages: %llu\n", loads.size(),
              (unsigned long long)total);
  std::printf("top 15 links:\n%6s %6s %10s %10s\n", "from", "to", "msgs", "share");
  for (size_t i = 0; i < std::min<size_t>(15, loads.size()); ++i) {
    std::printf("%6s %6s %10llu %9.2f%%\n",
                topo.router(loads[i].from).name.c_str(),
                topo.router(loads[i].to).name.c_str(),
                (unsigned long long)loads[i].messages,
                100.0 * static_cast<double>(loads[i].messages) /
                    static_cast<double>(total));
  }
  std::vector<double> msgs;
  for (const auto& l : loads) msgs.push_back(static_cast<double>(l.messages));
  std::printf("\nper-link messages: median=%.0f p90=%.0f max=%.0f\n",
              Percentile(msgs, 50), Percentile(msgs, 90), Percentile(msgs, 100));

  // Per-source-network share, the paper's explanation of the imbalance.
  uint64_t from_abilene = 0, from_geant = 0;
  for (const auto& info : net->stored()) {
    if (info.origin >= 0 && info.origin < 11) {
      ++from_abilene;
    } else {
      ++from_geant;
    }
  }
  std::printf("tuples inserted from Abilene monitors: %llu, from GEANT: %llu "
              "(sampling 1/100 vs 1/1000)\n",
              (unsigned long long)from_abilene, (unsigned long long)from_geant);
  std::printf("\n(paper: imbalanced because of Abilene/GEANT volume asymmetry, "
              "but far below a centralized collector's ingest link)\n");
  return 0;
}
