// Figure 13: the distribution of stored data across MIND nodes, with even
// (midpoint) cuts versus histogram-balanced cuts built from the previous
// day's distribution. The paper's point: balanced cuts flatten an
// order-of-magnitude imbalance.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

void PrintDistribution(const char* label, std::vector<size_t> counts) {
  std::sort(counts.rbegin(), counts.rend());
  size_t total = 0, nonzero = 0;
  for (size_t c : counts) {
    total += c;
    if (c > 0) ++nonzero;
  }
  double mean = static_cast<double>(total) / static_cast<double>(counts.size());
  double var = 0;
  for (size_t c : counts) {
    double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  double cv = mean > 0
                  ? std::sqrt(var / static_cast<double>(counts.size())) / mean
                  : 0;
  std::printf("%-22s total=%6zu nodes-with-data=%2zu/%2zu max=%5zu mean=%7.1f "
              "max/mean=%5.1fx CV=%.2f\n",
              label, total, nonzero, counts.size(), counts[0], mean,
              mean > 0 ? static_cast<double>(counts[0]) / mean : 0, cv);
  std::printf("  per-node (sorted): ");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("%zu ", counts[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Topology topo = Topology::AbileneGeant();
  std::printf("=== Figure 13: storage distribution, even vs balanced cuts ===\n");
  std::printf("(yesterday's histogram drives today's cuts, per paper §3.7)\n\n");

  const char* index_names[] = {"index1_fanout", "index2_octets",
                               "index3_flowsize"};
  const IndexDef defs[] = {MakeIndex1(), MakeIndex2(), MakeIndex3()};

  for (int which = 1; which <= 3; ++which) {
    FlowGeneratorOptions gopts;
    gopts.peak_flows_per_router_sec = 80;
    gopts.seed = 1313;
    FlowGenerator gen(topo, gopts);

    // --- Even cuts.
    {
      auto net = MakeDeployment(topo, {.replication = 0, .seed = 13130});
      CreatePaperIndices(*net, {}, which == 1, which == 2, which == 3);
      TraceDriveOptions topts;
      topts.day = 1;
      topts.t0_sec = 39600;
      topts.t1_sec = 42600;
      topts.feed_index1 = which == 1;
      topts.feed_index2 = which == 2;
      topts.feed_index3 = which == 3;
      DriveTrace(*net, gen, topts);
      std::printf("%s\n", index_names[which - 1]);
      PrintDistribution("  even cuts",
                        net->PrimaryTupleDistribution(index_names[which - 1]));
    }

    // --- Balanced cuts from day 0's distribution (the previous day).
    {
      auto net = MakeDeployment(topo, {.replication = 0, .seed = 13131});
      CreatePaperIndices(*net, {}, which == 1, which == 2, which == 3);
      auto yesterday = SampleIndexPoints(gen, 0, 39600, 42600, which);
      ShiftTimeAttr(&yesterday, defs[which - 1].time_attr);
      InstallBalancedCuts(*net, index_names[which - 1], defs[which - 1],
                          yesterday, 256, 12, 2, 0);
      TraceDriveOptions topts;
      topts.day = 1;
      topts.t0_sec = 39600;
      topts.t1_sec = 42600;
      topts.feed_index1 = which == 1;
      topts.feed_index2 = which == 2;
      topts.feed_index3 = which == 3;
      DriveTrace(*net, gen, topts);
      PrintDistribution("  balanced cuts",
                        net->PrimaryTupleDistribution(index_names[which - 1]));
    }
    std::printf("\n");
  }
  std::printf("(paper: even cuts vary by an order of magnitude; balanced cuts "
              "flatten the distribution)\n");
  return 0;
}
