// Figure 14 (+ §4.3 prose): insertion latency CDF on the 102-node overlay
// with node churn (the live population fluctuated between 70 and 102 on
// PlanetLab). Index-1 records are inserted at ~1 record/s/node. Paper shape:
// median below 1 s, a long tail, ~90% of insertions within 5 overlay hops
// and a re-routed tail reaching 12+ hops.
#include <cstdio>
#include <map>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  const size_t kNodes = 102;
  MindNetOptions mopts;
  mopts.sim.seed = 14140;
  mopts.sim.network.jitter_mu_ln_ms = 4.0;
  mopts.sim.network.jitter_sigma_ln = 1.0;
  mopts.overlay.heartbeat_interval = FromSeconds(3);
  mopts.mind.replication = 1;
  MindNet net(kNodes, mopts);
  if (!net.Build().ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  CreatePaperIndices(net, {}, true, false, false);

  // Node churn: nodes crash and rejoin; node 0 (bootstrap) is exempt.
  // Churn schedule (~8-20 nodes down at any time), driven directly so the
  // crash/revive hooks run the MIND-level Crash/Revive (state wipe + rejoin).
  FailureOptions fopts;
  fopts.node_crashes_per_hour = 4.0;
  fopts.mean_downtime = FromSeconds(240);
  Rng churn_rng(0xC0FFEE);
  const SimTime kHorizon = FromSeconds(900);
  size_t scheduled_crashes = 0;
  for (NodeId id = 1; id < static_cast<NodeId>(kNodes); ++id) {
    SimTime t = net.sim().now();
    for (;;) {
      t += static_cast<SimTime>(
          churn_rng.Exponential(fopts.node_crashes_per_hour / (3600.0 * 1e6)));
      if (t >= net.sim().now() + kHorizon) break;
      SimTime down = static_cast<SimTime>(churn_rng.Exponential(
          1.0 / static_cast<double>(fopts.mean_downtime)));
      net.sim().events().ScheduleAt(t, [&net, id] {
        if (net.node(id).overlay().alive()) net.node(id).Crash();
      });
      net.sim().events().ScheduleAt(t + down, [&net, id] {
        if (!net.node(id).overlay().alive()) net.node(id).Revive(0);
      });
      ++scheduled_crashes;
      t += down;
    }
  }

  // Index-1 points from the backbone trace, inserted round-robin at
  // ~1 record/s/node.
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1414;
  FlowGenerator gen(topo, gopts);
  PaperIndexOptions iopts;
  iopts.index1_min_fanout = 2;  // denser stream for the sweep
  auto points = SampleIndexPoints(gen, 0, 36000, 43200, 1, iopts);
  if (points.size() < 1000) {
    std::fprintf(stderr, "not enough sample points (%zu)\n", points.size());
    return 1;
  }

  size_t attempted = 0;
  size_t pt = 0;
  for (double t = 0; t < 600; t += 1.0) {
    for (size_t n = 0; n < kNodes; n += 6) {  // ~17 inserts/s total
      Tuple tup;
      tup.point = points[pt++ % points.size()];
      tup.origin = static_cast<int>(n);
      tup.seq = pt;
      size_t node = n;
      net.sim().events().Schedule(FromSeconds(t), [&net, node, tup] {
        (void)net.node(node).Insert("index1_fanout", tup);
      });
      ++attempted;
    }
  }
  // Interleave: run the workload plus churn.
  net.sim().RunFor(kHorizon);

  std::vector<double> lat;
  std::map<int, size_t> hops_hist;
  size_t le5 = 0;
  for (const auto& info : net.stored()) {
    lat.push_back(ToSeconds(info.latency));
    hops_hist[info.hops]++;
    if (info.hops <= 5) ++le5;
  }

  std::printf("=== Figure 14: insertion latency CDF, 102 nodes with churn ===\n");
  std::printf("scheduled crash/rejoin cycles: %zu; inserts attempted=%zu "
              "stored=%zu (loss during churn transients)\n\n",
              scheduled_crashes, attempted, lat.size());
  std::printf("latency CDF:\n");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("  p%-4.0f %8.3f s\n", p, Percentile(lat, p));
  }
  PrintLatencyRow("overall", lat);

  std::printf("\ninsertion path length (overlay hops):\n");
  for (const auto& [hops, count] : hops_hist) {
    std::printf("  %2d hops: %6zu\n", hops, count);
  }
  std::printf("insertions within 5 hops: %.1f%%  (paper: ~90%%, tail to 12+ "
              "under re-routing)\n",
              lat.empty() ? 0 : 100.0 * static_cast<double>(le5) / lat.size());
  std::printf("\n(paper: median < 1 s, long tail)\n");
  return 0;
}
