// "Figure 15" — the 102-node query results the paper describes in §4.3 but
// omits for space: query latency is qualitatively similar to insertion
// latency, ~90% of queries visit fewer than 5 nodes, and no query visits
// more than 12.
//
// Runs once per index backend (sorted runs / hierarchical bitmaps /
// adaptive). Backends are digest-transparent physical layout
// (docs/BACKENDS.md): every run must produce identical latencies, costs and
// deployment digest, asserted here with a nonzero exit on divergence.
// Per-backend instruments export as bench.fig15.<backend>.*; the unprefixed
// names stay on the sorted run for continuity.
#include <cstdio>
#include <map>
#include <string>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

struct Fig15Outcome {
  std::vector<double> lat;
  std::map<size_t, size_t> cost_hist;
  size_t le5 = 0, total = 0, max_cost = 0;
  size_t stored = 0;
  uint64_t digest = 0;
};

Fig15Outcome RunFig15(IndexBackendKind backend,
                      telemetry::MetricsRegistry& bench_metrics,
                      bool legacy_names) {
  const std::string prefix =
      std::string("bench.fig15.") + IndexBackendKindName(backend) + ".";
  const size_t kNodes = 102;
  MindNetOptions mopts;
  mopts.sim.seed = 15150;
  mopts.sim.network.jitter_mu_ln_ms = 4.0;
  mopts.sim.network.jitter_sigma_ln = 1.0;
  mopts.mind.replication = 1;
  mopts.mind.store_backend = backend;
  MindNet net(kNodes, mopts);
  if (!net.Build().ok()) std::abort();
  CreatePaperIndices(net, {}, true, false, false);

  // Load Index-1 with trace-derived points from every node.
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1515;
  FlowGenerator gen(topo, gopts);
  PaperIndexOptions iopts;
  iopts.index1_min_fanout = 2;
  auto points = SampleIndexPoints(gen, 0, 36000, 43200, 1, iopts);
  // Balanced cuts (from the same distribution, as the paper's deployment
  // would have installed from the previous day) before loading.
  InstallBalancedCuts(net, "index1_fanout", MakeIndex1(iopts), points, 256, 12,
                      2, 0);
  size_t seq = 0;
  for (const auto& p : points) {
    Tuple tup;
    tup.point = p;
    tup.origin = static_cast<int>(seq % kNodes);
    tup.seq = ++seq;
    (void)net.node(seq % kNodes).Insert("index1_fanout", tup);
    if (seq % 50 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(60));

  const IndexDef* def = net.node(0).GetIndexDef("index1_fanout");
  Rng rng(15);
  // Table and BENCH_*.json read the same instruments (fig10 convention).
  auto& latency_ms = bench_metrics.histogram(prefix + "query_latency_ms");
  auto& cost_h = bench_metrics.histogram(prefix + "resolver_cost_nodes");
  Fig15Outcome out;
  for (int iter = 0; iter < 200; ++iter) {
    Rect q = RandomMonitoringQuery(&rng, *def, 43200);
    auto result = RunQueryBlocking(net, rng.Uniform(kNodes), "index1_fanout", q);
    if (!result || !result->complete) continue;
    out.lat.push_back(ToSeconds(result->latency));
    latency_ms.Record(ToSeconds(result->latency) * 1e3);
    // The paper's metric: nodes involved while retrieving the results.
    size_t cost = result->responders;
    out.cost_hist[cost]++;
    cost_h.Record(static_cast<double>(cost));
    if (legacy_names) {
      bench_metrics.histogram("bench.fig15.query_latency_ms")
          .Record(ToSeconds(result->latency) * 1e3);
      bench_metrics.histogram("bench.fig15.resolver_cost_nodes")
          .Record(static_cast<double>(cost));
    }
    out.max_cost = std::max(out.max_cost, net.QueryVisitCount(result->query_id));
    if (cost < 5) ++out.le5;
    ++out.total;
  }
  out.stored = net.TotalPrimaryTuples("index1_fanout");
  out.digest = net.StateDigest();

  const double denom = static_cast<double>(out.total);
  bench_metrics.gauge(prefix + "lt5_resolver_pct")
      .Set(100.0 * static_cast<double>(out.le5) / denom);
  bench_metrics.gauge(prefix + "max_nodes_visited")
      .Set(static_cast<double>(out.max_cost));
  bench_metrics.counter(prefix + "queries_complete")
      .Inc(static_cast<uint64_t>(out.total));
  if (legacy_names) {
    bench_metrics.gauge("bench.fig15.lt5_resolver_pct")
        .Set(100.0 * static_cast<double>(out.le5) / denom);
    bench_metrics.gauge("bench.fig15.max_nodes_visited")
        .Set(static_cast<double>(out.max_cost));
    bench_metrics.counter("bench.fig15.queries_complete")
        .Inc(static_cast<uint64_t>(out.total));
  }
  return out;
}

}  // namespace

int main() {
  telemetry::MetricsRegistry bench_metrics;
  const IndexBackendKind kBackends[] = {IndexBackendKind::kSortedRuns,
                                        IndexBackendKind::kBitmap,
                                        IndexBackendKind::kAdaptive};
  std::map<IndexBackendKind, Fig15Outcome> runs;
  for (IndexBackendKind b : kBackends) {
    runs[b] = RunFig15(b, bench_metrics,
                       /*legacy_names=*/b == IndexBackendKind::kSortedRuns);
  }
  const Fig15Outcome& base = runs[IndexBackendKind::kSortedRuns];

  std::printf("=== Figure 15 (§4.3): query cost & latency at 102-node scale ===\n");
  std::printf("stored tuples: %zu; completed queries: %zu\n\n", base.stored,
              base.total);
  std::printf("query cost (resolver nodes, incl. negative replies):\n");
  size_t cum = 0;
  for (const auto& [cost, count] : base.cost_hist) {
    cum += count;
    std::printf("  %2zu nodes: %5zu  (cum %.1f%%)\n", cost, count,
                100.0 * static_cast<double>(cum) /
                    static_cast<double>(base.total));
  }
  std::printf("queries resolved by < 5 nodes: %.1f%%  (paper: ~90%%); max "
              "overlay nodes touched: %zu (paper: <= 12 visited)\n\n",
              100.0 * static_cast<double>(base.le5) /
                  static_cast<double>(base.total),
              base.max_cost);
  PrintLatencyRow("query latency", base.lat);
  std::printf("\n");

  // Backend transparency: identical latencies, costs and deployment digest.
  bool diverged = false;
  for (IndexBackendKind b : kBackends) {
    const Fig15Outcome& o = runs[b];
    std::printf("backend %-7s: %zu queries complete, digest %016llx\n",
                IndexBackendKindName(b), o.total,
                static_cast<unsigned long long>(o.digest));
    if (o.lat != base.lat || o.cost_hist != base.cost_hist ||
        o.le5 != base.le5 || o.total != base.total ||
        o.max_cost != base.max_cost || o.stored != base.stored ||
        o.digest != base.digest) {
      std::fprintf(stderr, "FAIL: backend %s diverged from sorted baseline\n",
                   IndexBackendKindName(b));
      diverged = true;
    }
  }

  telemetry::RunMeta meta;
  meta.bench = "fig15_scale_query";
  meta.seed = 15150;
  meta.topology = "flat";
  meta.nodes = 102;
  meta.extra["queries"] = "200";
  meta.extra["backends"] = "sorted,bitmap,adaptive";
  ExportBench(bench_metrics, meta);
  return diverged ? 1 : 0;
}
