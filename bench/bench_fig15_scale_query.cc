// "Figure 15" — the 102-node query results the paper describes in §4.3 but
// omits for space: query latency is qualitatively similar to insertion
// latency, ~90% of queries visit fewer than 5 nodes, and no query visits
// more than 12.
#include <cstdio>
#include <map>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  const size_t kNodes = 102;
  MindNetOptions mopts;
  mopts.sim.seed = 15150;
  mopts.sim.network.jitter_mu_ln_ms = 4.0;
  mopts.sim.network.jitter_sigma_ln = 1.0;
  mopts.mind.replication = 1;
  MindNet net(kNodes, mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net, {}, true, false, false);

  // Load Index-1 with trace-derived points from every node.
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 1515;
  FlowGenerator gen(topo, gopts);
  PaperIndexOptions iopts;
  iopts.index1_min_fanout = 2;
  auto points = SampleIndexPoints(gen, 0, 36000, 43200, 1, iopts);
  // Balanced cuts (from the same distribution, as the paper's deployment
  // would have installed from the previous day) before loading.
  InstallBalancedCuts(net, "index1_fanout", MakeIndex1(iopts), points, 256, 12,
                      2, 0);
  size_t seq = 0;
  for (const auto& p : points) {
    Tuple tup;
    tup.point = p;
    tup.origin = static_cast<int>(seq % kNodes);
    tup.seq = ++seq;
    (void)net.node(seq % kNodes).Insert("index1_fanout", tup);
    if (seq % 50 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(60));

  const IndexDef* def = net.node(0).GetIndexDef("index1_fanout");
  Rng rng(15);
  // Table and BENCH_*.json read the same instruments (fig10 convention).
  telemetry::MetricsRegistry bench_metrics;
  auto& latency_ms = bench_metrics.histogram("bench.fig15.query_latency_ms");
  auto& cost_h = bench_metrics.histogram("bench.fig15.resolver_cost_nodes");
  std::vector<double> lat;
  std::map<size_t, size_t> cost_hist;
  size_t le5 = 0, total = 0, max_cost = 0;
  for (int iter = 0; iter < 200; ++iter) {
    Rect q = RandomMonitoringQuery(&rng, *def, 43200);
    auto result = RunQueryBlocking(net, rng.Uniform(kNodes), "index1_fanout", q);
    if (!result || !result->complete) continue;
    lat.push_back(ToSeconds(result->latency));
    latency_ms.Record(ToSeconds(result->latency) * 1e3);
    // The paper's metric: nodes involved while retrieving the results.
    size_t cost = result->responders;
    cost_hist[cost]++;
    cost_h.Record(static_cast<double>(cost));
    max_cost = std::max(max_cost, net.QueryVisitCount(result->query_id));
    if (cost < 5) ++le5;
    ++total;
  }

  std::printf("=== Figure 15 (§4.3): query cost & latency at 102-node scale ===\n");
  std::printf("stored tuples: %zu; completed queries: %zu\n\n",
              net.TotalPrimaryTuples("index1_fanout"), total);
  std::printf("query cost (resolver nodes, incl. negative replies):\n");
  size_t cum = 0;
  for (const auto& [cost, count] : cost_hist) {
    cum += count;
    std::printf("  %2zu nodes: %5zu  (cum %.1f%%)\n", cost, count,
                100.0 * static_cast<double>(cum) / static_cast<double>(total));
  }
  std::printf("queries resolved by < 5 nodes: %.1f%%  (paper: ~90%%); max "
              "overlay nodes touched: %zu (paper: <= 12 visited)\n\n",
              100.0 * static_cast<double>(le5) / static_cast<double>(total),
              max_cost);
  PrintLatencyRow("query latency", lat);

  bench_metrics.gauge("bench.fig15.lt5_resolver_pct")
      .Set(100.0 * static_cast<double>(le5) / static_cast<double>(total));
  bench_metrics.gauge("bench.fig15.max_nodes_visited")
      .Set(static_cast<double>(max_cost));
  bench_metrics.counter("bench.fig15.queries_complete")
      .Inc(static_cast<uint64_t>(total));
  telemetry::RunMeta meta;
  meta.bench = "fig15_scale_query";
  meta.seed = mopts.sim.seed;
  meta.topology = "flat";
  meta.nodes = static_cast<int>(kNodes);
  meta.extra["queries"] = "200";
  ExportBench(bench_metrics, meta);
  return 0;
}
