// Figure 16: fraction of successful queries vs fraction of failed nodes at
// replication levels 0, 1 and "full" (each item replicated at every overlay
// neighbor), on a 102-node local-cluster deployment. Paper shape:
//  * no replication: success declines ~linearly with failures;
//  * 1 replica: no loss up to ~15% failures;
//  * full: no loss past 50% failures.
// A query "succeeds" when it completes and returns exactly the tuples that
// were inserted into its rectangle.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

struct RunResult {
  double success_fraction = 0;
  double storage_tuples = 0;  // total copies stored (primary + replicas)
};

RunResult RunOnce(int replication, double kill_fraction, uint64_t seed,
                  const std::vector<Point>& points) {
  const size_t kNodes = 102;
  MindNetOptions mopts;
  mopts.sim.seed = seed;
  mopts.sim.network.default_latency = FromMillis(2);  // local cluster
  mopts.overlay.heartbeat_interval = FromSeconds(2);
  mopts.mind.replication = replication;
  mopts.mind.query_timeout = FromSeconds(25);
  MindNet net(kNodes, mopts);
  if (!net.Build().ok()) {
    std::fprintf(stderr, "build failed\n");
    std::abort();
  }
  CreatePaperIndices(net, {}, true, false, false);

  std::vector<Tuple> inserted;
  size_t seq = 0;
  for (const auto& p : points) {
    Tuple tup;
    tup.point = p;
    tup.origin = static_cast<int>(seq % kNodes);
    tup.seq = ++seq;
    inserted.push_back(tup);
    (void)net.node(seq % kNodes).Insert("index1_fanout", tup);
    if (seq % 100 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(30));

  double copies = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    copies += static_cast<double>(net.node(i).PrimaryTupleCount("index1_fanout") +
                                  net.node(i).ReplicaTupleCount("index1_fanout"));
  }

  // Kill the chosen fraction at once (node 0 stays as query gateway).
  size_t to_kill = static_cast<size_t>(kill_fraction * kNodes);
  Rng rng(seed ^ 0xdead);
  std::set<size_t> killed;
  while (killed.size() < to_kill) {
    size_t v = 1 + rng.Uniform(kNodes - 1);
    if (killed.insert(v).second) net.node(v).Crash();
  }
  net.sim().RunFor(FromSeconds(90));  // takeovers settle (recursive at high kill rates)

  const IndexDef* def = net.node(0).GetIndexDef("index1_fanout");
  size_t success = 0, total = 0;
  for (int iter = 0; iter < 60; ++iter) {
    // Queries anchored on an actual tuple (monitoring queries look where
    // traffic is): a destination-prefix band, full time range, all fanouts.
    const Tuple& anchor = inserted[rng.Uniform(inserted.size())];
    Value spread = 1u << 24;
    Value lo = anchor.point[0] > spread ? anchor.point[0] - spread : 0;
    Value hi = anchor.point[0] + spread < anchor.point[0]
                   ? UINT64_MAX
                   : anchor.point[0] + spread;
    Rect q({{lo, hi},
            {0, def->schema.attr(1).max},
            {0, def->schema.attr(2).max}});
    size_t from;
    do {
      from = rng.Uniform(kNodes);
    } while (killed.count(from));
    auto result = RunQueryBlocking(net, from, "index1_fanout", q);
    ++total;
    if (!result) continue;
    // "Successful" = the answer is right: every matching tuple returned
    // (from a primary or a replica). The paper measures data availability,
    // not protocol formality, so a timed-out-but-right answer still counts.
    std::set<uint64_t> expected, got;
    for (const auto& t : inserted) {
      if (q.Contains(t.point)) expected.insert(t.seq);
    }
    for (const auto& t : result->tuples) got.insert(t.seq);
    if (got == expected) ++success;
  }
  return {static_cast<double>(success) / static_cast<double>(total), copies};
}

}  // namespace

int main() {
  // Trace-derived Index-1 points (3 days' worth scaled down).
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 60;
  gopts.seed = 1616;
  FlowGenerator gen(topo, gopts);
  PaperIndexOptions iopts;
  iopts.index1_min_fanout = 2;
  std::vector<Point> points;
  for (int day = 0; day < 3; ++day) {
    auto p = SampleIndexPoints(gen, day, 39600, 41400, 1, iopts);
    points.insert(points.end(), p.begin(), p.end());
  }
  if (points.size() > 2500) points.resize(2500);

  std::printf("=== Figure 16: query success vs node failures, replication 0/1/full ===\n");
  std::printf("102-node local cluster, %zu Index-1 tuples, 60 queries x 3 overlay draws per point\n\n",
              points.size());
  std::printf("%8s", "failed%");
  for (const char* label : {"m=0", "m=1", "full"}) std::printf("  %8s", label);
  std::printf("\n");

  // Bench-level registry: one success-percentage gauge per (kill fraction,
  // replication level) cell plus storage-cost gauges; the printed table and
  // BENCH_fig16_robustness.json read the same gauges.
  telemetry::MetricsRegistry bench_metrics;
  const double kill_fractions[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50};
  const int reps[] = {0, 1, -1};
  const char* rep_keys[] = {"m0", "m1", "full"};
  double storage[3] = {0, 0, 0};
  for (double kf : kill_fractions) {
    std::printf("%7.0f%%", kf * 100);
    for (int ri = 0; ri < 3; ++ri) {
      // Average over several overlay/kill draws; the same seeds are used for
      // every replication level so the comparison is paired.
      double sum = 0;
      const int kSeeds = 3;
      for (int sd = 0; sd < kSeeds; ++sd) {
        RunResult r = RunOnce(reps[ri], kf,
                              0x16160 + static_cast<uint64_t>(kf * 100) +
                                  static_cast<uint64_t>(sd) * 7919,
                              points);
        sum += r.success_fraction;
        storage[ri] = r.storage_tuples;
      }
      double pct = 100 * sum / kSeeds;
      char name[64];
      std::snprintf(name, sizeof(name), "bench.fig16.success_pct.f%02.0f.%s",
                    kf * 100, rep_keys[ri]);
      bench_metrics.gauge(name).Set(pct);
      std::printf("  %7.1f%%", pct);
    }
    std::printf("\n");
  }
  for (int ri = 0; ri < 3; ++ri) {
    bench_metrics.gauge(std::string("bench.fig16.storage_tuples.") + rep_keys[ri])
        .Set(storage[ri]);
  }
  std::printf("\nstorage cost (tuple copies incl. replicas): m=0: %.0f  m=1: %.0f  "
              "full: %.0f\n",
              storage[0], storage[1], storage[2]);
  std::printf("(paper: linear decay without replication; flat to 15%% with one "
              "replica; flat past 50%% with full replication)\n");

  telemetry::RunMeta meta;
  meta.bench = "fig16_robustness";
  meta.seed = 0x16160;
  meta.topology = "local_cluster";
  meta.nodes = 102;
  meta.extra["tuples"] = std::to_string(points.size());
  meta.extra["queries_per_point"] = "60";
  meta.extra["seeds_per_point"] = "3";
  ExportBench(bench_metrics, meta);
  return 0;
}
