// Figure 17 (table): real-world anomaly detection. An 11-node overlay
// congruent to the Abilene backbone indexes ~25 minutes of traffic in which
// known anomalies occur (here: injected alpha flows, a DoS and a port scan,
// standing in for the Lakhina et al. Dec 18, 2003 ground truth). Queries
// circumscribing each anomaly must return a small superset of its records
// ("perfect recall", result sizes of tens of tuples) with ~1-2 s average
// response time over all issuing nodes, and the result's origin set lists
// the monitors on the anomaly's path.
#include <cstdio>

#include "anomaly/mind_detector.h"
#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 120;
  gopts.seed = 1717;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 17170;
  mopts.sim.network.jitter_mu_ln_ms = 4.2;
  mopts.sim.network.jitter_sigma_ln = 1.0;
  mopts.mind.replication = 1;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  if (!net.Build().ok()) return 1;
  CreatePaperIndices(net, {}, true, true, false);

  // 25 minutes of trace (15:40-16:05) with five injected anomalies, like the
  // paper's trace slice.
  const double t0 = 15 * 3600 + 2400, t1 = t0 + 1500;
  auto alpha = [&](double start, size_t src, size_t dst) {
    AnomalyEvent ev;
    ev.type = AnomalyType::kAlphaFlow;
    ev.start_sec = start;
    ev.duration_sec = 150;
    ev.src_prefix = src;
    ev.dst_prefix = dst;
    ev.magnitude = 6e9;
    return ev;
  };
  AnomalyEvent dos1;
  dos1.type = AnomalyType::kDos;
  dos1.start_sec = t0 + 900;
  dos1.duration_sec = 120;
  dos1.src_prefix = 4;
  dos1.dst_prefix = 21;
  dos1.magnitude = 30000;
  AnomalyEvent scan1;
  scan1.type = AnomalyType::kPortScan;
  scan1.start_sec = t0 + 960;
  scan1.duration_sec = 120;
  scan1.src_prefix = 9;
  scan1.dst_prefix = 30;
  scan1.magnitude = 30000;

  TraceDriveOptions topts;
  topts.t0_sec = t0;
  topts.t1_sec = t1;
  topts.feed_index3 = false;
  topts.anomalies = {alpha(t0 + 60, 2, 15), alpha(t0 + 300, 7, 26),
                     alpha(t0 + 600, 12, 33), dos1, scan1};
  auto drive = DriveTrace(net, gen, topts);

  // Ground truth: the known anomaly list (the role Lakhina et al.'s offline
  // detections played in the paper). For each injected event, the offline
  // detector runs over only that event's (src, dst, time) records to recover
  // its exact windows, record count and observing monitors.
  GroundTruthOptions gt_opts;
  gt_opts.alpha_octets = 4'000'000;
  gt_opts.fanout = 1500;
  std::vector<DetectedAnomaly> anomalies;
  for (const auto& ev : topts.anomalies) {
    const IpPrefix& src = gen.prefix(ev.src_prefix);
    const IpPrefix& dst = gen.prefix(ev.dst_prefix);
    std::vector<AggregateRecord> event_recs;
    for (const auto& rec : drive.all_aggregates) {
      if (rec.src_prefix == src && rec.dst_prefix == dst &&
          rec.window_start >= static_cast<uint64_t>(ev.start_sec) - 30 &&
          rec.window_start <=
              static_cast<uint64_t>(ev.start_sec + ev.duration_sec)) {
        event_recs.push_back(rec);
      }
    }
    auto found = GroundTruthDetector(gt_opts).Detect(event_recs);
    for (auto& a : found) anomalies.push_back(std::move(a));
  }

  std::printf("=== Figure 17: anomaly capture via MIND queries ===\n");
  std::printf("trace: %zu aggregates, idx1=%zu idx2=%zu tuples inserted; "
              "ground truth: %zu anomalies\n\n",
              drive.all_aggregates.size(), drive.inserted1, drive.inserted2,
              anomalies.size());
  std::printf("%-10s %-11s %-11s %-12s %-10s %-9s %s\n", "time", "type",
              "result-size", "actual-recs", "avg-resp(s)", "captured",
              "monitors");

  MindAnomalyDetector detector(&net, "index1_fanout", "index2_octets");
  std::vector<size_t> all_nodes;
  for (size_t i = 0; i < net.size(); ++i) all_nodes.push_back(i);

  size_t captured_count = 0;
  for (const auto& anomaly : anomalies) {
    // A 5-minute window circumscribing the anomaly (as the paper's queries).
    uint64_t w1 = anomaly.first_window > 120 ? anomaly.first_window - 120 : 0;
    uint64_t w2 = w1 + 300;
    DetectionOutcome outcome =
        anomaly.type == AnomalyType::kAlphaFlow
            ? detector.QueryOctets(all_nodes, w1, w2, gt_opts.alpha_octets)
            : detector.QueryFanout(all_nodes, w1, w2, gt_opts.fanout);
    bool captured = MindAnomalyDetector::Captures(outcome, anomaly);
    if (captured) ++captured_count;

    int mins = static_cast<int>(anomaly.first_window / 60) % (24 * 60);
    char when[16];
    std::snprintf(when, sizeof(when), "%02d:%02d", mins / 60, mins % 60);
    std::string monitors;
    for (int r : outcome.observers) {
      if (!monitors.empty()) monitors += ",";
      monitors += topo.router(r).name;
    }
    std::printf("%-10s %-11s %-11zu %-12zu %-10.2f %-9s %s\n", when,
                AnomalyTypeName(anomaly.type), outcome.result_size,
                anomaly.record_count, outcome.avg_response_sec,
                captured ? "yes" : "NO", monitors.c_str());
  }
  std::printf("\nrecall: %zu/%zu anomalies captured (paper: perfect recall, "
              "result sizes of tens of records, ~1-2 s responses)\n",
              captured_count, anomalies.size());
  return captured_count == anomalies.size() ? 0 : 1;
}
