// Figure 18 (scale extrapolation, no paper counterpart): a 1024-node
// synthetic deployment driven with a mixed insert/batch/query workload.
// The paper stops at 102 nodes (Figures 14-15); this bench checks that the
// simulator itself stays fast enough to host 10x that, and reports the
// engine-level numbers that matter at this scale: wall-clock event
// throughput, insert/query latency distributions and the routing-cache hit
// rate on the hot forwarding path.
//
// Duty cycle: MIND_BENCH_DUTY=<percent> (or argv[1]) scales the driven
// sim-time window down for CI smoke runs, e.g. MIND_BENCH_DUTY=10 drives
// ~1/10th of the default workload. Results export to
// BENCH_fig18_scale1k.json regardless of duty.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

Schema ScaleSchema() {
  return Schema({{"dst", 0, 0xFFFFFFFFull}, {"ts", 0, 86400 * 14}, {"v", 0, 1 << 20}});
}

int DutyPercent(int argc, char** argv) {
  int duty = 100;
  if (const char* env = std::getenv("MIND_BENCH_DUTY")) duty = std::atoi(env);
  if (argc > 1) duty = std::atoi(argv[1]);
  if (duty < 1) duty = 1;
  if (duty > 100) duty = 100;
  return duty;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t kNodes = 1024;
  const int duty = DutyPercent(argc, argv);
  // Default: 120 s of driven sim time; CI smoke runs at a few percent.
  const double drive_sec = 120.0 * duty / 100.0;

  DeploymentOptions dopts;
  dopts.seed = 0x18181818;
  dopts.heartbeat_interval = 0;  // focus the event budget on the data path
  auto net = MakeFlatDeployment(kNodes, dopts);

  IndexDef def;
  def.name = "scale";
  def.schema = ScaleSchema();
  def.time_attr = 1;
  Status st = net->CreateIndexEverywhere(
      def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0);
  if (!st.ok()) {
    std::fprintf(stderr, "create index failed: %s\n", st.ToString().c_str());
    return 1;
  }
  net->sim().RunFor(FromSeconds(10));  // let the overlay settle

  std::printf("=== Figure 18: 1024-node scale run (duty %d%%, %.0f s driven) ===\n\n",
              duty, drive_sec);

  // Mixed workload, all scheduled up front in sim time:
  //  - singles: 256 origins insert one tuple per second (~256 inserts/s)
  //  - batches: 32 origins ship a 16-tuple train every 4 s (~128 tuples/s)
  //  - queries: 16 random monitoring queries per second across the overlay
  Rng rng(0x18f1);
  auto pts = [&] {
    std::vector<Point> v;
    v.reserve(1 << 14);
    for (size_t i = 0; i < (1u << 14); ++i) {
      v.push_back({rng.Uniform(0x100000000ull), rng.Uniform(86400 * 14),
                   rng.Uniform(1 << 20)});
    }
    return v;
  }();
  uint64_t seq = 0;
  size_t pt = 0;
  size_t queries_issued = 0, queries_done = 0, queries_complete = 0;
  for (double t = 0; t < drive_sec; t += 1.0) {
    for (size_t n = 0; n < kNodes; n += 4) {
      Tuple tup;
      tup.point = pts[pt++ % pts.size()];
      tup.origin = static_cast<int>(n);
      tup.seq = ++seq;
      net->sim().events().Schedule(FromSeconds(t), [&net, n, tup] {
        (void)net->node(n).Insert("scale", tup);
      });
    }
    if (static_cast<long>(t) % 4 == 0) {
      for (size_t n = 1; n < kNodes; n += 32) {
        std::vector<Tuple> batch;
        batch.reserve(16);
        for (int k = 0; k < 16; ++k) {
          Tuple tup;
          tup.point = pts[pt++ % pts.size()];
          tup.origin = static_cast<int>(n);
          tup.seq = ++seq;
          batch.push_back(std::move(tup));
        }
        net->sim().events().Schedule(
            FromSeconds(t), [&net, n, batch]() mutable {
              (void)net->node(n).InsertBatch("scale", std::move(batch));
            });
      }
    }
    for (int q = 0; q < 16; ++q) {
      size_t from = rng.Uniform(kNodes);
      Rect rect = RandomMonitoringQuery(&rng, def, 86400);
      net->sim().events().Schedule(FromSeconds(t), [&net, &queries_issued,
                                                    &queries_done,
                                                    &queries_complete, from,
                                                    rect] {
        ++queries_issued;
        (void)net->node(from).Query("scale", rect,
                                    [&](const QueryResult& r) {
                                      ++queries_done;
                                      if (r.complete) ++queries_complete;
                                    });
      });
    }
  }

  auto& sm = net->sim().metrics();
  const uint64_t events_before = sm.counter("sim.events.processed").value();
  const auto wall_start = std::chrono::steady_clock::now();
  net->sim().RunFor(FromSeconds(drive_sec + 60));  // workload + settle
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const uint64_t events =
      sm.counter("sim.events.processed").value() - events_before;

  const double hits =
      static_cast<double>(sm.counter("overlay.route.cache_hits").value());
  const double misses =
      static_cast<double>(sm.counter("overlay.route.cache_misses").value());
  const double hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0;

  std::printf("engine: %llu events in %.2f s wall = %.0f events/s\n",
              static_cast<unsigned long long>(events), wall_sec,
              wall_sec > 0 ? events / wall_sec : 0);
  std::printf("routing cache: %.0f hits / %.0f misses = %.1f%% hit rate\n\n",
              hits, misses, 100.0 * hit_rate);
  PrintLatencyRowHist("insert latency",
                      sm.histogram("mind.insert.latency_ms"));
  PrintLatencyRowHist("query latency", sm.histogram("mind.query.latency_ms"));
  std::printf("queries: issued=%zu answered=%zu complete=%zu\n",
              queries_issued, queries_done, queries_complete);
  std::printf("tuples stored (primary): %zu\n", net->stored().size());

  // Bench-level results ride in the sim's own registry so the export carries
  // the full engine snapshot (overlay.*, mind.*, sim.*) alongside them.
  sm.gauge("bench.fig18.events_per_sec_wall")
      .Set(wall_sec > 0 ? events / wall_sec : 0);
  sm.gauge("bench.fig18.wall_seconds").Set(wall_sec);
  sm.gauge("bench.fig18.route_cache_hit_rate").Set(hit_rate);
  sm.gauge("bench.fig18.queries_complete").Set(static_cast<double>(queries_complete));

  telemetry::RunMeta meta;
  meta.bench = "fig18_scale1k";
  meta.seed = dopts.seed;
  meta.topology = "flat_synthetic";
  meta.nodes = static_cast<int>(kNodes);
  meta.extra["duty_percent"] = std::to_string(duty);
  meta.extra["drive_seconds"] = std::to_string(drive_sec);
  ExportBench(sm, meta);
  return 0;
}
