// "Figure 19" (churn extrapolation, no paper counterpart): mixed
// insert/query workloads where writes and reads interleave tightly — the
// worst case for the per-node tuple stores, whose lazily-sorted rows must be
// restored to key order on every insert->query transition.
//
// Two sections, both wall-clock measured:
//  * store churn: one large TupleStore driven with a bulk-ingest phase and
//    then interleaved single inserts and rectangle queries (the headline
//    `store_churn_ops_per_sec`); this is the isolated per-node query path,
//    no network. The section runs once per index backend (sorted runs /
//    hierarchical bitmaps / adaptive, docs/BACKENDS.md), asserts that every
//    backend returns the same matches and store digest, and exports
//    per-backend `bench.fig19.<backend>.*` numbers — the ingest phase is
//    where the append-only bitmaps beat the merge-paying sorted runs.
//  * deployment churn: a flat MindNet preloaded through InsertBatch trains,
//    then driven with interleaved singles and monitoring queries
//    (`net_queries_per_sec_wall`), the end-to-end view; its backend follows
//    MIND_BACKEND and is recorded in the export metadata.
//
// Duty cycle: MIND_BENCH_DUTY=<percent> (or argv[1]) follows the fig18
// 1k-node convention and scales the whole workload (store size, preload,
// driven window) down for CI smoke runs. Before/after comparisons must use
// the same duty. Results export to BENCH_fig19_churn.json regardless.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

Schema ChurnSchema() {
  return Schema({{"dst", 0, 0xFFFFFFFFull}, {"ts", 0, 86400}, {"v", 0, 1 << 20}});
}

int DutyPercent(int argc, char** argv) {
  int duty = 100;
  if (const char* env = std::getenv("MIND_BENCH_DUTY")) duty = std::atoi(env);
  if (argc > 1) duty = std::atoi(argv[1]);
  if (duty < 1) duty = 1;
  if (duty > 100) duty = 100;
  return duty;
}

Point RandomPoint(Rng* rng) {
  return {rng->Uniform(0x100000000ull), rng->Uniform(86401), rng->Uniform(1 << 20)};
}

// A monitoring query in the paper's style against ChurnSchema: uniform
// random ranges on dst and v, a 5-minute window at a random position of the
// day on ts.
Rect ChurnQuery(Rng* rng) {
  Value a = rng->Uniform(0x100000000ull), b = rng->Uniform(0x100000000ull);
  Value t_end = rng->UniformRange(300, 86400);
  Value c = rng->Uniform(1 << 20), d = rng->Uniform(1 << 20);
  return Rect({{std::min(a, b), std::max(a, b)},
               {t_end - 300, t_end},
               {std::min(c, d), std::max(c, d)}});
}

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// One store-churn leg: bulk-ingest kStoreRows rows (timed — the phase the
// append-only bitmap layout wins), then kChurnRounds tight insert->query
// alternations (timed — the transition that defeats a lazily-sorted flat
// row vector: every insert invalidates the order, every following query
// pays the re-sort). Matches and the store digest are returned so the
// caller can assert backend transparency.
struct StoreChurnOutcome {
  double ingest_wall = 0;
  double churn_wall = 0;
  size_t churn_matches = 0;
  uint64_t digest = 0;
};

StoreChurnOutcome RunStoreChurn(IndexBackendKind backend, size_t store_rows,
                                size_t churn_rounds, int queries_per_round) {
  Schema schema = ChurnSchema();
  auto cuts = std::make_shared<CutTree>(CutTree::Even(schema));
  TupleStoreConfig cfg;
  cfg.code_len = 32;
  cfg.options.backend = backend;
  TupleStore store(cuts, cfg);
  Rng rng(0x19191919);
  StoreChurnOutcome out;

  const auto ingest_t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < store_rows; ++i) {
    Tuple t;
    t.point = RandomPoint(&rng);
    t.origin = static_cast<int>(i % 64);
    t.seq = i;
    store.Insert(std::move(t));
  }
  out.ingest_wall = Secs(ingest_t0);
  (void)store.Query(ChurnQuery(&rng));  // settle the initial sort

  const auto churn_t0 = std::chrono::steady_clock::now();
  uint64_t seq = store_rows;
  for (size_t round = 0; round < churn_rounds; ++round) {
    Tuple t;
    t.point = RandomPoint(&rng);
    t.origin = static_cast<int>(round % 64);
    t.seq = ++seq;
    store.Insert(std::move(t));
    for (int q = 0; q < queries_per_round; ++q) {
      out.churn_matches += store.Query(ChurnQuery(&rng)).size();
    }
  }
  out.churn_wall = Secs(churn_t0);
  Fnv64 d;
  store.DigestInto(&d);
  out.digest = d.value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int duty = DutyPercent(argc, argv);

  // ---------------------------------------------------------- store churn
  // One store at the size a busy node reaches late in a day, swept across
  // the three index backends.
  const size_t kStoreRows = std::max<size_t>(5000, 200000 * duty / 100);
  const size_t kChurnRounds = 256;
  const int kQueriesPerRound = 4;
  const size_t churn_ops = kChurnRounds * (1 + kQueriesPerRound);

  const IndexBackendKind kBackends[] = {IndexBackendKind::kSortedRuns,
                                        IndexBackendKind::kBitmap,
                                        IndexBackendKind::kAdaptive};
  std::map<IndexBackendKind, StoreChurnOutcome> churn;
  for (IndexBackendKind b : kBackends) {
    churn[b] = RunStoreChurn(b, kStoreRows, kChurnRounds, kQueriesPerRound);
  }
  const StoreChurnOutcome& base = churn[IndexBackendKind::kSortedRuns];
  const double store_wall = base.churn_wall;
  const double store_ops_per_sec = store_wall > 0 ? churn_ops / store_wall : 0;
  const size_t churn_matches = base.churn_matches;

  std::printf("=== Figure 19: mixed insert/query churn (duty %d%%) ===\n\n", duty);
  std::printf("store churn: %zu rows, %zu ops (%zu inserts + %zu queries, %zu matches)\n",
              kStoreRows + kChurnRounds, churn_ops, kChurnRounds,
              kChurnRounds * kQueriesPerRound, churn_matches);
  bool diverged = false;
  for (IndexBackendKind b : kBackends) {
    const StoreChurnOutcome& o = churn[b];
    std::printf(
        "store %-7s: ingest %.3f s (%.0f rows/s), churn %.3f s (%.0f ops/s), "
        "digest %016llx\n",
        IndexBackendKindName(b), o.ingest_wall,
        o.ingest_wall > 0 ? kStoreRows / o.ingest_wall : 0, o.churn_wall,
        o.churn_wall > 0 ? churn_ops / o.churn_wall : 0,
        static_cast<unsigned long long>(o.digest));
    if (o.churn_matches != base.churn_matches || o.digest != base.digest) {
      std::fprintf(stderr, "FAIL: backend %s diverged from sorted baseline\n",
                   IndexBackendKindName(b));
      diverged = true;
    }
  }
  std::printf("\n");

  // ------------------------------------------------------ deployment churn
  // A flat deployment preloaded to fig19-scale stores, then driven with the
  // same tight insert/query interleave through the full distributed path
  // (splitting, DAC queueing, replica scans, reply assembly).
  const size_t kNodes = 48;
  const size_t kPreloadPerNode = std::max<size_t>(500, 6000 * duty / 100);
  const double drive_sec = std::max(5.0, 60.0 * duty / 100.0);

  Schema schema = ChurnSchema();
  Rng rng(0x19190000);
  DeploymentOptions dopts;
  dopts.seed = 0x19f19f;
  dopts.heartbeat_interval = 0;  // focus the event budget on the data path
  auto net = MakeFlatDeployment(kNodes, dopts);

  IndexDef def;
  def.name = "churn";
  def.schema = schema;
  def.time_attr = 1;
  Status st = net->CreateIndexEverywhere(
      def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0);
  if (!st.ok()) {
    std::fprintf(stderr, "create index failed: %s\n", st.ToString().c_str());
    return 1;
  }
  net->sim().RunFor(FromSeconds(10));  // let the overlay settle

  // Preload through batch trains: every node ships 64-tuple batches on a
  // 0.5 s cadence until its share is in.
  uint64_t net_seq = 0;
  const size_t kBatch = 64;
  for (size_t n = 0; n < kNodes; ++n) {
    for (size_t done = 0; done < kPreloadPerNode; done += kBatch) {
      size_t count = std::min(kBatch, kPreloadPerNode - done);
      std::vector<Tuple> batch;
      batch.reserve(count);
      for (size_t k = 0; k < count; ++k) {
        Tuple t;
        t.point = RandomPoint(&rng);
        t.origin = static_cast<int>(n);
        t.seq = ++net_seq;
        batch.push_back(std::move(t));
      }
      net->sim().events().Schedule(
          FromSeconds(0.5 * static_cast<double>(done / kBatch)),
          [&net, n, batch]() mutable {
            (void)net->node(n).InsertBatch("churn", std::move(batch));
          });
    }
  }
  double preload_window = 0.5 * static_cast<double>(kPreloadPerNode / kBatch + 2);
  net->sim().RunFor(FromSeconds(preload_window + 30));

  // Drive: per sim second, every node inserts one tuple and 48 random
  // monitoring queries are issued from random origins.
  size_t queries_issued = 0, queries_done = 0, queries_complete = 0;
  for (double t = 0; t < drive_sec; t += 1.0) {
    for (size_t n = 0; n < kNodes; ++n) {
      Tuple tup;
      tup.point = RandomPoint(&rng);
      tup.origin = static_cast<int>(n);
      tup.seq = ++net_seq;
      net->sim().events().Schedule(FromSeconds(t + 0.001 * static_cast<double>(n)),
                                   [&net, n, tup] {
                                     (void)net->node(n).Insert("churn", tup);
                                   });
    }
    for (size_t q = 0; q < kNodes; ++q) {
      size_t from = rng.Uniform(kNodes);
      Rect rect = ChurnQuery(&rng);
      net->sim().events().Schedule(
          FromSeconds(t + 0.01 * static_cast<double>(q)),
          [&net, &queries_issued, &queries_done, &queries_complete, from, rect] {
            ++queries_issued;
            (void)net->node(from).Query("churn", rect,
                                        [&](const QueryResult& r) {
                                          ++queries_done;
                                          if (r.complete) ++queries_complete;
                                        });
          });
    }
  }

  auto& sm = net->sim().metrics();
  const uint64_t events_before = sm.counter("sim.events.processed").value();
  const auto net_t0 = std::chrono::steady_clock::now();
  net->sim().RunFor(FromSeconds(drive_sec + 30));  // workload + settle
  const double net_wall = Secs(net_t0);
  const uint64_t events =
      sm.counter("sim.events.processed").value() - events_before;
  const double net_qps = net_wall > 0 ? static_cast<double>(queries_done) / net_wall : 0;

  std::printf("deployment churn: %zu nodes, %zu preloaded tuples, %.0f s driven\n",
              kNodes, kNodes * kPreloadPerNode, drive_sec);
  std::printf("engine: %llu events in %.2f s wall = %.0f events/s\n",
              static_cast<unsigned long long>(events), net_wall,
              net_wall > 0 ? events / net_wall : 0);
  std::printf("queries: issued=%zu answered=%zu complete=%zu -> %.0f queries/s wall\n\n",
              queries_issued, queries_done, queries_complete, net_qps);
  PrintLatencyRowHist("query latency", sm.histogram("mind.query.latency_ms"));
  PrintLatencyRowHist("insert latency", sm.histogram("mind.insert.latency_ms"));

  // Bench-level results ride in the sim's own registry so the export carries
  // the full engine snapshot (storage.*, mind.*, sim.*) alongside them.
  sm.gauge("bench.fig19.store_churn_ops_per_sec").Set(store_ops_per_sec);
  sm.gauge("bench.fig19.store_churn_wall_seconds").Set(store_wall);
  sm.gauge("bench.fig19.store_rows").Set(static_cast<double>(kStoreRows));
  for (IndexBackendKind b : kBackends) {
    const StoreChurnOutcome& o = churn[b];
    const std::string prefix =
        std::string("bench.fig19.") + IndexBackendKindName(b) + ".";
    sm.gauge(prefix + "ingest_rows_per_sec")
        .Set(o.ingest_wall > 0 ? kStoreRows / o.ingest_wall : 0);
    sm.gauge(prefix + "ingest_wall_seconds").Set(o.ingest_wall);
    sm.gauge(prefix + "store_churn_ops_per_sec")
        .Set(o.churn_wall > 0 ? churn_ops / o.churn_wall : 0);
    sm.gauge(prefix + "store_churn_wall_seconds").Set(o.churn_wall);
  }
  sm.gauge("bench.fig19.net_wall_seconds").Set(net_wall);
  sm.gauge("bench.fig19.net_events_per_sec_wall")
      .Set(net_wall > 0 ? events / net_wall : 0);
  sm.gauge("bench.fig19.net_queries_per_sec_wall").Set(net_qps);
  sm.gauge("bench.fig19.queries_complete")
      .Set(static_cast<double>(queries_complete));

  telemetry::RunMeta meta;
  meta.bench = "fig19_churn";
  meta.seed = dopts.seed;
  meta.topology = "flat_synthetic";
  meta.nodes = static_cast<int>(kNodes);
  meta.extra["duty_percent"] = std::to_string(duty);
  meta.extra["drive_seconds"] = std::to_string(drive_sec);
  meta.extra["preload_per_node"] = std::to_string(kPreloadPerNode);
  meta.extra["store_rows"] = std::to_string(kStoreRows);
  meta.extra["backends"] = "sorted,bitmap,adaptive";
  meta.extra["net_backend"] = IndexBackendKindName(dopts.backend);
  ExportBench(sm, meta);
  return diverged ? 1 : 0;
}
