// Figure 20 (engine scaling, no paper counterpart): the Figure 18 1024-node
// mixed workload executed by the sharded parallel engine at worker thread
// counts {1, 2, 4, 8}, against the sequential engine running the same
// determinism discipline as the serial baseline.
//
// Two claims are checked, not just reported:
//   identity -- every configuration must produce the SAME deployment: the
//     MindNet state digest, the stored-tuple count, the sim-time insert/query
//     latency distributions and the query completion counts are asserted
//     bit-identical across all thread counts (exit 1 on any mismatch).
//   speedup  -- wall-clock time of the driven window, per configuration;
//     the export carries events/s and speedup-vs-serial per thread count.
//
// Duty cycle: MIND_BENCH_DUTY=<percent> (or argv[1]) scales the driven
// sim-time window, as in fig18. MIND_BENCH_THREADS="0,2" overrides the
// thread-count list (0 = sequential engine + discipline); the TSan CI job
// uses that to keep its instrumented run small. Results export to
// BENCH_fig20_parallel.json.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

Schema ScaleSchema() {
  return Schema({{"dst", 0, 0xFFFFFFFFull}, {"ts", 0, 86400 * 14}, {"v", 0, 1 << 20}});
}

int DutyPercent(int argc, char** argv) {
  int duty = 100;
  if (const char* env = std::getenv("MIND_BENCH_DUTY")) duty = std::atoi(env);
  if (argc > 1) duty = std::atoi(argv[1]);
  if (duty < 1) duty = 1;
  if (duty > 100) duty = 100;
  return duty;
}

// Default thread-count ladder, auto-dropping counts the hardware cannot
// actually run in parallel (more workers than cores measures oversubscription,
// not scaling). Dropped counts are reported in `skipped` and marked in the
// JSON export. An explicit MIND_BENCH_THREADS list is honored verbatim — the
// TSan job intentionally oversubscribes to shake out races.
std::vector<int> ThreadCounts(unsigned hw_cores, std::vector<int>* skipped) {
  const char* env = std::getenv("MIND_BENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    std::vector<int> counts;
    std::string s(env);
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      counts.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
    return counts;
  }
  std::vector<int> counts;
  for (int t : {0, 1, 2, 4, 8}) {
    if (t <= 1 || static_cast<unsigned>(t) <= hw_cores) {
      counts.push_back(t);
    } else {
      skipped->push_back(t);
    }
  }
  return counts;
}

// MIND_BENCH_EXECUTOR=static|dynamic|stealing selects the window-executor
// policy (digests are policy-independent; this sweeps load-balance behavior).
ExecutorPolicy ExecutorPolicyFromEnv(std::string* name_out) {
  const char* env = std::getenv("MIND_BENCH_EXECUTOR");
  std::string name = env != nullptr && *env != '\0' ? env : "dynamic";
  ExecutorPolicy policy = ExecutorPolicy::kDynamic;
  if (name == "static") {
    policy = ExecutorPolicy::kStatic;
  } else if (name == "stealing") {
    policy = ExecutorPolicy::kStealing;
  } else if (name != "dynamic") {
    std::fprintf(stderr, "unknown MIND_BENCH_EXECUTOR '%s' (want "
                 "static|dynamic|stealing)\n", name.c_str());
    std::abort();
  }
  *name_out = name;
  return policy;
}

struct ConfigResult {
  int threads = 0;
  double wall_sec = 0;
  uint64_t events = 0;
  uint64_t digest = 0;
  size_t stored = 0;
  uint64_t queries = 0;
  uint64_t query_timeouts = 0;
  // Sim-time latency snapshots (identical across engines by construction).
  uint64_t insert_count = 0;
  double insert_sum_ms = 0, insert_p50_ms = 0, insert_p99_ms = 0;
  double query_p50_ms = 0, query_p99_ms = 0;
  // Engine statistics (zero for the sequential configuration).
  EngineStats engine;
  bool has_engine = false;
};

// Max-over-mean of per-shard fired-event counts: 1.0 = perfectly balanced,
// S = all events on one shard.
double ShardImbalance(const EngineStats& s) {
  if (s.shard_events.empty() || s.events == 0) return 0;
  uint64_t peak = 0;
  for (uint64_t e : s.shard_events) peak = std::max(peak, e);
  double mean =
      static_cast<double>(s.events) / static_cast<double>(s.shard_events.size());
  return mean > 0 ? static_cast<double>(peak) / mean : 0;
}

// One full fig18-shaped run: 1024 flat nodes, mixed insert/batch/query
// workload over `drive_sec` of sim time, then settle. `threads == 0` runs the
// sequential engine under the determinism discipline.
ConfigResult RunConfig(int threads, double drive_sec, ExecutorPolicy policy) {
  const size_t kNodes = 1024;
  MindNetOptions mopts;
  mopts.sim.seed = 0x18181818;
  mopts.sim.threads = threads;
  mopts.sim.executor_policy = policy;
  mopts.sim.deterministic_discipline = threads == 0;
  mopts.overlay.heartbeat_interval = 0;
  mopts.mind.replication = 1;
  MindNet net(kNodes, mopts);
  if (!net.Build().ok()) {
    std::fprintf(stderr, "overlay build failed (threads=%d)\n", threads);
    std::abort();
  }

  IndexDef def;
  def.name = "scale";
  def.schema = ScaleSchema();
  def.time_attr = 1;
  Status st = net.CreateIndexEverywhere(
      def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0);
  if (!st.ok()) {
    std::fprintf(stderr, "create index failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  net.sim().RunFor(FromSeconds(10));

  // The fig18 workload, scheduled on each acting node's own queue. Query
  // completions are counted by the (sharded) registry counters rather than a
  // bench-side callback, which would race under the parallel engine.
  Rng rng(0x18f1);
  auto pts = [&] {
    std::vector<Point> v;
    v.reserve(1 << 14);
    for (size_t i = 0; i < (1u << 14); ++i) {
      v.push_back({rng.Uniform(0x100000000ull), rng.Uniform(86400 * 14),
                   rng.Uniform(1 << 20)});
    }
    return v;
  }();
  uint64_t seq = 0;
  size_t pt = 0;
  const SimTime t0 = net.sim().now();
  for (double t = 0; t < drive_sec; t += 1.0) {
    SimTime at = t0 + FromSeconds(t);
    for (size_t n = 0; n < kNodes; n += 4) {
      Tuple tup;
      tup.point = pts[pt++ % pts.size()];
      tup.origin = static_cast<int>(n);
      tup.seq = ++seq;
      net.sim().ScheduleOn(static_cast<NodeId>(n), at, [&net, n, tup] {
        (void)net.node(n).Insert("scale", tup);
      });
    }
    if (static_cast<long>(t) % 4 == 0) {
      for (size_t n = 1; n < kNodes; n += 32) {
        std::vector<Tuple> batch;
        batch.reserve(16);
        for (int k = 0; k < 16; ++k) {
          Tuple tup;
          tup.point = pts[pt++ % pts.size()];
          tup.origin = static_cast<int>(n);
          tup.seq = ++seq;
          batch.push_back(std::move(tup));
        }
        net.sim().ScheduleOn(static_cast<NodeId>(n), at,
                             [&net, n, batch]() mutable {
                               (void)net.node(n).InsertBatch("scale",
                                                             std::move(batch));
                             });
      }
    }
    for (int q = 0; q < 16; ++q) {
      size_t from = rng.Uniform(kNodes);
      Rect rect = RandomMonitoringQuery(&rng, def, 86400);
      net.sim().ScheduleOn(static_cast<NodeId>(from), at, [&net, from, rect] {
        (void)net.node(from).Query("scale", rect, [](const QueryResult&) {});
      });
    }
  }

  auto& sm = net.sim().metrics();
  const uint64_t events_before = sm.counter("sim.events.processed").value();
  const auto wall_start = std::chrono::steady_clock::now();
  net.sim().RunFor(FromSeconds(drive_sec + 60));  // workload + settle
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ConfigResult r;
  r.threads = threads;
  r.wall_sec = wall_sec;
  r.events = sm.counter("sim.events.processed").value() - events_before;
  r.digest = net.StateDigest();
  r.stored = net.stored().size();
  r.queries = sm.counter("mind.query.count").value();
  r.query_timeouts = sm.counter("mind.query.timeouts").value();
  const auto& ins = sm.histogram("mind.insert.latency_ms");
  r.insert_count = ins.count();
  r.insert_sum_ms = ins.sum();
  r.insert_p50_ms = ins.Percentile(50);
  r.insert_p99_ms = ins.Percentile(99);
  const auto& qh = sm.histogram("mind.query.latency_ms");
  r.query_p50_ms = qh.Percentile(50);
  r.query_p99_ms = qh.Percentile(99);
  if (const EngineStats* es = net.sim().engine_stats()) {
    r.engine = *es;
    r.has_engine = true;
  }
  return r;
}

// Identity across configurations: everything the simulation computed in
// virtual time must be independent of the engine executing it. The histogram
// `sum` alone is compared with a relative tolerance: the sample multiset is
// identical, but sharded histograms reduce it as per-shard partial sums, and
// double addition is not associative.
bool SameWorld(const ConfigResult& a, const ConfigResult& b) {
  auto near = [](double x, double y) {
    double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    return std::fabs(x - y) <= 1e-9 * scale;
  };
  return a.digest == b.digest && a.stored == b.stored &&
         a.queries == b.queries && a.query_timeouts == b.query_timeouts &&
         a.insert_count == b.insert_count && near(a.insert_sum_ms, b.insert_sum_ms) &&
         a.insert_p50_ms == b.insert_p50_ms && a.insert_p99_ms == b.insert_p99_ms &&
         a.query_p50_ms == b.query_p50_ms && a.query_p99_ms == b.query_p99_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const int duty = DutyPercent(argc, argv);
  const double drive_sec = 120.0 * duty / 100.0;

  // Wall-clock speedup is bounded by min(threads, cores): identity claims
  // hold on any machine, but scaling numbers from a core-starved container
  // measure engine overhead, not parallelism.
  const unsigned hw_cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> skipped;
  const std::vector<int> thread_counts = ThreadCounts(hw_cores, &skipped);
  std::string executor_name;
  const ExecutorPolicy policy = ExecutorPolicyFromEnv(&executor_name);

  std::printf("=== Figure 20: parallel engine scaling (1024 nodes, duty %d%%, "
              "%.0f s driven, executor=%s) ===\n\n",
              duty, drive_sec, executor_name.c_str());
  std::printf("hardware: %u core%s available\n", hw_cores,
              hw_cores == 1 ? "" : "s");
  if (hw_cores < 2) {
    std::printf("NOTE: single-core host -- speedup-vs-serial below measures "
                "engine overhead only;\n      run on a multi-core machine for "
                "scaling numbers.\n");
  }
  for (int t : skipped) {
    std::printf("skipping threads=%d (only %u core%s); marked in export\n", t,
                hw_cores, hw_cores == 1 ? "" : "s");
  }
  std::printf("\n");

  std::vector<ConfigResult> results;
  for (int threads : thread_counts) {
    ConfigResult r = RunConfig(threads, drive_sec, policy);
    std::printf("%-14s wall=%7.2fs  events=%10llu (%9.0f/s)  digest=%016llx\n",
                threads == 0 ? "serial+disc" :
                    ("threads=" + std::to_string(threads)).c_str(),
                r.wall_sec, static_cast<unsigned long long>(r.events),
                r.wall_sec > 0 ? r.events / r.wall_sec : 0,
                static_cast<unsigned long long>(r.digest));
    if (r.has_engine) {
      std::printf(
          "               windows=%llu solo=%llu widened=%llu maxmult=%llu "
          "exchanged=%llu imbalance=%.2f barrier_wait=%.1fms\n",
          static_cast<unsigned long long>(r.engine.windows),
          static_cast<unsigned long long>(r.engine.solo_windows),
          static_cast<unsigned long long>(r.engine.widened_windows),
          static_cast<unsigned long long>(r.engine.max_multiplier),
          static_cast<unsigned long long>(r.engine.exchanged),
          ShardImbalance(r.engine),
          r.engine.barrier_wait_ns_total / 1e6);
    }
    results.push_back(r);
  }
  if (results.empty()) {
    std::fprintf(stderr, "no thread counts to run\n");
    return 1;
  }

  bool identical = true;
  for (const ConfigResult& r : results) {
    if (!SameWorld(results[0], r)) {
      identical = false;
      std::fprintf(stderr,
                   "IDENTITY VIOLATION: threads=%d diverges from threads=%d "
                   "(digest %016llx vs %016llx, stored %zu vs %zu)\n",
                   r.threads, results[0].threads,
                   static_cast<unsigned long long>(r.digest),
                   static_cast<unsigned long long>(results[0].digest),
                   r.stored, results[0].stored);
    }
  }
  const ConfigResult& head = results[0];
  std::printf("\nidentity: %s (stored=%zu queries=%llu timeouts=%llu "
              "insert p50=%.3fms p99=%.3fms)\n",
              identical ? "OK -- all configurations bit-identical" : "FAILED",
              head.stored, static_cast<unsigned long long>(head.queries),
              static_cast<unsigned long long>(head.query_timeouts),
              head.insert_p50_ms, head.insert_p99_ms);

  double serial_wall = 0;
  for (const ConfigResult& r : results) {
    if (r.threads == 0) serial_wall = r.wall_sec;
  }
  telemetry::MetricsRegistry reg;
  int max_threads = 0;
  double speedup_t2 = -1;
  for (const ConfigResult& r : results) {
    std::string sfx = ".t" + std::to_string(r.threads);
    reg.gauge("bench.fig20.wall_seconds" + sfx).Set(r.wall_sec);
    reg.gauge("bench.fig20.events_per_sec" + sfx)
        .Set(r.wall_sec > 0 ? r.events / r.wall_sec : 0);
    if (serial_wall > 0 && r.threads > 0 && r.wall_sec > 0) {
      double speedup = serial_wall / r.wall_sec;
      reg.gauge("bench.fig20.speedup_vs_serial" + sfx).Set(speedup);
      std::printf("threads=%d speedup vs serial: %.2fx\n", r.threads, speedup);
      if (r.threads == 2) speedup_t2 = speedup;
    }
    if (r.has_engine) {
      const EngineStats& es = r.engine;
      reg.gauge("bench.fig20.windows" + sfx).Set(es.windows);
      reg.gauge("bench.fig20.solo_windows" + sfx).Set(es.solo_windows);
      reg.gauge("bench.fig20.widened_windows" + sfx).Set(es.widened_windows);
      reg.gauge("bench.fig20.max_cap_multiplier" + sfx).Set(es.max_multiplier);
      reg.gauge("bench.fig20.exchanged_msgs" + sfx).Set(es.exchanged);
      reg.gauge("bench.fig20.shard_imbalance" + sfx).Set(ShardImbalance(es));
      reg.gauge("bench.fig20.barrier_wait_ms_total" + sfx)
          .Set(es.barrier_wait_ns_total / 1e6);
      // Sparse log2 histograms: one gauge per non-empty bucket. Bucket b
      // counts windows with floor(log2(v)) == b - 1 (bucket 0: v == 0).
      for (size_t b = 0; b < es.exchange_size_log2.size(); ++b) {
        if (es.exchange_size_log2[b] == 0) continue;
        reg.gauge("bench.fig20.exchange_size_log2.b" + std::to_string(b) + sfx)
            .Set(es.exchange_size_log2[b]);
      }
      for (size_t b = 0; b < es.barrier_wait_log2_ns.size(); ++b) {
        if (es.barrier_wait_log2_ns[b] == 0) continue;
        reg.gauge("bench.fig20.barrier_wait_log2_ns.b" + std::to_string(b) +
                  sfx)
            .Set(es.barrier_wait_log2_ns[b]);
      }
    }
    max_threads = std::max(max_threads, r.threads);
  }
  reg.gauge("bench.fig20.insert_p50_ms").Set(head.insert_p50_ms);
  reg.gauge("bench.fig20.insert_p99_ms").Set(head.insert_p99_ms);
  reg.gauge("bench.fig20.query_p50_ms").Set(head.query_p50_ms);
  reg.gauge("bench.fig20.query_p99_ms").Set(head.query_p99_ms);
  reg.gauge("bench.fig20.identity_ok").Set(identical ? 1 : 0);

  // Scaling-gate arming state, exported so CI can surface a skip as a skip
  // (a single-core runner cannot measure parallelism; silently "passing"
  // there would hide a dead gate forever). The gate also stays dark when the
  // thread list has no threads=2 configuration to compare.
  const bool gate_armed = hw_cores >= 2 && speedup_t2 >= 0;

  telemetry::RunMeta meta;
  meta.bench = "fig20_parallel";
  meta.seed = 0x18181818;
  meta.topology = "flat_synthetic";
  meta.nodes = 1024;
  meta.threads = max_threads;
  meta.extra["duty_percent"] = std::to_string(duty);
  meta.extra["drive_seconds"] = std::to_string(drive_sec);
  meta.extra["hardware_concurrency"] = std::to_string(hw_cores);
  meta.extra["executor_policy"] = executor_name;
  {
    std::string list;
    for (int t : thread_counts) {
      if (!list.empty()) list += ",";
      list += std::to_string(t);
    }
    meta.extra["thread_counts"] = list;
  }
  {
    std::string list;
    for (int t : skipped) {
      if (!list.empty()) list += ",";
      list += std::to_string(t);
    }
    meta.extra["skipped_thread_counts"] = list;  // hardware can't run these
  }
  meta.extra["scaling_gate"] = gate_armed ? "armed" : "skipped";
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(head.digest));
  meta.extra["state_digest"] = digest_hex;
  ExportBench(reg, meta);

  if (!identical) return 1;
  // Scaling gate: with at least two real cores, two workers must beat the
  // serial engine. The gate is tri-state -- PASS, FAIL, or an explicit
  // SKIPPED line (never a silent pass): core-starved hosts can only measure
  // engine overhead, and a thread list without threads=2 has nothing to
  // compare. CI reads meta.extra.scaling_gate from the export so a skip
  // shows up in the job summary and a multi-core runner arms the gate
  // automatically.
  if (!gate_armed) {
    std::printf("scaling gate: SKIPPED (%s); a multi-core runner arms it "
                "automatically\n",
                hw_cores < 2 ? "single-core host"
                             : "no threads=2 configuration in this run");
    return 0;
  }
  if (speedup_t2 <= 1.0) {
    std::fprintf(stderr,
                 "SCALING REGRESSION: threads=2 speedup %.2fx <= 1.0 on a "
                 "%u-core host\n",
                 speedup_t2, hw_cores);
    return 1;
  }
  std::printf("scaling gate: PASS (threads=2 speedup %.2fx on a %u-core "
              "host)\n",
              speedup_t2, hw_cores);
  return 0;
}
