// "Figure 21" (live front-end, no paper counterpart): sustained combined
// insert + query load through src/frontend — the streaming ingest pipeline
// replaying a synthetic trace into the three paper indices while a
// concurrent query service drives on-demand, burst, scan and standing range
// queries through admission control.
//
// The workload is deliberately overloaded so every admission outcome is
// exercised: client bursts exceed the per-client quota, a steady on-demand
// stream saturates the in-flight gate and wait queue, and periodic
// whole-domain scans trip the selectivity cost gate once the observed-tuple
// histograms carry enough mass. The run fails (exit 1) if admission never
// engaged — nonzero admits AND rejects are this bench's contract.
//
// Headline numbers (all sim-time): sustained inserts/s into the core,
// completed queries/s, and p50/p99 service latency under load, exported to
// BENCH_fig21_frontend.json as `bench.fig21.*` gauges alongside the full
// engine snapshot (frontend.*, mind.*, storage.*).
//
// Duty cycle: MIND_BENCH_DUTY=<percent> (or argv[1]) scales the replayed
// window down for CI smoke runs; before/after comparisons must match duty.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/common.h"
#include "frontend/frontend.h"

using namespace mind;
using namespace mind::bench;
using mind::frontend::Frontend;
using mind::frontend::FrontendOptions;
using mind::frontend::GeneratorTraceSource;
using mind::frontend::QueryService;

namespace {

int DutyPercent(int argc, char** argv) {
  int duty = 100;
  if (const char* env = std::getenv("MIND_BENCH_DUTY")) duty = std::atoi(env);
  if (argc > 1) duty = std::atoi(argv[1]);
  if (duty < 1) duty = 1;
  if (duty > 100) duty = 100;
  return duty;
}

/// Whole-domain rect (the expensive scan the cost gate should refuse).
Rect FullScan(const IndexDef& def) {
  std::vector<Interval> ivs;
  for (int d = 0; d < def.schema.dims(); ++d) {
    ivs.push_back({def.schema.attr(d).min, def.schema.attr(d).max});
  }
  return Rect(std::move(ivs));
}

}  // namespace

int main(int argc, char** argv) {
  const int duty = DutyPercent(argc, argv);
  const double t0_sec = 39600;  // 11:00, the paper's busy hour
  const double minutes = std::max(2.0, 10.0 * duty / 100.0);
  const double t1_sec = t0_sec + minutes * 60.0;

  Topology topo = Topology::AbileneGeant();
  DeploymentOptions dopts;
  dopts.seed = 0x21f0;
  auto net = MakeDeployment(topo, dopts);
  CreatePaperIndices(*net);

  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 0x21f1;
  FlowGenerator gen(topo, gopts);
  auto source = std::make_unique<GeneratorTraceSource>(
      &gen, /*day=*/0, t0_sec, t1_sec);

  FrontendOptions fopts;
  fopts.ingest.batcher.batch_max_tuples = 32;
  fopts.ingest.batcher.flush_deadline = FromMillis(500);
  fopts.ingest.batcher.queue_max_tuples = 512;
  fopts.query.max_inflight = 16;
  fopts.query.max_queue = 24;
  fopts.query.per_client_quota = 6;
  fopts.query.max_cost_tuples = 15;  // scans get refused once mass builds
  fopts.query.default_deadline = FromSeconds(20);
  Frontend fe(net.get(), std::move(source), fopts);

  // Clients: one per Abilene node (the US half of the deployment).
  const size_t kClients = 11;
  std::vector<frontend::ClientId> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.push_back(fe.queries().RegisterClient(static_cast<NodeId>(c)));
  }

  const IndexDef defs[3] = {MakeIndex1({}), MakeIndex2({}), MakeIndex3({})};
  const char* names[3] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  Rng qrng(0x21f2);
  uint64_t delivered_tuples = 0;
  auto sink = [&delivered_tuples](const frontend::Delivery& d) {
    delivered_tuples += d.tuples.size();
  };

  // Standing queries: a scan-for-anomalies per index, re-run every 15 s.
  for (int i = 0; i < 3; ++i) {
    Rect rect = RandomMonitoringQuery(&qrng, defs[i], t1_sec);
    auto sid = fe.queries().AddStanding(clients[static_cast<size_t>(i)],
                                        names[i], rect, FromSeconds(15), sink);
    if (!sid.ok()) {
      std::fprintf(stderr, "standing failed: %s\n",
                   sid.status().ToString().c_str());
      return 1;
    }
  }

  // On-demand load, pre-scheduled across the replay window:
  //  * steady stream: every client, one monitoring query per second
  //    (staggered) — saturates the in-flight gate and wait queue;
  //  * bursts: every 20 s one client fires 16 back-to-back — quota rejects;
  //  * volleys: offset by 10 s, every client fires its full quota at once —
  //    the combined wave overruns in-flight + queue, overload rejects;
  //  * scans: every 15 s a whole-domain query — cost rejects once the
  //    selectivity histograms have mass.
  const double drive_sec = minutes * 60.0;
  for (double t = 1.0; t < drive_sec; t += 1.0) {
    const uint64_t tick = static_cast<uint64_t>(t);
    for (size_t c = 0; c < kClients; ++c) {
      const int which = static_cast<int>((tick + c) % 3);
      Rect rect =
          RandomMonitoringQuery(&qrng, defs[which],
                                static_cast<uint64_t>(t0_sec + t));
      net->sim().events().Schedule(
          FromSeconds(t + 0.037 * static_cast<double>(c)),
          [&fe, &clients, c, which, rect, &names, &sink] {
            (void)fe.queries().Submit(clients[c], names[which], rect, sink);
          });
    }
    if (tick % 20 == 0) {
      const size_t c = (tick / 20) % kClients;
      Rect rect = RandomMonitoringQuery(&qrng, defs[0],
                                        static_cast<uint64_t>(t0_sec + t));
      net->sim().events().Schedule(FromSeconds(t + 0.5), [&fe, &clients, c,
                                                          rect, &names,
                                                          &sink] {
        for (int burst = 0; burst < 16; ++burst) {
          (void)fe.queries().Submit(clients[c], names[0], rect, sink);
        }
      });
    }
    if (tick % 20 == 10) {
      for (size_t c = 0; c < kClients; ++c) {
        Rect rect = RandomMonitoringQuery(&qrng, defs[1],
                                          static_cast<uint64_t>(t0_sec + t));
        net->sim().events().Schedule(
            FromSeconds(t + 0.6 + 0.001 * static_cast<double>(c)),
            [&fe, &fopts, &clients, c, rect, &names, &sink] {
              for (size_t v = 0; v < fopts.query.per_client_quota; ++v) {
                (void)fe.queries().Submit(clients[c], names[1], rect, sink);
              }
            });
      }
    }
    if (tick % 15 == 0) {
      const int which = static_cast<int>((tick / 15) % 3);
      Rect scan = FullScan(defs[which]);
      net->sim().events().Schedule(
          FromSeconds(t + 0.25),
          [&fe, &clients, which, scan, &names, &sink] {
            (void)fe.queries().Submit(clients[(which + 5) % kClients],
                                      names[which], scan, sink);
          });
    }
  }

  fe.Start();
  net->sim().RunFor(FromSeconds(drive_sec));
  // Drain: finish the replay tail, in-flight queries and deliveries.
  for (int i = 0; i < 40 && !fe.ingest().done(); ++i) {
    net->sim().RunFor(FromSeconds(5));
  }
  net->sim().RunFor(FromSeconds(45));

  auto& sm = net->sim().metrics();
  const QueryService& qs = fe.queries();
  const auto& ingest = fe.ingest();
  const uint64_t committed = ingest.tuples_out() - ingest.tuples_dropped();
  const double inserts_per_sec = static_cast<double>(committed) / drive_sec;
  const double queries_per_sec =
      static_cast<double>(qs.completed_total()) / drive_sec;
  const auto& lat = sm.histogram("frontend.query.latency_ms");

  std::printf("=== Figure 21: live front-end under load (duty %d%%) ===\n\n",
              duty);
  std::printf("replay: %.0f s of trace, %llu raw records -> %llu tuples "
              "(%llu dropped, %llu defer rounds)\n",
              drive_sec,
              static_cast<unsigned long long>(ingest.records_in()),
              static_cast<unsigned long long>(ingest.tuples_out()),
              static_cast<unsigned long long>(ingest.tuples_dropped()),
              static_cast<unsigned long long>(ingest.defer_rounds()));
  std::printf("ingest: %llu InsertBatch trains, %.0f sustained inserts/s (sim)\n",
              static_cast<unsigned long long>(ingest.batches_sent()),
              inserts_per_sec);
  std::printf("admission: admitted=%llu rejected=%llu "
              "(quota=%llu cost=%llu overload=%llu)\n",
              static_cast<unsigned long long>(qs.admitted_total()),
              static_cast<unsigned long long>(qs.rejected_total()),
              static_cast<unsigned long long>(
                  sm.counter("frontend.query.rejected_quota").value()),
              static_cast<unsigned long long>(
                  sm.counter("frontend.query.rejected_cost").value()),
              static_cast<unsigned long long>(
                  sm.counter("frontend.query.rejected_overload").value()));
  std::printf("queries: completed=%llu (%.1f/s sim), deadline cancels=%llu, "
              "%llu tuples streamed\n\n",
              static_cast<unsigned long long>(qs.completed_total()),
              queries_per_sec,
              static_cast<unsigned long long>(qs.deadline_cancels()),
              static_cast<unsigned long long>(delivered_tuples));
  PrintLatencyRowHist("service latency", lat);
  PrintLatencyRowHist("admission wait",
                      sm.histogram("frontend.query.wait_ms"));

  sm.gauge("bench.fig21.inserts_per_sec_sim").Set(inserts_per_sec);
  sm.gauge("bench.fig21.queries_per_sec_sim").Set(queries_per_sec);
  sm.gauge("bench.fig21.admitted").Set(static_cast<double>(qs.admitted_total()));
  sm.gauge("bench.fig21.rejected").Set(static_cast<double>(qs.rejected_total()));
  sm.gauge("bench.fig21.deadline_cancels")
      .Set(static_cast<double>(qs.deadline_cancels()));
  sm.gauge("bench.fig21.query_p50_ms").Set(lat.Percentile(50));
  sm.gauge("bench.fig21.query_p99_ms").Set(lat.Percentile(99));
  sm.gauge("bench.fig21.ingest_dropped")
      .Set(static_cast<double>(ingest.tuples_dropped()));
  sm.gauge("bench.fig21.delivered_tuples")
      .Set(static_cast<double>(delivered_tuples));

  telemetry::RunMeta meta;
  meta.bench = "fig21_frontend";
  meta.seed = dopts.seed;
  meta.topology = "abilene_geant";
  meta.nodes = static_cast<int>(topo.size());
  meta.extra["duty_percent"] = std::to_string(duty);
  meta.extra["replay_seconds"] = std::to_string(drive_sec);
  meta.extra["clients"] = std::to_string(kClients);
  ExportBench(sm, meta);

  if (qs.admitted_total() == 0 || qs.rejected_total() == 0) {
    std::fprintf(stderr,
                 "FAIL: admission control never engaged (admitted=%llu "
                 "rejected=%llu)\n",
                 static_cast<unsigned long long>(qs.admitted_total()),
                 static_cast<unsigned long long>(qs.rejected_total()));
    return 1;
  }
  return 0;
}
