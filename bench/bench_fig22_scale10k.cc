// Figure 22 (order-of-magnitude scale, no paper counterpart): fleets of
// {1k, 4k, 10k} nodes driven across >= 7 simulated days each, with a daily
// IndexVersions freeze + compaction (a new cut version installed every
// simulated midnight, the paper's §3.7 daily rebalance). The paper's
// wide-area setting implies thousands of monitors running for days; this
// bench makes the memory axis first-class:
//
//   * RSS-per-node, sampled at every simulated midnight (/proc/self/status
//     VmRSS on Linux; 0 elsewhere) — the bounded-memory claim is that the
//     per-node footprint is flat in simulated time. The bench exits 1 if
//     RSS-per-node grows more than 10% from day 1 to day N for any fleet.
//   * Pool high-water marks (memory.pool.*): message/event traffic runs
//     through the arena/pool layer, so peak pool bytes bound the churn
//     footprint and oversize_allocs counts every allocation that escaped
//     the pools.
//   * events/s wall throughput per fleet — the events/s-degrades-sublinearly
//     axis of ROADMAP item 3.
//
// Duty cycle: MIND_BENCH_DUTY=<percent> (or argv[1]) scales the per-day
// driven window (default 60 s of active traffic per day); the day *count*
// never scales down, so even CI smoke runs cross 7 simulated midnights.
// Results export to BENCH_fig22_scale10k.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "telemetry/pool_gauges.h"
#include "util/arena.h"

using namespace mind;
using namespace mind::bench;

namespace {

Schema ScaleSchema() {
  return Schema(
      {{"dst", 0, 0xFFFFFFFFull}, {"ts", 0, 86400 * 14}, {"v", 0, 1 << 20}});
}

int DutyPercent(int argc, char** argv) {
  int duty = 100;
  if (const char* env = std::getenv("MIND_BENCH_DUTY")) duty = std::atoi(env);
  if (argc > 1) duty = std::atoi(argv[1]);
  if (duty < 1) duty = 1;
  if (duty > 100) duty = 100;
  return duty;
}

/// Resident set size in kB from /proc/self/status; 0 where unavailable.
double RssKb() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  double kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atof(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

struct FleetResult {
  size_t nodes = 0;
  std::vector<double> day_rss_per_node_kb;  // sampled at each midnight
  double events_per_sec_wall = 0;
  double growth_pct = 0;  // day 1 -> day N RSS-per-node growth
};

}  // namespace

int main(int argc, char** argv) {
  const int duty = DutyPercent(argc, argv);
  const double drive_sec_per_day = 60.0 * duty / 100.0;
  const int days = 7;
  const std::vector<size_t> fleets = {1000, 4000, 10000};

  telemetry::MetricsRegistry registry;
  std::vector<FleetResult> results;
  bool gate_failed = false;

  std::printf(
      "=== Figure 22: bounded-memory scale (fleets 1k/4k/10k x %d days, "
      "duty %d%%, %.0f s driven/day) ===\n\n",
      days, duty, drive_sec_per_day);

  for (size_t fleet : fleets) {
    DeploymentOptions dopts;
    dopts.seed = 0x22222222 + fleet;
    dopts.heartbeat_interval = 0;  // event budget goes to the data path
    dopts.join_stagger = FromMillis(100);
    dopts.build_deadline = FromSeconds(4 * 3600);
    auto net = MakeFlatDeployment(fleet, dopts);

    IndexDef def;
    def.name = "scale";
    def.schema = ScaleSchema();
    def.time_attr = 1;
    Status st = net->CreateIndexEverywhere(
        def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0);
    if (!st.ok()) {
      std::fprintf(stderr, "create index failed: %s\n", st.ToString().c_str());
      return 1;
    }
    net->sim().RunFor(FromSeconds(10));

    FleetResult res;
    res.nodes = fleet;
    auto& sm = net->sim().metrics();
    const uint64_t events_before = sm.counter("sim.events.processed").value();
    const auto wall_start = std::chrono::steady_clock::now();

    Rng rng(0x22f1 + fleet);
    // Per-day scratch: raw attribute triples live in an epoch-reclaimed
    // arena, reset at every midnight — after day 1's warm-up, a day of
    // driving costs zero allocator traffic for this scratch.
    Arena scratch;
    uint64_t seq = 0;
    size_t queries_done = 0;
    const SimTime day_zero = net->sim().now();
    for (int day = 0; day < days; ++day) {
      scratch.Reset();
      // Active window opens at 01:00 so it clears the previous midnight's
      // freeze + settle no matter how small the duty window is.
      const SimTime day_start = day_zero + FromSeconds(86400.0 * day + 3600);
      // Active window: fleet/8 origins insert one tuple per second; 4
      // monitoring queries per second probe the read path.
      const size_t n_pts =
          static_cast<size_t>(drive_sec_per_day) * (fleet / 8) + 1;
      auto* pts = static_cast<uint64_t*>(
          scratch.Allocate(n_pts * 3 * sizeof(uint64_t)));
      for (size_t i = 0; i < n_pts * 3; i += 3) {
        pts[i] = rng.Uniform(0x100000000ull);
        pts[i + 1] = static_cast<uint64_t>(86400.0 * day +
                                           rng.Uniform(86400));
        if (pts[i + 1] >= 86400ull * 14) pts[i + 1] = 86400ull * 14 - 1;
        pts[i + 2] = rng.Uniform(1 << 20);
      }
      size_t pt = 0;
      for (double t = 0; t < drive_sec_per_day; t += 1.0) {
        const SimTime when = day_start + FromSeconds(t);
        for (size_t n = 0; n < fleet; n += 8) {
          const size_t p = (pt++ % n_pts) * 3;
          Tuple tup;
          tup.point = {pts[p], pts[p + 1], pts[p + 2]};
          tup.origin = static_cast<int>(n);
          tup.seq = ++seq;
          net->sim().events().ScheduleAt(when, [&net, n, tup] {
            (void)net->node(n).Insert("scale", tup);
          });
        }
        for (int q = 0; q < 4; ++q) {
          const size_t from = rng.Uniform(fleet);
          Rect rect = RandomMonitoringQuery(
              &rng, def, static_cast<uint64_t>(86400.0 * day + t + 300));
          net->sim().events().ScheduleAt(
              when, [&net, &queries_done, from, rect] {
                (void)net->node(from).Query(
                    "scale", rect,
                    [&queries_done](const QueryResult&) { ++queries_done; });
              });
        }
      }
      // Drain the day's traffic, then coast to midnight (no pending events,
      // so the clock jump is O(1)).
      net->sim().RunFor(FromSeconds(drive_sec_per_day + 120));
      net->sim().RunUntil(day_zero + FromSeconds(86400.0 * (day + 1)));
      // Daily freeze + compaction: installing the next cut version closes
      // the day's store generation everywhere (§3.7 daily rebalance).
      st = net->InstallCutsEverywhere(
          "scale", static_cast<VersionId>(day + 2),
          std::make_shared<CutTree>(CutTree::Even(def.schema)),
          net->sim().now() + FromSeconds(1));
      if (!st.ok()) {
        std::fprintf(stderr, "install cuts failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      net->sim().RunFor(FromSeconds(30));

      // The measurement hooks (per-commit StoredInfo, per-query visit sets)
      // are bench instrumentation, not node state; drop them daily so the
      // RSS gate measures the deployment, not the measuring apparatus.
      net->ClearStored();
      net->ClearVisits();

      const double rss_per_node = RssKb() / static_cast<double>(fleet);
      res.day_rss_per_node_kb.push_back(rss_per_node);
      registry
          .gauge("bench.fig22.rss_per_node_kb.n" + std::to_string(fleet) +
                 ".day" + std::to_string(day + 1))
          .Set(rss_per_node);
      std::printf("fleet %5zu  day %d  rss/node %8.2f kB  queries done %zu\n",
                  fleet, day + 1, rss_per_node, queries_done);
    }

    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const uint64_t events =
        sm.counter("sim.events.processed").value() - events_before;
    res.events_per_sec_wall = wall_sec > 0 ? events / wall_sec : 0;
    res.growth_pct =
        res.day_rss_per_node_kb.front() > 0
            ? 100.0 * (res.day_rss_per_node_kb.back() -
                       res.day_rss_per_node_kb.front()) /
                  res.day_rss_per_node_kb.front()
            : 0;
    registry.gauge("bench.fig22.events_per_sec_wall.n" + std::to_string(fleet))
        .Set(res.events_per_sec_wall);
    registry.gauge("bench.fig22.rss_growth_pct.n" + std::to_string(fleet))
        .Set(res.growth_pct);
    std::printf(
        "fleet %5zu  %.0f events/s wall  rss/node day1 %.2f kB -> day%d "
        "%.2f kB (%+.2f%%)\n\n",
        fleet, res.events_per_sec_wall, res.day_rss_per_node_kb.front(), days,
        res.day_rss_per_node_kb.back(), res.growth_pct);
    if (res.growth_pct > 10.0) gate_failed = true;
    results.push_back(res);
  }

  // Pool high-water marks: how much of the churn ran inside the pools. A
  // non-zero oversize count here means some message/event allocation escaped
  // the size classes — the lint keeps new ones out, this reports the truth.
  telemetry::PublishPoolGauges(registry);
  const pool::Stats pstats = pool::GatherStats();
  std::printf(
      "pools: peak %.1f MB live, %.1f MB slabs, %llu allocs / %llu frees, "
      "%llu oversize\n",
      pstats.peak_bytes / 1048576.0, pstats.slab_bytes / 1048576.0,
      static_cast<unsigned long long>(pstats.allocs),
      static_cast<unsigned long long>(pstats.frees),
      static_cast<unsigned long long>(pstats.oversize_allocs));

  telemetry::RunMeta meta;
  meta.bench = "fig22_scale10k";
  meta.seed = 0x22222222;
  meta.topology = "flat_synthetic";
  meta.nodes = static_cast<int>(fleets.back());
  meta.extra["duty_percent"] = std::to_string(duty);
  meta.extra["days"] = std::to_string(days);
  meta.extra["drive_sec_per_day"] = std::to_string(drive_sec_per_day);
  ExportBench(registry, meta);

  if (gate_failed) {
    std::fprintf(stderr,
                 "FAIL: RSS-per-node grew more than 10%% from day 1 to day %d\n",
                 days);
    return 1;
  }
  std::printf("RSS-per-node growth gate (<=10%%): PASS\n");
  return 0;
}
