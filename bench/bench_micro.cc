// Micro-benchmarks (google-benchmark) of MIND's core data-path primitives:
// data-space coding, query covers, histogram maintenance, store operations
// and routing-table decisions. These quantify the per-tuple CPU cost behind
// the system benches.
#include <benchmark/benchmark.h>

#include "overlay/overlay_node.h"
#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/mismatch.h"
#include "storage/tuple_store.h"
#include "util/bitcode.h"
#include "util/rng.h"

namespace mind {
namespace {

Schema Schema3() {
  return Schema({{"dst", 0, 0xFFFFFFFFull}, {"ts", 0, 86400 * 14}, {"v", 0, 1 << 20}});
}

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0x100000000ull), rng.Uniform(86400 * 14),
                   rng.Uniform(1 << 20)});
  }
  return pts;
}

CutTree BalancedTree(int depth) {
  Schema s = Schema3();
  Histogram h(s, 16);
  for (const auto& p : RandomPoints(20000, 9)) h.Add(p);
  return std::move(CutTree::Balanced(s, h, depth)).value();
}

void BM_BitCodeCommonPrefix(benchmark::State& state) {
  Rng rng(1);
  BitCode a = BitCode::FromBits(rng.Next(), 64);
  BitCode b = BitCode::FromBits(rng.Next(), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CommonPrefixLen(b));
  }
}
BENCHMARK(BM_BitCodeCommonPrefix);

void BM_CodeForPointEven(benchmark::State& state) {
  CutTree t = CutTree::Even(Schema3());
  auto pts = RandomPoints(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.CodeForPoint(pts[i++ & 1023], 32));
  }
}
BENCHMARK(BM_CodeForPointEven);

void BM_CodeForPointBalanced(benchmark::State& state) {
  CutTree t = BalancedTree(static_cast<int>(state.range(0)));
  auto pts = RandomPoints(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.CodeForPoint(pts[i++ & 1023], 32));
  }
}
BENCHMARK(BM_CodeForPointBalanced)->Arg(4)->Arg(8)->Arg(12);

void BM_QueryCover(benchmark::State& state) {
  CutTree t = BalancedTree(8);
  Rng rng(4);
  Rect q({{0, 0x7FFFFFFF}, {1000, 1300}, {0, 1 << 20}});
  for (auto _ : state) {
    auto cover = t.Cover(q, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_QueryCover)->Arg(6)->Arg(10);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h(Schema3(), 16);
  auto pts = RandomPoints(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    h.Add(pts[i++ & 1023]);
  }
}
BENCHMARK(BM_HistogramAdd);

void BM_BalancedCutConstruction(benchmark::State& state) {
  Schema s = Schema3();
  Histogram h(s, 16);
  for (const auto& p : RandomPoints(20000, 6)) h.Add(p);
  for (auto _ : state) {
    auto t = CutTree::Balanced(s, h, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BalancedCutConstruction)->Arg(6)->Arg(10);

void BM_TupleStoreInsert(benchmark::State& state) {
  auto cuts = std::make_shared<CutTree>(CutTree::Even(Schema3()));
  TupleStore store(cuts, 32);
  auto pts = RandomPoints(4096, 7);
  size_t i = 0;
  for (auto _ : state) {
    Tuple t;
    t.point = pts[i++ & 4095];
    t.seq = i;
    store.Insert(std::move(t));
  }
}
BENCHMARK(BM_TupleStoreInsert);

void BM_TupleStoreQuery(benchmark::State& state) {
  auto cuts = std::make_shared<CutTree>(CutTree::Even(Schema3()));
  TupleStore store(cuts, 32);
  for (const auto& p : RandomPoints(static_cast<size_t>(state.range(0)), 8)) {
    Tuple t;
    t.point = p;
    store.Insert(std::move(t));
  }
  Rect q({{0, 0x0FFFFFFF}, {0, 86400}, {0, 1 << 20}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Count(q));
  }
}
BENCHMARK(BM_TupleStoreQuery)->Arg(10000)->Arg(100000);

void BM_Mismatch(benchmark::State& state) {
  Schema s = Schema3();
  Histogram a(s, 8), b(s, 8);
  for (const auto& p : RandomPoints(20000, 10)) a.Add(p);
  for (const auto& p : RandomPoints(20000, 11)) b.Add(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MismatchFraction(a, b));
  }
}
BENCHMARK(BM_Mismatch);

}  // namespace
}  // namespace mind

BENCHMARK_MAIN();
