// Micro-benchmarks (google-benchmark) of MIND's core data-path primitives:
// data-space coding, query covers, histogram maintenance, store operations
// and routing-table decisions. These quantify the per-tuple CPU cost behind
// the system benches.
#include <benchmark/benchmark.h>

#include "mind/mind_net.h"
#include "overlay/overlay_node.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/mismatch.h"
#include "storage/bitmap_backend.h"
#include "storage/index_backend.h"
#include "storage/scan_kernels.h"
#include "storage/tuple_store.h"
#include "util/bitcode.h"
#include "util/rng.h"

namespace mind {
namespace {

Schema Schema3() {
  return Schema({{"dst", 0, 0xFFFFFFFFull}, {"ts", 0, 86400 * 14}, {"v", 0, 1 << 20}});
}

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0x100000000ull), rng.Uniform(86400 * 14),
                   rng.Uniform(1 << 20)});
  }
  return pts;
}

CutTree BalancedTree(int depth) {
  Schema s = Schema3();
  Histogram h(s, 16);
  for (const auto& p : RandomPoints(20000, 9)) h.Add(p);
  return std::move(CutTree::Balanced(s, h, depth)).value();
}

void BM_BitCodeCommonPrefix(benchmark::State& state) {
  Rng rng(1);
  BitCode a = BitCode::FromBits(rng.Next(), 64);
  BitCode b = BitCode::FromBits(rng.Next(), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CommonPrefixLen(b));
  }
}
BENCHMARK(BM_BitCodeCommonPrefix);

void BM_CodeForPointEven(benchmark::State& state) {
  CutTree t = CutTree::Even(Schema3());
  auto pts = RandomPoints(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.CodeForPoint(pts[i++ & 1023], 32));
  }
}
BENCHMARK(BM_CodeForPointEven);

void BM_CodeForPointBalanced(benchmark::State& state) {
  CutTree t = BalancedTree(static_cast<int>(state.range(0)));
  auto pts = RandomPoints(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.CodeForPoint(pts[i++ & 1023], 32));
  }
}
BENCHMARK(BM_CodeForPointBalanced)->Arg(4)->Arg(8)->Arg(12);

void BM_QueryCover(benchmark::State& state) {
  CutTree t = BalancedTree(8);
  Rng rng(4);
  Rect q({{0, 0x7FFFFFFF}, {1000, 1300}, {0, 1 << 20}});
  for (auto _ : state) {
    auto cover = t.Cover(q, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_QueryCover)->Arg(6)->Arg(10);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h(Schema3(), 16);
  auto pts = RandomPoints(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    h.Add(pts[i++ & 1023]);
  }
}
BENCHMARK(BM_HistogramAdd);

void BM_BalancedCutConstruction(benchmark::State& state) {
  Schema s = Schema3();
  Histogram h(s, 16);
  for (const auto& p : RandomPoints(20000, 6)) h.Add(p);
  for (auto _ : state) {
    auto t = CutTree::Balanced(s, h, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BalancedCutConstruction)->Arg(6)->Arg(10);

// arg 0 selects the index backend: 0 = sorted runs, 1 = bitmap
// (docs/BACKENDS.md) — same workload, different physical layout.
void BM_TupleStoreInsert(benchmark::State& state) {
  auto cuts = std::make_shared<CutTree>(CutTree::Even(Schema3()));
  TupleStoreConfig cfg;
  cfg.code_len = 32;
  cfg.options.backend = static_cast<IndexBackendKind>(state.range(0));
  TupleStore store(cuts, cfg);
  auto pts = RandomPoints(4096, 7);
  size_t i = 0;
  for (auto _ : state) {
    Tuple t;
    t.point = pts[i++ & 4095];
    t.seq = i;
    store.Insert(std::move(t));
  }
}
BENCHMARK(BM_TupleStoreInsert)
    ->ArgNames({"backend"})
    ->Arg(0)
    ->Arg(1);

// args: {stored rows, backend (0 = sorted, 1 = bitmap)}
void BM_TupleStoreQuery(benchmark::State& state) {
  auto cuts = std::make_shared<CutTree>(CutTree::Even(Schema3()));
  TupleStoreConfig cfg;
  cfg.code_len = 32;
  cfg.options.backend = static_cast<IndexBackendKind>(state.range(1));
  TupleStore store(cuts, cfg);
  for (const auto& p : RandomPoints(static_cast<size_t>(state.range(0)), 8)) {
    Tuple t;
    t.point = p;
    store.Insert(std::move(t));
  }
  Rect q({{0, 0x0FFFFFFF}, {0, 86400}, {0, 1 << 20}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Count(q));
  }
}
BENCHMARK(BM_TupleStoreQuery)
    ->ArgNames({"rows", "backend"})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

// ------------------------------------------------------- scan kernels
//
// The cache-conscious primitives under both index backends, benchmarked at
// the kernel layer where the prefetch knob is a template parameter (the
// backends always compile with prefetch on; the off configurations quantify
// what the hints buy at each working-set size).

scan::KeyColumn SortedKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  scan::KeyColumn keys;
  keys.reserve(n);
  uint64_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    k += 1 + rng.Uniform(64);
    keys.push_back(k);
  }
  return keys;
}

// Branch-free cover probe (binary search with midpoint prefetch): the inner
// loop of every range-scan bound and RoutingTable cover lookup.
// args: {keys, prefetch}
void BM_CoverProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  scan::KeyColumn keys = SortedKeys(n, 21);
  const uint64_t span = keys.back() + 64;
  Rng rng(22);
  std::vector<uint64_t> probes(4096);
  for (auto& p : probes) p = rng.Uniform(span);
  size_t i = 0;
  for (auto _ : state) {
    uint64_t probe = probes[i++ & 4095];
    size_t pos = prefetch
                     ? scan::LowerBound<true>(keys.data(), keys.size(), probe)
                     : scan::LowerBound<false>(keys.data(), keys.size(), probe);
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_CoverProbe)
    ->ArgNames({"keys", "prefetch"})
    ->Args({1 << 12, 0})
    ->Args({1 << 12, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

// Two-bound range scan over a sorted run: the sorted_runs_backend ScanRun
// shape (branchless bounds on the key column, prefetch-ahead row sweep).
// The simd arm replaces the callback sweep with the reduction-shaped
// SweepFieldSum gather kernel (AVX2 when compiled in, scalar otherwise —
// scan::kHaveAvx2Gather is exported via the simd_active counter so the
// numbers are self-describing).
// args: {rows, prefetch, simd}
void BM_ScanRangeSorted(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  const bool simd = state.range(2) != 0;
  scan::KeyColumn keys = SortedKeys(n, 23);
  std::vector<StoredRow> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i].key = keys[i];
  const uint64_t span = keys.back();
  const size_t seq_offset = static_cast<size_t>(
      reinterpret_cast<const char*>(&rows[0].tuple.seq) -
      reinterpret_cast<const char*>(&rows[0]));
  Rng rng(24);
  uint64_t sink = 0;
  for (auto _ : state) {
    uint64_t lo = rng.Uniform(span);
    uint64_t hi = lo + span / 64;  // ~1.5% selectivity
    auto emit = [&sink](const StoredRow& row) { sink += row.tuple.seq; };
    if (prefetch) {
      auto [b, e] = scan::RangeBounds<true>(keys.data(), keys.size(), lo, hi);
      if (simd) {
        sink += scan::SweepFieldSum(rows.data(), b, e, seq_offset);
      } else {
        scan::SweepRows<true>(rows.data(), b, e, emit);
      }
    } else {
      auto [b, e] = scan::RangeBounds<false>(keys.data(), keys.size(), lo, hi);
      if (simd) {
        sink += scan::SweepFieldSum(rows.data(), b, e, seq_offset);
      } else {
        scan::SweepRows<false>(rows.data(), b, e, emit);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.counters["simd_active"] = simd && scan::kHaveAvx2Gather ? 1 : 0;
}
BENCHMARK(BM_ScanRangeSorted)
    ->ArgNames({"rows", "prefetch", "simd"})
    ->Args({100000, 0, 0})
    ->Args({100000, 1, 0})
    ->Args({100000, 1, 1})
    ->Args({1000000, 0, 0})
    ->Args({1000000, 1, 0})
    ->Args({1000000, 1, 1});

// RLE bitmap decode + software-pipelined row gather: the bitmap backend's
// emission path (ids decode ahead of the rows they touch).
// args: {rows, prefetch}
void BM_ScanRangeBitmap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  Rng rng(25);
  RleBitmap bm;
  std::vector<StoredRow> rows(n);
  for (size_t id = 0; id < n; ++id) {
    rows[id].key = id;
    rows[id].tuple.seq = id * 2 + 1;
    if (rng.Uniform(4) == 0) bm.Set(id);  // ~25% density
  }
  constexpr size_t kBatch = 16;
  uint64_t sink = 0;
  for (auto _ : state) {
    uint32_t batch[kBatch];
    size_t fill = 0;
    auto drain = [&](size_t count) {
      for (size_t i = 0; i < count; ++i) sink += rows[batch[i]].tuple.seq;
    };
    bm.ForEachSet([&](uint64_t id) {
      if (prefetch) scan::PrefetchRead(&rows[id]);
      batch[fill++] = static_cast<uint32_t>(id);
      if (fill == kBatch) {
        drain(kBatch);
        fill = 0;
      }
    });
    drain(fill);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_ScanRangeBitmap)
    ->ArgNames({"rows", "prefetch"})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1});

// ------------------------------------------------------------ event queue
//
// The per-event engine cost. The capture is sized like the insert-commit
// lambda in MindNode::OnInsertArrived (~48 bytes), which is what the hot
// path actually schedules.

struct EventPayload {
  uint64_t a, b, c;
  uint32_t d, e;
};  // 32 bytes; + captured pointer = 40-byte closure

void BM_EventQueueScheduleFire(benchmark::State& state) {
  EventQueue q;
  uint64_t sink = 0;
  EventPayload p{1, 2, 3, 4, 5};
  SimTime t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.ScheduleAt(++t, [&sink, p] { sink += p.a + p.e; });
    }
    q.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleFire);

// Timer churn: most timers (heartbeats, retransmits) are cancelled before
// they fire, so Cancel and dead-entry disposal are on the hot path too.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  EventQueue q;
  uint64_t sink = 0;
  EventPayload p{1, 2, 3, 4, 5};
  std::vector<EventId> ids(64);
  SimTime t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      ids[i] = q.ScheduleAt(t + 1000 + i, [&sink, p] { sink += p.a; });
    }
    for (int i = 0; i < 48; ++i) q.Cancel(ids[i]);  // 75% never fire
    q.Run();
    t = q.now();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueCancelChurn);

// ------------------------------------------------------------- send path
//
// Raw Network::Send cost with no MIND routing on top: link-state lookup,
// latency + jitter computation, delivery scheduling, dispatch. The rotating
// destination stride touches every directed (from, to) pair over time, so
// the per-link state table itself (dense per-host rows) is the structure
// under test.

struct SinkHost : Host {
  uint64_t delivered = 0;
  void HandleMessage(NodeId, const MessagePtr&) override { ++delivered; }
};

struct PingMsg : Message {
  const char* TypeName() const override { return "bench.ping"; }
};

void BM_NetworkSendDrain(benchmark::State& state) {
  SimulatorOptions sopts;
  sopts.seed = 0xbe7c;
  Simulator sim(sopts);
  constexpr int kHosts = 64;
  std::vector<std::unique_ptr<SinkHost>> hosts;
  hosts.reserve(kHosts);
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(std::make_unique<SinkHost>());
    sim.network().AddHost(hosts.back().get(),
                          GeoPoint{double(i % 8) * 5.0, double(i / 8) * 5.0});
  }
  auto msg = std::make_shared<PingMsg>();
  int stride = 1;
  for (auto _ : state) {
    for (int i = 0; i < kHosts; ++i) {
      sim.network().Send(i, (i + stride) % kHosts, msg);
    }
    stride = stride % (kHosts - 1) + 1;
    sim.Run();  // drain all deliveries
  }
  uint64_t delivered = 0;
  for (const auto& h : hosts) delivered += h->delivered;
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * kHosts);
}
BENCHMARK(BM_NetworkSendDrain);

// ------------------------------------------------------------ insert path
//
// End-to-end per-tuple cost of insert_record on a small overlay: routing
// hops, network model, DAC wait, commit and replication — wall-clock per
// committed tuple, everything in virtual time.

std::unique_ptr<MindNet> MicroNet(size_t n, uint64_t seed) {
  MindNetOptions opts;
  opts.sim.seed = seed;
  opts.overlay.heartbeat_interval = 0;  // no periodic traffic in the loop
  auto net = std::make_unique<MindNet>(n, opts);
  if (!net->Build().ok()) std::abort();
  IndexDef def;
  def.name = "micro";
  def.schema = Schema3();
  def.time_attr = 1;
  Status st = net->CreateIndexEverywhere(
      def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0);
  if (!st.ok()) std::abort();
  net->sim().RunFor(FromSeconds(5));
  return net;
}

void BM_InsertPathSingle(benchmark::State& state) {
  auto net = MicroNet(32, 0x1c0b);
  auto pts = RandomPoints(4096, 12);
  uint64_t seq = 0;
  size_t i = 0;
  for (auto _ : state) {
    for (int k = 0; k < 16; ++k) {
      Tuple t;
      t.point = pts[i & 4095];
      t.seq = ++seq;
      (void)net->node(i++ & 31).Insert("micro", t);
    }
    net->sim().RunFor(FromSeconds(2));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_InsertPathSingle);

// Same tuple stream as BM_InsertPathSingle, but shipped as one 16-tuple
// train per iteration (InsertBatch): routing, DAC commits and replication
// amortize across the batch.
void BM_InsertPathBatch(benchmark::State& state) {
  auto net = MicroNet(32, 0x1c0b);
  auto pts = RandomPoints(4096, 12);
  uint64_t seq = 0;
  size_t i = 0;
  for (auto _ : state) {
    std::vector<Tuple> batch;
    batch.reserve(16);
    for (int k = 0; k < 16; ++k) {
      Tuple t;
      t.point = pts[i++ & 4095];
      t.seq = ++seq;
      batch.push_back(std::move(t));
    }
    (void)net->node(i & 31).InsertBatch("micro", std::move(batch));
    net->sim().RunFor(FromSeconds(2));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_InsertPathBatch);

// ------------------------------------------------------------ peer table

// Per-node routing-state growth curve (the skip-web comparison axis from the
// overlay survey): the hypercube keeps ~max_peers_per_level * log2(fleet)
// peers per node, so the x-axis is fleet size and the curve should be
// logarithmic. Timing covers a build + lookup cycle on the sorted
// small-vector PeerTable; the counters report its resident bytes next to the
// former unordered_map representation (libstdc++ node model: one heap node +
// two pointers per entry plus the bucket array) for the same peer set.
void BM_PeerTableGrowth(benchmark::State& state) {
  const int fleet = static_cast<int>(state.range(0));
  int levels = 0;
  while ((1 << levels) < fleet) ++levels;
  const int peers = 2 * levels;  // max_peers_per_level default is 2
  Rng rng(31);
  std::vector<std::pair<NodeId, BitCode>> entries;
  entries.reserve(peers);
  for (int i = 0; i < peers; ++i) {
    entries.push_back({static_cast<NodeId>(rng.Uniform(fleet)),
                       BitCode::FromBits(rng.Next(), levels)});
  }
  for (auto _ : state) {
    PeerTable t;
    for (const auto& [id, code] : entries) t[id] = code;
    for (const auto& [id, code] : entries) {
      benchmark::DoNotOptimize(t.find(id));
    }
  }
  PeerTable t;
  std::unordered_map<NodeId, BitCode> m;
  for (const auto& [id, code] : entries) {
    t[id] = code;
    m[id] = code;
  }
  state.counters["peers"] = static_cast<double>(t.size());
  state.counters["table_bytes"] = static_cast<double>(t.MemoryFootprint());
  state.counters["umap_bytes"] = static_cast<double>(
      sizeof(m) + m.bucket_count() * sizeof(void*) +
      m.size() * (sizeof(std::pair<const NodeId, BitCode>) + 2 * sizeof(void*)));
}
BENCHMARK(BM_PeerTableGrowth)
    ->ArgNames({"fleet"})
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 17);

void BM_Mismatch(benchmark::State& state) {
  Schema s = Schema3();
  Histogram a(s, 8), b(s, 8);
  for (const auto& p : RandomPoints(20000, 10)) a.Add(p);
  for (const auto& p : RandomPoints(20000, 11)) b.Add(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MismatchFraction(a, b));
  }
}
BENCHMARK(BM_Mismatch);

}  // namespace
}  // namespace mind

BENCHMARK_MAIN();
