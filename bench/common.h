// Shared machinery for the experiment benches: deployment construction over
// a backbone topology, trace-driven insertion, query workloads, and
// paper-style table printing.
#ifndef MIND_BENCH_COMMON_H_
#define MIND_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "anomaly/ground_truth.h"
#include "mind/mind_net.h"
#include "telemetry/export.h"
#include "telemetry/stats.h"
#include "traffic/aggregator.h"
#include "traffic/anomaly_injector.h"
#include "traffic/flow_generator.h"
#include "traffic/indices.h"
#include "traffic/topology.h"

namespace mind {
namespace bench {

// ------------------------------------------------------------ statistics

// The single definition lives in telemetry/stats.h so benches, the registry
// histograms and the exporters all agree.
using telemetry::Mean;
using telemetry::Percentile;

inline void PrintLatencyRow(const char* label, const std::vector<double>& sec) {
  std::printf("%-28s n=%6zu  median=%7.3fs  mean=%7.3fs  p90=%7.3fs  p99=%7.3fs\n",
              label, sec.size(), Percentile(sec, 50), Mean(sec),
              Percentile(sec, 90), Percentile(sec, 99));
}

/// Same table row printed from a registry histogram recorded in milliseconds
/// (values shown in seconds). Because the BENCH_*.json exporter snapshots the
/// very same histogram, the printed median/p90/p99 equal the JSON ones.
inline void PrintLatencyRowHist(const char* label,
                                const telemetry::SimHistogram& h_ms) {
  std::printf("%-28s n=%6llu  median=%7.3fs  mean=%7.3fs  p90=%7.3fs  p99=%7.3fs\n",
              label, static_cast<unsigned long long>(h_ms.count()),
              h_ms.Percentile(50) / 1e3, h_ms.Mean() / 1e3,
              h_ms.Percentile(90) / 1e3, h_ms.Percentile(99) / 1e3);
}

/// Writes the registry snapshot to BENCH_<meta.bench>.json (plus metadata).
inline void ExportBench(const telemetry::MetricsRegistry& registry,
                        const telemetry::RunMeta& meta) {
  std::string path = telemetry::JsonExporter::DefaultPath(meta);
  Status st = telemetry::JsonExporter::WriteFile(registry, meta, path);
  if (!st.ok()) {
    std::fprintf(stderr, "bench export failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("[export] wrote %s\n", path.c_str());
}

// ------------------------------------------------------------ deployment

struct DeploymentOptions {
  /// Replication level (paper default: one replica).
  int replication = 1;
  /// Heartbeats on for failure experiments; off keeps static runs light.
  SimTime heartbeat_interval = FromSeconds(5);
  uint64_t seed = 0x5eed;
  /// Physical index layout for every per-node store. Digest-transparent
  /// (docs/BACKENDS.md), so sweeping it changes wall-clock cost only; the
  /// default honours MIND_BACKEND like any other run.
  IndexBackendKind backend = DefaultIndexBackendKind();
  /// Build pacing overrides for very large fleets (0 = MindNetOptions
  /// defaults). fig22's 10k-node build outruns the default 3600 s sim
  /// deadline at the default 300 ms stagger.
  SimTime join_stagger = 0;
  SimTime build_deadline = 0;
};

/// A MindNet whose node i is co-located with topology router i (the paper's
/// geographic PlanetLab placement, §4.2).
inline std::unique_ptr<MindNet> MakeDeployment(const Topology& topo,
                                               DeploymentOptions opts = {}) {
  MindNetOptions mopts;
  mopts.sim.seed = opts.seed;
  mopts.overlay.heartbeat_interval = opts.heartbeat_interval;
  mopts.mind.replication = opts.replication;
  mopts.mind.store_backend = opts.backend;
  mopts.positions = topo.Positions();
  auto net = std::make_unique<MindNet>(topo.size(), mopts);
  Status st = net->Build();
  if (!st.ok()) {
    std::fprintf(stderr, "overlay build failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return net;
}

/// A MindNet of arbitrary size without geography (the 102-node experiments).
inline std::unique_ptr<MindNet> MakeFlatDeployment(size_t n,
                                                   DeploymentOptions opts = {}) {
  MindNetOptions mopts;
  mopts.sim.seed = opts.seed;
  mopts.overlay.heartbeat_interval = opts.heartbeat_interval;
  mopts.mind.replication = opts.replication;
  mopts.mind.store_backend = opts.backend;
  if (opts.join_stagger > 0) mopts.join_stagger = opts.join_stagger;
  if (opts.build_deadline > 0) mopts.build_deadline = opts.build_deadline;
  auto net = std::make_unique<MindNet>(n, mopts);
  Status st = net->Build();
  if (!st.ok()) {
    std::fprintf(stderr, "overlay build failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return net;
}

// ------------------------------------------------------------ trace driving

struct TraceDriveOptions {
  int day = 0;
  double t0_sec = 39600;  // 11:00
  double t1_sec = 43200;  // 12:00
  bool feed_index1 = true;
  bool feed_index2 = true;
  bool feed_index3 = true;
  PaperIndexOptions index_opts;
  AggregatorOptions agg;
  std::vector<AnomalyEvent> anomalies;
  uint64_t anomaly_seed = 0xbad;
};

struct TraceDriveResult {
  size_t raw_records = 0;
  size_t aggregates = 0;
  size_t inserted1 = 0, inserted2 = 0, inserted3 = 0;
  /// All aggregates (pre-filter), for ground-truth analysis.
  std::vector<AggregateRecord> all_aggregates;
  /// Sim time corresponding to trace second t0 (epoch of the drive).
  SimTime epoch = 0;
};

/// Maps a trace-relative second to sim time given the drive's epoch.
inline SimTime TraceToSim(const TraceDriveResult& drive, double trace_sec,
                          double t0_sec) {
  return drive.epoch + FromSeconds(trace_sec - t0_sec);
}

/// Feeds one window of trace into the deployment: generates raw flows,
/// aggregates per monitor, filters per index, and schedules each tuple's
/// insert_record call at its home monitor at the window-close sim time.
/// Runs the simulation along with the trace clock.
inline TraceDriveResult DriveTrace(MindNet& net, FlowGenerator& gen,
                                   const TraceDriveOptions& opts) {
  TraceDriveResult result;
  result.epoch = net.sim().now();
  AnomalyInjector injector(&gen, opts.anomaly_seed);
  const double window = opts.agg.window_sec;
  uint64_t seq = 0;

  for (double t = opts.t0_sec; t < opts.t1_sec; t += window) {
    double t_end = std::min(t + window, opts.t1_sec);
    Aggregator agg(opts.agg);
    size_t raw = 0;
    gen.Generate(opts.day, t, t_end, [&](const FlowRecord& f) {
      agg.Add(f);
      ++raw;
    });
    for (const auto& ev : opts.anomalies) {
      if (ev.day != opts.day) continue;
      for (const auto& f : injector.Generate(ev, t, t_end)) {
        agg.Add(f);
        ++raw;
      }
    }
    result.raw_records += raw;
    auto aggregates = agg.DrainAll();
    result.aggregates += aggregates.size();

    // Schedule the inserts at the window's closing sim time, on the monitor's
    // own queue (ScheduleOn == events().ScheduleAt under the sequential
    // engine; under the parallel engine the control queue must stay empty).
    SimTime when = result.epoch + FromSeconds(t_end - opts.t0_sec);
    for (const auto& rec : aggregates) {
      result.all_aggregates.push_back(rec);
      int monitor = rec.router;
      if (opts.feed_index1) {
        if (auto tup = ToIndex1Tuple(rec, ++seq, opts.index_opts)) {
          ++result.inserted1;
          net.sim().ScheduleOn(monitor, when, [&net, monitor, tup] {
            (void)net.node(monitor).Insert("index1_fanout", *tup);
          });
        }
      }
      if (opts.feed_index2) {
        if (auto tup = ToIndex2Tuple(rec, ++seq, opts.index_opts)) {
          ++result.inserted2;
          net.sim().ScheduleOn(monitor, when, [&net, monitor, tup] {
            (void)net.node(monitor).Insert("index2_octets", *tup);
          });
        }
      }
      if (opts.feed_index3) {
        if (auto tup = ToIndex3Tuple(rec, ++seq, opts.index_opts)) {
          ++result.inserted3;
          net.sim().ScheduleOn(monitor, when, [&net, monitor, tup] {
            (void)net.node(monitor).Insert("index3_flowsize", *tup);
          });
        }
      }
    }
    // Advance the simulation to the window close.
    net.sim().RunUntil(when);
  }
  // Let in-flight inserts settle.
  net.sim().RunFor(FromSeconds(30));
  return result;
}

/// Creates the paper's three indices with even cuts (callers re-balance).
inline void CreatePaperIndices(MindNet& net, const PaperIndexOptions& opts = {},
                               bool idx1 = true, bool idx2 = true,
                               bool idx3 = true) {
  auto create = [&](const IndexDef& def) {
    Status st = net.CreateIndexEverywhere(
        def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0);
    if (!st.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", def.name.c_str(),
                   st.ToString().c_str());
      std::abort();
    }
  };
  if (idx1) create(MakeIndex1(opts));
  if (idx2) create(MakeIndex2(opts));
  if (idx3) create(MakeIndex3(opts));
}

/// Installs histogram-balanced cuts (built offline from `sample`) as the
/// active version of the given index — the paper's daily balanced-cut
/// installation, computed from the previous day's distribution (§3.7).
inline void InstallBalancedCuts(
    MindNet& net, const std::string& index, const IndexDef& def,
    const std::vector<Point>& sample, int bins_per_dim, int depth,
    VersionId version, SimTime start) {
  Histogram h(def.schema, bins_per_dim);
  for (const auto& p : sample) h.Add(p);
  auto cuts = CutTree::Balanced(def.schema, h, depth);
  if (!cuts.ok()) {
    std::fprintf(stderr, "balanced cuts failed: %s\n",
                 cuts.status().ToString().c_str());
    std::abort();
  }
  Status st = net.InstallCutsEverywhere(
      index, version, std::make_shared<CutTree>(std::move(cuts).value()), start);
  if (!st.ok()) {
    std::fprintf(stderr, "install cuts failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

/// Shifts the timestamp attribute of sampled points forward by `days` —
/// balanced cuts built from day d's data must sit where day d+`days`'s
/// timestamps will fall (§3.7's "one day's distribution stores the next").
inline void ShiftTimeAttr(std::vector<Point>* points, int time_attr,
                          int days = 1) {
  for (auto& p : *points) p[time_attr] += static_cast<Value>(days) * 86400;
}

/// Collects sample points of a day's (filtered) tuples for an index, for
/// offline balanced-cut construction.
inline std::vector<Point> SampleIndexPoints(
    FlowGenerator& gen, int day, double t0, double t1, int which_index,
    const PaperIndexOptions& iopts = {}, const AggregatorOptions& aopts = {}) {
  std::vector<Point> points;
  const double window = aopts.window_sec;
  uint64_t seq = 0;
  for (double t = t0; t < t1; t += window) {
    Aggregator agg(aopts);
    gen.Generate(day, t, std::min(t + window, t1),
                 [&](const FlowRecord& f) { agg.Add(f); });
    for (const auto& rec : agg.DrainAll()) {
      std::optional<Tuple> tup;
      switch (which_index) {
        case 1: tup = ToIndex1Tuple(rec, ++seq, iopts); break;
        case 2: tup = ToIndex2Tuple(rec, ++seq, iopts); break;
        default: tup = ToIndex3Tuple(rec, ++seq, iopts); break;
      }
      if (tup) points.push_back(tup->point);
    }
  }
  return points;
}

/// A random monitoring query in the paper's style (§4.1): uniform ranges on
/// the non-time attributes, a 5-minute window ending at `t_end` on the time
/// attribute.
inline Rect RandomMonitoringQuery(Rng* rng, const IndexDef& def,
                                  uint64_t t_end_sec) {
  std::vector<Interval> ivs;
  for (int d = 0; d < def.schema.dims(); ++d) {
    const auto& attr = def.schema.attr(d);
    if (d == def.time_attr) {
      uint64_t lo = t_end_sec > 300 ? t_end_sec - 300 : 0;
      ivs.push_back({lo, t_end_sec});
    } else {
      Value a = rng->UniformRange(attr.min, attr.max);
      Value b = rng->UniformRange(attr.min, attr.max);
      ivs.push_back({std::min(a, b), std::max(a, b)});
    }
  }
  return Rect(std::move(ivs));
}

/// Issues a query and runs the sim until its callback fires (or gives up
/// after 120 s of sim time). Returns nullopt when the query API errored.
inline std::optional<QueryResult> RunQueryBlocking(MindNet& net, size_t from,
                                                   const std::string& index,
                                                   const Rect& rect) {
  std::optional<QueryResult> out;
  auto qid = net.node(from).Query(index, rect,
                                  [&](const QueryResult& r) { out = r; });
  if (!qid.ok()) return std::nullopt;
  SimTime deadline = net.sim().now() + FromSeconds(120);
  while (!out.has_value() && net.sim().now() < deadline) {
    net.sim().RunFor(FromMillis(100));
  }
  return out;
}

}  // namespace bench
}  // namespace mind

#endif  // MIND_BENCH_COMMON_H_
