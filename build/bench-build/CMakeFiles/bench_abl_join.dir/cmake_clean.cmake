file(REMOVE_RECURSE
  "../bench/bench_abl_join"
  "../bench/bench_abl_join.pdb"
  "CMakeFiles/bench_abl_join.dir/bench_abl_join.cc.o"
  "CMakeFiles/bench_abl_join.dir/bench_abl_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
