# Empty compiler generated dependencies file for bench_abl_join.
# This may be replaced when dependencies are built.
