file(REMOVE_RECURSE
  "../bench/bench_abl_recovery"
  "../bench/bench_abl_recovery.pdb"
  "CMakeFiles/bench_abl_recovery.dir/bench_abl_recovery.cc.o"
  "CMakeFiles/bench_abl_recovery.dir/bench_abl_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
