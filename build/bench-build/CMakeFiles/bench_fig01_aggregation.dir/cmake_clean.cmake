file(REMOVE_RECURSE
  "../bench/bench_fig01_aggregation"
  "../bench/bench_fig01_aggregation.pdb"
  "CMakeFiles/bench_fig01_aggregation.dir/bench_fig01_aggregation.cc.o"
  "CMakeFiles/bench_fig01_aggregation.dir/bench_fig01_aggregation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
