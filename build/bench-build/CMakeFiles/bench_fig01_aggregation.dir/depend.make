# Empty dependencies file for bench_fig01_aggregation.
# This may be replaced when dependencies are built.
