file(REMOVE_RECURSE
  "../bench/bench_fig02_skew"
  "../bench/bench_fig02_skew.pdb"
  "CMakeFiles/bench_fig02_skew.dir/bench_fig02_skew.cc.o"
  "CMakeFiles/bench_fig02_skew.dir/bench_fig02_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
