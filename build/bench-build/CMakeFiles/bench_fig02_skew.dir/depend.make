# Empty dependencies file for bench_fig02_skew.
# This may be replaced when dependencies are built.
