
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig03_mismatch.cc" "bench-build/CMakeFiles/bench_fig03_mismatch.dir/bench_fig03_mismatch.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig03_mismatch.dir/bench_fig03_mismatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mind_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_space.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
