file(REMOVE_RECURSE
  "../bench/bench_fig03_mismatch"
  "../bench/bench_fig03_mismatch.pdb"
  "CMakeFiles/bench_fig03_mismatch.dir/bench_fig03_mismatch.cc.o"
  "CMakeFiles/bench_fig03_mismatch.dir/bench_fig03_mismatch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
