# Empty dependencies file for bench_fig08_link_delay.
# This may be replaced when dependencies are built.
