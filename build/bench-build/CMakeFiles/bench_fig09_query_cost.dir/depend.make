# Empty dependencies file for bench_fig09_query_cost.
# This may be replaced when dependencies are built.
