file(REMOVE_RECURSE
  "../bench/bench_fig11_hotspot"
  "../bench/bench_fig11_hotspot.pdb"
  "CMakeFiles/bench_fig11_hotspot.dir/bench_fig11_hotspot.cc.o"
  "CMakeFiles/bench_fig11_hotspot.dir/bench_fig11_hotspot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
