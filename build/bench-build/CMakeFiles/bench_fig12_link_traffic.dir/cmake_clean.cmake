file(REMOVE_RECURSE
  "../bench/bench_fig12_link_traffic"
  "../bench/bench_fig12_link_traffic.pdb"
  "CMakeFiles/bench_fig12_link_traffic.dir/bench_fig12_link_traffic.cc.o"
  "CMakeFiles/bench_fig12_link_traffic.dir/bench_fig12_link_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_link_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
