# Empty dependencies file for bench_fig12_link_traffic.
# This may be replaced when dependencies are built.
