file(REMOVE_RECURSE
  "../bench/bench_fig13_storage_balance"
  "../bench/bench_fig13_storage_balance.pdb"
  "CMakeFiles/bench_fig13_storage_balance.dir/bench_fig13_storage_balance.cc.o"
  "CMakeFiles/bench_fig13_storage_balance.dir/bench_fig13_storage_balance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_storage_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
