# Empty compiler generated dependencies file for bench_fig13_storage_balance.
# This may be replaced when dependencies are built.
