file(REMOVE_RECURSE
  "../bench/bench_fig14_scale_insert"
  "../bench/bench_fig14_scale_insert.pdb"
  "CMakeFiles/bench_fig14_scale_insert.dir/bench_fig14_scale_insert.cc.o"
  "CMakeFiles/bench_fig14_scale_insert.dir/bench_fig14_scale_insert.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_scale_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
