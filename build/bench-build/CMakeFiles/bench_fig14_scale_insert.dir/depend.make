# Empty dependencies file for bench_fig14_scale_insert.
# This may be replaced when dependencies are built.
