# Empty dependencies file for bench_fig15_scale_query.
# This may be replaced when dependencies are built.
