# Empty dependencies file for bench_fig16_robustness.
# This may be replaced when dependencies are built.
