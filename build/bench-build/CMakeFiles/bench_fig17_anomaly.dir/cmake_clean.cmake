file(REMOVE_RECURSE
  "../bench/bench_fig17_anomaly"
  "../bench/bench_fig17_anomaly.pdb"
  "CMakeFiles/bench_fig17_anomaly.dir/bench_fig17_anomaly.cc.o"
  "CMakeFiles/bench_fig17_anomaly.dir/bench_fig17_anomaly.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
