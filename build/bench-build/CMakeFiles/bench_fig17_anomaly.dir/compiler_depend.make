# Empty compiler generated dependencies file for bench_fig17_anomaly.
# This may be replaced when dependencies are built.
