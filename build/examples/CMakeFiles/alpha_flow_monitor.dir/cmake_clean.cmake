file(REMOVE_RECURSE
  "CMakeFiles/alpha_flow_monitor.dir/alpha_flow_monitor.cpp.o"
  "CMakeFiles/alpha_flow_monitor.dir/alpha_flow_monitor.cpp.o.d"
  "alpha_flow_monitor"
  "alpha_flow_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_flow_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
