# Empty compiler generated dependencies file for alpha_flow_monitor.
# This may be replaced when dependencies are built.
