file(REMOVE_RECURSE
  "CMakeFiles/backbone_emulation.dir/backbone_emulation.cpp.o"
  "CMakeFiles/backbone_emulation.dir/backbone_emulation.cpp.o.d"
  "backbone_emulation"
  "backbone_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
