# Empty dependencies file for backbone_emulation.
# This may be replaced when dependencies are built.
