file(REMOVE_RECURSE
  "CMakeFiles/mind_anomaly.dir/anomaly/ground_truth.cc.o"
  "CMakeFiles/mind_anomaly.dir/anomaly/ground_truth.cc.o.d"
  "CMakeFiles/mind_anomaly.dir/anomaly/mind_detector.cc.o"
  "CMakeFiles/mind_anomaly.dir/anomaly/mind_detector.cc.o.d"
  "libmind_anomaly.a"
  "libmind_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
