file(REMOVE_RECURSE
  "libmind_anomaly.a"
)
