# Empty compiler generated dependencies file for mind_anomaly.
# This may be replaced when dependencies are built.
