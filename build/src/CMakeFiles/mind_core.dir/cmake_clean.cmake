file(REMOVE_RECURSE
  "CMakeFiles/mind_core.dir/mind/index_def.cc.o"
  "CMakeFiles/mind_core.dir/mind/index_def.cc.o.d"
  "CMakeFiles/mind_core.dir/mind/mind_net.cc.o"
  "CMakeFiles/mind_core.dir/mind/mind_net.cc.o.d"
  "CMakeFiles/mind_core.dir/mind/mind_node.cc.o"
  "CMakeFiles/mind_core.dir/mind/mind_node.cc.o.d"
  "CMakeFiles/mind_core.dir/mind/query_tracker.cc.o"
  "CMakeFiles/mind_core.dir/mind/query_tracker.cc.o.d"
  "libmind_core.a"
  "libmind_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
