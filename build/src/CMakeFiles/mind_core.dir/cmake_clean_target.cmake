file(REMOVE_RECURSE
  "libmind_core.a"
)
