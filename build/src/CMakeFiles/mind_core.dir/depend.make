# Empty dependencies file for mind_core.
# This may be replaced when dependencies are built.
