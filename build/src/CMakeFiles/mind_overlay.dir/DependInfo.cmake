
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/join.cc" "src/CMakeFiles/mind_overlay.dir/overlay/join.cc.o" "gcc" "src/CMakeFiles/mind_overlay.dir/overlay/join.cc.o.d"
  "/root/repo/src/overlay/overlay_node.cc" "src/CMakeFiles/mind_overlay.dir/overlay/overlay_node.cc.o" "gcc" "src/CMakeFiles/mind_overlay.dir/overlay/overlay_node.cc.o.d"
  "/root/repo/src/overlay/recovery.cc" "src/CMakeFiles/mind_overlay.dir/overlay/recovery.cc.o" "gcc" "src/CMakeFiles/mind_overlay.dir/overlay/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mind_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
