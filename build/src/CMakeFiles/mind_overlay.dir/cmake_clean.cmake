file(REMOVE_RECURSE
  "CMakeFiles/mind_overlay.dir/overlay/join.cc.o"
  "CMakeFiles/mind_overlay.dir/overlay/join.cc.o.d"
  "CMakeFiles/mind_overlay.dir/overlay/overlay_node.cc.o"
  "CMakeFiles/mind_overlay.dir/overlay/overlay_node.cc.o.d"
  "CMakeFiles/mind_overlay.dir/overlay/recovery.cc.o"
  "CMakeFiles/mind_overlay.dir/overlay/recovery.cc.o.d"
  "libmind_overlay.a"
  "libmind_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
