file(REMOVE_RECURSE
  "libmind_overlay.a"
)
