# Empty dependencies file for mind_overlay.
# This may be replaced when dependencies are built.
