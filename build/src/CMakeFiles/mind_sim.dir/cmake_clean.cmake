file(REMOVE_RECURSE
  "CMakeFiles/mind_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/mind_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/mind_sim.dir/sim/failure_injector.cc.o"
  "CMakeFiles/mind_sim.dir/sim/failure_injector.cc.o.d"
  "CMakeFiles/mind_sim.dir/sim/network.cc.o"
  "CMakeFiles/mind_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/mind_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/mind_sim.dir/sim/simulator.cc.o.d"
  "libmind_sim.a"
  "libmind_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
