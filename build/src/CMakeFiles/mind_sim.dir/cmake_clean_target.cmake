file(REMOVE_RECURSE
  "libmind_sim.a"
)
