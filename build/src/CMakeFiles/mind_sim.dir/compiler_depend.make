# Empty compiler generated dependencies file for mind_sim.
# This may be replaced when dependencies are built.
