
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/space/cut_tree.cc" "src/CMakeFiles/mind_space.dir/space/cut_tree.cc.o" "gcc" "src/CMakeFiles/mind_space.dir/space/cut_tree.cc.o.d"
  "/root/repo/src/space/histogram.cc" "src/CMakeFiles/mind_space.dir/space/histogram.cc.o" "gcc" "src/CMakeFiles/mind_space.dir/space/histogram.cc.o.d"
  "/root/repo/src/space/mismatch.cc" "src/CMakeFiles/mind_space.dir/space/mismatch.cc.o" "gcc" "src/CMakeFiles/mind_space.dir/space/mismatch.cc.o.d"
  "/root/repo/src/space/rect.cc" "src/CMakeFiles/mind_space.dir/space/rect.cc.o" "gcc" "src/CMakeFiles/mind_space.dir/space/rect.cc.o.d"
  "/root/repo/src/space/schema.cc" "src/CMakeFiles/mind_space.dir/space/schema.cc.o" "gcc" "src/CMakeFiles/mind_space.dir/space/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mind_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
