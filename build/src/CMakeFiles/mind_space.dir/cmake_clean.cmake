file(REMOVE_RECURSE
  "CMakeFiles/mind_space.dir/space/cut_tree.cc.o"
  "CMakeFiles/mind_space.dir/space/cut_tree.cc.o.d"
  "CMakeFiles/mind_space.dir/space/histogram.cc.o"
  "CMakeFiles/mind_space.dir/space/histogram.cc.o.d"
  "CMakeFiles/mind_space.dir/space/mismatch.cc.o"
  "CMakeFiles/mind_space.dir/space/mismatch.cc.o.d"
  "CMakeFiles/mind_space.dir/space/rect.cc.o"
  "CMakeFiles/mind_space.dir/space/rect.cc.o.d"
  "CMakeFiles/mind_space.dir/space/schema.cc.o"
  "CMakeFiles/mind_space.dir/space/schema.cc.o.d"
  "libmind_space.a"
  "libmind_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
