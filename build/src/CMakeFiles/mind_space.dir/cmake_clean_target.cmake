file(REMOVE_RECURSE
  "libmind_space.a"
)
