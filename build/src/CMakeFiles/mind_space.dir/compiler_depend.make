# Empty compiler generated dependencies file for mind_space.
# This may be replaced when dependencies are built.
