
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/tuple_store.cc" "src/CMakeFiles/mind_storage.dir/storage/tuple_store.cc.o" "gcc" "src/CMakeFiles/mind_storage.dir/storage/tuple_store.cc.o.d"
  "/root/repo/src/storage/version_manager.cc" "src/CMakeFiles/mind_storage.dir/storage/version_manager.cc.o" "gcc" "src/CMakeFiles/mind_storage.dir/storage/version_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mind_space.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
