file(REMOVE_RECURSE
  "CMakeFiles/mind_storage.dir/storage/tuple_store.cc.o"
  "CMakeFiles/mind_storage.dir/storage/tuple_store.cc.o.d"
  "CMakeFiles/mind_storage.dir/storage/version_manager.cc.o"
  "CMakeFiles/mind_storage.dir/storage/version_manager.cc.o.d"
  "libmind_storage.a"
  "libmind_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
