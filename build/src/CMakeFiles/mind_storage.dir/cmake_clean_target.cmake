file(REMOVE_RECURSE
  "libmind_storage.a"
)
