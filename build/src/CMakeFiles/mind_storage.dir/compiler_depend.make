# Empty compiler generated dependencies file for mind_storage.
# This may be replaced when dependencies are built.
