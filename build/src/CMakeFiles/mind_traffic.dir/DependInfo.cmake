
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/aggregator.cc" "src/CMakeFiles/mind_traffic.dir/traffic/aggregator.cc.o" "gcc" "src/CMakeFiles/mind_traffic.dir/traffic/aggregator.cc.o.d"
  "/root/repo/src/traffic/anomaly_injector.cc" "src/CMakeFiles/mind_traffic.dir/traffic/anomaly_injector.cc.o" "gcc" "src/CMakeFiles/mind_traffic.dir/traffic/anomaly_injector.cc.o.d"
  "/root/repo/src/traffic/flow_generator.cc" "src/CMakeFiles/mind_traffic.dir/traffic/flow_generator.cc.o" "gcc" "src/CMakeFiles/mind_traffic.dir/traffic/flow_generator.cc.o.d"
  "/root/repo/src/traffic/indices.cc" "src/CMakeFiles/mind_traffic.dir/traffic/indices.cc.o" "gcc" "src/CMakeFiles/mind_traffic.dir/traffic/indices.cc.o.d"
  "/root/repo/src/traffic/topology.cc" "src/CMakeFiles/mind_traffic.dir/traffic/topology.cc.o" "gcc" "src/CMakeFiles/mind_traffic.dir/traffic/topology.cc.o.d"
  "/root/repo/src/traffic/trace_io.cc" "src/CMakeFiles/mind_traffic.dir/traffic/trace_io.cc.o" "gcc" "src/CMakeFiles/mind_traffic.dir/traffic/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_space.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mind_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
