file(REMOVE_RECURSE
  "CMakeFiles/mind_traffic.dir/traffic/aggregator.cc.o"
  "CMakeFiles/mind_traffic.dir/traffic/aggregator.cc.o.d"
  "CMakeFiles/mind_traffic.dir/traffic/anomaly_injector.cc.o"
  "CMakeFiles/mind_traffic.dir/traffic/anomaly_injector.cc.o.d"
  "CMakeFiles/mind_traffic.dir/traffic/flow_generator.cc.o"
  "CMakeFiles/mind_traffic.dir/traffic/flow_generator.cc.o.d"
  "CMakeFiles/mind_traffic.dir/traffic/indices.cc.o"
  "CMakeFiles/mind_traffic.dir/traffic/indices.cc.o.d"
  "CMakeFiles/mind_traffic.dir/traffic/topology.cc.o"
  "CMakeFiles/mind_traffic.dir/traffic/topology.cc.o.d"
  "CMakeFiles/mind_traffic.dir/traffic/trace_io.cc.o"
  "CMakeFiles/mind_traffic.dir/traffic/trace_io.cc.o.d"
  "libmind_traffic.a"
  "libmind_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
