file(REMOVE_RECURSE
  "libmind_traffic.a"
)
