# Empty dependencies file for mind_traffic.
# This may be replaced when dependencies are built.
