file(REMOVE_RECURSE
  "CMakeFiles/mind_util.dir/util/bitcode.cc.o"
  "CMakeFiles/mind_util.dir/util/bitcode.cc.o.d"
  "CMakeFiles/mind_util.dir/util/ip.cc.o"
  "CMakeFiles/mind_util.dir/util/ip.cc.o.d"
  "CMakeFiles/mind_util.dir/util/logging.cc.o"
  "CMakeFiles/mind_util.dir/util/logging.cc.o.d"
  "CMakeFiles/mind_util.dir/util/rng.cc.o"
  "CMakeFiles/mind_util.dir/util/rng.cc.o.d"
  "CMakeFiles/mind_util.dir/util/status.cc.o"
  "CMakeFiles/mind_util.dir/util/status.cc.o.d"
  "libmind_util.a"
  "libmind_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
