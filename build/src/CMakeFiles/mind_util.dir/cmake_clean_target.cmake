file(REMOVE_RECURSE
  "libmind_util.a"
)
