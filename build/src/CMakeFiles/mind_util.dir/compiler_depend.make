# Empty compiler generated dependencies file for mind_util.
# This may be replaced when dependencies are built.
