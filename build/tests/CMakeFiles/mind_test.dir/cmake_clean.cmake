file(REMOVE_RECURSE
  "CMakeFiles/mind_test.dir/mind_test.cc.o"
  "CMakeFiles/mind_test.dir/mind_test.cc.o.d"
  "mind_test"
  "mind_test.pdb"
  "mind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
