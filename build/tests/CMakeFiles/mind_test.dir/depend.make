# Empty dependencies file for mind_test.
# This may be replaced when dependencies are built.
