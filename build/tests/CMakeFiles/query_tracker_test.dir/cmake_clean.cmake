file(REMOVE_RECURSE
  "CMakeFiles/query_tracker_test.dir/query_tracker_test.cc.o"
  "CMakeFiles/query_tracker_test.dir/query_tracker_test.cc.o.d"
  "query_tracker_test"
  "query_tracker_test.pdb"
  "query_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
