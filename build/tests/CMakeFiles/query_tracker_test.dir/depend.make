# Empty dependencies file for query_tracker_test.
# This may be replaced when dependencies are built.
