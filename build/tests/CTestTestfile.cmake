# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/space_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/mind_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/anomaly_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/query_tracker_test[1]_include.cmake")
