// Alpha-flow monitoring with operator-style drill-down (paper §1, §5):
// a broad Index-2 query finds windows with unusually large transfers, then
// progressively narrower queries isolate the flow — destination prefix, then
// the set of monitors on its path.
#include <cstdio>
#include <map>

#include "anomaly/mind_detector.h"
#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

namespace {

QueryResult Ask(MindNet& net, size_t from, const Rect& q) {
  auto r = RunQueryBlocking(net, from, "index2_octets", q);
  return r.value_or(QueryResult{});
}

}  // namespace

int main() {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 555;
  FlowGenerator gen(topo, gopts);

  auto net = MakeDeployment(topo, {.replication = 1, .seed = 556});
  CreatePaperIndices(*net, {}, false, /*idx2=*/true, false);

  // Fifteen minutes of traffic with a bulk exfiltration-sized transfer.
  AnomalyEvent alpha;
  alpha.type = AnomalyType::kAlphaFlow;
  alpha.start_sec = 40200;
  alpha.duration_sec = 180;
  alpha.src_prefix = 11;
  alpha.dst_prefix = 29;
  alpha.magnitude = 8e9;  // 8 GB raw

  TraceDriveOptions topts;
  topts.t0_sec = 39900;
  topts.t1_sec = 40800;
  topts.feed_index1 = false;
  topts.feed_index3 = false;
  topts.anomalies = {alpha};
  auto drive = DriveTrace(*net, gen, topts);
  std::printf("indexed %zu Index-2 tuples from %zu aggregates\n\n",
              drive.inserted2, drive.aggregates);

  const IndexDef* def = net->node(0).GetIndexDef("index2_octets");
  const Value max_octets = def->schema.attr(2).max;

  // Step 1 — broad sweep: any flows above 1 MB reported in the window?
  Rect broad({{0, 0xFFFFFFFFull}, {39900, 40800}, {1 << 20, max_octets}});
  QueryResult r1 = Ask(*net, 0, broad);
  std::printf("step 1: octets >= 1MB anywhere        -> %zu records "
              "(%.0f ms)\n",
              r1.tuples.size(), ToMillis(r1.latency));
  if (r1.tuples.empty()) return 1;

  // Step 2 — drill into the heaviest destination prefix.
  std::map<Value, uint64_t> by_dst;
  for (const auto& t : r1.tuples) by_dst[t.point[0]] += t.point[2];
  Value heaviest = 0;
  uint64_t best = 0;
  for (auto& [dst, sum] : by_dst) {
    if (sum > best) {
      best = sum;
      heaviest = dst;
    }
  }
  IpPrefix victim(static_cast<IpAddr>(heaviest), 16);
  Rect narrow({{victim.First(), victim.Last()},
               {39900, 40800},
               {1 << 20, max_octets}});
  QueryResult r2 = Ask(*net, 5, narrow);
  std::printf("step 2: drill into %s -> %zu records (%.0f ms)\n",
              victim.ToString().c_str(), r2.tuples.size(), ToMillis(r2.latency));

  // Step 3 — the by-product: which monitors saw the flow (its path).
  std::printf("step 3: monitors on the flow's path:   ");
  std::map<int, int> monitors;
  for (const auto& t : r2.tuples) monitors[t.origin]++;
  for (auto& [router, count] : monitors) {
    std::printf("%s(%d) ", topo.router(router).name.c_str(), count);
  }
  std::printf("\n\ninjected alpha flow targeted %s -> %s\n",
              gen.prefix(alpha.dst_prefix).ToString().c_str(),
              victim == gen.prefix(alpha.dst_prefix) ? "correctly isolated"
                                                     : "missed");
  return victim == gen.prefix(alpha.dst_prefix) ? 0 : 1;
}
