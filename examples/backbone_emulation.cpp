// The full paper §4.2 baseline in miniature: a 34-node deployment matching
// the Abilene + GÉANT router geography, all three monitoring indices,
// trace-driven insertion, and the on-line histogram/re-balancing service
// (§3.7) opening a balanced version 2 for the "next day".
#include <cstdio>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::AbileneGeant();
  std::printf("deployment: %zu nodes (11 Abilene + 23 GEANT), geographic "
              "latencies\n",
              topo.size());

  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 80;
  gopts.seed = 4242;
  FlowGenerator gen(topo, gopts);

  auto net = MakeDeployment(topo, {.replication = 1, .seed = 4243});
  CreatePaperIndices(*net);

  // Day 0: insert an hour of traffic into version 1 (even cuts).
  TraceDriveOptions topts;
  topts.day = 0;
  topts.t0_sec = 39600;
  topts.t1_sec = 41400;
  auto d0 = DriveTrace(*net, gen, topts);
  std::printf("day 0: %zu aggregates -> idx1=%zu idx2=%zu idx3=%zu tuples\n",
              d0.aggregates, d0.inserted1, d0.inserted2, d0.inserted3);

  auto spread = [&](const char* when) {
    auto dist = net->PrimaryTupleDistribution("index2_octets");
    size_t max = 0, nonzero = 0, total = 0;
    for (size_t c : dist) {
      max = std::max(max, c);
      total += c;
      if (c) ++nonzero;
    }
    std::printf("%s: index2 storage max/mean = %.1fx over %zu/%zu nodes\n",
                when, total ? static_cast<double>(max) * dist.size() / total : 0,
                nonzero, dist.size());
  };
  spread("after day 0 (even cuts)");

  // Overnight: the designated node collects per-node histograms over the
  // overlay and installs balanced cuts as version 2, shifted one day forward.
  for (const char* index :
       {"index1_fanout", "index2_octets", "index3_flowsize"}) {
    MindNode::RebalanceParams params;
    params.index = index;
    params.source_version = 1;
    params.bins_per_dim = 64;
    params.cut_depth = 12;
    params.new_version = 2;
    params.new_start = 86400;  // version 2 owns day 1 onward
    params.collect_window = FromSeconds(20);
    params.time_shift = 86400;
    Status st = net->node(0).StartRebalance(params, [index](Status s) {
      std::printf("rebalance of %s: %s\n", index, s.ToString().c_str());
    });
    if (!st.ok()) {
      std::fprintf(stderr, "rebalance start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    net->sim().RunFor(FromSeconds(40));
  }

  // Day 1 arrives into the balanced version 2; day 0's data remains in
  // version 1 and still serves queries over its time range (§3.7: data is
  // never migrated).
  topts.day = 1;
  auto d1 = DriveTrace(*net, gen, topts);
  std::printf("day 1: %zu aggregates -> idx1=%zu idx2=%zu idx3=%zu tuples\n",
              d1.aggregates, d1.inserted1, d1.inserted2, d1.inserted3);
  spread("after day 1 (balanced cuts)");

  // A monitoring query spanning both days exercises both versions.
  const IndexDef* def = net->node(0).GetIndexDef("index2_octets");
  Rect q({{0, 0xFFFFFFFFull},
          {0, def->schema.attr(1).max},
          {100 * 1024, def->schema.attr(2).max}});
  auto result = RunQueryBlocking(*net, 7, "index2_octets", q);
  if (!result) return 1;
  std::printf("cross-version query: %zu records from %zu nodes in %.0f ms "
              "(%s)\n",
              result->tuples.size(), result->responders,
              ToMillis(result->latency),
              result->complete ? "complete" : "timed out");
  return 0;
}
