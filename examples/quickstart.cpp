// Quickstart: build a small MIND deployment, create an index, insert
// multi-attribute records from several nodes and run a range query.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <optional>

#include "mind/mind_net.h"

using namespace mind;

int main() {
  // A simulated 8-node deployment (one process; virtual time).
  MindNetOptions options;
  options.sim.seed = 42;
  options.mind.replication = 1;  // one replica per record
  MindNet net(8, options);
  if (Status st = net.Build(); !st.ok()) {
    std::fprintf(stderr, "overlay build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("overlay of %zu nodes built; vertex codes:\n", net.size());
  for (size_t i = 0; i < net.size(); ++i) {
    std::printf("  node %zu -> %s\n", i,
                net.node(i).overlay().code().ToString().c_str());
  }

  // Create an index: 3 indexed attributes, 'ts' selects daily versions.
  IndexDef def;
  def.name = "quickstart";
  def.schema = Schema({{"temperature", 0, 120},
                       {"ts", 0, 86400ull * 30},
                       {"sensor", 0, 10000}});
  def.carried = {"reading_id"};
  def.time_attr = 1;
  auto cuts = std::make_shared<CutTree>(CutTree::Even(def.schema));
  if (Status st = net.CreateIndexEverywhere(def, cuts); !st.ok()) {
    std::fprintf(stderr, "create_index failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("index '%s' created on every node\n", def.name.c_str());

  // Insert 500 records from alternating nodes.
  Rng rng(7);
  for (uint64_t i = 0; i < 500; ++i) {
    Tuple t;
    t.point = {rng.Uniform(121), 1000 + i * 60, rng.Uniform(10000)};
    t.extra = {i};
    t.origin = static_cast<int>(i % net.size());
    t.seq = i;
    Status st = net.node(i % net.size()).Insert("quickstart", std::move(t));
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (i % 50 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(20));
  std::printf("stored %zu records across the deployment\n",
              net.TotalPrimaryTuples("quickstart"));

  // Multi-dimensional range query: hot readings in a time window.
  Rect query({{90, 120},                 // temperature in [90, 120]
              {1000, 1000 + 200 * 60},   // the first 200 minutes
              {0, 10000}});              // any sensor
  std::optional<QueryResult> result;
  auto qid = net.node(3).Query("quickstart", query,
                               [&](const QueryResult& r) { result = r; });
  if (!qid.ok()) {
    std::fprintf(stderr, "query failed: %s\n", qid.status().ToString().c_str());
    return 1;
  }
  while (!result.has_value()) net.sim().RunFor(FromMillis(100));

  std::printf("query %s in %.0f ms: %zu matches from %zu nodes\n",
              result->complete ? "completed" : "timed out",
              ToMillis(result->latency), result->tuples.size(),
              result->responders);
  for (size_t i = 0; i < std::min<size_t>(5, result->tuples.size()); ++i) {
    const Tuple& t = result->tuples[i];
    std::printf("  temperature=%llu ts=%llu sensor=%llu (reading %llu, "
                "monitor %d)\n",
                (unsigned long long)t.point[0], (unsigned long long)t.point[1],
                (unsigned long long)t.point[2], (unsigned long long)t.extra[0],
                t.origin);
  }
  return 0;
}
