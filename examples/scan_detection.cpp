// Port-scan detection on an Abilene-shaped deployment: the paper's Index-1
// workflow end to end. Monitors aggregate raw NetFlow into 30 s prefix-pair
// records, filter by fanout, insert into MIND, and a periodic operator query
// ("sources connecting to more than F hosts in the last 5 minutes") flags
// the injected scanner.
#include <cstdio>

#include "anomaly/mind_detector.h"
#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main() {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 100;
  gopts.seed = 2024;
  FlowGenerator gen(topo, gopts);

  auto net = MakeDeployment(topo, {.replication = 1, .seed = 99});
  CreatePaperIndices(*net, {}, /*idx1=*/true, /*idx2=*/false, /*idx3=*/false);
  std::printf("11-monitor deployment congruent to the Abilene backbone\n");

  // Ten minutes of traffic with a port scan against one customer prefix.
  AnomalyEvent scan;
  scan.type = AnomalyType::kPortScan;
  scan.start_sec = 36300;
  scan.duration_sec = 90;
  scan.src_prefix = 6;
  scan.dst_prefix = 14;
  scan.magnitude = 40000;  // raw probes/second

  TraceDriveOptions topts;
  topts.t0_sec = 36000;
  topts.t1_sec = 36600;
  topts.feed_index2 = false;
  topts.feed_index3 = false;
  topts.anomalies = {scan};
  auto drive = DriveTrace(*net, gen, topts);
  std::printf("drove %zu raw flow records -> %zu aggregates -> %zu Index-1 "
              "tuples\n",
              drive.raw_records, drive.aggregates, drive.inserted1);

  // The operator's periodic monitoring query from the Chicago node.
  MindAnomalyDetector detector(net.get(), "index1_fanout", "index1_fanout");
  int chin = topo.FindRouter("CHIN");
  auto outcome = detector.QueryFanout({static_cast<size_t>(chin)},
                                      36300, 36600, /*min_fanout=*/1500);
  std::printf("\nquery: fanout > 1500 within [36300, 36600] -> %zu records "
              "in %.0f ms\n",
              outcome.result_size, outcome.avg_response_sec * 1000);
  for (const auto& t : outcome.tuples) {
    std::printf("  dst_prefix=%s window=%llu fanout=%llu src_prefix=%s seen "
                "at %s\n",
                IpPrefix(static_cast<IpAddr>(t.point[0]), 16).ToString().c_str(),
                (unsigned long long)t.point[1], (unsigned long long)t.point[2],
                IpPrefix(static_cast<IpAddr>(t.extra[0]), 16).ToString().c_str(),
                topo.router(t.origin).name.c_str());
  }

  bool hit = false;
  for (const auto& t : outcome.tuples) {
    if (t.point[0] == gen.prefix(scan.dst_prefix).First()) hit = true;
  }
  std::printf("\ninjected scan against %s %s\n",
              gen.prefix(scan.dst_prefix).ToString().c_str(),
              hit ? "DETECTED" : "missed");
  return hit ? 0 : 1;
}
