#include "anomaly/ground_truth.h"

#include <algorithm>
#include <map>

namespace mind {

std::vector<DetectedAnomaly> GroundTruthDetector::Detect(
    const std::vector<AggregateRecord>& aggregates) const {
  // Group anomalous aggregates by (type-class, src, dst).
  struct Key {
    bool is_alpha;
    IpAddr src;
    IpAddr dst;
    bool operator<(const Key& o) const {
      if (is_alpha != o.is_alpha) return is_alpha < o.is_alpha;
      if (src != o.src) return src < o.src;
      return dst < o.dst;
    }
  };
  struct Group {
    std::vector<const AggregateRecord*> records;
  };
  std::map<Key, Group> groups;
  for (const auto& rec : aggregates) {
    if (rec.octets > options_.alpha_octets) {
      groups[Key{true, rec.src_prefix.First(), rec.dst_prefix.First()}]
          .records.push_back(&rec);
    }
    if (rec.fanout > options_.fanout) {
      groups[Key{false, rec.src_prefix.First(), rec.dst_prefix.First()}]
          .records.push_back(&rec);
    }
  }

  std::vector<DetectedAnomaly> out;
  for (auto& [key, group] : groups) {
    DetectedAnomaly a;
    a.src_prefix = group.records[0]->src_prefix;
    a.dst_prefix = group.records[0]->dst_prefix;
    a.record_count = group.records.size();
    a.first_window = UINT64_MAX;
    uint32_t max_distinct = 0;
    for (const auto* rec : group.records) {
      a.first_window = std::min(a.first_window, rec->window_start);
      a.last_window = std::max(a.last_window, rec->window_start);
      a.observers.insert(rec->router);
      a.peak = std::max(a.peak, key.is_alpha ? rec->octets
                                             : static_cast<uint64_t>(rec->fanout));
      max_distinct = std::max(max_distinct, rec->distinct_dsts);
    }
    if (key.is_alpha) {
      a.type = AnomalyType::kAlphaFlow;
    } else {
      // Many distinct victims => scan; concentrated on one or a few => DoS.
      a.type = max_distinct > 16 ? AnomalyType::kPortScan : AnomalyType::kDos;
    }
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(),
            [](const DetectedAnomaly& a, const DetectedAnomaly& b) {
              return a.first_window < b.first_window;
            });
  return out;
}

}  // namespace mind
