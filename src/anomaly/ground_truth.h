// Offline centralized anomaly detection over the full aggregate-record
// stream. Plays the role of Lakhina et al.'s independent off-line analysis
// in the paper's §5 experiment: it defines the ground-truth anomaly set that
// MIND queries are checked against (recall, result-size tightness).
#ifndef MIND_ANOMALY_GROUND_TRUTH_H_
#define MIND_ANOMALY_GROUND_TRUTH_H_

#include <set>
#include <vector>

#include "traffic/anomaly_injector.h"
#include "traffic/flow.h"

namespace mind {

struct GroundTruthOptions {
  /// A (src, dst, window) aggregate whose octets exceed this is an alpha
  /// flow. (Reported NetFlow volume, i.e. post-sampling.)
  uint64_t alpha_octets = 4'000'000;
  /// A (src, dst, window) aggregate whose fanout exceeds this is a DoS flood
  /// or port scan.
  uint32_t fanout = 1500;
};

struct DetectedAnomaly {
  AnomalyType type = AnomalyType::kAlphaFlow;
  /// First and last window (seconds since epoch) of the event.
  uint64_t first_window = 0;
  uint64_t last_window = 0;
  IpPrefix src_prefix;
  IpPrefix dst_prefix;
  /// Peak metric value (octets or fanout).
  uint64_t peak = 0;
  /// Monitors that observed the anomalous aggregates (the path by-product).
  std::set<int> observers;
  /// Number of aggregate records constituting the anomaly ("actual size").
  size_t record_count = 0;
};

/// \brief Scans all aggregates and groups threshold crossings into events.
///
/// Aggregates from the same (src, dst) prefix pair in consecutive or
/// identical windows merge into a single anomaly; DoS vs port scan is told
/// apart by the number of distinct destination hosts.
class GroundTruthDetector {
 public:
  explicit GroundTruthDetector(GroundTruthOptions options = {})
      : options_(options) {}

  std::vector<DetectedAnomaly> Detect(
      const std::vector<AggregateRecord>& aggregates) const;

 private:
  GroundTruthOptions options_;
};

}  // namespace mind

#endif  // MIND_ANOMALY_GROUND_TRUTH_H_
