#include "anomaly/mind_detector.h"

#include <optional>

#include "util/logging.h"

namespace mind {

DetectionOutcome MindAnomalyDetector::RunFromAll(
    const std::string& index, const std::vector<size_t>& from, const Rect& q) {
  DetectionOutcome outcome;
  double total_latency = 0;
  bool first = true;
  for (size_t node : from) {
    std::optional<QueryResult> result;
    auto qid = net_->node(node).Query(index, q,
                                      [&](const QueryResult& r) { result = r; });
    MIND_CHECK_OK(qid.status());
    SimTime deadline = net_->sim().now() + FromSeconds(120);
    while (!result.has_value() && net_->sim().now() < deadline) {
      net_->sim().RunFor(FromMillis(100));
    }
    if (!result.has_value()) {
      outcome.all_complete = false;
      continue;
    }
    outcome.all_complete = outcome.all_complete && result->complete;
    total_latency += ToSeconds(result->latency);
    if (first) {
      outcome.tuples = result->tuples;
      outcome.result_size = result->tuples.size();
      for (const auto& t : result->tuples) outcome.observers.insert(t.origin);
      first = false;
    }
  }
  if (!from.empty()) {
    outcome.avg_response_sec = total_latency / static_cast<double>(from.size());
  }
  return outcome;
}

DetectionOutcome MindAnomalyDetector::QueryFanout(
    const std::vector<size_t>& from, uint64_t t1_sec, uint64_t t2_sec,
    uint32_t min_fanout) {
  const IndexDef* def = net_->node(from.at(0)).GetIndexDef(index1_);
  MIND_CHECK(def != nullptr);
  // Values above the attribute bound are stored clamped to it (paper
  // footnote: "assigned the largest possible range"), so a threshold beyond
  // the bound becomes a query for the bound itself.
  Value max = def->schema.attr(2).max;
  Rect q({{0, 0xFFFFFFFFull},
          {t1_sec, t2_sec},
          {std::min<Value>(min_fanout + 1, max), max}});
  return RunFromAll(index1_, from, q);
}

DetectionOutcome MindAnomalyDetector::QueryOctets(
    const std::vector<size_t>& from, uint64_t t1_sec, uint64_t t2_sec,
    uint64_t min_octets) {
  const IndexDef* def = net_->node(from.at(0)).GetIndexDef(index2_);
  MIND_CHECK(def != nullptr);
  Value max = def->schema.attr(2).max;
  Rect q({{0, 0xFFFFFFFFull},
          {t1_sec, t2_sec},
          {std::min<Value>(min_octets + 1, max), max}});
  return RunFromAll(index2_, from, q);
}

bool MindAnomalyDetector::Captures(const DetectionOutcome& outcome,
                                   const DetectedAnomaly& anomaly) {
  for (const auto& t : outcome.tuples) {
    // Tuple layout for Index-1/2: (dst_prefix, timestamp, metric).
    if (t.point.size() < 2) continue;
    if (t.point[0] == anomaly.dst_prefix.First() &&
        t.point[1] >= anomaly.first_window &&
        t.point[1] <= anomaly.last_window) {
      return true;
    }
  }
  return false;
}

}  // namespace mind
