// Query-driven anomaly detection against a running MIND deployment — the
// distributed side of the §5 experiment. Issues the paper's two query
// templates and measures recall against ground truth, result-set size and
// average response time over all issuing nodes.
#ifndef MIND_ANOMALY_MIND_DETECTOR_H_
#define MIND_ANOMALY_MIND_DETECTOR_H_

#include <set>
#include <string>
#include <vector>

#include "anomaly/ground_truth.h"
#include "mind/mind_net.h"

namespace mind {

/// Aggregated outcome of issuing the same anomaly query from several nodes.
struct DetectionOutcome {
  /// Tuples of the (deduplicated) result set from the first issuing node.
  std::vector<Tuple> tuples;
  /// Result size ("Result size" column of Figure 17).
  size_t result_size = 0;
  /// Mean query latency across issuing nodes, seconds ("Average Response
  /// time(s)" column).
  double avg_response_sec = 0;
  /// All queries completed (no timeouts).
  bool all_complete = true;
  /// Monitors appearing in the result (the path by-product).
  std::set<int> observers;
};

class MindAnomalyDetector {
 public:
  /// `index1` / `index2` are the names of the paper's Index-1 and Index-2
  /// as created on `net`.
  MindAnomalyDetector(MindNet* net, std::string index1, std::string index2)
      : net_(net), index1_(std::move(index1)), index2_(std::move(index2)) {}

  /// §5 DoS/scan query: all records with fanout > min_fanout in
  /// [t1_sec, t2_sec]; issued from every node in `from`.
  DetectionOutcome QueryFanout(const std::vector<size_t>& from,
                               uint64_t t1_sec, uint64_t t2_sec,
                               uint32_t min_fanout);

  /// §5 alpha-flow query: all records with octets > min_octets in
  /// [t1_sec, t2_sec].
  DetectionOutcome QueryOctets(const std::vector<size_t>& from,
                               uint64_t t1_sec, uint64_t t2_sec,
                               uint64_t min_octets);

  /// True if the result captures the anomaly: some returned tuple matches
  /// the anomaly's destination prefix within its window span (the paper
  /// reports "perfect recall": every anomaly's records are a subset of the
  /// query result).
  static bool Captures(const DetectionOutcome& outcome,
                       const DetectedAnomaly& anomaly);

 private:
  DetectionOutcome RunFromAll(const std::string& index,
                              const std::vector<size_t>& from, const Rect& q);

  MindNet* net_;
  std::string index1_;
  std::string index2_;
};

}  // namespace mind

#endif  // MIND_ANOMALY_MIND_DETECTOR_H_
