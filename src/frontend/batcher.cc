#include "frontend/batcher.h"

namespace mind {
namespace frontend {

Batcher::Offer Batcher::Push(Tuple* tuple, SimTime now) {
  if (queued_tuples_ >= options_.queue_max_tuples) {
    return options_.policy == OverflowPolicy::kDropNewest ? Offer::kDropped
                                                          : Offer::kDeferred;
  }
  if (open_.empty()) open_since_ = now;
  open_bytes_ += tuple->WireBytes();
  open_.push_back(std::move(*tuple));
  ++queued_tuples_;
  if (open_.size() >= options_.batch_max_tuples ||
      open_bytes_ >= options_.batch_max_bytes) {
    CloseOpen();
  }
  return Offer::kAccepted;
}

void Batcher::CloseOpen() {
  if (open_.empty()) return;
  ready_.push_back(std::move(open_));
  open_.clear();
  open_bytes_ = 0;
}

void Batcher::FlushOpen() { CloseOpen(); }

bool Batcher::HasReady(SimTime now) const {
  if (!ready_.empty()) return true;
  return !open_.empty() && now >= open_since_ + options_.flush_deadline;
}

std::vector<Tuple> Batcher::TakeReady(SimTime now) {
  if (ready_.empty() && !open_.empty() &&
      now >= open_since_ + options_.flush_deadline) {
    CloseOpen();
  }
  if (ready_.empty()) return {};
  std::vector<Tuple> batch = std::move(ready_.front());
  ready_.pop_front();
  queued_tuples_ -= batch.size();
  return batch;
}

std::optional<SimTime> Batcher::NextDeadline() const {
  if (open_.empty()) return std::nullopt;
  return open_since_ + options_.flush_deadline;
}

}  // namespace frontend
}  // namespace mind
