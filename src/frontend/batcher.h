// Batcher: coalesces a lane's tuples into InsertBatch trains under a
// byte/latency budget, with a bounded queue and an explicit overflow policy.
//
// This is a passive state machine — it never touches the simulator. The
// ingest pipeline owns one Batcher per (monitor, index) lane, offers tuples
// as the trace replays, and flushes whatever is ready on each pump tick; unit
// tests drive it directly with synthetic clocks.
//
// Semantics:
//   * An *open* batch accumulates offers. It closes (becomes ready to send)
//     when it reaches batch_max_tuples, when its wire size reaches
//     batch_max_bytes (high-water: the closing tuple rides along, so a batch
//     may exceed the byte budget by one tuple), or when flush_deadline has
//     passed since its first tuple — whichever comes first.
//   * queue_max_tuples bounds everything buffered (closed + open). At the
//     bound, kDropNewest discards the offered tuple; kDefer refuses it, which
//     the pipeline turns into back-pressure on the trace source.
#ifndef MIND_FRONTEND_BATCHER_H_
#define MIND_FRONTEND_BATCHER_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "sim/time.h"
#include "storage/tuple.h"

namespace mind {
namespace frontend {

enum class OverflowPolicy {
  kDropNewest,  ///< discard the offered tuple (lossy, bounded latency)
  kDefer,       ///< refuse the offer; caller must retry (lossless, stalls)
};

struct BatcherOptions {
  /// Tuple-count budget per batch.
  size_t batch_max_tuples = 64;
  /// Wire-size budget per batch (Tuple::WireBytes sum; high-water mark).
  size_t batch_max_bytes = 4096;
  /// An under-budget open batch is flushed once it is this old.
  SimTime flush_deadline = FromMillis(500);
  /// Bound on buffered tuples (closed batches + the open one).
  size_t queue_max_tuples = 4096;
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
};

class Batcher {
 public:
  explicit Batcher(BatcherOptions options) : options_(options) {}

  enum class Offer { kAccepted, kDropped, kDeferred };

  /// Offers one tuple at virtual time `now`. The tuple is moved from only
  /// on kAccepted; on kDeferred it stays with the caller for a later retry
  /// (kDefer is lossless), and on kDropped the caller discards it.
  Offer Push(Tuple* tuple, SimTime now);

  /// True when a batch can be taken: a closed batch is queued, or the open
  /// batch has passed its flush deadline.
  bool HasReady(SimTime now) const;

  /// Takes the oldest ready batch (empty if none).
  std::vector<Tuple> TakeReady(SimTime now);

  /// Closes the open batch regardless of budget (end-of-trace drain).
  void FlushOpen();

  /// Deadline at which the open batch becomes ready by age, if one is open.
  std::optional<SimTime> NextDeadline() const;

  size_t queued_tuples() const { return queued_tuples_; }
  size_t ready_batches() const { return ready_.size(); }
  bool empty() const { return queued_tuples_ == 0; }

 private:
  void CloseOpen();

  BatcherOptions options_;
  std::deque<std::vector<Tuple>> ready_;
  std::vector<Tuple> open_;
  size_t open_bytes_ = 0;
  SimTime open_since_ = 0;
  size_t queued_tuples_ = 0;
};

}  // namespace frontend
}  // namespace mind

#endif  // MIND_FRONTEND_BATCHER_H_
