// Frontend: the facade bundling the live front-end's two halves — the
// streaming ingest pipeline and the concurrent query service — over one
// MindNet deployment (DESIGN.md §12).
//
// Construction wires ingest into the service's cost model (every emitted
// tuple feeds the per-index selectivity histograms) and leaves both halves
// reachable for direct configuration. Everything is opt-in: deployments that
// never construct a Frontend are byte-for-byte unaffected.
#ifndef MIND_FRONTEND_FRONTEND_H_
#define MIND_FRONTEND_FRONTEND_H_

#include <memory>
#include <utility>

#include "frontend/ingest_pipeline.h"
#include "frontend/query_service.h"
#include "frontend/trace_source.h"

namespace mind {
namespace frontend {

struct FrontendOptions {
  IngestOptions ingest;
  QueryServiceOptions query;
  /// Feed ingest tuples into the query service's selectivity histograms
  /// (the admission controller's cost estimates stay 0 without it).
  bool wire_cost_observer = true;
};

class Frontend {
 public:
  /// Owns the source; the net must outlive the Frontend.
  Frontend(MindNet* net, std::unique_ptr<TraceSource> source,
           FrontendOptions options = {})
      : source_(std::move(source)),
        service_(net, options.query),
        ingest_(net, source_.get(), options.ingest) {
    if (options.wire_cost_observer) {
      ingest_.set_on_tuple([this](const std::string& index, const Tuple& t) {
        service_.ObserveInsert(index, t.point);
      });
    }
  }

  /// Begins trace replay (see IngestPipeline::Start).
  void Start() { ingest_.Start(); }

  IngestPipeline& ingest() { return ingest_; }
  QueryService& queries() { return service_; }

 private:
  std::unique_ptr<TraceSource> source_;
  QueryService service_;
  IngestPipeline ingest_;
};

}  // namespace frontend
}  // namespace mind

#endif  // MIND_FRONTEND_FRONTEND_H_
