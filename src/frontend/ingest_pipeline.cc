#include "frontend/ingest_pipeline.h"

#include "util/logging.h"

namespace mind {
namespace frontend {

IngestPipeline::IngestPipeline(MindNet* net, TraceSource* source,
                               IngestOptions options)
    : net_(net), source_(source), options_(options),
      aggregator_(options.agg) {
  auto& m = net_->sim().metrics();
  tm_.records = &m.counter("frontend.ingest.records");
  tm_.aggregates = &m.counter("frontend.ingest.aggregates");
  tm_.tuples = &m.counter("frontend.ingest.tuples");
  tm_.dropped = &m.counter("frontend.ingest.dropped");
  tm_.deferrals = &m.counter("frontend.ingest.deferrals");
  tm_.batches = &m.counter("frontend.ingest.batches");
  tm_.batch_tuples = &m.histogram("frontend.ingest.batch_tuples");
  tm_.queue_depth = &m.histogram("frontend.ingest.queue_depth");
}

void IngestPipeline::Start() {
  MIND_CHECK(!started_);
  started_ = true;
  epoch_ = net_->sim().now();
  if (options_.t0_sec < 0) {
    // Derive the replay origin from the first record.
    FlowRecord r;
    auto more = source_->Next(&r);
    if (!more.ok()) {
      source_status_ = more.status();
      source_done_ = true;
    } else if (!more.value()) {
      source_done_ = true;
    } else {
      lookahead_ = r;
      have_lookahead_ = true;
      options_.t0_sec = r.time_sec;
    }
    if (source_done_) options_.t0_sec = 0;
  }
  net_->sim().events().Schedule(0, [this] { Pump(); });
}

void IngestPipeline::PullUpTo(double trace_now) {
  while (true) {
    if (!have_lookahead_) {
      FlowRecord r;
      auto more = source_->Next(&r);
      if (!more.ok()) {
        // A malformed trace stops ingest at the corruption point; what was
        // already pulled still drains normally.
        source_status_ = more.status();
        source_done_ = true;
        return;
      }
      if (!more.value()) {
        source_done_ = true;
        return;
      }
      lookahead_ = r;
      have_lookahead_ = true;
    }
    if (lookahead_.time_sec > trace_now) return;
    aggregator_.Add(lookahead_);
    have_lookahead_ = false;
    ++records_in_;
    tm_.records->Inc();
  }
}

bool IngestPipeline::OfferTuple(int monitor, const std::string& index,
                                Tuple tuple) {
  SimTime now = net_->sim().now();
  Batcher& lane = lanes_.try_emplace(LaneKey{monitor, index},
                                     Batcher(options_.batcher))
                      .first->second;
  switch (lane.Push(&tuple, now)) {
    case Batcher::Offer::kAccepted:
      return true;
    case Batcher::Offer::kDropped:
      ++tuples_dropped_;
      tm_.dropped->Inc();
      return true;
    case Batcher::Offer::kDeferred:
      holdover_.emplace_back(LaneKey{monitor, index}, std::move(tuple));
      return false;
  }
  return true;  // unreachable
}

void IngestPipeline::EmitAggregates(std::vector<AggregateRecord> aggregates) {
  for (const auto& rec : aggregates) {
    tm_.aggregates->Inc();
    const int monitor = rec.router;
    auto emit = [&](const char* index, std::optional<Tuple> tup) {
      if (!tup.has_value()) return;
      ++tuples_out_;
      tm_.tuples->Inc();
      if (on_tuple_) on_tuple_(index, *tup);
      OfferTuple(monitor, index, std::move(*tup));
    };
    if (options_.feed_index1) {
      emit("index1_fanout", ToIndex1Tuple(rec, ++seq_, options_.index_opts));
    }
    if (options_.feed_index2) {
      emit("index2_octets", ToIndex2Tuple(rec, ++seq_, options_.index_opts));
    }
    if (options_.feed_index3) {
      emit("index3_flowsize", ToIndex3Tuple(rec, ++seq_, options_.index_opts));
    }
  }
}

void IngestPipeline::FlushLanes(SimTime now, bool force) {
  for (auto& [key, lane] : lanes_) {
    if (force) lane.FlushOpen();
    while (lane.HasReady(now)) {
      std::vector<Tuple> batch = lane.TakeReady(now);
      if (batch.empty()) break;
      ++batches_sent_;
      tm_.batches->Inc();
      tm_.batch_tuples->Record(static_cast<double>(batch.size()));
      (void)net_->node(static_cast<size_t>(key.first))
          .InsertBatch(key.second, std::move(batch));
    }
  }
  tm_.queue_depth->Record(static_cast<double>(queued_tuples()));
}

size_t IngestPipeline::queued_tuples() const {
  size_t total = holdover_.size();
  for (const auto& [key, lane] : lanes_) total += lane.queued_tuples();
  return total;
}

void IngestPipeline::Pump() {
  if (done_) return;
  const SimTime now = net_->sim().now();
  const double trace_now =
      options_.t0_sec +
      ToSeconds(now - epoch_) * options_.rate_multiplier;

  // Re-offer deferred tuples first; while any remain, back-pressure holds
  // and no new trace records are pulled (the replay falls behind).
  if (!holdover_.empty()) {
    ++defer_rounds_;
    tm_.deferrals->Inc();
    std::vector<std::pair<LaneKey, Tuple>> pending;
    pending.swap(holdover_);
    for (auto& [key, tup] : pending) {
      OfferTuple(key.first, key.second, std::move(tup));
    }
  }

  const bool pulling = holdover_.empty() && !source_done_;
  if (pulling) PullUpTo(trace_now);

  // Close aggregation windows only up to the fully-ingested watermark: when
  // deferring, records older than trace_now may still be un-pulled.
  const bool source_drained = source_done_ && !have_lookahead_;
  if (source_drained) {
    EmitAggregates(aggregator_.DrainAll());
  } else if (pulling) {
    EmitAggregates(aggregator_.DrainCompleted(trace_now));
  }

  const bool drained = source_drained &&
                       aggregator_.buffered_windows() == 0 &&
                       holdover_.empty();
  FlushLanes(now, /*force=*/drained);

  if (drained && queued_tuples() == 0) {
    done_ = true;
    return;
  }
  net_->sim().events().Schedule(options_.pump_interval, [this] { Pump(); });
}

}  // namespace frontend
}  // namespace mind
