// Streaming ingest pipeline: TraceSource -> Aggregator -> index tuples ->
// per-(monitor, index) Batcher lanes -> MindNode::InsertBatch.
//
// The pipeline replays a flow trace on the simulator's virtual clock: record
// timestamps map to sim time through a rate multiplier, and a periodic pump
// event pulls exactly the records whose replay time has arrived. Aggregation
// windows close on the trace clock (as in the paper's monitors), the
// resulting tuples are coalesced per lane by the Batcher, and ready batches
// are committed as InsertBatch trains from the observing monitor's node.
//
// Back-pressure is explicit: with OverflowPolicy::kDefer a full lane stops
// the pipeline from pulling new trace records (the replay falls behind until
// the lane drains); with kDropNewest overflowing tuples are counted and
// discarded. Both paths are visible under `frontend.ingest.*`.
//
// Determinism: lanes live in a std::map and are flushed in key order, the
// pump runs on the simulator's event queue, and all telemetry is passive —
// a frontend-driven run is bit-identically replayable (the --frontend mode
// of tools/check_determinism.sh enforces this).
#ifndef MIND_FRONTEND_INGEST_PIPELINE_H_
#define MIND_FRONTEND_INGEST_PIPELINE_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "frontend/batcher.h"
#include "frontend/trace_source.h"
#include "mind/mind_net.h"
#include "traffic/aggregator.h"
#include "traffic/indices.h"

namespace mind {
namespace frontend {

struct IngestOptions {
  /// Trace second that maps to the pipeline's start sim time; < 0 derives it
  /// from the first record.
  double t0_sec = -1.0;
  /// Trace seconds replayed per sim second (2.0 = replay at twice speed).
  double rate_multiplier = 1.0;
  /// Pump period (sim time). Bounds the granularity of deadline flushes, so
  /// keep it at or below the batcher's flush_deadline.
  SimTime pump_interval = FromMillis(250);
  /// Which paper indices the trace feeds.
  bool feed_index1 = true;
  bool feed_index2 = true;
  bool feed_index3 = true;
  PaperIndexOptions index_opts;
  AggregatorOptions agg;
  BatcherOptions batcher;
};

class IngestPipeline {
 public:
  /// Owns neither the net nor the source; both must outlive the pipeline.
  IngestPipeline(MindNet* net, TraceSource* source, IngestOptions options);

  /// Schedules the first pump at the current sim time. Call once; the
  /// pipeline then drives itself until the source is exhausted and every
  /// lane has drained.
  void Start();

  /// True once the trace is fully replayed and all lanes are flushed.
  bool done() const { return done_; }

  /// First source error, if the trace turned out to be malformed (the
  /// pipeline stops pulling and drains what it has).
  const Status& source_status() const { return source_status_; }

  /// Observer for every tuple emitted toward an index (fired before
  /// batching, including tuples later dropped by overflow). The front-end
  /// wires this to the query service's selectivity histograms.
  using TupleFn = std::function<void(const std::string& index, const Tuple&)>;
  void set_on_tuple(TupleFn fn) { on_tuple_ = std::move(fn); }

  // -- progress accessors (bench / tests) ---------------------------------
  uint64_t records_in() const { return records_in_; }
  uint64_t tuples_out() const { return tuples_out_; }
  uint64_t tuples_dropped() const { return tuples_dropped_; }
  uint64_t batches_sent() const { return batches_sent_; }
  uint64_t defer_rounds() const { return defer_rounds_; }
  /// Tuples currently buffered across all lanes.
  size_t queued_tuples() const;
  /// Tuples refused by a kDefer lane and parked in the holdover buffer.
  /// Driver-side state: a MindNet snapshot deliberately excludes it, which
  /// is why SaveSnapshot refuses to run while the pipeline is mid-flight.
  size_t holdover_tuples() const { return holdover_.size(); }

 private:
  using LaneKey = std::pair<int, std::string>;  // (monitor, index)

  void Pump();
  void PullUpTo(double trace_now);
  void EmitAggregates(std::vector<AggregateRecord> aggregates);
  /// Offers one tuple to its lane; returns false on a kDefer refusal (the
  /// tuple goes to the holdover buffer).
  bool OfferTuple(int monitor, const std::string& index, Tuple tuple);
  void FlushLanes(SimTime now, bool force);

  MindNet* net_;
  TraceSource* source_;
  IngestOptions options_;
  Aggregator aggregator_;

  SimTime epoch_ = 0;        // sim time of Start()
  bool started_ = false;
  bool done_ = false;
  bool source_done_ = false;
  Status source_status_ = Status::OK();
  bool have_lookahead_ = false;
  FlowRecord lookahead_;

  std::map<LaneKey, Batcher> lanes_;
  /// Tuples refused by a kDefer lane, re-offered before any new pull.
  std::vector<std::pair<LaneKey, Tuple>> holdover_;

  uint64_t seq_ = 0;  // unique per-pipeline tuple sequence
  uint64_t records_in_ = 0;
  uint64_t tuples_out_ = 0;
  uint64_t tuples_dropped_ = 0;
  uint64_t batches_sent_ = 0;
  uint64_t defer_rounds_ = 0;

  TupleFn on_tuple_;

  struct Instruments {
    telemetry::Counter* records;
    telemetry::Counter* aggregates;
    telemetry::Counter* tuples;
    telemetry::Counter* dropped;
    telemetry::Counter* deferrals;
    telemetry::Counter* batches;
    telemetry::SimHistogram* batch_tuples;
    telemetry::SimHistogram* queue_depth;
  };
  Instruments tm_;
};

}  // namespace frontend
}  // namespace mind

#endif  // MIND_FRONTEND_INGEST_PIPELINE_H_
