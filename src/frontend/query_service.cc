#include "frontend/query_service.h"

#include <algorithm>
#include <cstddef>

#include "util/logging.h"

namespace mind {
namespace frontend {

QueryService::QueryService(MindNet* net, QueryServiceOptions options)
    : net_(net), options_(options) {
  auto& m = net_->sim().metrics();
  tm_.submitted = &m.counter("frontend.query.submitted");
  tm_.admitted = &m.counter("frontend.query.admitted");
  tm_.queued = &m.counter("frontend.query.queued");
  tm_.rejected_quota = &m.counter("frontend.query.rejected_quota");
  tm_.rejected_cost = &m.counter("frontend.query.rejected_cost");
  tm_.rejected_overload = &m.counter("frontend.query.rejected_overload");
  tm_.completed = &m.counter("frontend.query.completed");
  tm_.deadline_cancels = &m.counter("frontend.query.deadline_cancels");
  tm_.standing_fires = &m.counter("frontend.query.standing_fires");
  tm_.latency_ms = &m.histogram("frontend.query.latency_ms");
  tm_.wait_ms = &m.histogram("frontend.query.wait_ms");
  tm_.result_tuples = &m.histogram("frontend.query.result_tuples");
  tm_.cost_estimate = &m.histogram("frontend.query.cost_estimate");
  // Per-index epochs advance as version-open broadcasts land; chains are
  // per-node, so track the maximum any node has reached. Versions opened
  // before the service existed (the initial index-creation flood, typically)
  // never reach the observer, so seed from the chains' current state.
  for (size_t i = 0; i < net_->size(); ++i) {
    MindNode& node = net_->node(i);
    for (const std::string& name : node.IndexNames()) {
      const IndexVersions* v = node.PrimaryVersions(name);
      if (v == nullptr) continue;
      uint64_t& e = epochs_[name];
      if (v->epoch() > e) e = v->epoch();
    }
    node.set_on_version_opened(
        [this](const std::string& index, VersionId /*version*/,
               uint64_t epoch) {
          uint64_t& e = epochs_[index];
          if (epoch > e) e = epoch;
        });
  }
}

ClientId QueryService::RegisterClient(NodeId home) {
  clients_.push_back(Client{home, 0});
  return static_cast<ClientId>(clients_.size() - 1);
}

uint64_t QueryService::IndexEpoch(const std::string& index) const {
  auto it = epochs_.find(index);
  return it == epochs_.end() ? 0 : it->second;
}

void QueryService::ObserveInsert(const std::string& index,
                                 const Point& point) {
  auto it = selectivity_.find(index);
  if (it == selectivity_.end()) {
    const IndexDef* def = net_->node(0).GetIndexDef(index);
    if (def == nullptr) return;  // not (yet) an index we know
    it = selectivity_
             .emplace(index, std::make_unique<Histogram>(
                                 def->schema, options_.cost_bins_per_dim))
             .first;
  }
  it->second->Add(point);
}

double QueryService::EstimateCost(const std::string& index,
                                  const Rect& rect) const {
  auto it = selectivity_.find(index);
  if (it == selectivity_.end()) return 0;  // cold: admit optimistically
  if (rect.dims() != it->second->schema().dims()) return 0;
  return it->second->MassInRect(rect);
}

Result<QueryService::SubmitOutcome> QueryService::Submit(
    ClientId client, const std::string& index, const Rect& rect,
    DeliverFn deliver, SimTime deadline) {
  return SubmitInternal(client, index, rect, std::move(deliver), deadline,
                        /*standing_id=*/0);
}

Result<QueryService::SubmitOutcome> QueryService::SubmitInternal(
    ClientId client, const std::string& index, const Rect& rect,
    DeliverFn deliver, SimTime deadline, uint64_t standing_id) {
  if (client >= clients_.size()) {
    return Status::NotFound("unknown client");
  }
  tm_.submitted->Inc();
  Client& c = clients_[client];
  if (c.active >= options_.per_client_quota) {
    ++rejected_total_;
    tm_.rejected_quota->Inc();
    return SubmitOutcome{Admission::kRejectedQuota, 0};
  }
  const double estimate = EstimateCost(index, rect);
  tm_.cost_estimate->Record(estimate);
  if (options_.max_cost_tuples > 0 && estimate > options_.max_cost_tuples) {
    ++rejected_total_;
    tm_.rejected_cost->Inc();
    return SubmitOutcome{Admission::kRejectedCost, 0};
  }
  const bool slot_free = inflight_ < options_.max_inflight;
  if (!slot_free && wait_queue_.size() >= options_.max_queue) {
    ++rejected_total_;
    tm_.rejected_overload->Inc();
    return SubmitOutcome{Admission::kRejectedOverload, 0};
  }

  const uint64_t ticket = ++ticket_seq_;
  Pending p;
  p.client = client;
  p.index = index;
  p.rect = rect;
  p.deliver = std::move(deliver);
  p.standing_id = standing_id;
  p.deadline = deadline > 0 ? deadline : options_.default_deadline;
  p.submitted = net_->sim().now();
  pending_.emplace(ticket, std::move(p));
  ++c.active;
  ++admitted_total_;
  tm_.admitted->Inc();

  if (slot_free) {
    Dispatch(ticket);
    return SubmitOutcome{Admission::kDispatched, ticket};
  }
  wait_queue_.push_back(ticket);
  tm_.queued->Inc();
  return SubmitOutcome{Admission::kQueued, ticket};
}

void QueryService::Dispatch(uint64_t ticket) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  MIND_CHECK(!p.dispatched);
  p.dispatched = true;
  ++inflight_;
  tm_.wait_ms->Record(ToSeconds(net_->sim().now() - p.submitted) * 1e3);

  const NodeId home = clients_[p.client].home;
  auto qid = net_->node(home).Query(
      p.index, p.rect,
      [this, ticket](const QueryResult& r) { OnCoreResult(ticket, r); });
  if (!qid.ok()) {
    // The core refused (unknown index, bad arity): complete as failed.
    QueryResult failed;
    failed.complete = false;
    OnCoreResult(ticket, failed);
    return;
  }
  p.core_query_id = *qid;
  p.deadline_event =
      net_->sim().events().Schedule(p.deadline, [this, ticket] {
        auto pit = pending_.find(ticket);
        if (pit == pending_.end() || !pit->second.dispatched) return;
        ++deadline_cancels_;
        tm_.deadline_cancels->Inc();
        const NodeId h = clients_[pit->second.client].home;
        // Reclaims the core-side trackers now; the core callback fires
        // inline with complete=false and lands in OnCoreResult.
        (void)net_->node(h).CancelQuery(pit->second.core_query_id);
      });
}

void QueryService::OnCoreResult(uint64_t ticket, const QueryResult& result) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.deadline_event) net_->sim().events().Cancel(p.deadline_event);
  --inflight_;
  --clients_[p.client].active;
  ++completed_total_;
  tm_.completed->Inc();

  QueryResult r = result;  // own a copy: delivery outlives the callback
  r.latency = net_->sim().now() - p.submitted;  // service-side latency
  tm_.latency_ms->Record(ToSeconds(r.latency) * 1e3);
  tm_.result_tuples->Record(static_cast<double>(r.tuples.size()));

  DispatchFromQueue();
  StreamResult(ticket, std::move(p), std::move(r));
}

void QueryService::StreamResult(uint64_t ticket, Pending pending,
                                QueryResult result) {
  if (!pending.deliver) return;
  const uint64_t epoch = IndexEpoch(pending.index);
  const size_t chunk = std::max<size_t>(1, options_.delivery_chunk_tuples);
  const size_t n = result.tuples.size();
  const size_t chunks = n == 0 ? 1 : (n + chunk - 1) / chunk;
  auto tuples =
      std::make_shared<std::vector<Tuple>>(std::move(result.tuples));
  auto deliver = std::make_shared<DeliverFn>(std::move(pending.deliver));
  const uint64_t standing_id = pending.standing_id;
  const bool complete = result.complete;
  const SimTime latency = result.latency;
  for (size_t k = 0; k < chunks; ++k) {
    const size_t lo = k * chunk;
    const size_t hi = std::min(n, lo + chunk);
    const bool last = k + 1 == chunks;
    net_->sim().events().Schedule(
        static_cast<SimTime>(k) * options_.delivery_stride,
        [ticket, standing_id, tuples, deliver, lo, hi, last, complete,
         latency, epoch] {
          Delivery d;
          d.ticket = ticket;
          d.standing_id = standing_id;
          d.tuples.assign(tuples->begin() + static_cast<std::ptrdiff_t>(lo),
                          tuples->begin() + static_cast<std::ptrdiff_t>(hi));
          d.done = last;
          if (last) {
            d.complete = complete;
            d.latency = latency;
            d.epoch = epoch;
          }
          (*deliver)(d);
        });
  }
}

void QueryService::DispatchFromQueue() {
  while (inflight_ < options_.max_inflight && !wait_queue_.empty()) {
    const uint64_t ticket = wait_queue_.front();
    wait_queue_.pop_front();
    if (pending_.count(ticket) == 0) continue;
    Dispatch(ticket);
  }
}

Result<uint64_t> QueryService::AddStanding(ClientId client,
                                           const std::string& index,
                                           Rect rect, SimTime period,
                                           DeliverFn deliver) {
  if (client >= clients_.size()) return Status::NotFound("unknown client");
  if (period == 0) return Status::InvalidArgument("standing period must be > 0");
  const uint64_t id = ++standing_seq_;
  Standing s;
  s.client = client;
  s.index = index;
  s.rect = std::move(rect);
  s.period = period;
  s.deliver = std::move(deliver);
  auto [it, inserted] = standing_.emplace(id, std::move(s));
  MIND_CHECK(inserted);
  it->second.next_fire =
      net_->sim().events().Schedule(0, [this, id] { FireStanding(id); });
  return id;
}

Status QueryService::RemoveStanding(uint64_t standing_id) {
  auto it = standing_.find(standing_id);
  if (it == standing_.end()) return Status::NotFound("unknown standing query");
  if (it->second.next_fire) net_->sim().events().Cancel(it->second.next_fire);
  standing_.erase(it);
  return Status::OK();
}

void QueryService::FireStanding(uint64_t standing_id) {
  auto it = standing_.find(standing_id);
  if (it == standing_.end()) return;
  Standing& s = it->second;
  tm_.standing_fires->Inc();
  // Rejections (quota, overload) skip this period; the query re-arms and
  // tries again against the then-freshest index version.
  (void)SubmitInternal(s.client, s.index, s.rect, s.deliver,
                       /*deadline=*/0, standing_id);
  s.next_fire = net_->sim().events().Schedule(
      s.period, [this, standing_id] { FireStanding(standing_id); });
}

}  // namespace frontend
}  // namespace mind
