// QueryService: the front-end's production-shaped query surface over MindNet.
//
// Clients register with a home node and submit on-demand range queries or
// standing queries (re-executed on a period against the freshest installed
// index version). Every submission passes an admission controller before it
// reaches MindNode::Query:
//
//   1. per-client quota  — a client may hold at most `per_client_quota`
//                          admitted (in-flight + queued) queries;
//   2. cost estimate     — expected result size from a per-index selectivity
//                          histogram fed by the ingest pipeline's observed
//                          tuples (Histogram::MassInRect); estimates above
//                          `max_cost_tuples` are rejected outright;
//   3. concurrency gate  — up to `max_inflight` queries run concurrently;
//                          the next `max_queue` wait FIFO; beyond that the
//                          submission is rejected as overloaded.
//
// Admitted queries get a deadline: if the index core has not completed the
// query in time, the service cancels it through MindNode::CancelQuery, which
// reclaims the trackers immediately and fires the callback (complete=false).
// Results stream back to the client in fixed-size chunks of sim time — the
// final chunk carries completion, latency and the index's version epoch.
//
// Determinism: all service state lives in ordered containers, events run on
// the simulator queue, and telemetry (`frontend.query.*`) is passive.
#ifndef MIND_FRONTEND_QUERY_SERVICE_H_
#define MIND_FRONTEND_QUERY_SERVICE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mind/mind_net.h"
#include "space/histogram.h"

namespace mind {
namespace frontend {

struct QueryServiceOptions {
  /// Queries resolving against the index core at once.
  size_t max_inflight = 32;
  /// Admitted queries waiting behind the in-flight gate (FIFO).
  size_t max_queue = 128;
  /// Admitted (in-flight + queued) queries per client.
  size_t per_client_quota = 8;
  /// Reject when the selectivity histogram expects more matching tuples
  /// than this; 0 disables the cost gate.
  double max_cost_tuples = 0;
  /// Bins per dimension of the per-index selectivity histograms.
  int cost_bins_per_dim = 8;
  /// Service-side completion deadline (Submit may override per query).
  SimTime default_deadline = FromSeconds(30);
  /// Result tuples per delivery chunk.
  size_t delivery_chunk_tuples = 256;
  /// Spacing between consecutive chunks of one result stream.
  SimTime delivery_stride = FromMillis(1);
};

using ClientId = uint32_t;

/// One chunk of a streamed query result.
struct Delivery {
  uint64_t ticket = 0;       ///< service-wide submission id
  uint64_t standing_id = 0;  ///< 0 for on-demand submissions
  bool done = false;         ///< true on the final chunk
  bool complete = false;     ///< final chunk: full coverage (vs deadline/churn)
  std::vector<Tuple> tuples; ///< this chunk's tuples
  SimTime latency = 0;       ///< final chunk: submit-to-completion sim time
  uint64_t epoch = 0;        ///< final chunk: index version epoch served
};

class QueryService {
 public:
  /// Does not own the net; it must outlive the service. Installs a version-
  /// opened observer on every node to track per-index epochs.
  QueryService(MindNet* net, QueryServiceOptions options);

  /// Registers a client that submits from (and receives at) node `home`.
  ClientId RegisterClient(NodeId home);

  enum class Admission {
    kDispatched,        ///< running against the index core
    kQueued,            ///< admitted, waiting for an in-flight slot
    kRejectedQuota,     ///< client exceeded per_client_quota
    kRejectedCost,      ///< cost estimate above max_cost_tuples
    kRejectedOverload,  ///< in-flight and queue both full
  };
  static bool Admitted(Admission a) {
    return a == Admission::kDispatched || a == Admission::kQueued;
  }

  struct SubmitOutcome {
    Admission admission;
    uint64_t ticket = 0;  ///< 0 when rejected
  };

  using DeliverFn = std::function<void(const Delivery&)>;

  /// Submits an on-demand query. `deadline` of 0 uses the default. Errors
  /// only on an unknown client; admission rejections come back in the
  /// outcome (and are counted under `frontend.query.rejected_*`).
  Result<SubmitOutcome> Submit(ClientId client, const std::string& index,
                               const Rect& rect, DeliverFn deliver,
                               SimTime deadline = 0);

  /// Registers a standing query re-executed every `period` (first execution
  /// is immediate). Each execution passes admission like an on-demand
  /// submission; rejected executions are skipped, not fatal. Returns the
  /// standing id.
  Result<uint64_t> AddStanding(ClientId client, const std::string& index,
                               Rect rect, SimTime period, DeliverFn deliver);

  Status RemoveStanding(uint64_t standing_id);

  // -- introspection (bench / tests) ---------------------------------------
  size_t inflight() const { return inflight_; }
  size_t queued() const { return wait_queue_.size(); }
  uint64_t admitted_total() const { return admitted_total_; }
  uint64_t rejected_total() const { return rejected_total_; }
  uint64_t completed_total() const { return completed_total_; }
  uint64_t deadline_cancels() const { return deadline_cancels_; }
  /// Current version epoch of an index (0 until a version opens).
  uint64_t IndexEpoch(const std::string& index) const;

  /// Feeds the per-index selectivity histogram (ingest wires this up).
  void ObserveInsert(const std::string& index, const Point& point);

 private:
  struct Client {
    NodeId home = 0;
    size_t active = 0;  // admitted (in-flight + queued) submissions
  };

  struct Pending {
    ClientId client = 0;
    std::string index;
    Rect rect;
    DeliverFn deliver;
    uint64_t standing_id = 0;
    SimTime deadline = 0;     // duration
    SimTime submitted = 0;
    // set while in flight:
    uint64_t core_query_id = 0;
    EventId deadline_event = 0;
    bool dispatched = false;
  };

  Result<SubmitOutcome> SubmitInternal(ClientId client,
                                       const std::string& index,
                                       const Rect& rect, DeliverFn deliver,
                                       SimTime deadline, uint64_t standing_id);
  void Dispatch(uint64_t ticket);
  void OnCoreResult(uint64_t ticket, const QueryResult& result);
  void StreamResult(uint64_t ticket, Pending pending, QueryResult result);
  void DispatchFromQueue();
  void FireStanding(uint64_t standing_id);
  double EstimateCost(const std::string& index, const Rect& rect) const;

  MindNet* net_;
  QueryServiceOptions options_;

  std::vector<Client> clients_;
  std::map<uint64_t, Pending> pending_;  // admitted, not yet completed
  std::deque<uint64_t> wait_queue_;      // tickets waiting for a slot
  size_t inflight_ = 0;
  uint64_t ticket_seq_ = 0;

  struct Standing {
    ClientId client = 0;
    std::string index;
    Rect rect;
    SimTime period = 0;
    DeliverFn deliver;
    EventId next_fire = 0;
  };
  std::map<uint64_t, Standing> standing_;
  uint64_t standing_seq_ = 0;

  std::map<std::string, uint64_t> epochs_;
  std::map<std::string, std::unique_ptr<Histogram>> selectivity_;

  uint64_t admitted_total_ = 0;
  uint64_t rejected_total_ = 0;
  uint64_t completed_total_ = 0;
  uint64_t deadline_cancels_ = 0;

  struct Instruments {
    telemetry::Counter* submitted;
    telemetry::Counter* admitted;
    telemetry::Counter* queued;
    telemetry::Counter* rejected_quota;
    telemetry::Counter* rejected_cost;
    telemetry::Counter* rejected_overload;
    telemetry::Counter* completed;
    telemetry::Counter* deadline_cancels;
    telemetry::Counter* standing_fires;
    telemetry::SimHistogram* latency_ms;
    telemetry::SimHistogram* wait_ms;
    telemetry::SimHistogram* result_tuples;
    telemetry::SimHistogram* cost_estimate;
  };
  Instruments tm_;
};

}  // namespace frontend
}  // namespace mind

#endif  // MIND_FRONTEND_QUERY_SERVICE_H_
