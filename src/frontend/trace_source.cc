#include "frontend/trace_source.h"

#include <algorithm>

namespace mind {
namespace frontend {

Result<bool> VectorTraceSource::Next(FlowRecord* out) {
  if (next_ == flows_.size()) return false;
  *out = flows_[next_++];
  return true;
}

Result<bool> BinaryTraceSource::Next(FlowRecord* out) {
  if (failed_) return false;
  if (!opened_) {
    Status st = reader_.Open();
    if (!st.ok()) {
      failed_ = true;
      return st;
    }
    opened_ = true;
  }
  auto more = reader_.Next(out);
  if (!more.ok()) failed_ = true;
  return more;
}

void GeneratorTraceSource::Refill() {
  while (buffer_.empty() && next_t_ < t1_) {
    double t_end = std::min(next_t_ + window_, t1_);
    std::vector<FlowRecord> window = gen_->GenerateVec(day_, next_t_, t_end);
    next_t_ = t_end;
    // Stable: ties keep generation order, which is itself deterministic.
    std::stable_sort(window.begin(), window.end(),
                     [](const FlowRecord& a, const FlowRecord& b) {
                       return a.time_sec < b.time_sec;
                     });
    buffer_.assign(window.begin(), window.end());
  }
}

Result<bool> GeneratorTraceSource::Next(FlowRecord* out) {
  Refill();
  if (buffer_.empty()) return false;
  *out = buffer_.front();
  buffer_.pop_front();
  return true;
}

}  // namespace frontend
}  // namespace mind
