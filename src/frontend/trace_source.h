// Trace sources: where the live front-end's flow records come from.
//
// A TraceSource is a pull-based, time-ordered stream of raw FlowRecords. The
// ingest pipeline maps record timestamps onto sim time (optionally scaled by
// a replay-rate multiplier) and pulls exactly the records whose replay time
// has arrived, so a multi-hour trace never needs to be materialized.
//
// Three implementations cover the deployment modes:
//   * VectorTraceSource    — an in-memory, pre-sorted batch (tests).
//   * BinaryTraceSource    — streams an MFT1 binary trace (trace_io.h) from
//                            any istream; validation errors surface through
//                            Next() exactly where the corruption sits.
//   * GeneratorTraceSource — wraps the synthetic FlowGenerator, producing
//                            windows on demand and sorting each window into
//                            global time order (the generator emits per-router
//                            batches).
#ifndef MIND_FRONTEND_TRACE_SOURCE_H_
#define MIND_FRONTEND_TRACE_SOURCE_H_

#include <cstddef>
#include <deque>
#include <istream>
#include <vector>

#include "traffic/flow.h"
#include "traffic/flow_generator.h"
#include "traffic/trace_io.h"
#include "util/status.h"

namespace mind {
namespace frontend {

/// \brief Pull interface over a time-ordered flow-record stream.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Fills `*out` with the next record and returns true, or returns false at
  /// a clean end of stream. Errors (e.g. a corrupt binary trace) are final:
  /// after the first non-OK result the source stays exhausted.
  virtual Result<bool> Next(FlowRecord* out) = 0;
};

/// In-memory source; `flows` must already be time-ordered.
class VectorTraceSource : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<FlowRecord> flows)
      : flows_(std::move(flows)) {}
  Result<bool> Next(FlowRecord* out) override;

 private:
  std::vector<FlowRecord> flows_;
  size_t next_ = 0;
};

/// Streams an MFT1 binary trace. Does not own the stream.
class BinaryTraceSource : public TraceSource {
 public:
  explicit BinaryTraceSource(std::istream* in) : reader_(in) {}
  Result<bool> Next(FlowRecord* out) override;

 private:
  BinaryFlowReader reader_;
  bool opened_ = false;
  bool failed_ = false;
};

/// Generates synthetic traffic window by window. Each window's records are
/// stable-sorted by timestamp (the generator emits per-router batches), so
/// downstream consumers see one globally time-ordered stream.
class GeneratorTraceSource : public TraceSource {
 public:
  /// Streams [t0_sec, t1_sec) of `day`, produced in `window_sec` chunks.
  /// Does not own the generator.
  GeneratorTraceSource(FlowGenerator* gen, int day, double t0_sec,
                       double t1_sec, double window_sec = 30.0)
      : gen_(gen), day_(day), next_t_(t0_sec), t1_(t1_sec),
        window_(window_sec) {}
  Result<bool> Next(FlowRecord* out) override;

 private:
  void Refill();

  FlowGenerator* gen_;
  int day_;
  double next_t_;
  double t1_;
  double window_;
  std::deque<FlowRecord> buffer_;
};

}  // namespace frontend
}  // namespace mind

#endif  // MIND_FRONTEND_TRACE_SOURCE_H_
