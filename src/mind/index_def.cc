#include "mind/index_def.h"

namespace mind {

Status IndexDef::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("index name must not be empty");
  }
  MIND_RETURN_NOT_OK(schema.Validate());
  if (time_attr < -1 || time_attr >= schema.dims()) {
    return Status::InvalidArgument("time_attr out of range for index " + name);
  }
  for (const auto& c : carried) {
    if (c.empty()) {
      return Status::InvalidArgument("carried attribute with empty name");
    }
    if (schema.FindAttr(c) >= 0) {
      return Status::InvalidArgument("carried attribute duplicates schema: " + c);
    }
  }
  return Status::OK();
}

}  // namespace mind
