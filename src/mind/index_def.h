// Index definitions: the schema plus carried attributes and the designated
// timestamp attribute (which selects daily versions).
#ifndef MIND_MIND_INDEX_DEF_H_
#define MIND_MIND_INDEX_DEF_H_

#include <string>
#include <vector>

#include "space/schema.h"
#include "util/status.h"

namespace mind {

/// \brief Everything a node needs to instantiate an index locally.
///
/// The paper passes an XML schema description to create_index; in this
/// in-process reproduction the definition is a plain struct distributed by
/// overlay broadcast (DESIGN.md §2).
struct IndexDef {
  /// Globally unique tag of the index.
  std::string name;
  /// Indexed attributes (the k dimensions of the data space).
  Schema schema;
  /// Names of carried (returned but not indexed) attributes, in the order
  /// they appear in Tuple::extra.
  std::vector<std::string> carried;
  /// Index into schema of the timestamp attribute, or -1 if the index is not
  /// time-versioned. Queries use this attribute's range to select versions.
  int time_attr = -1;

  Status Validate() const;
};

}  // namespace mind

#endif  // MIND_MIND_INDEX_DEF_H_
