// Application-level MIND messages. These are *not* OverlayMsg subclasses:
// routed ones travel as RouteEnvelope payloads and surface through
// OverlayNode's on_deliver; direct ones surface through on_direct; broadcast
// ones through on_broadcast.
#ifndef MIND_MIND_MESSAGES_H_
#define MIND_MIND_MESSAGES_H_

#include <memory>
#include <vector>

#include "mind/index_def.h"
#include "sim/message.h"
#include "sim/time.h"
#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/rect.h"
#include "storage/tuple.h"
#include "storage/version_manager.h"
#include "util/bitcode.h"

namespace mind {

enum class MindMsgKind {
  kCreateIndex,
  kDropIndex,
  kInstallCuts,
  kInsert,
  kInsertBatch,
  kReplicate,
  kQuery,
  kQueryReply,
  kHistRequest,
  kHistReply,
  kIndexSyncRequest,
  kIndexSyncReply,
};

struct MindMsg : Message {
  virtual MindMsgKind kind() const = 0;
  bool IsMind() const final { return true; }
};

/// Broadcast: instantiate an index (with its first version) on every node.
struct CreateIndexMsg : MindMsg {
  IndexDef def;
  VersionId version = 1;
  CutTreeRef cuts;
  SimTime start = 0;
  MindMsgKind kind() const override { return MindMsgKind::kCreateIndex; }
  const char* TypeName() const override { return "CreateIndex"; }
  size_t SizeBytes() const override { return 512; }  // schema description
};

/// Broadcast: remove all state of an index.
struct DropIndexMsg : MindMsg {
  std::string name;
  MindMsgKind kind() const override { return MindMsgKind::kDropIndex; }
  const char* TypeName() const override { return "DropIndex"; }
};

/// Broadcast: open a new version of an index with freshly balanced cuts.
struct InstallCutsMsg : MindMsg {
  std::string name;
  VersionId version = 0;
  CutTreeRef cuts;
  SimTime start = 0;
  MindMsgKind kind() const override { return MindMsgKind::kInstallCuts; }
  const char* TypeName() const override { return "InstallCuts"; }
  size_t SizeBytes() const override { return 256; }
};

/// Routed to the owner of the tuple's data-space code.
struct InsertMsg : MindMsg {
  std::string index;
  VersionId version = 0;
  Tuple tuple;
  /// The tuple's data-space code at insert precision, computed once at the
  /// origin; the storer and its replicas key the tuple by it instead of
  /// re-descending the cut tree.
  BitCode code;
  SimTime sent_at = 0;
  /// Telemetry handles (0 when tracing is off). The sim is single-process, so
  /// span ids travel with the message and are closed wherever it lands.
  uint64_t trace_id = 0;
  uint64_t root_span = 0;
  uint64_t route_span = 0;
  MindMsgKind kind() const override { return MindMsgKind::kInsert; }
  const char* TypeName() const override { return "Insert"; }
  size_t SizeBytes() const override { return 32 + tuple.WireBytes(); }
};

/// Direct to a replication neighbor.
struct ReplicateMsg : MindMsg {
  std::string index;
  VersionId version = 0;
  Tuple tuple;
  /// Origin-computed code (see InsertMsg::code).
  BitCode code;
  MindMsgKind kind() const override { return MindMsgKind::kReplicate; }
  const char* TypeName() const override { return "Replicate"; }
  size_t SizeBytes() const override { return 32 + tuple.WireBytes(); }
};

/// Routed toward the common code prefix of a group of tuples, then split
/// like a query (§3.6 applied to writes): a node owning the whole prefix
/// commits every tuple; a node whose region is longer regroups the tuples by
/// child prefix and forwards the sub-batches. One message train amortizes
/// routing and per-message overhead across the batch.
struct InsertBatchMsg : MindMsg {
  std::string index;
  VersionId version = 0;
  /// Common prefix of every entry's code; the routing target.
  BitCode code;
  /// Parallel arrays: tuples[i]'s insert-precision code is codes[i], and
  /// code.IsPrefixOf(codes[i]) holds for all i.
  std::vector<Tuple> tuples;
  std::vector<BitCode> codes;
  SimTime sent_at = 0;
  uint64_t trace_id = 0;
  uint64_t root_span = 0;
  uint64_t route_span = 0;
  MindMsgKind kind() const override { return MindMsgKind::kInsertBatch; }
  const char* TypeName() const override { return "InsertBatch"; }
  size_t SizeBytes() const override {
    size_t n = 48;
    for (const auto& t : tuples) n += t.WireBytes() + 8;
    return n;
  }
};

/// Routed toward `code`; split into sub-queries at the first abutting node.
struct QueryMsg : MindMsg {
  uint64_t query_id = 0;
  std::string index;
  VersionId version = 0;
  Rect rect;
  BitCode code;
  NodeId originator = kInvalidNode;
  SimTime sent_at = 0;
  /// True for a forwarded resolution to a data sibling (§3.4: a joiner keeps
  /// a pointer to its split parent for data inserted before the join); the
  /// receiver must only scan and reply, never split or re-route.
  bool resolve_only = false;
  /// Telemetry handle: the originator's root "query" span (0 = tracing off).
  uint64_t root_span = 0;
  MindMsgKind kind() const override { return MindMsgKind::kQuery; }
  const char* TypeName() const override { return "Query"; }
  size_t SizeBytes() const override {
    return 64 + 16 * static_cast<size_t>(rect.dims());
  }
};

/// Direct reply from a resolver to the query originator. `covered` is the
/// sub-query code this reply fully answers (used for completion detection);
/// an empty tuple list is the paper's "negative response".
struct QueryReplyMsg : MindMsg {
  uint64_t query_id = 0;
  VersionId version = 0;
  BitCode covered;
  std::vector<Tuple> tuples;
  NodeId resolver = kInvalidNode;
  /// True for a data-sibling's resolve-only reply (§3.4 forward pointer):
  /// its tuples are merged, but it must NOT count as covering `covered` —
  /// only the region's owner can assert the region fully answered.
  bool supplemental = false;
  /// Telemetry handle: the resolver's "query.reply" span, closed at receipt.
  uint64_t reply_span = 0;
  MindMsgKind kind() const override { return MindMsgKind::kQueryReply; }
  const char* TypeName() const override { return "QueryReply"; }
  size_t SizeBytes() const override {
    size_t n = 48;
    for (const auto& t : tuples) n += t.WireBytes();
    return n;
  }
};

/// Broadcast by the designated histogram node: every node replies with a
/// histogram of its local data for the named index version.
struct HistRequestMsg : MindMsg {
  uint64_t collection_id = 0;
  std::string index;
  VersionId version = 0;
  int bins_per_dim = 8;
  /// Added to the timestamp attribute of histogrammed points so yesterday's
  /// distribution is positioned where tomorrow's data will fall.
  Value time_shift = 0;
  NodeId collector = kInvalidNode;
  MindMsgKind kind() const override { return MindMsgKind::kHistRequest; }
  const char* TypeName() const override { return "HistRequest"; }
};

struct HistReplyMsg : MindMsg {
  uint64_t collection_id = 0;
  std::shared_ptr<Histogram> histogram;
  MindMsgKind kind() const override { return MindMsgKind::kHistReply; }
  const char* TypeName() const override { return "HistReply"; }
  size_t SizeBytes() const override {
    return 32 + (histogram ? 16 * histogram->num_nonzero_cells() : 0);
  }
};

/// Direct: a freshly joined node asks a neighbor for the set of defined
/// indices (paper §3.4: "when nodes join the overlay, they obtain the
/// current set of defined indices from the neighbor to which they attach").
struct IndexSyncRequestMsg : MindMsg {
  MindMsgKind kind() const override { return MindMsgKind::kIndexSyncRequest; }
  const char* TypeName() const override { return "IndexSyncRequest"; }
};

struct IndexSyncReplyMsg : MindMsg {
  struct IndexSnapshot {
    IndexDef def;
    struct VersionSnapshot {
      VersionId id;
      CutTreeRef cuts;
      SimTime start;
    };
    std::vector<VersionSnapshot> versions;
  };
  std::vector<IndexSnapshot> indices;
  MindMsgKind kind() const override { return MindMsgKind::kIndexSyncReply; }
  const char* TypeName() const override { return "IndexSyncReply"; }
  size_t SizeBytes() const override { return 256 + 256 * indices.size(); }
};

}  // namespace mind

#endif  // MIND_MIND_MESSAGES_H_
