#include "mind/mind_net.h"

#include "util/bitcode.h"
#include "util/digest.h"
#include "util/logging.h"

namespace mind {

MindNet::MindNet(size_t n, MindNetOptions options)
    : options_(std::move(options)) {
  MIND_CHECK_GT(n, 0u);
  MIND_CHECK(options_.positions.empty() || options_.positions.size() == n);
  sim_ = std::make_unique<Simulator>(options_.sim);
  for (size_t i = 0; i < n; ++i) {
    OverlayOptions oo = options_.overlay;
    oo.seed = options_.sim.seed + 1000 + i;
    MindOptions mo = options_.mind;
    mo.seed = options_.sim.seed + 5000 + i;
    std::optional<GeoPoint> pos;
    if (!options_.positions.empty()) pos = options_.positions[i];
    nodes_.push_back(std::make_unique<MindNode>(sim_.get(), oo, mo, pos));
    MindNode* node = nodes_.back().get();
    node->set_on_stored(
        [this](const MindNode::StoredInfo& info) { stored_.push_back(info); });
    node->set_on_query_visit([this](uint64_t query_id, NodeId id) {
      visits_[query_id].insert(id);
    });
  }
}

Status MindNet::Build(bool concurrent_joins) {
  nodes_[0]->BecomeFirst();
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (concurrent_joins) {
      nodes_[i]->Join(0);
    } else {
      MindNode* node = nodes_[i].get();
      sim_->events().Schedule(options_.join_stagger * i,
                              [node] { node->Join(0); });
    }
  }
  SimTime deadline = sim_->now() + options_.build_deadline;
  while (JoinedCount() < nodes_.size() && sim_->now() < deadline) {
    sim_->RunFor(FromSeconds(1));
  }
  if (JoinedCount() < nodes_.size()) {
    return Status::TimedOut("overlay build incomplete: " +
                            std::to_string(JoinedCount()) + "/" +
                            std::to_string(nodes_.size()));
  }
  return Status::OK();
}

Status MindNet::CreateIndexEverywhere(const IndexDef& def, CutTreeRef cuts,
                                      VersionId version, SimTime start) {
  MIND_RETURN_NOT_OK(nodes_[0]->CreateIndex(def, std::move(cuts), version, start));
  SimTime deadline = sim_->now() + FromSeconds(120);
  auto everywhere = [&] {
    for (const auto& node : nodes_) {
      if (node->overlay().alive() && node->overlay().joined() &&
          !node->HasIndex(def.name)) {
        return false;
      }
    }
    return true;
  };
  while (!everywhere() && sim_->now() < deadline) sim_->RunFor(FromSeconds(1));
  if (!everywhere()) return Status::TimedOut("index flood incomplete");
  return Status::OK();
}

Status MindNet::InstallCutsEverywhere(const std::string& name,
                                      VersionId version, CutTreeRef cuts,
                                      SimTime start) {
  MIND_RETURN_NOT_OK(nodes_[0]->InstallCuts(name, version, std::move(cuts), start));
  SimTime deadline = sim_->now() + FromSeconds(120);
  auto everywhere = [&] {
    for (const auto& node : nodes_) {
      if (!node->overlay().alive() || !node->overlay().joined()) continue;
      const IndexVersions* pv = node->PrimaryVersions(name);
      if (pv == nullptr || pv->Store(version) == nullptr) return false;
    }
    return true;
  };
  while (!everywhere() && sim_->now() < deadline) sim_->RunFor(FromSeconds(1));
  if (!everywhere()) return Status::TimedOut("cuts flood incomplete");
  return Status::OK();
}

size_t MindNet::QueryVisitCount(uint64_t query_id) const {
  auto it = visits_.find(query_id);
  return it == visits_.end() ? 0 : it->second.size();
}

size_t MindNet::TotalPrimaryTuples(const std::string& index) const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node->PrimaryTupleCount(index);
  return n;
}

std::vector<size_t> MindNet::PrimaryTupleDistribution(
    const std::string& index) const {
  std::vector<size_t> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->PrimaryTupleCount(index));
  return out;
}

size_t MindNet::JoinedCount() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    if (node->overlay().joined()) ++n;
  }
  return n;
}

bool MindNet::CodesFormCompleteCover() const {
  std::vector<BitCode> codes;
  for (const auto& node : nodes_) {
    if (!node->overlay().alive() || !node->overlay().joined()) continue;
    codes.push_back(node->overlay().code());
  }
  return CheckCompleteCover(codes).ok();
}

// ------------------------------------------------------------- correctness

Status MindNet::ValidateInvariants(bool quiescent) const {
  MIND_RETURN_NOT_OK(sim_->events().ValidateInvariants());
  if (quiescent) {
    std::vector<const OverlayNode*> overlays;
    overlays.reserve(nodes_.size());
    for (const auto& node : nodes_) overlays.push_back(&node->overlay());
    MIND_RETURN_NOT_OK(ValidateOverlayInvariants(overlays));
  }
  for (const auto& node : nodes_) {
    MIND_RETURN_NOT_OK(node->ValidateInvariants());
  }
  return Status::OK();
}

uint64_t MindNet::StateDigest() const {
  Fnv64 d;
  d.Mix(static_cast<uint64_t>(nodes_.size()));
  sim_->events().DigestInto(&d);
  for (const auto& node : nodes_) node->DigestInto(&d);
  return d.value();
}

void MindNet::EnablePeriodicValidation(SimTime interval) {
  sim_->events().set_validation_hook(
      [this] { MIND_CHECK_OK(ValidateInvariants(/*quiescent=*/false)); },
      interval);
}

}  // namespace mind
