#include "mind/mind_net.h"

#include <algorithm>

#include "sim/parallel_engine.h"
#include "util/bitcode.h"
#include "util/digest.h"
#include "util/logging.h"

namespace mind {
namespace {

// Which measurement slot the calling context writes to: 0 outside parallel
// phases, 1 + shard id inside one.
size_t MeasureSlot() {
  int s = ParallelEngine::current_shard();
  return s < 0 ? 0 : static_cast<size_t>(s) + 1;
}

}  // namespace

MindNet::MindNet(size_t n, MindNetOptions options)
    : options_(std::move(options)) {
  MIND_CHECK_GT(n, 0u);
  MIND_CHECK(options_.positions.empty() || options_.positions.size() == n);
  sim_ = std::make_unique<Simulator>(options_.sim);
  const ParallelEngine* engine = sim_->parallel_engine();
  const size_t slots = engine == nullptr ? 1 : engine->shard_count() + 1;
  stored_slots_.resize(slots);
  visit_slots_.resize(slots);
  for (size_t i = 0; i < n; ++i) {
    OverlayOptions oo = options_.overlay;
    oo.seed = options_.sim.seed + 1000 + i;
    MindOptions mo = options_.mind;
    mo.seed = options_.sim.seed + 5000 + i;
    std::optional<GeoPoint> pos;
    if (!options_.positions.empty()) pos = options_.positions[i];
    nodes_.push_back(std::make_unique<MindNode>(sim_.get(), oo, mo, pos));
    MindNode* node = nodes_.back().get();
    node->set_on_stored([this](const MindNode::StoredInfo& info) {
      stored_slots_[MeasureSlot()].push_back(info);
    });
    node->set_on_query_visit([this](uint64_t query_id, NodeId id) {
      visit_slots_[MeasureSlot()][query_id].insert(id);
    });
  }
}

Status MindNet::Build(bool concurrent_joins) {
  nodes_[0]->BecomeFirst();
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (concurrent_joins) {
      nodes_[i]->Join(0);
    } else {
      MindNode* node = nodes_[i].get();
      // ScheduleOn lands the join on the node's own shard queue under the
      // parallel engine; with the sequential engine it is exactly
      // events().Schedule, so legacy replay digests are unchanged.
      sim_->ScheduleOn(node->overlay().id(),
                       sim_->now() + options_.join_stagger * i,
                       [node] { node->Join(0); });
    }
  }
  SimTime deadline = sim_->now() + options_.build_deadline;
  while (JoinedCount() < nodes_.size() && sim_->now() < deadline) {
    sim_->RunFor(FromSeconds(1));
  }
  if (JoinedCount() < nodes_.size()) {
    return Status::TimedOut("overlay build incomplete: " +
                            std::to_string(JoinedCount()) + "/" +
                            std::to_string(nodes_.size()));
  }
  return Status::OK();
}

Status MindNet::CreateIndexEverywhere(const IndexDef& def, CutTreeRef cuts,
                                      VersionId version, SimTime start) {
  MIND_RETURN_NOT_OK(nodes_[0]->CreateIndex(def, std::move(cuts), version, start));
  SimTime deadline = sim_->now() + FromSeconds(120);
  auto everywhere = [&] {
    for (const auto& node : nodes_) {
      if (node->overlay().alive() && node->overlay().joined() &&
          !node->HasIndex(def.name)) {
        return false;
      }
    }
    return true;
  };
  while (!everywhere() && sim_->now() < deadline) sim_->RunFor(FromSeconds(1));
  if (!everywhere()) return Status::TimedOut("index flood incomplete");
  return Status::OK();
}

Status MindNet::InstallCutsEverywhere(const std::string& name,
                                      VersionId version, CutTreeRef cuts,
                                      SimTime start) {
  MIND_RETURN_NOT_OK(nodes_[0]->InstallCuts(name, version, std::move(cuts), start));
  SimTime deadline = sim_->now() + FromSeconds(120);
  auto everywhere = [&] {
    for (const auto& node : nodes_) {
      if (!node->overlay().alive() || !node->overlay().joined()) continue;
      const IndexVersions* pv = node->PrimaryVersions(name);
      if (pv == nullptr || !pv->HasVersion(version)) return false;
    }
    return true;
  };
  while (!everywhere() && sim_->now() < deadline) sim_->RunFor(FromSeconds(1));
  if (!everywhere()) return Status::TimedOut("cuts flood incomplete");
  return Status::OK();
}

const std::vector<MindNode::StoredInfo>& MindNet::stored() const {
  if (stored_slots_.size() == 1) return stored_slots_[0];
  size_t total = 0;
  for (const auto& slot : stored_slots_) total += slot.size();
  // Buffers are append-only between Clear calls, so a matching size means the
  // cached merge is current (stored() is only legal between runs).
  if (stored_merged_.size() != total) {
    stored_merged_.clear();
    stored_merged_.reserve(total);
    for (const auto& slot : stored_slots_) {
      stored_merged_.insert(stored_merged_.end(), slot.begin(), slot.end());
    }
    // (committed_at, storer) is a deterministic order: a storer always lives
    // on the same shard (fixed shard count), and its commits are appended in
    // virtual-time order, so stable_sort resolves ties identically for every
    // thread count.
    std::stable_sort(stored_merged_.begin(), stored_merged_.end(),
                     [](const MindNode::StoredInfo& a,
                        const MindNode::StoredInfo& b) {
                       if (a.committed_at != b.committed_at) {
                         return a.committed_at < b.committed_at;
                       }
                       return a.storer < b.storer;
                     });
  }
  return stored_merged_;
}

void MindNet::ClearStored() {
  for (auto& slot : stored_slots_) slot.clear();
  stored_merged_.clear();
}

size_t MindNet::QueryVisitCount(uint64_t query_id) const {
  if (visit_slots_.size() == 1) {
    auto it = visit_slots_[0].find(query_id);
    return it == visit_slots_[0].end() ? 0 : it->second.size();
  }
  std::unordered_set<NodeId> merged;
  for (const auto& slot : visit_slots_) {
    auto it = slot.find(query_id);
    if (it != slot.end()) merged.insert(it->second.begin(), it->second.end());
  }
  return merged.size();
}

void MindNet::ClearVisits() {
  for (auto& slot : visit_slots_) slot.clear();
}

size_t MindNet::TotalPrimaryTuples(const std::string& index) const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node->PrimaryTupleCount(index);
  return n;
}

std::vector<size_t> MindNet::PrimaryTupleDistribution(
    const std::string& index) const {
  std::vector<size_t> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->PrimaryTupleCount(index));
  return out;
}

size_t MindNet::JoinedCount() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    if (node->overlay().joined()) ++n;
  }
  return n;
}

bool MindNet::CodesFormCompleteCover() const {
  std::vector<BitCode> codes;
  for (const auto& node : nodes_) {
    if (!node->overlay().alive() || !node->overlay().joined()) continue;
    codes.push_back(node->overlay().code());
  }
  return CheckCompleteCover(codes).ok();
}

// ------------------------------------------------------------- correctness

Status MindNet::ValidateInvariants(bool quiescent) const {
  MIND_RETURN_NOT_OK(sim_->events().ValidateInvariants());
  if (const ParallelEngine* engine = sim_->parallel_engine()) {
    for (int s = 0; s < engine->shard_count(); ++s) {
      MIND_RETURN_NOT_OK(engine->shard_queue(s).ValidateInvariants());
    }
  }
  if (quiescent) {
    std::vector<const OverlayNode*> overlays;
    overlays.reserve(nodes_.size());
    for (const auto& node : nodes_) overlays.push_back(&node->overlay());
    MIND_RETURN_NOT_OK(ValidateOverlayInvariants(overlays));
  }
  for (const auto& node : nodes_) {
    MIND_RETURN_NOT_OK(node->ValidateInvariants());
  }
  return Status::OK();
}

uint64_t MindNet::StateDigest() const {
  Fnv64 d;
  d.Mix(static_cast<uint64_t>(nodes_.size()));
  if (sim_->discipline()) {
    // Discipline runs digest the pending-event set by (time, band, ukey) so
    // the value is identical whether events live in one queue or S shard
    // queues. Legacy runs keep the historical clock+FIFO digest byte-for-byte.
    sim_->DigestEventsKeyed(&d);
  } else {
    sim_->events().DigestInto(&d);
  }
  for (const auto& node : nodes_) node->DigestInto(&d);
  return d.value();
}

void MindNet::EnablePeriodicValidation(SimTime interval) {
  if (ParallelEngine* engine = sim_->parallel_engine()) {
    // Shard queues cannot run fleet-wide validators mid-phase; piggyback on
    // the window barrier instead, where all shards are quiescent.
    engine->set_barrier_hook(
        [this] { MIND_CHECK_OK(ValidateInvariants(/*quiescent=*/false)); },
        interval);
    return;
  }
  sim_->events().set_validation_hook(
      [this] { MIND_CHECK_OK(ValidateInvariants(/*quiescent=*/false)); },
      interval);
}

}  // namespace mind
