// MindNet: a whole simulated MIND deployment in one object — the analogue of
// the paper's PlanetLab slice. Owns the simulator, the MIND nodes and global
// measurement hooks (insertion latency samples, per-query visit sets).
#ifndef MIND_MIND_MIND_NET_H_
#define MIND_MIND_MIND_NET_H_

#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mind/mind_node.h"

namespace mind {

struct MindNetOptions {
  SimulatorOptions sim;
  OverlayOptions overlay;
  MindOptions mind;
  /// Geographic positions per node; empty => default network latency.
  std::vector<GeoPoint> positions;
  /// Stagger between node joins while building the overlay.
  SimTime join_stagger = FromMillis(300);
  SimTime build_deadline = FromSeconds(3600);
};

class MindNet {
 public:
  /// Creates `n` nodes (positions, if given, must have length n).
  MindNet(size_t n, MindNetOptions options);

  size_t size() const { return nodes_.size(); }
  MindNode& node(size_t i) { return *nodes_[i]; }
  Simulator& sim() { return *sim_; }
  Network& network() { return sim_->network(); }

  /// Joins all nodes into one overlay (node 0 bootstraps). Error if the
  /// deadline passes first.
  Status Build(bool concurrent_joins = false);

  /// Creates an index from node 0 and runs until every live node has it.
  Status CreateIndexEverywhere(const IndexDef& def, CutTreeRef cuts,
                               VersionId version = 1, SimTime start = 0);

  /// Installs a new version everywhere (runs the flood to completion).
  Status InstallCutsEverywhere(const std::string& name, VersionId version,
                               CutTreeRef cuts, SimTime start);

  // ---- global measurement ---------------------------------------------

  /// All insert commits across the net. Under the sequential engine this is
  /// raw commit order; under the parallel engine the per-shard buffers are
  /// merged into (committed_at, storer) order, which is identical for every
  /// thread count.
  const std::vector<MindNode::StoredInfo>& stored() const;
  void ClearStored();

  /// Distinct overlay nodes visited by a query (the paper's query cost).
  size_t QueryVisitCount(uint64_t query_id) const;
  void ClearVisits();

  /// Sum of primary tuples over all nodes for an index.
  size_t TotalPrimaryTuples(const std::string& index) const;

  /// Per-node primary tuple counts (Figure 13's storage distribution).
  std::vector<size_t> PrimaryTupleDistribution(const std::string& index) const;

  size_t JoinedCount() const;
  bool CodesFormCompleteCover() const;

  // ---- correctness tooling ---------------------------------------------

  /// Validates every node's local structure plus the event queue. When
  /// `quiescent` (the default), additionally checks fleet-wide overlay
  /// invariants — complete code cover and sibling-link symmetry — which only
  /// hold between topology changes; pass false while joins/crashes are in
  /// flight. Returns OK trivially when MIND_VALIDATORS is off.
  Status ValidateInvariants(bool quiescent = true) const;

  /// FNV-1a 64 digest of the deployment's logical state: virtual clock,
  /// pending events, and every node's overlay/index/storage state. Two runs
  /// of the same seeded scenario must produce identical digests, regardless
  /// of MIND_TELEMETRY; tools/check_determinism.sh enforces this.
  uint64_t StateDigest() const;

  /// Runs the non-quiescent validators every `interval` of virtual time,
  /// piggybacked on event execution (aborts via MIND_CHECK on violation).
  void EnablePeriodicValidation(SimTime interval);

  // ---- snapshot / restore (MSN1, DESIGN.md §14) -------------------------

  /// Serializes the whole deployment — clock, RNGs, network liveness and
  /// outage plans, every node's overlay and index state — as one versioned
  /// binary stream (format MSN1). Requires quiescence: the only pending
  /// events allowed are the nodes' re-armable heartbeat timers; anything
  /// else (in-flight queries, joins, legacy-mode failure-injector events) is
  /// an error naming the offender. The header records StateDigest() so a
  /// restore can prove bit-identity.
  Status SaveSnapshot(std::ostream& out) const;

  /// Restores a SaveSnapshot stream into this *freshly constructed* net
  /// (same size and topology options; never run). The snapshot's engine
  /// mode (legacy vs determinism discipline) must match this net's — within
  /// discipline mode the thread/shard count may differ, because keyed event
  /// ordering is engine-independent. After restoring, recomputes
  /// StateDigest() and errors unless it equals the saved digest, so a
  /// corrupted or divergent restore can never run silently.
  Status LoadSnapshot(std::istream& in);

 private:
  std::unique_ptr<Simulator> sim_;
  std::vector<std::unique_ptr<MindNode>> nodes_;
  MindNetOptions options_;
  // Measurement hooks fire from whichever shard executes the commit, so each
  // shard gets a private buffer (slot 0 = serial / control context, slot s+1 =
  // shard s). Reads happen only between runs and merge deterministically.
  std::vector<std::vector<MindNode::StoredInfo>> stored_slots_;
  std::vector<std::unordered_map<uint64_t, std::unordered_set<NodeId>>>
      visit_slots_;
  mutable std::vector<MindNode::StoredInfo> stored_merged_;
};

}  // namespace mind

#endif  // MIND_MIND_MIND_NET_H_
