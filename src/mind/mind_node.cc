#include "mind/mind_node.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/ordered.h"
#include "util/validate.h"

namespace mind {
namespace {

// MIND_QUERY_DEBUG is read once per process: the environment cannot change
// mid-run and the query paths are hot. Setting it also opts the process into
// debug-level logging, so the [qdbg] lines — emitted through the sim-time-
// aware log clock like every other line — actually surface.
bool QueryDebugEnabled() {
  static const bool enabled = [] {
    const bool on = std::getenv("MIND_QUERY_DEBUG") != nullptr;
    if (on && GetLogThreshold() > LogLevel::kDebug) {
      SetLogThreshold(LogLevel::kDebug);
    }
    return on;
  }();
  return enabled;
}

}  // namespace

MindNode::MindNode(Simulator* sim, OverlayOptions overlay_options,
                   MindOptions options, std::optional<GeoPoint> position)
    : sim_(sim),
      events_(&sim->events()),
      options_(options),
      rng_(options.seed),
      overlay_(sim, overlay_options, position),
      cover_cache_(&sim->metrics()),
      tracer_(&sim->tracer()) {
  rng_ = Rng(options.seed).Fork(static_cast<uint64_t>(overlay_.id()) + 7919);
  events_ = sim->queue_for(overlay_.id());
  telemetry::MetricsRegistry& m = sim->metrics();
  tm_.inserts = &m.counter("mind.insert.count");
  tm_.queries = &m.counter("mind.query.count");
  tm_.query_timeouts = &m.counter("mind.query.timeouts");
  tm_.replicas_sent = &m.counter("mind.replicate.sent");
  tm_.insert_latency_ms = &m.histogram("mind.insert.latency_ms");
  tm_.insert_hops = &m.histogram("mind.insert.hops");
  tm_.dac_insert_wait_ms = &m.histogram("mind.dac.insert_wait_ms");
  tm_.dac_query_wait_ms = &m.histogram("mind.dac.query_wait_ms");
  tm_.query_latency_ms = &m.histogram("mind.query.latency_ms");
  tm_.subquery_len = &m.histogram("mind.query.subquery_len");
  tm_.replicate_fanout = &m.histogram("mind.replicate.fanout");
  tm_.scan_rows_examined = &m.histogram("storage.scan.rows_examined");
  tm_.scan_rows_returned = &m.histogram("storage.scan.rows_returned");
  overlay_.set_on_deliver(
      [this](NodeId origin, const MessagePtr& inner, int hops) {
        OnDelivered(origin, inner, hops);
      });
  overlay_.set_on_broadcast([this](NodeId origin, const MessagePtr& inner) {
    OnBroadcastMsg(origin, inner);
  });
  overlay_.set_on_direct([this](NodeId from, const MessagePtr& msg) {
    OnDirect(from, msg);
  });
  overlay_.set_on_forward([this](const MessagePtr& inner) { OnForward(inner); });
  overlay_.set_on_joined([this] {
    data_sibling_ = overlay_.join_parent();
    join_time_ = events_->now();
    if (data_sibling_ != kInvalidNode) RequestIndexSync();
  });
}

// --------------------------------------------------------------- management

Status MindNode::CreateIndex(const IndexDef& def, CutTreeRef cuts,
                             VersionId version, SimTime start) {
  MIND_RETURN_NOT_OK(def.Validate());
  if (cuts == nullptr || !(cuts->schema() == def.schema)) {
    return Status::InvalidArgument("cut tree missing or schema mismatch");
  }
  if (indices_.count(def.name)) {
    return Status::AlreadyExists("index " + def.name);
  }
  auto m = MakeMessage<CreateIndexMsg>();
  m->def = def;
  m->version = version;
  m->cuts = std::move(cuts);
  m->start = start;
  overlay_.Broadcast(m);  // self-delivery applies it locally too
  return Status::OK();
}

Status MindNode::DropIndex(const std::string& name) {
  if (!indices_.count(name)) return Status::NotFound("index " + name);
  auto m = MakeMessage<DropIndexMsg>();
  m->name = name;
  overlay_.Broadcast(m);
  return Status::OK();
}

Status MindNode::InstallCuts(const std::string& name, VersionId version,
                             CutTreeRef cuts, SimTime start) {
  IndexState* st = FindIndex(name);
  if (st == nullptr) return Status::NotFound("index " + name);
  if (cuts == nullptr || !(cuts->schema() == st->def.schema)) {
    return Status::InvalidArgument("cut tree missing or schema mismatch");
  }
  auto m = MakeMessage<InstallCutsMsg>();
  m->name = name;
  m->version = version;
  m->cuts = std::move(cuts);
  m->start = start;
  overlay_.Broadcast(m);
  return Status::OK();
}

TupleStoreConfig MindNode::StoreConfig() {
  TupleStoreConfig config;
  config.code_len = options_.insert_code_len;
  config.options.compaction = options_.store_compaction;
  config.options.backend = options_.store_backend;
  config.metrics = &sim_->metrics();
  config.cover_cache = options_.cover_cache ? &cover_cache_ : nullptr;
  return config;
}

void MindNode::ApplyCreateIndex(const CreateIndexMsg& m) {
  if (indices_.count(m.def.name)) return;  // duplicate broadcast
  auto [it, inserted] =
      indices_.emplace(m.def.name, IndexState(m.def, StoreConfig()));
  MIND_CHECK(inserted);
  MIND_CHECK_OK(it->second.primary.AddVersion(m.version, m.cuts, m.start));
  MIND_CHECK_OK(it->second.replicas.AddVersion(m.version, m.cuts, m.start));
  if (on_version_opened_) {
    on_version_opened_(m.def.name, m.version, it->second.primary.epoch());
  }
}

void MindNode::ApplyInstallCuts(const InstallCutsMsg& m) {
  IndexState* st = FindIndex(m.name);
  if (st == nullptr) return;  // index unknown here (dropped or lagging)
  // Ignore duplicates / out-of-order repeats.
  if (st->primary.HasVersion(m.version)) return;
  Status s = st->primary.AddVersion(m.version, m.cuts, m.start);
  if (s.ok()) {
    MIND_CHECK_OK(st->replicas.AddVersion(m.version, m.cuts, m.start));
    if (on_version_opened_) {
      on_version_opened_(m.name, m.version, st->primary.epoch());
    }
  } else {
    MIND_LOG(Warning) << "node " << id() << ": cannot install cuts v"
                      << m.version << " on " << m.name << ": " << s.ToString();
  }
}

// --------------------------------------------------------------- insert

Status MindNode::Insert(const std::string& index, Tuple tuple) {
  IndexState* st = FindIndex(index);
  if (st == nullptr) return Status::NotFound("index " + index);
  if (static_cast<int>(tuple.point.size()) != st->def.schema.dims()) {
    return Status::InvalidArgument("tuple arity mismatch for " + index);
  }
  SimTime t = st->def.time_attr >= 0
                  ? static_cast<SimTime>(tuple.point[st->def.time_attr])
                  : events_->now();
  auto versions = st->primary.VersionsOverlapping(t, t);
  if (versions.empty()) {
    return Status::OutOfRange("no index version covers tuple timestamp");
  }
  VersionId version = versions.back();
  CutTreeRef cuts = st->primary.Cuts(version);
  BitCode code = cuts->CodeForPoint(tuple.point, options_.insert_code_len);

  auto m = MakeMessage<InsertMsg>();
  m->index = index;
  m->version = version;
  m->tuple = std::move(tuple);
  m->code = code;
  m->sent_at = events_->now();
  tm_.inserts->Inc();
  // Insert trace ids set the top bit so they never collide with query ids
  // (which use the same (node << 32 | seq) layout).
  m->trace_id = (uint64_t{1} << 63) |
                (static_cast<uint64_t>(static_cast<uint32_t>(id())) << 32) |
                (++insert_seq_);
  m->root_span = tracer_->StartSpan(m->trace_id, "insert", 0, id());
  m->route_span =
      tracer_->StartSpan(m->trace_id, "insert.route", m->root_span, id());
  overlay_.Route(code, m);
  return Status::OK();
}

void MindNode::OnInsertArrived(const std::shared_ptr<InsertMsg>& m, int hops) {
  tracer_->EndSpan(m->route_span);
  IndexState* st = FindIndex(m->index);
  if (st == nullptr) return;  // lagging index creation: drop
  if (!st->primary.HasVersion(m->version)) return;

  // The storage thread (the prototype's DAC) serializes commits.
  SimTime now = events_->now();
  SimTime dac_wait = dac_busy_until_ > now ? dac_busy_until_ - now : 0;
  tm_.dac_insert_wait_ms->Record(ToSeconds(dac_wait) * 1e3);
  uint64_t dac_span =
      tracer_->StartSpan(m->trace_id, "insert.dac", m->root_span, id());
  SimTime commit_at =
      std::max(events_->now(), dac_busy_until_) + options_.insert_proc_time;
  dac_busy_until_ = commit_at;
  events_->ScheduleAt(commit_at, [this, m, hops, commit_at, dac_span] {
    tracer_->EndSpan(dac_span);
    IndexState* st2 = FindIndex(m->index);
    if (st2 == nullptr) return;
    TupleStore* store2 = st2->primary.Store(m->version);
    if (store2 == nullptr) return;
    NodeId origin = m->tuple.origin;
    // Build the replica copy before the store consumes the tuple.
    std::shared_ptr<ReplicateMsg> rep;
    if (options_.replication != 0) {
      rep = MakeMessage<ReplicateMsg>();
      rep->index = m->index;
      rep->version = m->version;
      rep->tuple = m->tuple;
      rep->code = m->code;
    }
    store2->InsertCoded(std::move(m->tuple), m->code);
    tm_.insert_latency_ms->Record(ToSeconds(commit_at - m->sent_at) * 1e3);
    tm_.insert_hops->Record(static_cast<double>(hops));
    if (on_stored_) {
      StoredInfo info;
      info.index = m->index;
      info.version = m->version;
      info.origin = origin;
      info.storer = id();
      info.committed_at = commit_at;
      info.latency = commit_at - m->sent_at;
      info.hops = hops;
      on_stored_(info);
    }
    // Replicate to prefix neighbors (§3.8).
    if (rep != nullptr) {
      uint64_t rep_span =
          tracer_->StartSpan(m->trace_id, "insert.replicate", m->root_span,
                             id());
      size_t fanout = 0;
      for (NodeId target : overlay_.ReplicationTargets(options_.replication)) {
        overlay_.SendDirect(target, rep);
        ++fanout;
      }
      tm_.replicas_sent->Inc(fanout);
      tm_.replicate_fanout->Record(static_cast<double>(fanout));
      tracer_->Note(rep_span, "fanout", std::to_string(fanout));
      tracer_->EndSpan(rep_span);
    }
    tracer_->EndSpan(m->root_span);
  });
}

Status MindNode::InsertBatch(const std::string& index,
                             std::vector<Tuple> tuples) {
  if (tuples.empty()) return Status::OK();
  IndexState* st = FindIndex(index);
  if (st == nullptr) return Status::NotFound("index " + index);
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.point.size()) != st->def.schema.dims()) {
      return Status::InvalidArgument("tuple arity mismatch for " + index);
    }
  }
  // Destination version is chosen per tuple (by timestamp, as in Insert);
  // one train departs per distinct version.
  std::map<VersionId, std::vector<Tuple>> by_version;
  for (Tuple& t : tuples) {
    SimTime ts = st->def.time_attr >= 0
                     ? static_cast<SimTime>(t.point[st->def.time_attr])
                     : events_->now();
    auto versions = st->primary.VersionsOverlapping(ts, ts);
    if (versions.empty()) {
      return Status::OutOfRange("no index version covers tuple timestamp");
    }
    by_version[versions.back()].push_back(std::move(t));
  }
  for (auto& [version, group] : by_version) {
    CutTreeRef cuts = st->primary.Cuts(version);
    auto m = MakeMessage<InsertBatchMsg>();
    m->index = index;
    m->version = version;
    m->tuples = std::move(group);
    m->codes.reserve(m->tuples.size());
    for (const Tuple& t : m->tuples) {
      m->codes.push_back(cuts->CodeForPoint(t.point, options_.insert_code_len));
    }
    // The train is addressed to the deepest region containing every tuple;
    // it rides as one message until that prefix splits across nodes.
    BitCode common = m->codes.front();
    for (size_t i = 1; i < m->codes.size(); ++i) {
      common = common.Prefix(common.CommonPrefixLen(m->codes[i]));
    }
    m->code = common;
    m->sent_at = events_->now();
    tm_.inserts->Inc(m->tuples.size());
    m->trace_id = (uint64_t{1} << 63) |
                  (static_cast<uint64_t>(static_cast<uint32_t>(id())) << 32) |
                  (++insert_seq_);
    m->root_span = tracer_->StartSpan(m->trace_id, "insert.batch", 0, id());
    m->route_span = tracer_->StartSpan(m->trace_id, "insert.batch.route",
                                       m->root_span, id());
    overlay_.Route(common, m);
  }
  return Status::OK();
}

void MindNode::OnInsertBatchArrived(const std::shared_ptr<InsertBatchMsg>& m,
                                    int hops) {
  const BitCode& my = overlay_.code();
  if (my.IsPrefixOf(m->code)) {
    // Every tuple of the train lands in our region: commit as one batch.
    tracer_->EndSpan(m->route_span);
    CommitBatch(m, hops);
    return;
  }
  if (m->code.IsPrefixOf(my)) {
    // The train spans several nodes: split by the next code bit and send each
    // sub-train on (mirrors HandleQueryCode).
    const int at = m->code.length();
    auto sub0 = MakeMessage<InsertBatchMsg>();
    auto sub1 = MakeMessage<InsertBatchMsg>();
    for (InsertBatchMsg* sub : {sub0.get(), sub1.get()}) {
      sub->index = m->index;
      sub->version = m->version;
      sub->sent_at = m->sent_at;
      sub->trace_id = m->trace_id;
      sub->root_span = m->root_span;
      sub->route_span = m->route_span;
    }
    for (size_t i = 0; i < m->tuples.size(); ++i) {
      InsertBatchMsg* sub = m->codes[i].bit(at) ? sub1.get() : sub0.get();
      sub->tuples.push_back(std::move(m->tuples[i]));
      sub->codes.push_back(m->codes[i]);
    }
    for (const auto& sub : {sub0, sub1}) {
      if (sub->tuples.empty()) continue;
      // Re-tighten the prefix: this half's tuples may share more bits, which
      // shortens the remaining route.
      BitCode common = sub->codes.front();
      for (size_t i = 1; i < sub->codes.size(); ++i) {
        common = common.Prefix(common.CommonPrefixLen(sub->codes[i]));
      }
      sub->code = common;
      int cpl = my.CommonPrefixLen(common);
      if (cpl == std::min(my.length(), common.length())) {
        OnInsertBatchArrived(sub, hops);  // still (partly) ours
      } else {
        overlay_.Route(common, sub);
      }
    }
    return;
  }
  // Misrouted during an overlay transient: try again.
  overlay_.Route(m->code, m);
}

void MindNode::CommitBatch(const std::shared_ptr<InsertBatchMsg>& m,
                           int hops) {
  IndexState* st = FindIndex(m->index);
  if (st == nullptr) return;  // lagging index creation: drop
  if (!st->primary.HasVersion(m->version)) return;

  const SimTime now = events_->now();
  SimTime dac_wait = dac_busy_until_ > now ? dac_busy_until_ - now : 0;
  tm_.dac_insert_wait_ms->Record(ToSeconds(dac_wait) * 1e3);
  uint64_t dac_span =
      tracer_->StartSpan(m->trace_id, "insert.dac", m->root_span, id());
  // DAC amortization: the first tuple pays the full commit cost, the rest of
  // the batch rides the same storage-thread pass.
  SimTime commit_at =
      std::max(now, dac_busy_until_) + options_.insert_proc_time +
      options_.batch_item_proc_time * static_cast<SimTime>(m->tuples.size() - 1);
  dac_busy_until_ = commit_at;
  events_->ScheduleAt(commit_at, [this, m, hops, commit_at, dac_span] {
    tracer_->EndSpan(dac_span);
    IndexState* st2 = FindIndex(m->index);
    if (st2 == nullptr) return;
    TupleStore* store2 = st2->primary.Store(m->version);
    if (store2 == nullptr) return;
    std::vector<NodeId> rep_targets;
    if (options_.replication != 0) {
      rep_targets = overlay_.ReplicationTargets(options_.replication);
    }
    uint64_t rep_span = 0;
    if (options_.replication != 0) {
      rep_span = tracer_->StartSpan(m->trace_id, "insert.replicate",
                                    m->root_span, id());
    }
    size_t fanout_total = 0;
    for (size_t i = 0; i < m->tuples.size(); ++i) {
      NodeId origin = m->tuples[i].origin;
      std::shared_ptr<ReplicateMsg> rep;
      if (options_.replication != 0) {
        rep = MakeMessage<ReplicateMsg>();
        rep->index = m->index;
        rep->version = m->version;
        rep->tuple = m->tuples[i];
        rep->code = m->codes[i];
      }
      store2->InsertCoded(std::move(m->tuples[i]), m->codes[i]);
      tm_.insert_latency_ms->Record(ToSeconds(commit_at - m->sent_at) * 1e3);
      tm_.insert_hops->Record(static_cast<double>(hops));
      if (on_stored_) {
        StoredInfo info;
        info.index = m->index;
        info.version = m->version;
        info.origin = origin;
        info.storer = id();
        info.committed_at = commit_at;
        info.latency = commit_at - m->sent_at;
        info.hops = hops;
        on_stored_(info);
      }
      if (rep != nullptr) {
        for (NodeId target : rep_targets) {
          overlay_.SendDirect(target, rep);
          ++fanout_total;
        }
        tm_.replicate_fanout->Record(static_cast<double>(rep_targets.size()));
      }
    }
    if (options_.replication != 0) {
      tm_.replicas_sent->Inc(fanout_total);
      tracer_->Note(rep_span, "fanout", std::to_string(fanout_total));
      tracer_->EndSpan(rep_span);
    }
    tracer_->EndSpan(m->root_span);
  });
}

// --------------------------------------------------------------- query

Result<uint64_t> MindNode::Query(const std::string& index, const Rect& rect,
                                 QueryCallback callback) {
  IndexState* st = FindIndex(index);
  if (st == nullptr) return Status::NotFound("index " + index);
  if (rect.dims() != st->def.schema.dims()) {
    return Status::InvalidArgument("query arity mismatch for " + index);
  }
  uint64_t query_id =
      (static_cast<uint64_t>(static_cast<uint32_t>(id())) << 32) |
      (++query_seq_);

  SimTime t1 = 0, t2 = UINT64_MAX;
  if (st->def.time_attr >= 0) {
    t1 = rect.interval(st->def.time_attr).lo;
    t2 = rect.interval(st->def.time_attr).hi;
  }
  auto versions = st->primary.VersionsOverlapping(t1, t2);

  PendingQuery pq;
  pq.index = index;
  pq.rect = rect;
  pq.callback = std::move(callback);
  pq.started = events_->now();
  pq.visited.insert(id());
  tm_.queries->Inc();
  pq.root_span = tracer_->StartSpan(query_id, "query", 0, id());

  if (versions.empty()) {
    // Nothing to ask: complete immediately (async for API consistency).
    queries_.emplace(query_id, std::move(pq));
    events_->Schedule(1, [this, query_id] { FinalizeQuery(query_id, true); });
    return query_id;
  }

  for (VersionId v : versions) {
    CutTreeRef cuts = st->primary.Cuts(v);
    int root_len = std::min(options_.insert_code_len, options_.max_split_len);
    BitCode root = cuts->MinimalContainingCode(rect, root_len);
    pq.trackers.emplace(v, QueryTracker(rect, root, cuts,
                                        options_.max_split_len,
                                        &sim_->metrics()));
  }
  auto [it, inserted] = queries_.emplace(query_id, std::move(pq));
  MIND_CHECK(inserted);
  it->second.timeout_event =
      events_->Schedule(options_.query_timeout, [this, query_id] {
        FinalizeQuery(query_id, false);
      });

  for (auto& [v, tracker] : it->second.trackers) {
    auto m = MakeMessage<QueryMsg>();
    m->query_id = query_id;
    m->index = index;
    m->version = v;
    m->rect = rect;
    m->code = tracker.root();
    m->originator = id();
    m->sent_at = events_->now();
    m->root_span = it->second.root_span;
    overlay_.Route(tracker.root(), m);
  }
  return query_id;
}

bool MindNode::CancelQuery(uint64_t query_id) {
  if (queries_.find(query_id) == queries_.end()) return false;
  FinalizeQuery(query_id, /*complete=*/false);
  return true;
}

void MindNode::NoteQueryVisit(uint64_t query_id) {
  if (on_query_visit_) on_query_visit_(query_id, id());
}

void MindNode::OnQueryArrived(const std::shared_ptr<QueryMsg>& m) {
  if (QueryDebugEnabled()) {
    MIND_LOG(Debug) << "[qdbg] node " << id() << " (code "
                    << overlay_.code().ToString() << ") got query "
                    << m->query_id << " code " << m->code.ToString()
                    << " resolve_only=" << m->resolve_only;
  }
  NoteQueryVisit(m->query_id);
  if (m->resolve_only) {
    ResolveAndReply(*m, m->code);
    return;
  }
  HandleQueryCode(m, m->code);
}

void MindNode::HandleQueryCode(const std::shared_ptr<QueryMsg>& m,
                               const BitCode& code) {
  const BitCode& my = overlay_.code();
  if (my.IsPrefixOf(code)) {
    // Our region contains the whole sub-query region: resolve it.
    ResolveAndReply(*m, code);
    return;
  }
  if (code.IsPrefixOf(my)) {
    // The sub-query region spans several nodes: split (§3.6).
    IndexState* st = FindIndex(m->index);
    if (st == nullptr) return;
    CutTreeRef cuts = st->primary.Cuts(m->version);
    if (cuts == nullptr) return;
    uint64_t split_span =
        tracer_->StartSpan(m->query_id, "query.split", m->root_span, id());
    tracer_->Note(split_span, "code", code.ToString());
    for (const BitCode& child : cuts->IntersectingChildren(m->rect, code)) {
      int cpl = my.CommonPrefixLen(child);
      if (cpl == std::min(my.length(), child.length())) {
        HandleQueryCode(m, child);  // still (partly) ours: keep splitting
      } else {
        auto sub = MakeMessage<QueryMsg>(*m);
        sub->code = child;
        overlay_.Route(child, sub);
      }
    }
    tracer_->EndSpan(split_span);
    return;
  }
  // Misrouted during an overlay transient: try again.
  overlay_.Route(code, m);
}

void MindNode::ResolveAndReply(const QueryMsg& m, const BitCode& code) {
  IndexState* st = FindIndex(m.index);
  if (st == nullptr) return;
  CutTreeRef cuts = st->primary.Cuts(m.version);
  if (cuts == nullptr) return;

  uint64_t resolve_span =
      tracer_->StartSpan(m.query_id, "query.resolve", m.root_span, id());
  tracer_->Note(resolve_span, "code", code.ToString());
  tm_.subquery_len->Record(static_cast<double>(code.length()));

  // The reply message doubles as the result buffer: stores append matching
  // tuples straight into it (QueryInto), and the originator moves them out —
  // no intermediate vector anywhere on the reply path.
  auto reply = MakeMessage<QueryReplyMsg>();
  // Read path: const access never materializes a lazy version — a store this
  // node was never written to answers as the empty store it is.
  const TupleStore* primary = std::as_const(st->primary).Store(m.version);
  const TupleStore* replicas = std::as_const(st->replicas).Store(m.version);
  uint64_t examined0 = (primary ? primary->scan_rows_examined() : 0) +
                       (replicas ? replicas->scan_rows_examined() : 0);
  uint64_t matched0 = (primary ? primary->scan_rows_matched() : 0) +
                      (replicas ? replicas->scan_rows_matched() : 0);
  auto region = cuts->RectForCode(code);
  std::optional<Rect> scan_rect;
  if (region.has_value()) scan_rect = region->Intersect(m.rect);
  if (scan_rect.has_value()) {
    if (primary != nullptr) primary->QueryInto(*scan_rect, &reply->tuples);
    // Replica data answers for failed primaries (transparent failover, §3.8);
    // the originator de-duplicates.
    if (replicas != nullptr) replicas->QueryInto(*scan_rect, &reply->tuples);
  }
  uint64_t examined1 = (primary ? primary->scan_rows_examined() : 0) +
                       (replicas ? replicas->scan_rows_examined() : 0);
  uint64_t matched1 = (primary ? primary->scan_rows_matched() : 0) +
                      (replicas ? replicas->scan_rows_matched() : 0);
  tm_.scan_rows_examined->Record(static_cast<double>(examined1 - examined0));
  tm_.scan_rows_returned->Record(static_cast<double>(matched1 - matched0));

  // Forward pointer (§3.4): versions we acquired via index sync (we joined
  // after their creation) may have pre-join data at the node we split from;
  // forward a resolve-only copy there (the paper's joiner->sibling pointer).
  if (!m.resolve_only && data_sibling_ != kInvalidNode &&
      st->synced_versions.count(m.version) > 0) {
    auto fwd = MakeMessage<QueryMsg>(m);
    fwd->resolve_only = true;
    fwd->code = code;
    overlay_.SendDirect(data_sibling_, fwd);
  }

  size_t n = reply->tuples.size();
  SimTime now = events_->now();
  SimTime dac_wait = dac_busy_until_ > now ? dac_busy_until_ - now : 0;
  tm_.dac_query_wait_ms->Record(ToSeconds(dac_wait) * 1e3);
  SimTime respond_at = std::max(events_->now(), dac_busy_until_) +
                       options_.query_proc_base +
                       options_.query_proc_per_tuple * n;
  dac_busy_until_ = respond_at;

  if (QueryDebugEnabled()) {
    MIND_LOG(Debug) << "[qdbg] node " << id() << " (code "
                    << overlay_.code().ToString() << ") resolves "
                    << code.ToString() << " -> " << n << " tuples";
  }
  reply->query_id = m.query_id;
  reply->version = m.version;
  reply->covered = code;
  reply->resolver = id();
  reply->supplemental = m.resolve_only;
  NodeId originator = m.originator;
  uint64_t query_id = m.query_id;
  uint64_t root_span = m.root_span;
  events_->ScheduleAt(
      respond_at, [this, reply, originator, resolve_span, query_id, root_span] {
        tracer_->Note(resolve_span, "tuples",
                      std::to_string(reply->tuples.size()));
        tracer_->EndSpan(resolve_span);
        reply->reply_span =
            tracer_->StartSpan(query_id, "query.reply", root_span, id());
        if (originator == id()) {
          OnQueryReply(*reply);
        } else {
          overlay_.SendDirect(originator, reply);
        }
      });
}

void MindNode::OnQueryReply(QueryReplyMsg& m) {
  tracer_->EndSpan(m.reply_span);
  auto it = queries_.find(m.query_id);
  if (it == queries_.end()) {
    if (QueryDebugEnabled()) {
      MIND_LOG(Debug) << "[qdbg] originator " << id() << ": LATE reply from "
                      << m.resolver << " covered " << m.covered.ToString()
                      << " (" << m.tuples.size() << " tuples)";
    }
    return;  // finished or timed out
  }
  auto tit = it->second.trackers.find(m.version);
  if (tit == it->second.trackers.end()) return;
  if (QueryDebugEnabled()) {
    MIND_LOG(Debug) << "[qdbg] originator " << id() << ": reply from "
                    << m.resolver << " covered " << m.covered.ToString()
                    << " (" << m.tuples.size() << " tuples)";
  }
  // Each reply has exactly one final consumer (either this self-delivery or
  // the one OnDirect dispatch), so the payload can be moved out wholesale.
  tit->second.AddReply(m.resolver, m.covered, std::move(m.tuples),
                       !m.supplemental);
  it->second.visited.insert(m.resolver);
  for (auto& [v, tracker] : it->second.trackers) {
    if (!tracker.IsComplete()) return;
  }
  FinalizeQuery(m.query_id, true);
}

void MindNode::FinalizeQuery(uint64_t query_id, bool complete) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  PendingQuery& pq = it->second;
  if (pq.timeout_event) events_->Cancel(pq.timeout_event);

  QueryResult result;
  result.query_id = query_id;
  result.complete = complete;
  result.latency = events_->now() - pq.started;
  tm_.query_latency_ms->Record(ToSeconds(result.latency) * 1e3);
  if (!complete) tm_.query_timeouts->Inc();
  tracer_->Note(pq.root_span, "outcome", complete ? "complete" : "timeout");
  tracer_->EndSpan(pq.root_span);
  std::unordered_set<NodeId> responders, positive;
  if (pq.trackers.size() == 1) {
    // Single-version query (the common case): the tracker already de-duped
    // per (origin, seq) as replies arrived, so its buffer is the answer.
    result.tuples = pq.trackers.begin()->second.TakeTuples();
  } else {
    // Multi-version: replicas may have answered the same tuple under two
    // versions; de-dup across trackers.
    std::unordered_set<uint64_t> seen;
    for (auto& [v, tracker] : pq.trackers) {
      for (auto& t : tracker.TakeTuples()) {
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(t.origin))
                        << 40) ^
                       t.seq;
        if (seen.insert(key).second) result.tuples.push_back(std::move(t));
      }
    }
  }
  for (auto& [v, tracker] : pq.trackers) {
    for (NodeId r : tracker.responders()) responders.insert(r);
    for (NodeId r : tracker.positive_responders()) positive.insert(r);
  }
  result.responders = responders.size();
  result.positive_responders = positive.size();
  for (NodeId r : responders) pq.visited.insert(r);
  result.nodes_visited = pq.visited.size();
  QueryCallback cb = std::move(pq.callback);
  queries_.erase(it);
  if (cb) cb(result);
}

// --------------------------------------------------------------- histograms

Status MindNode::StartRebalance(const RebalanceParams& params,
                                std::function<void(Status)> done) {
  IndexState* st = FindIndex(params.index);
  if (st == nullptr) return Status::NotFound("index " + params.index);
  if (st->primary.Cuts(params.source_version) == nullptr) {
    return Status::NotFound("unknown source version");
  }
  uint64_t collection_id =
      (static_cast<uint64_t>(static_cast<uint32_t>(id())) << 32) |
      (++collection_seq_);
  PendingCollection pc;
  pc.params = params;
  pc.merged =
      std::make_shared<Histogram>(st->def.schema, params.bins_per_dim);
  pc.done = std::move(done);
  collections_.emplace(collection_id, std::move(pc));

  auto req = MakeMessage<HistRequestMsg>();
  req->collection_id = collection_id;
  req->index = params.index;
  req->version = params.source_version;
  req->bins_per_dim = params.bins_per_dim;
  req->time_shift = params.time_shift;
  req->collector = id();
  overlay_.Broadcast(req);

  events_->Schedule(params.collect_window, [this, collection_id] {
    auto it = collections_.find(collection_id);
    if (it == collections_.end()) return;
    PendingCollection pc2 = std::move(it->second);
    collections_.erase(it);
    IndexState* st2 = FindIndex(pc2.params.index);
    Status status = Status::OK();
    if (st2 == nullptr) {
      status = Status::NotFound("index dropped during rebalance");
    } else {
      auto cuts = CutTree::Balanced(st2->def.schema, *pc2.merged,
                                    pc2.params.cut_depth);
      if (!cuts.ok()) {
        status = cuts.status();
      } else {
        status = InstallCuts(
            pc2.params.index, pc2.params.new_version,
            std::make_shared<CutTree>(std::move(cuts).value()),
            pc2.params.new_start);
      }
    }
    if (pc2.done) pc2.done(status);
  });
  return Status::OK();
}

void MindNode::OnHistRequest(const HistRequestMsg& m) {
  IndexState* st = FindIndex(m.index);
  if (st == nullptr) return;
  const TupleStore* store = std::as_const(st->primary).Store(m.version);
  auto reply = MakeMessage<HistReplyMsg>();
  reply->collection_id = m.collection_id;
  reply->histogram = std::make_shared<Histogram>(
      store != nullptr
          ? store->BuildHistogram(m.bins_per_dim, st->def.time_attr,
                                  m.time_shift)
          : Histogram(st->def.schema, m.bins_per_dim));
  if (m.collector == id()) {
    OnHistReply(*reply);
  } else {
    overlay_.SendDirect(m.collector, reply);
  }
}

void MindNode::OnHistReply(const HistReplyMsg& m) {
  auto it = collections_.find(m.collection_id);
  if (it == collections_.end()) return;
  if (m.histogram != nullptr) {
    Status s = it->second.merged->Merge(*m.histogram);
    if (!s.ok()) {
      MIND_LOG(Warning) << "histogram merge failed: " << s.ToString();
      return;
    }
    ++it->second.replies;
  }
}

// --------------------------------------------------------------- sync/churn

void MindNode::RequestIndexSync() {
  overlay_.SendDirect(data_sibling_, MakeMessage<IndexSyncRequestMsg>());
}

void MindNode::Crash() {
  overlay_.Crash();
  // Pending queries this node originated are abandoned by the crash. Finalize
  // them (complete=false) rather than just dropping the map: the Query()
  // contract is that the callback fires exactly once, and a front-end holding
  // per-query state on top of us would otherwise leak it until ITS timeout.
  // Sorted ids — finalization runs callbacks, an ordered-emit hazard.
  for (uint64_t qid : SortedKeys(queries_)) {
    FinalizeQuery(qid, /*complete=*/false);
  }
  queries_.clear();  // anything a finalization callback re-submitted mid-crash
  // Volatile state is lost. Cached covers pin their cut trees, so dropping
  // the stores here would otherwise keep those trees alive via the cache.
  indices_.clear();
  cover_cache_.Invalidate();
  collections_.clear();
  dac_busy_until_ = 0;
  data_sibling_ = kInvalidNode;
}

void MindNode::Revive(NodeId bootstrap) { overlay_.Revive(bootstrap); }

// --------------------------------------------------------------- plumbing

void MindNode::OnDelivered(NodeId origin, const MessagePtr& inner, int hops) {
  (void)origin;
  auto* mm = inner != nullptr && inner->IsMind() ? static_cast<MindMsg*>(inner.get()) : nullptr;
  if (mm == nullptr) return;
  switch (mm->kind()) {
    case MindMsgKind::kInsert:
      OnInsertArrived(std::static_pointer_cast<InsertMsg>(inner), hops);
      break;
    case MindMsgKind::kInsertBatch:
      OnInsertBatchArrived(std::static_pointer_cast<InsertBatchMsg>(inner),
                           hops);
      break;
    case MindMsgKind::kQuery:
      OnQueryArrived(std::static_pointer_cast<QueryMsg>(inner));
      break;
    default:
      break;
  }
}

void MindNode::OnBroadcastMsg(NodeId origin, const MessagePtr& inner) {
  (void)origin;
  auto* mm = inner != nullptr && inner->IsMind() ? static_cast<MindMsg*>(inner.get()) : nullptr;
  if (mm == nullptr) return;
  switch (mm->kind()) {
    case MindMsgKind::kCreateIndex:
      ApplyCreateIndex(static_cast<const CreateIndexMsg&>(*mm));
      break;
    case MindMsgKind::kDropIndex:
      indices_.erase(static_cast<const DropIndexMsg&>(*mm).name);
      // Release cut trees that only the cover cache still pins.
      cover_cache_.Invalidate();
      break;
    case MindMsgKind::kInstallCuts:
      ApplyInstallCuts(static_cast<const InstallCutsMsg&>(*mm));
      break;
    case MindMsgKind::kHistRequest:
      OnHistRequest(static_cast<const HistRequestMsg&>(*mm));
      break;
    default:
      break;
  }
}

void MindNode::OnDirect(NodeId from, const MessagePtr& msg) {
  auto* mm = msg->IsMind() ? static_cast<MindMsg*>(msg.get()) : nullptr;
  if (mm == nullptr) return;
  switch (mm->kind()) {
    case MindMsgKind::kReplicate: {
      const auto& r = static_cast<const ReplicateMsg&>(*mm);
      IndexState* st = FindIndex(r.index);
      if (st == nullptr) break;
      TupleStore* store = st->replicas.Store(r.version);
      if (store != nullptr) store->InsertCoded(r.tuple, r.code);
      break;
    }
    case MindMsgKind::kQueryReply:
      OnQueryReply(static_cast<QueryReplyMsg&>(*mm));
      break;
    case MindMsgKind::kQuery: {
      // resolve_only forwards arrive as direct messages.
      auto q = std::static_pointer_cast<QueryMsg>(msg);
      if (q->resolve_only) {
        NoteQueryVisit(q->query_id);
        ResolveAndReply(*q, q->code);
      }
      break;
    }
    case MindMsgKind::kHistReply:
      OnHistReply(static_cast<const HistReplyMsg&>(*mm));
      break;
    case MindMsgKind::kIndexSyncRequest: {
      auto reply = MakeMessage<IndexSyncReplyMsg>();
      for (const auto& [name, st] : indices_) {
        IndexSyncReplyMsg::IndexSnapshot snap;
        snap.def = st.def;
        for (const auto& info : st.primary.Versions()) {
          IndexSyncReplyMsg::IndexSnapshot::VersionSnapshot vs;
          vs.id = info.id;
          vs.cuts = st.primary.Cuts(info.id);
          vs.start = info.start;
          snap.versions.push_back(std::move(vs));
        }
        reply->indices.push_back(std::move(snap));
      }
      overlay_.SendDirect(from, reply);
      break;
    }
    case MindMsgKind::kIndexSyncReply: {
      const auto& r = static_cast<const IndexSyncReplyMsg&>(*mm);
      for (const auto& snap : r.indices) {
        if (indices_.count(snap.def.name)) continue;
        auto [it, inserted] = indices_.emplace(
            snap.def.name, IndexState(snap.def, StoreConfig()));
        MIND_CHECK(inserted);
        for (const auto& vs : snap.versions) {
          MIND_CHECK_OK(it->second.primary.AddVersion(vs.id, vs.cuts, vs.start));
          MIND_CHECK_OK(
              it->second.replicas.AddVersion(vs.id, vs.cuts, vs.start));
          it->second.synced_versions.insert(vs.id);
        }
      }
      break;
    }
    default:
      break;
  }
}

void MindNode::OnForward(const MessagePtr& inner) {
  auto* mm = inner != nullptr && inner->IsMind() ? static_cast<MindMsg*>(inner.get()) : nullptr;
  if (mm != nullptr && mm->kind() == MindMsgKind::kQuery) {
    NoteQueryVisit(static_cast<const QueryMsg&>(*mm).query_id);
  }
}

// --------------------------------------------------------------- accessors

MindNode::IndexState* MindNode::FindIndex(const std::string& name) {
  auto it = indices_.find(name);
  return it == indices_.end() ? nullptr : &it->second;
}

const MindNode::IndexState* MindNode::FindIndex(const std::string& name) const {
  auto it = indices_.find(name);
  return it == indices_.end() ? nullptr : &it->second;
}

const IndexDef* MindNode::GetIndexDef(const std::string& name) const {
  const IndexState* st = FindIndex(name);
  return st ? &st->def : nullptr;
}

std::vector<std::string> MindNode::IndexNames() const {
  return SortedKeys(indices_);
}

size_t MindNode::PrimaryTupleCount(const std::string& name) const {
  const IndexState* st = FindIndex(name);
  return st ? st->primary.TotalTuples() : 0;
}

size_t MindNode::ReplicaTupleCount(const std::string& name) const {
  const IndexState* st = FindIndex(name);
  return st ? st->replicas.TotalTuples() : 0;
}

const IndexVersions* MindNode::PrimaryVersions(const std::string& name) const {
  const IndexState* st = FindIndex(name);
  return st ? &st->primary : nullptr;
}

// --------------------------------------------------------------- correctness

Status MindNode::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  MIND_RETURN_NOT_OK(overlay_.ValidateInvariants());
  for (const auto& [name, st] : indices_) {
    MIND_VALIDATE(st.def.name == name,
                  "mind: node " << id() << " index map key '" << name
                                << "' does not match its def name '"
                                << st.def.name << "'");
    MIND_RETURN_NOT_OK(st.primary.ValidateInvariants());
    MIND_RETURN_NOT_OK(st.replicas.ValidateInvariants());
    for (VersionId v : st.synced_versions) {
      MIND_VALIDATE(st.primary.HasVersion(v),
                    "mind: node " << id() << " index '" << name
                                  << "' records synced version " << v
                                  << " missing from the primary chain");
    }
  }
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void MindNode::DigestInto(Fnv64* out) const {
  overlay_.DigestInto(out);
  out->Mix(dac_busy_until_);
  out->Mix(query_seq_);
  out->Mix(insert_seq_);
  out->Mix(static_cast<uint64_t>(static_cast<int64_t>(data_sibling_)));
  out->Mix(join_time_);
  out->Mix(static_cast<uint64_t>(indices_.size()));
  for (const auto& [name, st] : indices_) {  // std::map: deterministic order
    out->Mix(name);
    st.primary.DigestInto(out);
    st.replicas.DigestInto(out);
    out->Mix(static_cast<uint64_t>(st.synced_versions.size()));
    for (VersionId v : st.synced_versions) out->Mix(static_cast<uint64_t>(v));
  }
}

}  // namespace mind
