// One MIND node: the paper's contribution assembled on top of the overlay,
// storage and data-space substrates.
//
// Implements the four-call interface of §3.2 (create_index, drop_index,
// insert_record, query_index) plus the internals of §3.4-§3.8: data-space
// embedding per index version, insert routing, query splitting with direct
// replies and completion detection, prefix-neighbor replication, daily
// version installation and the histogram collection service.
#ifndef MIND_MIND_MIND_NODE_H_
#define MIND_MIND_MIND_NODE_H_

#include <functional>
#include <map>
#include <set>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mind/index_def.h"
#include "mind/messages.h"
#include "util/digest.h"
#include "mind/query_tracker.h"
#include "overlay/overlay_node.h"
#include "storage/cover_cache.h"
#include "storage/version_manager.h"

namespace mind {

struct MindOptions {
  /// Bits of data-space code computed for inserts/queries; must exceed any
  /// node code length (overlay depth), 64 max.
  int insert_code_len = 32;
  /// Replication level m (§3.8): each stored tuple is copied to the peers
  /// sharing len-1 .. len-m code bits. 0 disables; -1 replicates to every
  /// peer ("full replication" in Figure 16).
  int replication = 1;
  /// Originator-side query timeout; an incomplete query is reported with
  /// complete=false (counted as failed in the Figure 16 experiment).
  SimTime query_timeout = FromSeconds(45);
  /// Max sub-query code length (split depth bound).
  int max_split_len = 24;
  /// Local processing model, replacing the prototype's MySQL DAC: per-tuple
  /// insert commit time and per-sub-query resolution time. Arriving work
  /// queues FIFO behind the node's single storage thread (this is what makes
  /// hotspot nodes produce the paper's long latency tails).
  SimTime insert_proc_time = 300;        // 0.3 ms per tuple
  /// Storage-thread cost of each tuple after the first in a committed batch
  /// (InsertBatch): the batch shares one commit pass, so later tuples are
  /// cheaper than insert_proc_time.
  SimTime batch_item_proc_time = 100;    // 0.1 ms per extra batched tuple
  SimTime query_proc_base = 2000;        // 2 ms per sub-query
  SimTime query_proc_per_tuple = 5;      // + 5 us per returned tuple
  /// Two-level store compaction (delta merged into base at the size-ratio
  /// trigger and at version freeze). Layout-only: results, timings and
  /// digests are identical on or off.
  bool store_compaction = true;
  /// Per-node cover cache memoizing CutTree::Cover for store scans. Pure
  /// memoization: results, timings and digests are identical on or off.
  bool cover_cache = true;
  /// Index backend behind every store this node opens (DESIGN.md §13):
  /// kSortedRuns, kBitmap, or kAdaptive (per-store choice from the previous
  /// version's workload). Digest-transparent: results, timings and digests
  /// are identical for every choice. Defaults from MIND_BACKEND when set.
  IndexBackendKind store_backend = DefaultIndexBackendKind();
  uint64_t seed = 0x31337;
};

/// Final result of a distributed query, delivered to the caller's callback.
struct QueryResult {
  uint64_t query_id = 0;
  /// False if the timeout fired before full coverage (some sub-queries
  /// unanswered, e.g. owners dead without replicas).
  bool complete = false;
  std::vector<Tuple> tuples;
  SimTime latency = 0;
  /// Distinct nodes that resolved sub-queries (responders).
  size_t responders = 0;
  /// Responders that returned data — "the nodes involved while retrieving
  /// the results" (Figure 9's query cost headline).
  size_t positive_responders = 0;
  /// Distinct nodes the originator knows took part (itself + responders).
  /// For the paper's full "query cost" (forwarders included, Figure 9) use
  /// MindNet's per-query visit registry, which observes every hop.
  size_t nodes_visited = 0;
};

class MindNode {
 public:
  MindNode(Simulator* sim, OverlayOptions overlay_options, MindOptions options,
           std::optional<GeoPoint> position = std::nullopt);

  OverlayNode& overlay() { return overlay_; }
  const OverlayNode& overlay() const { return overlay_; }
  NodeId id() const { return overlay_.id(); }

  // ---- §3.2 interface ----------------------------------------------------

  /// Creates an index on every node (overlay broadcast), opening version
  /// `version` with embedding `cuts` valid from `start`.
  Status CreateIndex(const IndexDef& def, CutTreeRef cuts,
                     VersionId version = 1, SimTime start = 0);

  /// Removes the index from every node.
  Status DropIndex(const std::string& name);

  /// Opens a new version of an index with new (re-balanced) cuts on every
  /// node. Data is never migrated (§3.7); the old version keeps serving
  /// queries over its time range.
  Status InstallCuts(const std::string& name, VersionId version,
                     CutTreeRef cuts, SimTime start);

  /// Inserts a record into an index from this node. The destination version
  /// is chosen by the tuple's timestamp attribute (or the latest version if
  /// the index is not time-versioned).
  Status Insert(const std::string& index, Tuple tuple);

  /// Inserts a batch of records from this node as one message train: tuples
  /// ride together while their data-space codes share a prefix, and the train
  /// splits at region boundaries (mirroring query splitting, §3.6). Final
  /// placement is identical to calling Insert per tuple; only the message
  /// count and the DAC commit schedule differ (see batch_item_proc_time).
  Status InsertBatch(const std::string& index, std::vector<Tuple> tuples);

  using QueryCallback = std::function<void(const QueryResult&)>;

  /// Issues a multi-dimensional range query. Returns the query id; the
  /// callback fires exactly once (completion, timeout or cancellation).
  Result<uint64_t> Query(const std::string& index, const Rect& rect,
                         QueryCallback callback);

  /// Cancels a pending query this node originated, reclaiming its trackers
  /// immediately instead of waiting for the 45 s timeout sweep. The callback
  /// fires (once) with complete=false and whatever tuples arrived; counted
  /// under `mind.query.timeouts` like any other abandoned query. Returns
  /// false if the query is unknown or already finalized.
  bool CancelQuery(uint64_t query_id);

  // ---- failure control (benches / churn) ----------------------------------

  void BecomeFirst() { overlay_.BecomeFirst(); }
  void Join(NodeId bootstrap) { overlay_.Join(bootstrap); }
  void Crash();
  void Revive(NodeId bootstrap);

  // ---- introspection -------------------------------------------------------

  bool HasIndex(const std::string& name) const { return indices_.count(name) > 0; }
  /// Names of the indices this node knows, in lexicographic order.
  std::vector<std::string> IndexNames() const;
  const IndexDef* GetIndexDef(const std::string& name) const;
  /// Tuples held for an index (primary copies only).
  size_t PrimaryTupleCount(const std::string& name) const;
  /// Tuples held as replicas.
  size_t ReplicaTupleCount(const std::string& name) const;
  const IndexVersions* PrimaryVersions(const std::string& name) const;
  /// Queries originated here that are still awaiting completion/timeout.
  size_t pending_query_count() const { return queries_.size(); }

  /// Fired at the *storing* node when a tuple commits (primary copy).
  struct StoredInfo {
    std::string index;
    VersionId version = 0;
    NodeId origin = kInvalidNode;
    NodeId storer = kInvalidNode;
    SimTime committed_at = 0;  // virtual time of the commit
    SimTime latency = 0;       // insert-call to commit
    int hops = 0;              // overlay hops of the insert path
  };
  using StoredFn = std::function<void(const StoredInfo&)>;
  void set_on_stored(StoredFn fn) { on_stored_ = std::move(fn); }

  /// Fired whenever this node sees a query (forwarding, splitting or
  /// resolving); benches use it to measure the paper's query cost.
  using QueryVisitFn = std::function<void(uint64_t query_id, NodeId node)>;
  void set_on_query_visit(QueryVisitFn fn) { on_query_visit_ = std::move(fn); }

  /// Fired whenever this node opens a new index version (index creation or a
  /// re-balanced cut installation), with the primary chain's new epoch. The
  /// front-end's standing queries hang off this to re-execute against fresh
  /// cuts. Observational only — must never feed back into simulation state.
  using VersionOpenedFn =
      std::function<void(const std::string& index, VersionId version,
                         uint64_t epoch)>;
  void set_on_version_opened(VersionOpenedFn fn) {
    on_version_opened_ = std::move(fn);
  }

  // ---- histogram / balancing service (§3.7) --------------------------------

  /// Runs one collection round from this (designated) node: broadcast a
  /// histogram request for `version` of `index`, merge replies for
  /// `collect_window`, build balanced cuts of depth `cut_depth`, and install
  /// them as `new_version` valid from `new_start`.
  struct RebalanceParams {
    std::string index;
    VersionId source_version = 1;
    int bins_per_dim = 8;
    int cut_depth = 8;
    VersionId new_version = 2;
    SimTime new_start = 0;
    SimTime collect_window = FromSeconds(10);
    /// Timestamp-attribute shift applied when histogramming (typically one
    /// day, so the new cuts sit where the next day's data will fall).
    Value time_shift = 0;
  };
  Status StartRebalance(const RebalanceParams& params,
                        std::function<void(Status)> done = nullptr);

  // ---- correctness tooling -------------------------------------------------

  /// Checks node-local structure: overlay consistency, and every index's
  /// primary and replica version chains (store keys vs cut trees, byte
  /// accounting, cut-tree shape). Returns OK trivially when MIND_VALIDATORS
  /// is off.
  Status ValidateInvariants() const;

  /// Folds this node's logical state (overlay, indices, DAC clock, local
  /// sequence counters) into `out`. Deliberately excludes telemetry and
  /// anything address- or capacity-dependent, so digests agree across runs
  /// and across MIND_TELEMETRY settings.
  void DigestInto(Fnv64* out) const;

  // ---- snapshot (MSN1, DESIGN.md §14) --------------------------------------

  /// Visits every cut tree referenced by this node's version chains (primary
  /// and replica, every index) so the snapshot layer can intern trees shared
  /// across nodes and write each distinct tree once.
  void ForEachCutTree(const std::function<void(const CutTreeRef&)>& fn) const;

  /// Serializes this node's application state: the overlay section, every
  /// index (definition, synced versions, primary and replica chains), the
  /// local sequence counters, the DAC clock and the RNG cursor. Requires
  /// application-level quiescence — an originated query awaiting completion
  /// or a histogram collection round in flight is an error naming the node
  /// and the pending count. `tree_index` maps a chain's cut tree to its slot
  /// in the snapshot's interned tree table.
  Status SaveSnapshotState(SnapWriter* w,
                           const std::function<uint32_t(const CutTreeRef&)>&
                               tree_index) const;

  /// Restores state written by SaveSnapshotState into this freshly
  /// constructed node. `trees` is the deserialized interned tree table;
  /// `preserve_seqs` selects the legacy exact-sequence timer re-arm (see
  /// OverlayNode::LoadSnapshotState).
  Status LoadSnapshotState(SnapReader* r, const std::vector<CutTreeRef>& trees,
                           bool preserve_seqs);

 private:
  struct IndexState {
    IndexDef def;
    IndexVersions primary;
    IndexVersions replicas;
    /// Versions learned through IndexSync (we joined after their creation):
    /// their pre-join data lives at our split parent (§3.4 forward pointer).
    std::set<VersionId> synced_versions;
    IndexState(IndexDef d, const TupleStoreConfig& config)
        : def(std::move(d)), primary(config), replicas(config) {}
  };

  struct PendingQuery {
    std::string index;
    Rect rect;
    QueryCallback callback;
    SimTime started = 0;
    std::map<VersionId, QueryTracker> trackers;
    std::unordered_set<NodeId> visited;  // filled via on_query_visit wiring
    EventId timeout_event = 0;
    uint64_t root_span = 0;  // originator's "query" trace span
  };

  struct PendingCollection {
    RebalanceParams params;
    std::shared_ptr<Histogram> merged;
    size_t replies = 0;
    std::function<void(Status)> done;
  };

  // message plumbing
  void OnDelivered(NodeId origin, const MessagePtr& inner, int hops);
  void OnBroadcastMsg(NodeId origin, const MessagePtr& inner);
  void OnDirect(NodeId from, const MessagePtr& msg);
  void OnForward(const MessagePtr& inner);

  void ApplyCreateIndex(const CreateIndexMsg& m);
  void ApplyInstallCuts(const InstallCutsMsg& m);
  void OnInsertArrived(const std::shared_ptr<InsertMsg>& m, int hops);
  // Split-or-commit step for a batch (owns / spans / misrouted), recursing on
  // sub-trains that stay local.
  void OnInsertBatchArrived(const std::shared_ptr<InsertBatchMsg>& m, int hops);
  void CommitBatch(const std::shared_ptr<InsertBatchMsg>& m, int hops);
  void OnQueryArrived(const std::shared_ptr<QueryMsg>& m);
  void HandleQueryCode(const std::shared_ptr<QueryMsg>& m, const BitCode& code);
  void ResolveAndReply(const QueryMsg& m, const BitCode& code);
  /// Consumes m.tuples (moved into the tracker) — a reply message has
  /// exactly one final consumer.
  void OnQueryReply(QueryReplyMsg& m);
  void OnHistRequest(const HistRequestMsg& m);
  void OnHistReply(const HistReplyMsg& m);
  void FinalizeQuery(uint64_t query_id, bool complete);
  void RequestIndexSync();
  void NoteQueryVisit(uint64_t query_id);

  IndexState* FindIndex(const std::string& name);
  const IndexState* FindIndex(const std::string& name) const;
  /// The store config stamped onto every version chain this node opens
  /// (key precision, compaction policy, metrics, the shared cover cache).
  TupleStoreConfig StoreConfig();

  Simulator* sim_;
  EventQueue* events_;
  // mind-digest: skip(construction-time config, not evolving state)
  MindOptions options_;
  // mind-digest: skip(RNG cursor; its draws shape state that is digested)
  Rng rng_;
  OverlayNode overlay_;
  /// One cover cache per node, shared by all of its stores (primary and
  /// replica chains of every index); keyed by cuts identity, so distinct
  /// versions never collide. Excluded from DigestInto by design.
  // mind-digest: skip(pure cache; hits and misses produce identical results)
  CoverCache cover_cache_;

  std::map<std::string, IndexState> indices_;
  // mind-digest: skip(in-flight bookkeeping; completions land in digested state)
  std::unordered_map<uint64_t, PendingQuery> queries_;
  uint64_t query_seq_ = 0;
  uint64_t insert_seq_ = 0;  // local insert counter, forms insert trace ids

  // local storage-thread model (the DAC queue)
  SimTime dac_busy_until_ = 0;

  // data-sibling forward pointer (§3.4): the node we split from holds data
  // inserted into versions that predate our join.
  NodeId data_sibling_ = kInvalidNode;
  SimTime join_time_ = 0;

  // mind-digest: skip(in-flight bookkeeping; completions land in digested state)
  std::unordered_map<uint64_t, PendingCollection> collections_;
  // mind-digest: skip(request id allocator; ids are local and never stored)
  uint64_t collection_seq_ = 0;

  StoredFn on_stored_;
  QueryVisitFn on_query_visit_;
  VersionOpenedFn on_version_opened_;

  // Registry instruments (`mind.*`, `storage.scan.*`), aggregated across all
  // nodes of one Simulator. Cached at construction; never null.
  struct Instruments {
    telemetry::Counter* inserts;
    telemetry::Counter* queries;
    telemetry::Counter* query_timeouts;
    telemetry::Counter* replicas_sent;
    telemetry::SimHistogram* insert_latency_ms;
    telemetry::SimHistogram* insert_hops;
    telemetry::SimHistogram* dac_insert_wait_ms;
    telemetry::SimHistogram* dac_query_wait_ms;
    telemetry::SimHistogram* query_latency_ms;
    telemetry::SimHistogram* subquery_len;
    telemetry::SimHistogram* replicate_fanout;
    telemetry::SimHistogram* scan_rows_examined;
    telemetry::SimHistogram* scan_rows_returned;
  };
  Instruments tm_;
  telemetry::Tracer* tracer_;
};

}  // namespace mind

#endif  // MIND_MIND_MIND_NODE_H_
