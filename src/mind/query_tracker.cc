#include "mind/query_tracker.h"

#include "util/logging.h"

namespace mind {

namespace {
uint64_t TupleKey(const Tuple& t) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(t.origin)) << 40) ^
         t.seq;
}
// Exploration budget for completion checks: bounds pathological recursion
// when replies are missing for a wide query.
constexpr int kCoverBudget = 20000;
}  // namespace

QueryTracker::QueryTracker(Rect rect, BitCode root, CutTreeRef cuts,
                           int max_split_len,
                           telemetry::MetricsRegistry* metrics)
    : rect_(std::move(rect)),
      root_(root),
      cuts_(std::move(cuts)),
      max_split_len_(max_split_len) {
  MIND_CHECK(cuts_ != nullptr);
  if (metrics != nullptr) {
    replies_counter_ = &metrics->counter("mind.query.replies");
    dup_tuples_counter_ = &metrics->counter("mind.query.duplicate_tuples");
  }
}

void QueryTracker::AddReply(NodeId resolver, const BitCode& code,
                            std::vector<Tuple> tuples, bool authoritative) {
  ++replies_;
  if (replies_counter_ != nullptr) replies_counter_->Inc();
  responders_.insert(resolver);
  if (!tuples.empty()) positive_responders_.insert(resolver);
  if (authoritative) covered_.push_back(code);
  for (auto& t : tuples) {
    if (seen_tuples_.insert(TupleKey(t)).second) {
      tuples_.push_back(std::move(t));
    } else if (dup_tuples_counter_ != nullptr) {
      dup_tuples_counter_->Inc();
    }
  }
}

bool QueryTracker::IsComplete() const {
  int budget = kCoverBudget;
  return CoveredRec(root_, rect_, &budget);
}

bool QueryTracker::CoveredRec(const BitCode& code, const Rect& region,
                              int* budget) const {
  if (--(*budget) < 0) return false;
  for (const auto& c : covered_) {
    if (c.IsPrefixOf(code)) return true;
  }
  auto rect = cuts_->RectForCode(code);
  if (!rect.has_value() || !rect->Intersects(rect_)) return true;  // vacuous
  if (code.length() >= max_split_len_) return false;
  return CoveredRec(code.Child(0), region, budget) &&
         CoveredRec(code.Child(1), region, budget);
}

}  // namespace mind
