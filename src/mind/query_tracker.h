// Originator-side bookkeeping for one distributed query against one index
// version: which sub-query codes have been answered, result accumulation with
// replica de-duplication, and completion detection (paper §3.6: "the
// originator can then determine, by examining which nodes responded, when the
// query response is complete").
#ifndef MIND_MIND_QUERY_TRACKER_H_
#define MIND_MIND_QUERY_TRACKER_H_

#include <unordered_set>
#include <vector>

#include "sim/message.h"
#include "space/cut_tree.h"
#include "space/rect.h"
#include "storage/tuple.h"
#include "telemetry/metrics.h"
#include "util/bitcode.h"

namespace mind {

class QueryTracker {
 public:
  /// `root` is the minimal containing code the query was routed to; `cuts`
  /// the embedding of the queried version; `max_split_len` bounds how deep
  /// the resolvers may have split. `metrics`, when non-null, receives
  /// per-reply counters (`mind.query.replies`, `mind.query.duplicate_tuples`).
  QueryTracker(Rect rect, BitCode root, CutTreeRef cuts, int max_split_len,
               telemetry::MetricsRegistry* metrics = nullptr);

  /// Records a reply covering `code`; tuples are merged with (origin, seq)
  /// de-duplication (replicas may answer the same region). Supplemental
  /// replies (data-sibling forwards) contribute tuples but not coverage.
  void AddReply(NodeId resolver, const BitCode& code, std::vector<Tuple> tuples,
                bool authoritative = true);

  /// True once the received codes cover every part of the root region that
  /// intersects the query rectangle.
  bool IsComplete() const;

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple> TakeTuples() { return std::move(tuples_); }
  size_t reply_count() const { return replies_; }
  const std::unordered_set<NodeId>& responders() const { return responders_; }
  /// Responders whose reply carried at least one tuple (the rest answered
  /// negatively, §3.6).
  const std::unordered_set<NodeId>& positive_responders() const {
    return positive_responders_;
  }
  const BitCode& root() const { return root_; }

 private:
  bool CoveredRec(const BitCode& code, const Rect& region, int* budget) const;

  Rect rect_;
  BitCode root_;
  CutTreeRef cuts_;
  int max_split_len_;
  std::vector<BitCode> covered_;
  std::unordered_set<NodeId> responders_;
  std::unordered_set<NodeId> positive_responders_;
  std::unordered_set<uint64_t> seen_tuples_;  // (origin, seq) packed
  std::vector<Tuple> tuples_;
  size_t replies_ = 0;
  telemetry::Counter* replies_counter_ = nullptr;
  telemetry::Counter* dup_tuples_counter_ = nullptr;
};

}  // namespace mind

#endif  // MIND_MIND_QUERY_TRACKER_H_
