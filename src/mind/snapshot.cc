// Whole-deployment snapshot/restore: the MSN1 format (DESIGN.md §14).
//
// A snapshot captures everything the StateDigest folds — virtual clock,
// pending re-armable timers, network liveness and outage plans, every node's
// overlay and index state, and every RNG cursor — so that a restored net,
// run forward, is bit-identical to the net that never stopped. The restore
// path proves it: LoadSnapshot recomputes StateDigest() and refuses the
// restore unless it equals the digest recorded at save time.
//
// Layout (all little-endian, via SnapWriter/SnapReader; the trailer carries
// a running FNV-1a 64 checksum of every preceding byte):
//
//   "MSN1"  u16 version  u16 flags(bit0=discipline)
//   u64 node_count  u64 sim_now  u64 state_digest
//   rng(simulator root)  u64 next_seq(global queue)
//   [network section]
//   u32 tree_count  [interned cut trees]
//   per node: u32 index-framing  [overlay section]  [index chains]  rng
//   u64 checksum
#include <cstdio>
#include <cstring>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mind/mind_net.h"
#include "sim/simulator.h"
#include "util/snapio.h"

namespace mind {

namespace {

std::string Hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t IdBits(NodeId id) {
  return static_cast<uint64_t>(static_cast<int64_t>(id));
}

Result<NodeId> ReadNodeId(SnapReader* r, const char* field, size_t fleet) {
  uint64_t raw;
  MIND_ASSIGN_OR_RETURN(raw, r->U64(field));
  const int64_t id = static_cast<int64_t>(raw);
  if (id != kInvalidNode && (id < 0 || static_cast<uint64_t>(id) >= fleet)) {
    return r->FieldError(field, "node id " + std::to_string(id) +
                                    " outside fleet of " +
                                    std::to_string(fleet));
  }
  return static_cast<NodeId>(id);
}

}  // namespace

// ---- MindNode ------------------------------------------------------------

void MindNode::ForEachCutTree(
    const std::function<void(const CutTreeRef&)>& fn) const {
  for (const auto& [name, st] : indices_) {
    for (const auto& chain : {&st.primary, &st.replicas}) {
      for (const auto& v : chain->Versions()) fn(chain->Cuts(v.id));
    }
  }
}

Status MindNode::SaveSnapshotState(
    SnapWriter* w,
    const std::function<uint32_t(const CutTreeRef&)>& tree_index) const {
  // Application-level quiescence: an in-flight query or collection round
  // holds callbacks and trackers no byte stream can carry across processes.
  const std::string who = "mind node " + std::to_string(id());
  if (!queries_.empty()) {
    return Status::Internal("snapshot: " + who + " has " +
                            std::to_string(queries_.size()) +
                            " originated quer" +
                            (queries_.size() == 1 ? "y" : "ies") +
                            " awaiting completion");
  }
  if (!collections_.empty()) {
    return Status::Internal("snapshot: " + who + " has " +
                            std::to_string(collections_.size()) +
                            " histogram collection round(s) in flight");
  }
  MIND_RETURN_NOT_OK(overlay_.SaveSnapshotState(w));

  w->U32(static_cast<uint32_t>(indices_.size()));
  for (const auto& [name, st] : indices_) {  // map: lexicographic, stable
    w->Str(st.def.name);
    w->U32(static_cast<uint32_t>(st.def.schema.dims()));
    for (const AttributeDef& a : st.def.schema.attrs()) {
      w->Str(a.name);
      w->U64(a.min);
      w->U64(a.max);
    }
    w->U32(static_cast<uint32_t>(st.def.carried.size()));
    for (const std::string& c : st.def.carried) w->Str(c);
    w->U64(static_cast<uint64_t>(static_cast<int64_t>(st.def.time_attr)));
    w->U32(static_cast<uint32_t>(st.synced_versions.size()));
    for (VersionId v : st.synced_versions) w->U32(v);  // set: ascending
    st.primary.SaveSnapshotState(w, tree_index);
    st.replicas.SaveSnapshotState(w, tree_index);
  }

  w->U64(query_seq_);
  w->U64(insert_seq_);
  w->U64(collection_seq_);
  w->U64(dac_busy_until_);
  w->U64(IdBits(data_sibling_));
  w->U64(join_time_);
  WriteRngState(w, rng_);
  return Status::OK();
}

Status MindNode::LoadSnapshotState(SnapReader* r,
                                   const std::vector<CutTreeRef>& trees,
                                   bool preserve_seqs) {
  if (!indices_.empty()) {
    return Status::Internal("snapshot: restoring into a node that already has " +
                            std::to_string(indices_.size()) + " index(es)");
  }
  MIND_RETURN_NOT_OK(overlay_.LoadSnapshotState(r, preserve_seqs));

  uint32_t index_count;
  MIND_ASSIGN_OR_RETURN(index_count, r->U32("node.index_count"));
  if (index_count > (1u << 16)) {
    return r->FieldError("node.index_count", "implausible index count " +
                                                 std::to_string(index_count));
  }
  std::string prev_name;
  for (uint32_t i = 0; i < index_count; ++i) {
    IndexDef def;
    MIND_ASSIGN_OR_RETURN(def.name, r->Str("index.name"));
    if (i > 0 && def.name <= prev_name) {
      return r->FieldError("index.name", "index names not ascending");
    }
    prev_name = def.name;
    uint32_t dims;
    MIND_ASSIGN_OR_RETURN(dims, r->U32("index.schema.dims"));
    if (dims == 0 || dims > 64) {
      return r->FieldError("index.schema.dims", "dimension count " +
                                                    std::to_string(dims) +
                                                    " outside (0, 64]");
    }
    std::vector<AttributeDef> attrs(dims);
    for (AttributeDef& a : attrs) {
      MIND_ASSIGN_OR_RETURN(a.name, r->Str("index.schema.attr.name"));
      MIND_ASSIGN_OR_RETURN(a.min, r->U64("index.schema.attr.min"));
      MIND_ASSIGN_OR_RETURN(a.max, r->U64("index.schema.attr.max"));
    }
    def.schema = Schema(std::move(attrs));
    uint32_t carried_count;
    MIND_ASSIGN_OR_RETURN(carried_count, r->U32("index.carried.count"));
    if (carried_count > 4096) {
      return r->FieldError("index.carried.count", "implausible carried count");
    }
    def.carried.resize(carried_count);
    for (std::string& c : def.carried) {
      MIND_ASSIGN_OR_RETURN(c, r->Str("index.carried.name"));
    }
    uint64_t time_attr_raw;
    MIND_ASSIGN_OR_RETURN(time_attr_raw, r->U64("index.time_attr"));
    def.time_attr = static_cast<int>(static_cast<int64_t>(time_attr_raw));
    if (def.time_attr < -1 || def.time_attr >= static_cast<int>(dims)) {
      return r->FieldError("index.time_attr",
                           "timestamp attribute " +
                               std::to_string(def.time_attr) +
                               " outside the schema's " +
                               std::to_string(dims) + " dimension(s)");
    }
    MIND_RETURN_NOT_OK(def.Validate());

    auto [it, inserted] =
        indices_.try_emplace(def.name, std::move(def), StoreConfig());
    if (!inserted) {
      return r->FieldError("index.name", "duplicate index name");
    }
    IndexState& st = it->second;

    uint32_t synced_count;
    MIND_ASSIGN_OR_RETURN(synced_count, r->U32("index.synced.count"));
    if (synced_count > (1u << 20)) {
      return r->FieldError("index.synced.count", "implausible synced count");
    }
    VersionId prev_v = 0;
    for (uint32_t s = 0; s < synced_count; ++s) {
      VersionId v;
      MIND_ASSIGN_OR_RETURN(v, r->U32("index.synced.version"));
      if (s > 0 && v <= prev_v) {
        return r->FieldError("index.synced.version",
                             "synced versions not ascending");
      }
      prev_v = v;
      st.synced_versions.insert(st.synced_versions.end(), v);
    }
    MIND_RETURN_NOT_OK(st.primary.LoadSnapshotState(r, trees));
    MIND_RETURN_NOT_OK(st.replicas.LoadSnapshotState(r, trees));
  }

  MIND_ASSIGN_OR_RETURN(query_seq_, r->U64("node.query_seq"));
  MIND_ASSIGN_OR_RETURN(insert_seq_, r->U64("node.insert_seq"));
  MIND_ASSIGN_OR_RETURN(collection_seq_, r->U64("node.collection_seq"));
  MIND_ASSIGN_OR_RETURN(dac_busy_until_, r->U64("node.dac_busy_until"));
  MIND_ASSIGN_OR_RETURN(
      data_sibling_,
      ReadNodeId(r, "node.data_sibling", sim_->network().host_count()));
  MIND_ASSIGN_OR_RETURN(join_time_, r->U64("node.join_time"));
  return ReadRngState(r, &rng_, "node.rng");
}

// ---- MindNet -------------------------------------------------------------

Status MindNet::SaveSnapshot(std::ostream& out) const {
  // Quiescence audit: every pending event across every queue must be one of
  // the nodes' re-armable heartbeat timers. Anything else — a query timeout
  // sweep, a join retry, a legacy-mode failure-injector event — would be
  // silently dropped by the restore, which would then diverge.
  std::vector<EventQueue::PendingInfo> pending;
  sim_->events().CollectPendingInfo(&pending);
  if (const ParallelEngine* eng = sim_->parallel_engine()) {
    for (int s = 0; s < eng->shard_count(); ++s) {
      eng->shard_queue(s).CollectPendingInfo(&pending);
    }
  }
  size_t heartbeats = 0;
  for (const auto& n : nodes_) {
    if (n->overlay().HasPendingHeartbeat()) ++heartbeats;
  }
  if (pending.size() != heartbeats) {
    return Status::Internal(
        "snapshot: " + std::to_string(pending.size()) +
        " pending event(s) but only " + std::to_string(heartbeats) +
        " re-armable heartbeat timer(s); queries, joins and legacy-mode "
        "failure events must drain before SaveSnapshot");
  }

  // Intern the cut trees: one tree is typically shared by every node of an
  // index version, so the table writes each distinct tree exactly once, in
  // first-reference order (node id, then index name, then chain position) —
  // a deterministic order, so identical states write identical bytes.
  std::vector<CutTreeRef> trees;
  std::unordered_map<const CutTree*, uint32_t> tree_ids;
  for (const auto& n : nodes_) {
    n->ForEachCutTree([&](const CutTreeRef& t) {
      if (t != nullptr && tree_ids.emplace(t.get(), trees.size()).second) {
        trees.push_back(t);
      }
    });
  }
  const auto tree_index = [&tree_ids](const CutTreeRef& t) -> uint32_t {
    return tree_ids.at(t.get());
  };

  SnapWriter w(&out);
  w.Bytes("MSN1", 4);
  w.U16(1);  // format version
  const bool disc = sim_->discipline();
  w.U16(disc ? 1 : 0);
  w.U64(nodes_.size());
  w.U64(sim_->events().now());
  w.U64(StateDigest());
  WriteRngState(&w, sim_->rng());
  w.U64(sim_->events().next_seq());
  sim_->network().SaveSnapshotState(&w);

  w.U32(static_cast<uint32_t>(trees.size()));
  for (const CutTreeRef& t : trees) t->SaveSnapshotState(&w);

  for (size_t i = 0; i < nodes_.size(); ++i) {
    w.U32(static_cast<uint32_t>(i));  // framing guard
    MIND_RETURN_NOT_OK(nodes_[i]->SaveSnapshotState(&w, tree_index));
  }

  w.U64(w.checksum());
  return w.status();
}

Status MindNet::LoadSnapshot(std::istream& in) {
  if (sim_->now() != 0 || !sim_->events().empty() || JoinedCount() != 0) {
    return Status::Internal(
        "snapshot: LoadSnapshot requires a freshly constructed, never-run "
        "net");
  }
  ParallelEngine* eng = sim_->parallel_engine();
  if (eng != nullptr) {
    for (int s = 0; s < eng->shard_count(); ++s) {
      if (!eng->shard_queue(s).empty()) {
        return Status::Internal(
            "snapshot: LoadSnapshot requires empty shard queues");
      }
    }
  }

  SnapReader r(&in);
  char magic[4];
  MIND_RETURN_NOT_OK(r.Bytes(magic, 4, "header.magic"));
  if (std::memcmp(magic, "MSN1", 4) != 0) {
    return r.FieldError("header.magic", "not an MSN1 snapshot");
  }
  uint16_t version;
  MIND_ASSIGN_OR_RETURN(version, r.U16("header.version"));
  if (version != 1) {
    return r.FieldError("header.version", "unsupported snapshot version " +
                                              std::to_string(version));
  }
  uint16_t flags;
  MIND_ASSIGN_OR_RETURN(flags, r.U16("header.flags"));
  if ((flags & ~uint16_t{1}) != 0) {
    return r.FieldError("header.flags", "unknown flag bits");
  }
  const bool disc = (flags & 1) != 0;
  if (disc != sim_->discipline()) {
    return r.FieldError(
        "header.flags",
        disc ? "snapshot was saved under the determinism discipline but "
               "this net runs the legacy engine"
             : "snapshot was saved under the legacy engine but this net "
               "runs the determinism discipline");
  }
  uint64_t node_count;
  MIND_ASSIGN_OR_RETURN(node_count, r.U64("header.node_count"));
  if (node_count != nodes_.size()) {
    return r.FieldError("header.node_count",
                        "snapshot holds " + std::to_string(node_count) +
                            " node(s), this net has " +
                            std::to_string(nodes_.size()));
  }
  uint64_t sim_now, saved_digest;
  MIND_ASSIGN_OR_RETURN(sim_now, r.U64("header.sim_now"));
  MIND_ASSIGN_OR_RETURN(saved_digest, r.U64("header.state_digest"));

  // Clocks first: every queue advances to the saved instant before any
  // timer is re-armed (scheduling into the past is fatal by design).
  sim_->events().AdvanceTo(sim_now);
  if (eng != nullptr) {
    for (int s = 0; s < eng->shard_count(); ++s) {
      eng->shard_queue(s).AdvanceTo(sim_now);
    }
  }
  MIND_RETURN_NOT_OK(ReadRngState(&r, &sim_->rng(), "header.rng"));
  uint64_t next_seq;
  MIND_ASSIGN_OR_RETURN(next_seq, r.U64("header.next_seq"));

  MIND_RETURN_NOT_OK(sim_->network().LoadSnapshotState(&r));

  uint32_t tree_count;
  MIND_ASSIGN_OR_RETURN(tree_count, r.U32("trees.count"));
  if (tree_count > (1u << 20)) {
    return r.FieldError("trees.count", "implausible tree count " +
                                           std::to_string(tree_count));
  }
  std::vector<CutTreeRef> trees;
  trees.reserve(tree_count);
  for (uint32_t i = 0; i < tree_count; ++i) {
    auto tree_or = CutTree::LoadSnapshotState(&r);
    if (!tree_or.ok()) return tree_or.status();
    trees.push_back(
        std::make_shared<const CutTree>(std::move(tree_or).value()));
  }

  for (size_t i = 0; i < nodes_.size(); ++i) {
    uint32_t idx;
    MIND_ASSIGN_OR_RETURN(idx, r.U32("node.framing"));
    if (idx != i) {
      return r.FieldError("node.framing",
                          "expected node " + std::to_string(i) + ", found " +
                              std::to_string(idx));
    }
    MIND_RETURN_NOT_OK(nodes_[i]->LoadSnapshotState(&r, trees, !disc));
  }

  // Legacy digests fold per-queue insertion sequences, so the global
  // allocator must resume exactly where the saved run left it. Applied
  // *after* the timer re-arms above: ScheduleAtKeyedWithSeq consumed fresh
  // seqs internally, and the straight-through run's allocator never saw
  // those draws. Discipline mode orders by engine-independent keys and
  // leaves its per-shard allocators alone.
  if (!disc) sim_->events().SetNextSeq(next_seq);

  const uint64_t computed = r.checksum();
  uint64_t stored;
  MIND_ASSIGN_OR_RETURN(stored, r.U64("trailer.checksum"));
  if (stored != computed) {
    return r.FieldError("trailer.checksum",
                        "stream checksum " + Hex64(computed) +
                            " does not match stored " + Hex64(stored));
  }

  // The gate: a restored net must digest exactly as the saved one did. Any
  // state the format failed to carry — or carried wrong — is caught here,
  // before a single event runs.
  const uint64_t digest = StateDigest();
  if (digest != saved_digest) {
    return Status::Internal("snapshot: restored state digest " +
                            Hex64(digest) + " does not match saved digest " +
                            Hex64(saved_digest));
  }
  ClearStored();
  ClearVisits();
  return Status::OK();
}

}  // namespace mind
