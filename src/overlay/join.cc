// The randomized join protocol (paper §3.3, Figure 4).
//
// A joiner routes a JoinFind to a uniformly random code; the owner proposes
// the shallowest node of its neighborhood as attachment point. The joiner
// asks that node (the "parent") to split: parent extends its code with 0, the
// joiner takes the sibling code ending in 1, and the parent's peers stage the
// new neighbor. Concurrent joins serialize without deadlock: every node acks
// optimistically, but a staged join is preempted by a competing join whose
// parent is *shallower*; the preempted joiner aborts and retries.
#include "overlay/overlay_node.h"
#include "util/logging.h"
#include "util/ordered.h"

namespace mind {

void OverlayNode::CancelJoinTimer() {
  if (join_timer_) {
    events_->Cancel(join_timer_);
    join_timer_ = 0;
  }
}

void OverlayNode::ScheduleJoinRetry() {
  CancelJoinTimer();
  join_state_ = JoinState::kIdle;
  join_candidate_ = kInvalidNode;
  // Exponential backoff with jitter: under a burst of concurrent joins the
  // contenders must decongest or they preempt each other forever.
  join_failures_ = std::min(join_failures_ + 1, 6);
  SimTime base = options_.join_retry_delay << (join_failures_ - 1);
  SimTime delay = base + static_cast<SimTime>(rng_.Uniform(base));
  join_timer_ = events_->Schedule(delay, [this] {
    join_timer_ = 0;
    if (alive_ && !joined_) StartJoinAttempt();
  });
}

void OverlayNode::StartJoinAttempt() {
  if (!alive_ || joined_) return;
  tm_.join_attempts->Inc();
  join_state_ = JoinState::kWaitCandidate;

  // Route a JoinFind to a uniformly random point of the code space through
  // the bootstrap node.
  auto find = MakeMessage<JoinFindMsg>();
  find->joiner = id_;
  auto env = MakeMessage<RouteEnvelope>();
  env->target = BitCode::FromBits(rng_.Next(), BitCode::kMaxLen);
  env->max_hops = options_.route_max_hops;
  env->origin = id_;
  env->inner = find;
  SendRaw(bootstrap_, env);

  CancelJoinTimer();
  join_timer_ = events_->Schedule(options_.join_phase_timeout, [this] {
    join_timer_ = 0;
    if (alive_ && !joined_) ScheduleJoinRetry();
  });
}

void OverlayNode::OnJoinFind(const JoinFindMsg& m) {
  if (!joined_) return;
  // Choose the shallowest node in our neighborhood (ourselves included);
  // ties break randomly to avoid herding every concurrent joiner onto the
  // same parent.
  NodeId best = id_;
  BitCode best_code = code_;
  int ties = 1;
  // Sorted iteration: the reservoir sample below both consumes rng_ draws
  // and picks the winner in visit order, so hash-layout order would make
  // the choice (and the rng stream) diverge across runs.
  for (NodeId peer : SortedKeys(peers_)) {
    const BitCode& pcode = peers_.find(peer)->second;
    if (pcode.length() < best_code.length()) {
      best = peer;
      best_code = pcode;
      ties = 1;
    } else if (pcode.length() == best_code.length()) {
      ++ties;
      if (rng_.Uniform(static_cast<uint64_t>(ties)) == 0) {
        best = peer;
        best_code = pcode;
      }
    }
  }
  auto reply = MakeMessage<JoinCandidateMsg>();
  reply->candidate = best;
  reply->candidate_code = best_code;
  reply->proposer = id_;
  SendRaw(m.joiner, reply);
}

void OverlayNode::OnJoinCandidate(const JoinCandidateMsg& m) {
  if (joined_ || join_state_ != JoinState::kWaitCandidate) return;
  join_state_ = JoinState::kWaitCommit;
  join_candidate_ = m.candidate;
  join_proposer_ = m.proposer;
  auto req = MakeMessage<JoinRequestMsg>();
  req->joiner = id_;
  req->expected_parent_code = m.candidate_code;
  SendRaw(m.candidate, req);
  CancelJoinTimer();
  join_timer_ = events_->Schedule(options_.join_phase_timeout, [this] {
    join_timer_ = 0;
    if (alive_ && !joined_) ScheduleJoinRetry();
  });
}

void OverlayNode::OnJoinRequest(NodeId from, const JoinRequestMsg& m) {
  MIND_CHECK_EQ(from, m.joiner);
  if (!joined_ || pending_join_.has_value() ||
      code_.length() >= BitCode::kMaxLen ||
      m.expected_parent_code != code_) {
    // The depth-mismatch reject matters for balance: the joiner selected us
    // from a possibly stale peer table; if we've split since, we are no
    // longer the shallowest choice and the joiner must re-sample.
    auto rej = MakeMessage<JoinRejectMsg>();
    rej->actual_code = code_;
    SendRaw(from, rej);
    return;
  }

  PendingJoin pj;
  pj.join_id = (static_cast<uint64_t>(static_cast<uint32_t>(id_)) << 32) |
               (++join_seq_);
  pj.joiner = m.joiner;
  pj.joiner_code = code_.Child(1);
  pj.my_new_code = code_.Child(0);
  for (const auto& [peer, pcode] : peers_) pj.awaiting_acks.insert(peer);
  pending_join_ = std::move(pj);

  if (pending_join_->awaiting_acks.empty()) {
    // Singleton overlay: commit immediately.
    CommitPendingJoin();
    return;
  }

  for (NodeId peer : SortedKeys(peers_)) {
    auto add = MakeMessage<NeighborAddMsg>();
    add->join_id = pending_join_->join_id;
    add->parent = id_;
    add->parent_depth = code_.length();
    add->joiner = pending_join_->joiner;
    add->joiner_code = pending_join_->joiner_code;
    add->parent_new_code = pending_join_->my_new_code;
    SendRaw(peer, add);
  }
  pending_join_->timeout_event =
      events_->Schedule(options_.join_phase_timeout, [this] {
        if (pending_join_) {
          pending_join_->timeout_event = 0;
          AbortPendingJoin(/*notify_joiner=*/true);
        }
      });
}

void OverlayNode::OnNeighborAdd(NodeId from, const NeighborAddMsg& m) {
  if (!joined_) {
    SendRaw(from, [&] {
      auto r = MakeMessage<NeighborAddRejectMsg>();
      r->join_id = m.join_id;
      return r;
    }());
    return;
  }

  // Serialization rule: a join whose parent is shallower wins.
  // (a) Against our own pending join (we are a parent too).
  if (pending_join_.has_value()) {
    if (m.parent_depth < code_.length()) {
      tm_.join_preemptions->Inc();
      AbortPendingJoin(/*notify_joiner=*/true);
      // fall through to accept the shallower join
    } else {
      auto r = MakeMessage<NeighborAddRejectMsg>();
      r->join_id = m.join_id;
      SendRaw(from, r);
      return;
    }
  }
  // (b) Against other staged joins in this neighborhood. Scanned in join-id
  // order: when the table holds both a join this one preempts and a join
  // that rejects this one, which happens first decides what state survives,
  // so the scan order must not depend on the hash layout.
  for (uint64_t staged_id : SortedKeys(staged_adds_)) {
    auto it = staged_adds_.find(staged_id);
    if (m.parent_depth < it->second.parent_depth) {
      // New join preempts the staged one: tell its parent.
      auto r = MakeMessage<NeighborAddRejectMsg>();
      r->join_id = it->first;
      SendRaw(it->second.parent, r);
      if (it->second.expiry_event) events_->Cancel(it->second.expiry_event);
      staged_adds_.erase(it);
      tm_.join_preemptions->Inc();
    } else if (it->second.parent_depth < m.parent_depth ||
               it->second.parent != m.parent) {
      // An equally-or-more shallow staged join exists: reject the newcomer.
      auto r = MakeMessage<NeighborAddRejectMsg>();
      r->join_id = m.join_id;
      SendRaw(from, r);
      return;
    }
  }

  StagedAdd staged;
  staged.parent = m.parent;
  staged.parent_depth = m.parent_depth;
  staged.joiner = m.joiner;
  staged.joiner_code = m.joiner_code;
  staged.parent_new_code = m.parent_new_code;
  uint64_t join_id = m.join_id;
  staged.expiry_event = events_->Schedule(
      4 * options_.join_phase_timeout,
      [this, join_id] { staged_adds_.erase(join_id); });
  staged_adds_[join_id] = std::move(staged);

  auto ack = MakeMessage<NeighborAddAckMsg>();
  ack->join_id = m.join_id;
  SendRaw(from, ack);
}

void OverlayNode::OnNeighborAddAck(NodeId from, const NeighborAddAckMsg& m) {
  if (!pending_join_ || pending_join_->join_id != m.join_id) return;
  pending_join_->awaiting_acks.erase(from);
  if (pending_join_->awaiting_acks.empty()) CommitPendingJoin();
}

void OverlayNode::OnNeighborAddReject(const NeighborAddRejectMsg& m) {
  if (!pending_join_ || pending_join_->join_id != m.join_id) return;
  AbortPendingJoin(/*notify_joiner=*/true);
}

void OverlayNode::CommitPendingJoin() {
  MIND_CHECK(pending_join_.has_value());
  PendingJoin pj = std::move(*pending_join_);
  pending_join_.reset();
  if (pj.timeout_event) events_->Cancel(pj.timeout_event);

  // Build the peer snapshot for the joiner before we mutate our table.
  auto commit = MakeMessage<JoinCommitMsg>();
  commit->joiner_code = pj.joiner_code;
  commit->parent_new_code = pj.my_new_code;
  commit->parent = id_;
  commit->peers = peers_;

  SetCode(pj.my_new_code);
  peers_[pj.joiner] = pj.joiner_code;
  InvalidateRouteCache();
  PrunePeers();
  AnnounceCode();

  SendRaw(pj.joiner, commit);
  for (NodeId peer : SortedKeys(peers_)) {
    if (peer == pj.joiner) continue;
    auto notify = MakeMessage<JoinCommitNotifyMsg>();
    notify->join_id = pj.join_id;
    SendRaw(peer, notify);
  }
}

void OverlayNode::AbortPendingJoin(bool notify_joiner) {
  if (!pending_join_) return;
  if (pending_join_->timeout_event) {
    events_->Cancel(pending_join_->timeout_event);
  }
  if (notify_joiner) {
    SendRaw(pending_join_->joiner, MakeMessage<JoinAbortMsg>());
  }
  // Tell peers to drop their staged entries right away: a stale staged add
  // blocks later joins in this neighborhood until it expires.
  for (NodeId peer : SortedKeys(peers_)) {
    auto cancel = MakeMessage<NeighborAddCancelMsg>();
    cancel->join_id = pending_join_->join_id;
    SendRaw(peer, cancel);
  }
  pending_join_.reset();
}

void OverlayNode::OnJoinCommit(NodeId from, const JoinCommitMsg& m) {
  if (joined_ || join_state_ != JoinState::kWaitCommit ||
      join_candidate_ != from) {
    // The commit raced with our timeout/retry: the parent split for nothing
    // and must undo, or the region ending in ...1 would be orphaned.
    SendRaw(from, MakeMessage<JoinDeclineMsg>());
    return;
  }
  CancelJoinTimer();
  join_state_ = JoinState::kIdle;
  join_failures_ = 0;
  joined_ = true;
  code_ = m.joiner_code;
  peers_ = m.peers;
  peers_[m.parent] = m.parent_new_code;
  InvalidateRouteCache();
  join_parent_ = m.parent;
  PrunePeers();
  if (options_.heartbeat_interval > 0 && heartbeat_timer_ == 0) {
    heartbeat_timer_ = events_->Schedule(options_.heartbeat_interval,
                                         [this] { OnHeartbeatTimer(); });
  }
  if (on_code_change_) on_code_change_(BitCode(), code_);
  if (on_joined_) on_joined_();
  (void)from;
}

void OverlayNode::OnJoinDecline(NodeId from) {
  // Our committed joiner never took its code: undo the split.
  if (!joined_) return;
  auto it = peers_.find(from);
  if (it == peers_.end()) return;
  if (!(code_.length() > 0 && it->second == code_.Sibling())) return;
  peers_.erase(it);
  InvalidateRouteCache();
  SetCode(code_.Parent());
  AnnounceCode();
}

void OverlayNode::OnJoinAbort() {
  if (joined_ || join_state_ != JoinState::kWaitCommit) return;
  ScheduleJoinRetry();
}

void OverlayNode::OnJoinCommitNotify(NodeId from,
                                     const JoinCommitNotifyMsg& m) {
  auto it = staged_adds_.find(m.join_id);
  if (it == staged_adds_.end()) return;
  const StagedAdd& s = it->second;
  MIND_CHECK_EQ(s.parent, from);
  peers_[s.joiner] = s.joiner_code;
  peers_[s.parent] = s.parent_new_code;
  InvalidateRouteCache();
  if (s.expiry_event) events_->Cancel(s.expiry_event);
  staged_adds_.erase(it);
  PrunePeers();
}

}  // namespace mind
