// Overlay-internal protocol messages: routing envelopes, the join protocol,
// heartbeats, code updates and routing-recovery broadcasts.
#ifndef MIND_OVERLAY_MESSAGES_H_
#define MIND_OVERLAY_MESSAGES_H_

#include <vector>

#include "overlay/peer_table.h"
#include "sim/message.h"
#include "util/bitcode.h"

namespace mind {

/// Discriminator for overlay message dispatch.
enum class OverlayMsgKind {
  kRouteEnvelope,
  kJoinFind,
  kJoinCandidate,
  kJoinRequest,
  kJoinReject,
  kNeighborAdd,
  kNeighborAddAck,
  kNeighborAddReject,
  kNeighborAddCancel,
  kJoinCommit,
  kJoinAbort,
  kJoinDecline,
  kJoinCommitNotify,
  kCodeUpdate,
  kPeerCodeCorrection,
  kHeartbeat,
  kHeartbeatAck,
  kRingFind,
  kRingFound,
  kRegionVacant,
  kRegionProbe,
  kRegionAlive,
  kBroadcast,
};

struct OverlayMsg : Message {
  virtual OverlayMsgKind kind() const = 0;
  bool IsOverlay() const final { return true; }
};

/// Greedy-routing envelope: carried hop by hop toward the node whose vertex
/// code is a prefix of `target`.
struct RouteEnvelope : OverlayMsg {
  BitCode target;
  int hops = 0;
  int max_hops = 64;
  NodeId origin = kInvalidNode;
  MessagePtr inner;

  OverlayMsgKind kind() const override { return OverlayMsgKind::kRouteEnvelope; }
  const char* TypeName() const override { return "RouteEnvelope"; }
  size_t SizeBytes() const override {
    return 24 + (inner ? inner->SizeBytes() : 0);
  }
};

/// Routed to a random code; the owner proposes the shallowest node in its
/// neighborhood as the join attachment point (Adler et al.'s randomized join).
struct JoinFindMsg : OverlayMsg {
  NodeId joiner = kInvalidNode;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinFind; }
  const char* TypeName() const override { return "JoinFind"; }
};

struct JoinCandidateMsg : OverlayMsg {
  NodeId candidate = kInvalidNode;
  BitCode candidate_code;
  NodeId proposer = kInvalidNode;  // whose peer table produced the candidate
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinCandidate; }
  const char* TypeName() const override { return "JoinCandidate"; }
};

struct JoinRequestMsg : OverlayMsg {
  NodeId joiner = kInvalidNode;
  /// The candidate code the joiner was told; if the parent's code has since
  /// changed (it split for someone else), the request is rejected so the
  /// joiner re-samples — this is what keeps the hypercube balanced despite
  /// stale peer-table entries.
  BitCode expected_parent_code;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinRequest; }
  const char* TypeName() const override { return "JoinRequest"; }
};

struct JoinRejectMsg : OverlayMsg {
  /// The rejecting node's actual code: lets the joiner heal the stale peer
  /// table that proposed this candidate (see PeerCodeCorrectionMsg).
  BitCode actual_code;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinReject; }
  const char* TypeName() const override { return "JoinReject"; }
};

/// Joiner -> proposer: "your peer table entry for `subject` is stale."
/// Without this, a stale shallow code would be proposed (and rejected)
/// forever once heartbeat refresh is disabled.
struct PeerCodeCorrectionMsg : OverlayMsg {
  NodeId subject = kInvalidNode;
  BitCode code;
  OverlayMsgKind kind() const override {
    return OverlayMsgKind::kPeerCodeCorrection;
  }
  const char* TypeName() const override { return "PeerCodeCorrection"; }
};

/// Parent asks each of its peers to add the joiner to their peer tables.
/// Carries the parent's (pre-split) depth: the paper's serialization rule
/// lets a join to a *shallower* parent preempt one to a deeper parent.
struct NeighborAddMsg : OverlayMsg {
  uint64_t join_id = 0;
  NodeId parent = kInvalidNode;
  int parent_depth = 0;
  NodeId joiner = kInvalidNode;
  BitCode joiner_code;
  BitCode parent_new_code;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kNeighborAdd; }
  const char* TypeName() const override { return "NeighborAdd"; }
};

struct NeighborAddAckMsg : OverlayMsg {
  uint64_t join_id = 0;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kNeighborAddAck; }
  const char* TypeName() const override { return "NeighborAddAck"; }
};

struct NeighborAddRejectMsg : OverlayMsg {
  uint64_t join_id = 0;
  OverlayMsgKind kind() const override {
    return OverlayMsgKind::kNeighborAddReject;
  }
  const char* TypeName() const override { return "NeighborAddReject"; }
};

/// Parent -> peers: the pending join was aborted; drop the staged entry
/// immediately (leaving it to expire would block later joins).
struct NeighborAddCancelMsg : OverlayMsg {
  uint64_t join_id = 0;
  OverlayMsgKind kind() const override {
    return OverlayMsgKind::kNeighborAddCancel;
  }
  const char* TypeName() const override { return "NeighborAddCancel"; }
};

/// Parent -> joiner: the join is committed. Carries the joiner's new code and
/// a snapshot of the parent's peer table (ids + last-known codes).
struct JoinCommitMsg : OverlayMsg {
  BitCode joiner_code;
  BitCode parent_new_code;
  NodeId parent = kInvalidNode;
  PeerTable peers;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinCommit; }
  const char* TypeName() const override { return "JoinCommit"; }
  size_t SizeBytes() const override { return 32 + 12 * peers.size(); }
};

/// Parent -> joiner: the in-flight join was preempted; retry.
struct JoinAbortMsg : OverlayMsg {
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinAbort; }
  const char* TypeName() const override { return "JoinAbort"; }
};

/// Joiner -> parent: a JoinCommit arrived too late (the joiner already gave
/// up and retried elsewhere); the parent must undo its split.
struct JoinDeclineMsg : OverlayMsg {
  OverlayMsgKind kind() const override { return OverlayMsgKind::kJoinDecline; }
  const char* TypeName() const override { return "JoinDecline"; }
};

/// Parent -> its peers: the pending join committed; apply the staged update.
struct JoinCommitNotifyMsg : OverlayMsg {
  uint64_t join_id = 0;
  OverlayMsgKind kind() const override {
    return OverlayMsgKind::kJoinCommitNotify;
  }
  const char* TypeName() const override { return "JoinCommitNotify"; }
};

/// A node's code changed (join split or failure takeover).
struct CodeUpdateMsg : OverlayMsg {
  BitCode new_code;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kCodeUpdate; }
  const char* TypeName() const override { return "CodeUpdate"; }
};

struct HeartbeatMsg : OverlayMsg {
  BitCode code;  // piggybacked so peers converge on current codes
  OverlayMsgKind kind() const override { return OverlayMsgKind::kHeartbeat; }
  const char* TypeName() const override { return "Heartbeat"; }
  size_t SizeBytes() const override { return 32; }
};

struct HeartbeatAckMsg : OverlayMsg {
  BitCode code;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kHeartbeatAck; }
  const char* TypeName() const override { return "HeartbeatAck"; }
  size_t SizeBytes() const override { return 32; }
};

/// Expanding-ring scoped broadcast used when greedy routing dead-ends
/// (paper §3.8): find a node matching `target` at least `needed_cpl` bits.
struct RingFindMsg : OverlayMsg {
  uint64_t search_id = 0;
  BitCode target;
  int needed_cpl = 0;
  NodeId stuck_node = kInvalidNode;
  int ttl = 0;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kRingFind; }
  const char* TypeName() const override { return "RingFind"; }
};

struct RingFoundMsg : OverlayMsg {
  uint64_t search_id = 0;
  BitCode code;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kRingFound; }
  const char* TypeName() const override { return "RingFound"; }
};

/// Routed into the sibling subtree of a region whose owner died (and whose
/// exact sibling does not exist as a node): the all-zeros descendant of the
/// sibling subtree relabels itself to the vacant code — the paper's
/// "a node in the sibling sub-tree takes over", applied recursively.
struct RegionVacantMsg : OverlayMsg {
  BitCode vacant;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kRegionVacant; }
  const char* TypeName() const override { return "RegionVacant"; }
};

/// Probe routed into a supposedly vacant region before absorbing it
/// (the paper's "probe liveness before repairing the overlay"). Any live
/// owner replies RegionAlive; a drop/timeout confirms the vacancy.
struct RegionProbeMsg : OverlayMsg {
  BitCode region;
  NodeId asker = kInvalidNode;
  uint64_t probe_id = 0;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kRegionProbe; }
  const char* TypeName() const override { return "RegionProbe"; }
};

struct RegionAliveMsg : OverlayMsg {
  uint64_t probe_id = 0;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kRegionAlive; }
  const char* TypeName() const override { return "RegionAlive"; }
};

/// Overlay-wide flood (index create/drop, cut-tree installation).
struct BroadcastMsg : OverlayMsg {
  uint64_t bcast_id = 0;  // (origin, seq) packed for dedup
  NodeId origin = kInvalidNode;
  MessagePtr inner;
  OverlayMsgKind kind() const override { return OverlayMsgKind::kBroadcast; }
  const char* TypeName() const override { return "Broadcast"; }
  size_t SizeBytes() const override {
    return 16 + (inner ? inner->SizeBytes() : 0);
  }
};

}  // namespace mind

#endif  // MIND_OVERLAY_MESSAGES_H_
