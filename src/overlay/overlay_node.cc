#include "overlay/overlay_node.h"

#include <algorithm>

#include "util/logging.h"
#include "util/ordered.h"
#include "util/validate.h"

namespace mind {

OverlayNode::OverlayNode(Simulator* sim, OverlayOptions options,
                         std::optional<GeoPoint> position)
    : sim_(sim),
      net_(&sim->network()),
      events_(&sim->events()),
      options_(options),
      rng_(options.seed) {
  id_ = position ? net_->AddHost(this, *position) : net_->AddHost(this);
  // Bind all of this node's timers and self-scheduled work to the queue that
  // owns its id — a shard queue under the parallel engine, the global queue
  // otherwise (where queue_for returns exactly &sim->events()).
  events_ = sim->queue_for(id_);
  rng_ = Rng(options.seed).Fork(static_cast<uint64_t>(id_) + 1);
  telemetry::MetricsRegistry& m = sim->metrics();
  tm_.delivered = &m.counter("overlay.route.delivered");
  tm_.forwarded = &m.counter("overlay.route.forwarded");
  tm_.dropped = &m.counter("overlay.route.dropped");
  tm_.dead_ends = &m.counter("overlay.route.dead_ends");
  tm_.cache_hits = &m.counter("overlay.route.cache_hits");
  tm_.cache_misses = &m.counter("overlay.route.cache_misses");
  tm_.ring_searches = &m.counter("overlay.ring.searches");
  tm_.ring_found = &m.counter("overlay.ring.found");
  tm_.join_attempts = &m.counter("overlay.join.attempts");
  tm_.join_rejects = &m.counter("overlay.join.rejects");
  tm_.join_preemptions = &m.counter("overlay.join.preemptions");
  tm_.takeovers = &m.counter("overlay.recovery.takeovers");
  tm_.peers_declared_dead = &m.counter("overlay.recovery.peers_declared_dead");
  tm_.heartbeats_sent = &m.counter("overlay.heartbeat.sent");
}

void OverlayNode::BecomeFirst() {
  MIND_CHECK(!joined_);
  joined_ = true;
  code_ = BitCode();
  InvalidateRouteCache();
  if (options_.heartbeat_interval > 0 && heartbeat_timer_ == 0) {
    heartbeat_timer_ = events_->Schedule(options_.heartbeat_interval,
                                         [this] { OnHeartbeatTimer(); });
  }
  if (on_joined_) on_joined_();
}

void OverlayNode::Join(NodeId bootstrap) {
  MIND_CHECK(!joined_);
  MIND_CHECK_NE(bootstrap, id_);
  bootstrap_ = bootstrap;
  StartJoinAttempt();
}

void OverlayNode::Crash() {
  alive_ = false;
  joined_ = false;
  net_->SetNodeUp(id_, false);
  // Drop all volatile state; a revived node rejoins from scratch.
  code_ = BitCode();
  peers_.clear();
  last_seen_.clear();
  avoid_until_.clear();
  InvalidateRouteCache();
  for (auto& [peer, rs] : retry_) {
    if (rs.timer) events_->Cancel(rs.timer);
  }
  retry_.clear();
  for (auto& [sid, rs] : ring_searches_) {
    if (rs.timeout_event) events_->Cancel(rs.timeout_event);
  }
  ring_searches_.clear();
  for (auto& [pid, vp] : vacancy_probes_) {
    if (vp.timeout_event) events_->Cancel(vp.timeout_event);
  }
  vacancy_probes_.clear();
  probed_regions_.clear();
  for (auto& [pid, w] : watches_) {
    if (w.timeout_event) events_->Cancel(w.timeout_event);
  }
  watches_.clear();
  staged_adds_.clear();
  if (pending_join_ && pending_join_->timeout_event) {
    events_->Cancel(pending_join_->timeout_event);
  }
  pending_join_.reset();
  CancelJoinTimer();
  join_state_ = JoinState::kIdle;
  if (heartbeat_timer_) {
    events_->Cancel(heartbeat_timer_);
    heartbeat_timer_ = 0;
  }
}

void OverlayNode::Revive(NodeId bootstrap) {
  MIND_CHECK(!alive_);
  alive_ = true;
  net_->SetNodeUp(id_, true);
  Join(bootstrap);
}

void OverlayNode::SetCode(BitCode new_code) {
  BitCode old = code_;
  code_ = std::move(new_code);
  InvalidateRouteCache();
  if (on_code_change_) on_code_change_(old, code_);
}

void OverlayNode::AnnounceCode() {
  // Sorted so the send order (and thus event-queue order) never depends on
  // the peer table's hash layout.
  for (NodeId peer : SortedKeys(peers_)) {
    auto m = MakeMessage<CodeUpdateMsg>();
    m->new_code = code_;
    SendRaw(peer, m);
  }
}

void OverlayNode::SendRaw(NodeId to, MessagePtr msg) {
  net_->Send(id_, to, std::move(msg));
}

void OverlayNode::PrunePeers() {
  if (static_cast<int>(peers_.size()) <=
      options_.max_peers_per_level * (code_.length() + 1)) {
    return;
  }
  // Bucket peers by common-prefix level; keep the sibling plus the
  // lowest-id peers per level (deterministic).
  std::unordered_map<int, std::vector<NodeId>> by_level;
  for (const auto& [peer, pcode] : peers_) {
    by_level[code_.CommonPrefixLen(pcode)].push_back(peer);
  }
  PeerTable kept;
  const BitCode sibling =
      code_.length() > 0 ? code_.Sibling() : BitCode();
  for (auto& [level, ids] : by_level) {
    std::sort(ids.begin(), ids.end());
    int quota = options_.max_peers_per_level;
    // The exact sibling is structurally special (takeover, replication):
    // keep it beyond quota if needed.
    for (NodeId peer : ids) {
      const BitCode& pcode = peers_[peer];
      if (code_.length() > 0 && pcode == sibling) {
        kept[peer] = pcode;
      }
    }
    for (NodeId peer : ids) {
      if (kept.count(peer)) continue;
      if (quota <= 0) break;
      kept[peer] = peers_[peer];
      --quota;
    }
  }
  peers_ = std::move(kept);
  InvalidateRouteCache();
}

void OverlayNode::SendDirect(NodeId to, MessagePtr msg) {
  if (!alive_) return;
  SendRaw(to, std::move(msg));
}

bool OverlayNode::OwnsTarget(const BitCode& target) const {
  int cpl = code_.CommonPrefixLen(target);
  return cpl == std::min(code_.length(), target.length());
}

namespace {
constexpr size_t kRouteCacheMaxEntries = 1024;
}  // namespace

NodeId OverlayNode::BestNextHop(const BitCode& target) const {
  const SimTime now = events_->now();
  // Avoid-list entries expire with virtual time, which would flip a cached
  // answer with no mutation to observe; bypass the cache entirely while any
  // entry is still active. (Expired entries are inert for the scan below.)
  bool avoid_active = false;
  for (const auto& [peer, until] : avoid_until_) {
    if (until > now) {
      avoid_active = true;
      break;
    }
  }
  const bool use_cache = options_.route_cache && !avoid_active;
  BitCode key;
  if (use_cache) {
    if (route_cache_epoch_ != route_epoch_) {
      route_cache_.clear();
      route_cache_epoch_ = route_epoch_;
      int keylen = code_.length();
      for (const auto& [peer, pcode] : peers_) {
        keylen = std::max(keylen, pcode.length());
      }
      route_cache_keylen_ = keylen;
    }
    // Target bits past every participating code cannot change any common
    // prefix length, so the truncated target keys a whole equivalence class
    // of destinations.
    key = target.length() > route_cache_keylen_
              ? target.Prefix(route_cache_keylen_)
              : target;
    auto it = route_cache_.find(key);
    if (it != route_cache_.end()) {
      tm_.cache_hits->Inc();
      return it->second;
    }
  }
  const int my_cpl = code_.CommonPrefixLen(target);
  NodeId best = kInvalidNode;
  int best_cpl = my_cpl;
  for (const auto& [peer, pcode] : peers_) {
    if (avoid_active) {
      auto avoid = avoid_until_.find(peer);
      if (avoid != avoid_until_.end() && avoid->second > now) continue;
    }
    int cpl = pcode.CommonPrefixLen(target);
    // Ties broken toward the smaller id: the winner must not depend on the
    // peer table's iteration order, or routing diverges across stdlibs.
    if (cpl > best_cpl ||
        (cpl == best_cpl && best != kInvalidNode && peer < best)) {
      best_cpl = cpl;
      best = peer;
    }
  }
  if (use_cache) {
    tm_.cache_misses->Inc();
    if (route_cache_.size() >= kRouteCacheMaxEntries) route_cache_.clear();
    route_cache_.emplace(std::move(key), best);
  }
  return best;
}

void OverlayNode::Route(const BitCode& target, MessagePtr inner) {
  if (!alive_) return;
  auto env = MakeMessage<RouteEnvelope>();
  env->target = target;
  env->hops = 0;
  env->max_hops = options_.route_max_hops;
  env->origin = id_;
  env->inner = std::move(inner);
  ProcessEnvelope(std::move(env));
}

void OverlayNode::ProcessEnvelope(std::shared_ptr<RouteEnvelope> env) {
  if (!alive_ || !joined_) {
    tm_.dropped->Inc();
    return;
  }
  if (OwnsTarget(env->target)) {
    tm_.delivered->Inc();
    // Routed overlay-control payloads (JoinFind) are handled internally;
    // everything else goes up to the application.
    if (env->inner != nullptr && env->inner->IsOverlay()) {
      auto* om = static_cast<OverlayMsg*>(env->inner.get());
      if (om->kind() == OverlayMsgKind::kJoinFind) {
        OnJoinFind(static_cast<const JoinFindMsg&>(*om));
      } else if (om->kind() == OverlayMsgKind::kRegionVacant) {
        OnRegionVacant(static_cast<const RegionVacantMsg&>(*om));
      } else if (om->kind() == OverlayMsgKind::kRegionProbe) {
        OnRegionProbe(static_cast<const RegionProbeMsg&>(*om));
      }
      return;
    }
    if (on_deliver_) on_deliver_(env->origin, env->inner, env->hops);
    return;
  }
  if (env->hops >= env->max_hops) {
    tm_.dropped->Inc();
    return;
  }
  NodeId next = BestNextHop(env->target);
  if (next == kInvalidNode) {
    tm_.dead_ends->Inc();
    StartRingSearch(std::move(env));
    return;
  }
  env->hops++;
  tm_.forwarded->Inc();
  if (on_forward_) on_forward_(env->inner);
  SendRaw(next, std::move(env));
}

std::vector<NodeId> OverlayNode::ReplicationTargets(int m) const {
  std::vector<NodeId> out;
  if (m < 0) {
    out.reserve(peers_.size());
    for (const auto& [peer, pcode] : peers_) out.push_back(peer);
    std::sort(out.begin(), out.end());
    return out;
  }
  const int len = code_.length();
  for (int level = 1; level <= m; ++level) {
    const int want_cpl = len - level;
    if (want_cpl < 0) break;
    // The replication peer for this level agrees with us on exactly
    // want_cpl bits.
    NodeId best = kInvalidNode;
    for (const auto& [peer, pcode] : peers_) {
      if (code_.CommonPrefixLen(pcode) == want_cpl) {
        if (best == kInvalidNode || peer < best) best = peer;  // deterministic
      }
    }
    if (best != kInvalidNode) out.push_back(best);
  }
  return out;
}

void OverlayNode::Broadcast(MessagePtr inner) {
  if (!alive_) return;
  auto b = MakeMessage<BroadcastMsg>();
  b->origin = id_;
  b->bcast_id = (static_cast<uint64_t>(static_cast<uint32_t>(id_)) << 32) |
                (++bcast_seq_);
  b->inner = std::move(inner);
  OnBroadcastMsg(id_, b);
}

void OverlayNode::OnBroadcastMsg(NodeId from,
                                 const std::shared_ptr<BroadcastMsg>& b) {
  if (!bcast_seen_.insert(b->bcast_id).second) return;
  if (on_broadcast_) on_broadcast_(b->origin, b->inner);
  // Sorted fan-out: flood order must not leak hash-table iteration order.
  for (NodeId peer : SortedKeys(peers_)) {
    if (peer == from) continue;
    SendRaw(peer, b);
  }
}

void OverlayNode::HandleMessage(NodeId from, const MessagePtr& msg) {
  if (!alive_) return;
  auto* om = msg->IsOverlay() ? static_cast<OverlayMsg*>(msg.get()) : nullptr;
  if (om == nullptr) {
    // Application-level direct traffic (query replies, replication, ...).
    NotePeerAlive(from, nullptr);
    if (on_direct_) on_direct_(from, msg);
    return;
  }
  NotePeerAlive(from, nullptr);
  switch (om->kind()) {
    case OverlayMsgKind::kRouteEnvelope:
      ProcessEnvelope(std::static_pointer_cast<RouteEnvelope>(msg));
      break;
    case OverlayMsgKind::kJoinFind:
      OnJoinFind(static_cast<const JoinFindMsg&>(*om));
      break;
    case OverlayMsgKind::kJoinCandidate:
      OnJoinCandidate(static_cast<const JoinCandidateMsg&>(*om));
      break;
    case OverlayMsgKind::kJoinRequest:
      OnJoinRequest(from, static_cast<const JoinRequestMsg&>(*om));
      break;
    case OverlayMsgKind::kJoinReject: {
      if (join_state_ == JoinState::kWaitCommit ||
          join_state_ == JoinState::kWaitCandidate) {
        tm_.join_rejects->Inc();
        // Heal the stale peer table that proposed this candidate, or the
        // same dead-end proposal would recur indefinitely.
        const auto& rej = static_cast<const JoinRejectMsg&>(*om);
        if (join_state_ == JoinState::kWaitCommit &&
            join_proposer_ != kInvalidNode && from == join_candidate_) {
          auto fix = MakeMessage<PeerCodeCorrectionMsg>();
          fix->subject = from;
          fix->code = rej.actual_code;
          SendRaw(join_proposer_, fix);
        }
        ScheduleJoinRetry();
      }
      break;
    }
    case OverlayMsgKind::kNeighborAdd:
      OnNeighborAdd(from, static_cast<const NeighborAddMsg&>(*om));
      break;
    case OverlayMsgKind::kNeighborAddAck:
      OnNeighborAddAck(from, static_cast<const NeighborAddAckMsg&>(*om));
      break;
    case OverlayMsgKind::kNeighborAddReject:
      OnNeighborAddReject(static_cast<const NeighborAddRejectMsg&>(*om));
      break;
    case OverlayMsgKind::kNeighborAddCancel: {
      const auto& c = static_cast<const NeighborAddCancelMsg&>(*om);
      auto it = staged_adds_.find(c.join_id);
      if (it != staged_adds_.end()) {
        if (it->second.expiry_event) events_->Cancel(it->second.expiry_event);
        staged_adds_.erase(it);
      }
      break;
    }
    case OverlayMsgKind::kJoinCommit:
      OnJoinCommit(from, static_cast<const JoinCommitMsg&>(*om));
      break;
    case OverlayMsgKind::kJoinAbort:
      OnJoinAbort();
      break;
    case OverlayMsgKind::kJoinDecline:
      OnJoinDecline(from);
      break;
    case OverlayMsgKind::kJoinCommitNotify:
      OnJoinCommitNotify(from, static_cast<const JoinCommitNotifyMsg&>(*om));
      break;
    case OverlayMsgKind::kPeerCodeCorrection: {
      const auto& fix = static_cast<const PeerCodeCorrectionMsg&>(*om);
      auto it = peers_.find(fix.subject);
      if (it != peers_.end() && it->second != fix.code) {
        it->second = fix.code;
        InvalidateRouteCache();
      }
      break;
    }
    case OverlayMsgKind::kCodeUpdate: {
      const auto& cu = static_cast<const CodeUpdateMsg&>(*om);
      auto it = peers_.find(from);
      if (it != peers_.end()) {
        BitCode old = it->second;
        it->second = cu.new_code;
        if (old != cu.new_code) InvalidateRouteCache();
        // Cascade: our exact sibling relabeled away into a vacant region
        // elsewhere; its old slot (our sibling region) is now empty and we
        // absorb it. (Not triggered by a split — then the old code is a
        // prefix of the new one — nor by a takeover that absorbed *us* —
        // then the new code is a prefix of ours.)
        if (code_.length() > 0 && old == code_.Sibling() &&
            old != cu.new_code && !old.IsPrefixOf(cu.new_code) &&
            !cu.new_code.IsPrefixOf(code_)) {
          tm_.takeovers->Inc();
          SetCode(code_.Parent());
          AnnounceCode();
          if (on_takeover_) on_takeover_(old);
        }
      }
      break;
    }
    case OverlayMsgKind::kHeartbeat: {
      const auto& hb = static_cast<const HeartbeatMsg&>(*om);
      NotePeerAlive(from, &hb.code);
      auto ack = MakeMessage<HeartbeatAckMsg>();
      ack->code = code_;
      SendRaw(from, ack);
      break;
    }
    case OverlayMsgKind::kHeartbeatAck: {
      const auto& hb = static_cast<const HeartbeatAckMsg&>(*om);
      NotePeerAlive(from, &hb.code);
      break;
    }
    case OverlayMsgKind::kRingFind:
      OnRingFind(from, std::static_pointer_cast<RingFindMsg>(msg));
      break;
    case OverlayMsgKind::kRingFound:
      OnRingFound(from, static_cast<const RingFoundMsg&>(*om));
      break;
    case OverlayMsgKind::kRegionVacant:
    case OverlayMsgKind::kRegionProbe:
      // These only arrive as routed-envelope payloads (handled on delivery).
      break;
    case OverlayMsgKind::kRegionAlive:
      OnRegionAlive(static_cast<const RegionAliveMsg&>(*om));
      break;
    case OverlayMsgKind::kBroadcast:
      OnBroadcastMsg(from, std::static_pointer_cast<BroadcastMsg>(msg));
      break;
  }
}

void OverlayNode::HandleSendFailure(NodeId to, const MessagePtr& msg) {
  if (!alive_) return;
  auto* om = msg->IsOverlay() ? static_cast<OverlayMsg*>(msg.get()) : nullptr;
  if (om != nullptr) {
    switch (om->kind()) {
      case OverlayMsgKind::kHeartbeat:
      case OverlayMsgKind::kHeartbeatAck:
        // Failure detection is handled by the heartbeat timer; no retry.
        return;
      case OverlayMsgKind::kRingFind:
      case OverlayMsgKind::kRingFound:
      case OverlayMsgKind::kBroadcast:
        // Best-effort traffic.
        return;
      default:
        break;
    }
  }
  QueueForRetry(to, msg);
}

}  // namespace mind
