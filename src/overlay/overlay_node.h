// One node of the MIND hypercube overlay (paper §3.3, §3.8).
//
// Responsibilities:
//  * vertex code management (join split, failure takeover),
//  * the randomized join protocol of Adler et al. with the paper's
//    deadlock-free serialization of concurrent joins (optimistic accept +
//    preemption by joins to shallower nodes),
//  * greedy prefix routing with reconnect backoff and expanding-ring
//    recovery on dead ends,
//  * heartbeat failure detection and sibling takeover (code shortening),
//  * overlay-wide broadcast with duplicate suppression.
//
// The application layer (mind/) sits on top through callbacks; messages that
// are not OverlayMsg subclasses are passed up as direct application traffic.
#ifndef MIND_OVERLAY_OVERLAY_NODE_H_
#define MIND_OVERLAY_OVERLAY_NODE_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "overlay/messages.h"
#include "overlay/peer_table.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/bitcode.h"
#include "util/digest.h"
#include "util/rng.h"

namespace mind {

struct OverlayOptions {
  /// Heartbeat period; 0 disables failure detection (static experiments).
  SimTime heartbeat_interval = 0;
  /// A peer is declared dead after this many silent heartbeat periods.
  int heartbeat_miss_limit = 3;
  /// First reconnect retry delay; doubles per attempt (paper §3.8 observes
  /// ~45 s worst-case reconnect before rerouting).
  SimTime reconnect_backoff = FromSeconds(1);
  int reconnect_max_attempts = 5;
  /// Joiner retry delay after reject/abort/timeout (plus jitter).
  SimTime join_retry_delay = FromMillis(500);
  /// Join phase timeout (candidate wait, commit wait, ack collection).
  SimTime join_phase_timeout = FromSeconds(5);
  int route_max_hops = 64;
  /// Cache BestNextHop results per target prefix (invalidated whenever the
  /// peer table, own code, or avoid list changes). Purely an optimization:
  /// routing decisions are bit-identical with the cache off.
  bool route_cache = true;
  /// Peer-table cap per common-prefix level (the hypercube keeps ~log N
  /// neighbors; without pruning every node would eventually know everyone).
  int max_peers_per_level = 2;
  /// Expanding ring: TTLs 1..ring_max_ttl are tried in turn.
  int ring_max_ttl = 4;
  SimTime ring_reply_timeout = FromMillis(800);
  /// How long a vacancy probe waits for a RegionAlive before absorbing.
  SimTime region_probe_timeout = FromSeconds(3);
  /// Escalation levels for vacancy watches: when a dead region's sibling
  /// subtree is dead too, the watch walks up the virtual tree so some
  /// ancestor's sibling subtree absorbs the whole dead branch (§3.8:
  /// "applied recursively").
  int vacancy_escalations = 8;
  uint64_t seed = 0x07e7;
};

class OverlayNode : public Host {
 public:
  /// Registers the node with the simulator's network (optionally at a
  /// geographic position). The node starts un-joined.
  OverlayNode(Simulator* sim, OverlayOptions options,
              std::optional<GeoPoint> position = std::nullopt);

  NodeId id() const { return id_; }
  const BitCode& code() const { return code_; }
  bool joined() const { return joined_; }
  bool alive() const { return alive_; }
  const PeerTable& peers() const { return peers_; }

  /// Bootstraps a 1-node overlay (empty code).
  void BecomeFirst();

  /// Joins the overlay through any live member. Retries internally until
  /// committed; fires on_joined when done.
  void Join(NodeId bootstrap);

  /// Crashes the node: drops all overlay state and detaches from the network.
  void Crash();

  /// Revives a crashed node and rejoins through `bootstrap`.
  void Revive(NodeId bootstrap);

  // -------- Application-facing API --------------------------------------

  /// Routes `inner` to the node owning `target`; that node's on_deliver runs
  /// with (origin, inner, hops).
  void Route(const BitCode& target, MessagePtr inner);

  /// Sends an application message straight to a known node (query replies,
  /// replication). Retries over transient link failures; gives up to
  /// on_direct_failed after reconnect_max_attempts.
  void SendDirect(NodeId to, MessagePtr msg);

  /// Floods `inner` to every overlay node (including this one).
  void Broadcast(MessagePtr inner);

  /// Peers whose codes share exactly len-1, len-2, ..., len-m leading bits
  /// with ours — the replication set of §3.8. m < 0 returns all peers.
  std::vector<NodeId> ReplicationTargets(int m) const;

  using DeliverFn =
      std::function<void(NodeId origin, const MessagePtr& inner, int hops)>;
  using DirectFn = std::function<void(NodeId from, const MessagePtr& msg)>;
  using DirectFailedFn = std::function<void(NodeId to, const MessagePtr& msg)>;

  void set_on_deliver(DeliverFn fn) { on_deliver_ = std::move(fn); }
  void set_on_broadcast(DirectFn fn) { on_broadcast_ = std::move(fn); }
  void set_on_direct(DirectFn fn) { on_direct_ = std::move(fn); }
  void set_on_direct_failed(DirectFailedFn fn) {
    on_direct_failed_ = std::move(fn);
  }
  void set_on_joined(std::function<void()> fn) { on_joined_ = std::move(fn); }
  void set_on_code_change(std::function<void(BitCode, BitCode)> fn) {
    on_code_change_ = std::move(fn);
  }
  /// Fired when this node takes over a failed sibling's region (the code we
  /// absorbed is passed).
  void set_on_takeover(std::function<void(BitCode)> fn) {
    on_takeover_ = std::move(fn);
  }

  /// Fired with the payload whenever this node forwards a routed envelope
  /// (used to measure per-query overlay visit counts).
  void set_on_forward(std::function<void(const MessagePtr&)> fn) {
    on_forward_ = std::move(fn);
  }

  /// The node we split from when joining (our data sibling), or kInvalidNode
  /// for the bootstrap node.
  NodeId join_parent() const { return join_parent_; }

  // -------- Host interface ------------------------------------------------

  void HandleMessage(NodeId from, const MessagePtr& msg) override;
  void HandleSendFailure(NodeId to, const MessagePtr& msg) override;

  // -------- Correctness tooling -------------------------------------------

  /// Node-local structural checks (safe at any time, including mid-join):
  /// joined implies alive, no self/invalid peer entries, peer codes within
  /// bounds, and a staged split consistent with the current code. Returns OK
  /// trivially when MIND_VALIDATORS is off (see util/validate.h).
  Status ValidateInvariants() const;

  /// Folds the node's logical overlay state (liveness, code, sorted peer
  /// table) into `out`. Independent of hash-table layout.
  void DigestInto(Fnv64* out) const;

  /// Serializes the node's durable overlay state for the MSN1 snapshot
  /// (DESIGN.md §14). The snapshot model is quiescent-except-timers: every
  /// pending event must be a re-armable heartbeat, so any in-flight join,
  /// retry queue, ring search, vacancy probe or watch is an error naming the
  /// offending structure. Dedup sets (broadcast/ring/probe ids) are NOT
  /// saved: their id allocators are, so post-restore ids can never collide
  /// with pre-snapshot ones.
  Status SaveSnapshotState(SnapWriter* w) const;
  /// Restores state saved by SaveSnapshotState into this freshly
  /// constructed node and re-arms its heartbeat timer. `preserve_seqs` (the
  /// legacy-digest mode) re-inserts the timer under its exact saved
  /// insertion sequence; discipline mode re-arms fresh — keyed digests
  /// ignore per-queue seqs, which is what lets a discipline snapshot restore
  /// into a different thread/shard count.
  Status LoadSnapshotState(SnapReader* r, bool preserve_seqs);

  /// True while the heartbeat timer is live in the event queue — the one
  /// event class the snapshot layer re-arms (MindNet's save-time quiescence
  /// audit counts these against the queues' total pending events).
  bool HasPendingHeartbeat() const;

 private:
  friend class OverlayTestPeek;

  // ---- core helpers (overlay_node.cc)
  void SetCode(BitCode new_code);
  void AnnounceCode();
  // Enforces max_peers_per_level (always keeps the exact sibling).
  void PrunePeers();
  // Greedy step: forward toward env->target or deliver locally.
  void ProcessEnvelope(std::shared_ptr<RouteEnvelope> env);
  // Best next hop for target (peer with strictly larger common prefix),
  // skipping peers in `avoid`; kInvalidNode if none. Memoized per target
  // prefix when options_.route_cache is set.
  NodeId BestNextHop(const BitCode& target) const;
  // Must be called after every peers_/code_/avoid_until_ mutation; a missed
  // call makes the routing cache return stale (but still reachable) hops.
  void InvalidateRouteCache() { ++route_epoch_; }
  bool OwnsTarget(const BitCode& target) const;
  void SendRaw(NodeId to, MessagePtr msg);  // network send, no retry logic
  void OnBroadcastMsg(NodeId from, const std::shared_ptr<BroadcastMsg>& b);

  // ---- join protocol (join.cc)
  void StartJoinAttempt();
  void OnJoinFind(const JoinFindMsg& m);
  void OnJoinCandidate(const JoinCandidateMsg& m);
  void OnJoinRequest(NodeId from, const JoinRequestMsg& m);
  void OnNeighborAdd(NodeId from, const NeighborAddMsg& m);
  void OnNeighborAddAck(NodeId from, const NeighborAddAckMsg& m);
  void OnNeighborAddReject(const NeighborAddRejectMsg& m);
  void OnJoinCommit(NodeId from, const JoinCommitMsg& m);
  void OnJoinDecline(NodeId from);
  void OnJoinAbort();
  void OnJoinCommitNotify(NodeId from, const JoinCommitNotifyMsg& m);
  void CommitPendingJoin();
  void AbortPendingJoin(bool notify_joiner);
  void ScheduleJoinRetry();
  void CancelJoinTimer();

  // ---- failure handling (recovery.cc)
  void OnHeartbeatTimer();
  void NotePeerAlive(NodeId peer, const BitCode* code_hint);
  void DeclarePeerDead(NodeId peer);
  void OnRegionVacant(const RegionVacantMsg& m);
  void OnRegionProbe(const RegionProbeMsg& m);
  void OnRegionAlive(const RegionAliveMsg& m);
  // Drives recursive takeover from the *detector's* side: probe the region;
  // if dead, notify its sibling subtree; re-probe; escalate to the parent
  // region if still dead (the sibling subtree was dead too).
  void StartVacancyWatch(const BitCode& region, int escalations_left,
                         bool recheck_phase);
  void OnWatchTimeout(uint64_t probe_id);
  // Absorbs `p` if the structural conditions still hold for our current code
  // (exact sibling -> shorten; all-zeros descendant of the sibling subtree ->
  // relabel). Re-checked after the probe timeout.
  void TryAbsorbRegion(const BitCode& p);
  // True if some known peer's code is prefix-compatible with p (someone
  // covers that region).
  bool RegionCoveredByPeer(const BitCode& p) const;
  void QueueForRetry(NodeId to, MessagePtr msg);
  void OnRetryTimer(NodeId to);
  void GiveUpOnPeerQueue(NodeId to);
  void StartRingSearch(std::shared_ptr<RouteEnvelope> env);
  void ContinueRingSearch(uint64_t search_id);
  void OnRingFind(NodeId from, const std::shared_ptr<RingFindMsg>& m);
  void OnRingFound(NodeId from, const RingFoundMsg& m);

  // ---- state
  Simulator* sim_;
  Network* net_;
  EventQueue* events_;
  // mind-digest: skip(construction-time config, not evolving state)
  OverlayOptions options_;
  // mind-digest: skip(RNG cursor; its draws shape state that is digested)
  Rng rng_;
  NodeId id_ = kInvalidNode;

  bool alive_ = true;
  bool joined_ = false;
  BitCode code_;
  PeerTable peers_;

  // join: joiner side
  // Transient join-protocol state: the outcome a digest cares about lands in
  // joined_/code_/peers_, all folded above.
  enum class JoinState { kIdle, kWaitCandidate, kWaitCommit };
  // mind-digest: skip(transient join-protocol state; outcome lands in joined_)
  JoinState join_state_ = JoinState::kIdle;
  // mind-digest: skip(transient join-protocol state; outcome lands in joined_)
  NodeId bootstrap_ = kInvalidNode;
  // mind-digest: skip(transient join-protocol state; outcome lands in joined_)
  NodeId join_candidate_ = kInvalidNode;
  // mind-digest: skip(transient join-protocol state; outcome lands in joined_)
  NodeId join_proposer_ = kInvalidNode;
  // mind-digest: skip(transient join-protocol state; outcome lands in joined_)
  NodeId join_parent_ = kInvalidNode;
  // mind-digest: skip(pending-timer handle; cancelled/fired before quiesce)
  EventId join_timer_ = 0;
  // mind-digest: skip(retry backoff counter; resets once the join commits)
  int join_failures_ = 0;  // consecutive, drives retry backoff

  // join: parent side
  struct PendingJoin {
    uint64_t join_id = 0;
    NodeId joiner = kInvalidNode;
    BitCode joiner_code;
    BitCode my_new_code;
    std::unordered_set<NodeId> awaiting_acks;
    EventId timeout_event = 0;
  };
  // mind-digest: skip(transient parent-side join state; commit folds into peers_)
  std::optional<PendingJoin> pending_join_;
  // mind-digest: skip(join id allocator; ids are local and never stored)
  uint64_t join_seq_ = 0;

  // join: peer side (staged neighbor additions)
  struct StagedAdd {
    NodeId parent;
    int parent_depth;
    NodeId joiner;
    BitCode joiner_code;
    BitCode parent_new_code;
    EventId expiry_event = 0;
  };
  // mind-digest: skip(staged additions expire or commit into digested peers_)
  std::unordered_map<uint64_t, StagedAdd> staged_adds_;

  // failure detection / reliable send
  // mind-digest: skip(liveness observations; failure handling edits peers_)
  std::unordered_map<NodeId, SimTime> last_seen_;
  struct RetryState {
    std::deque<MessagePtr> queue;
    int attempts = 0;
    EventId timer = 0;
  };
  // mind-digest: skip(reliable-send queue; drains or fails into peers_ edits)
  std::unordered_map<NodeId, RetryState> retry_;
  // mind-digest: skip(routing penalty box; expires without lasting state)
  std::unordered_map<NodeId, SimTime> avoid_until_;
  // mind-digest: skip(pending-timer handle; cancelled/fired before quiesce)
  EventId heartbeat_timer_ = 0;

  // Routing cache: target prefix -> BestNextHop answer. `route_epoch_` is
  // bumped at every peers_/code_/avoid_until_ mutation; the cache clears
  // itself lazily on the next lookup when its epoch is behind. Mutable
  // because BestNextHop is logically const.
  // mind-digest: skip(cache invalidation epoch for the mutable cache below)
  uint64_t route_epoch_ = 0;
  mutable uint64_t route_cache_epoch_ = ~uint64_t{0};
  mutable int route_cache_keylen_ = 0;
  mutable std::unordered_map<BitCode, NodeId, BitCode::Hash> route_cache_;

  // ring searches in progress at this (stuck) node
  struct RingSearch {
    std::shared_ptr<RouteEnvelope> env;
    int ttl = 0;
    EventId timeout_event = 0;
  };
  // mind-digest: skip(in-flight search state; results land in digested peers_)
  std::unordered_map<uint64_t, RingSearch> ring_searches_;
  // mind-digest: skip(dedup memory for in-flight searches, drains at quiesce)
  std::unordered_set<uint64_t> ring_seen_;
  // mind-digest: skip(search id allocator; ids are local and never stored)
  uint64_t ring_seq_ = 0;

  // vacancy probes in flight at this node (probe_id -> region)
  struct VacancyProbe {
    BitCode region;
    EventId timeout_event = 0;
  };
  // mind-digest: skip(in-flight probe state; outcomes fold into joined_/code_)
  std::unordered_map<uint64_t, VacancyProbe> vacancy_probes_;

  // detector-side vacancy watches (probe_id -> state)
  struct VacancyWatch {
    BitCode region;
    int escalations_left = 0;
    bool recheck_phase = false;
    EventId timeout_event = 0;
  };
  // mind-digest: skip(in-flight watch state; escalations fold into peers_)
  std::unordered_map<uint64_t, VacancyWatch> watches_;
  // mind-digest: skip(dedup memory for in-flight probes, drains at quiesce)
  std::unordered_set<uint64_t> probed_regions_;  // hashes, dedup in flight
  // mind-digest: skip(probe id allocator; ids are local and never stored)
  uint64_t probe_seq_ = 0;

  // broadcast dedup
  // mind-digest: skip(dedup memory; delivery effects land in digested state)
  std::unordered_set<uint64_t> bcast_seen_;
  // mind-digest: skip(broadcast id allocator; ids are local and never stored)
  uint64_t bcast_seq_ = 0;

  // callbacks
  DeliverFn on_deliver_;
  DirectFn on_broadcast_;
  DirectFn on_direct_;
  DirectFailedFn on_direct_failed_;
  std::function<void()> on_joined_;
  std::function<void(BitCode, BitCode)> on_code_change_;
  std::function<void(BitCode)> on_takeover_;
  std::function<void(const MessagePtr&)> on_forward_;

  // Registry instruments (`overlay.*`), aggregated across all nodes sharing
  // one Simulator. Cached once at construction; never null.
  struct Instruments {
    telemetry::Counter* delivered;
    telemetry::Counter* forwarded;
    telemetry::Counter* dropped;
    telemetry::Counter* dead_ends;
    telemetry::Counter* cache_hits;
    telemetry::Counter* cache_misses;
    telemetry::Counter* ring_searches;
    telemetry::Counter* ring_found;
    telemetry::Counter* join_attempts;
    telemetry::Counter* join_rejects;
    telemetry::Counter* join_preemptions;
    telemetry::Counter* takeovers;
    telemetry::Counter* peers_declared_dead;
    telemetry::Counter* heartbeats_sent;
  };
  Instruments tm_;
};

/// Fleet-wide overlay checks, valid in quiescent states (no join, takeover
/// or vacancy repair in flight — e.g. right after a build completes or at a
/// churn-free checkpoint):
///  * the codes of alive+joined nodes are prefix-free and tile the code
///    space with no gap or overlap (exact arithmetic, CheckCompleteCover);
///  * exact-sibling links are symmetric and carry the sibling's true code;
///  * every node passes its local ValidateInvariants().
/// Mid-churn these properties are transiently violated by design (a join
/// narrows the parent's code before the joiner owns its half), so callers
/// gate this on quiescence. Returns OK trivially when MIND_VALIDATORS is off.
Status ValidateOverlayInvariants(const std::vector<const OverlayNode*>& nodes);

}  // namespace mind

#endif  // MIND_OVERLAY_OVERLAY_NODE_H_
