// PeerTable: the compressed per-node peer set of the bounded-memory scale
// layer (DESIGN.md §14).
//
// The hypercube overlay keeps ~log N neighbors per node (max_peers_per_level
// caps it), so at 10k+ nodes the peer table is the dominant per-node routing
// state. A std::unordered_map spends ~64 bytes per entry on node headers and
// bucket arrays for what is logically 12 bytes of payload (id + packed code).
// PeerTable stores entries sorted by NodeId in a small-vector: the first
// kInlineCapacity entries live inside the node object itself (zero heap), and
// only unusually dense tables spill to one flat heap block. Codes stay in
// BitCode's packed (bits, len) word form — a shared prefix is shared word
// arithmetic, not shared pointers, so there is nothing further to intern.
//
// Determinism: iteration order is NodeId-ascending by construction — exactly
// the order SortedKeys() used to impose on the unordered_map — so message
// emission loops and OverlayNode::DigestInto see byte-identical sequences.
// SortedKeys(PeerTable) still works (key_type + pair-like entries) and is now
// a plain copy of an already-sorted key column.
#ifndef MIND_OVERLAY_PEER_TABLE_H_
#define MIND_OVERLAY_PEER_TABLE_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/message.h"
#include "util/bitcode.h"
#include "util/logging.h"

namespace mind {

class PeerTable {
 public:
  /// Pair-layout entry so structured bindings (`auto& [peer, pcode]`) and
  /// SortedKeys (`kv.first`) keep working at every former unordered_map call
  /// site.
  struct Entry {
    NodeId first = kInvalidNode;
    BitCode second;
  };
  using key_type = NodeId;
  using mapped_type = BitCode;
  using value_type = Entry;
  using iterator = Entry*;
  using const_iterator = const Entry*;

  /// Inline slots: covers the hypercube's ~log N neighbor count for fleets
  /// well past 10k nodes (2 per level × 7 levels fits 10k with room).
  static constexpr size_t kInlineCapacity = 8;

  PeerTable() = default;
  PeerTable(const PeerTable& other) { CopyFrom(other); }
  PeerTable& operator=(const PeerTable& other) {
    if (this != &other) {
      clear_storage();
      CopyFrom(other);
    }
    return *this;
  }
  PeerTable(PeerTable&& other) noexcept { MoveFrom(std::move(other)); }
  PeerTable& operator=(PeerTable&& other) noexcept {
    if (this != &other) {
      clear_storage();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  iterator find(NodeId id) {
    iterator it = LowerBound(id);
    return (it != end() && it->first == id) ? it : end();
  }
  const_iterator find(NodeId id) const {
    return const_cast<PeerTable*>(this)->find(id);
  }
  size_t count(NodeId id) const { return find(id) != end() ? 1 : 0; }

  const BitCode& at(NodeId id) const {
    const_iterator it = find(id);
    MIND_CHECK(it != end());
    return it->second;
  }

  /// Insert-if-missing, then return the code slot — sorted-order analogue of
  /// unordered_map::operator[].
  BitCode& operator[](NodeId id) {
    iterator it = LowerBound(id);
    if (it != end() && it->first == id) return it->second;
    const size_t pos = static_cast<size_t>(it - data_);
    if (size_ == cap_) Grow();
    for (size_t i = size_; i > pos; --i) data_[i] = data_[i - 1];
    data_[pos] = Entry{id, BitCode()};
    ++size_;
    return data_[pos].second;
  }

  iterator erase(iterator it) {
    MIND_CHECK(it >= begin() && it < end());
    for (iterator p = it; p + 1 != end(); ++p) *p = *(p + 1);
    --size_;
    return it;
  }
  size_t erase(NodeId id) {
    iterator it = find(id);
    if (it == end()) return 0;
    erase(it);
    return 1;
  }

  void clear() { size_ = 0; }

  /// Bytes this table occupies beyond sizeof(PeerTable) — i.e. the heap
  /// spill, zero while the table fits inline. Fuel for the fig22 footprint
  /// accounting and the growth-curve micro-bench.
  size_t HeapBytes() const {
    return data_ == inline_ ? 0 : cap_ * sizeof(Entry);
  }
  size_t MemoryFootprint() const { return sizeof(PeerTable) + HeapBytes(); }

 private:
  void CopyFrom(const PeerTable& other) {
    Reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) data_[i] = other.data_[i];
    size_ = other.size_;
  }
  void MoveFrom(PeerTable&& other) noexcept {
    if (other.data_ == other.inline_) {
      for (size_t i = 0; i < other.size_; ++i) inline_[i] = other.inline_[i];
      data_ = inline_;
      cap_ = kInlineCapacity;
    } else {
      heap_ = std::move(other.heap_);
      data_ = heap_.get();
      cap_ = other.cap_;
      other.data_ = other.inline_;
      other.cap_ = kInlineCapacity;
    }
    size_ = other.size_;
    other.size_ = 0;
  }
  void clear_storage() {
    heap_.reset();
    data_ = inline_;
    cap_ = kInlineCapacity;
    size_ = 0;
  }

  iterator LowerBound(NodeId id) {
    // Tables are ~log N entries; a linear scan beats binary search at this
    // size and keeps the code branch-predictable.
    iterator it = begin();
    while (it != end() && it->first < id) ++it;
    return it;
  }

  void Reserve(size_t n) {
    if (n <= cap_) return;
    size_t cap = cap_;
    while (cap < n) cap *= 2;
    auto fresh = std::make_unique<Entry[]>(cap);
    for (size_t i = 0; i < size_; ++i) fresh[i] = data_[i];
    heap_ = std::move(fresh);
    data_ = heap_.get();
    cap_ = cap;
  }
  void Grow() { Reserve(cap_ * 2); }

  Entry inline_[kInlineCapacity];
  std::unique_ptr<Entry[]> heap_;
  Entry* data_ = inline_;
  size_t size_ = 0;
  size_t cap_ = kInlineCapacity;
};

}  // namespace mind

#endif  // MIND_OVERLAY_PEER_TABLE_H_
