// Failure handling (paper §3.8): reconnect backoff on transient link
// failures, heartbeat-based failure detection, sibling takeover by code
// shortening, and expanding-ring recovery when greedy routing dead-ends.
#include "overlay/overlay_node.h"
#include "util/logging.h"
#include "util/ordered.h"

namespace mind {

void OverlayNode::OnHeartbeatTimer() {
  heartbeat_timer_ = 0;
  if (!alive_ || !joined_) return;
  const SimTime now = events_->now();
  const SimTime deadline =
      options_.heartbeat_interval *
      static_cast<SimTime>(options_.heartbeat_miss_limit);

  // Collect the dead first: DeclarePeerDead mutates peers_. Sorted order so
  // takeover/vacancy-watch cascades fire identically on every run.
  std::vector<NodeId> dead;
  for (NodeId peer : SortedKeys(peers_)) {
    auto it = last_seen_.find(peer);
    SimTime seen = (it == last_seen_.end()) ? 0 : it->second;
    if (seen == 0) {
      // Never heard from this peer: start its clock now.
      last_seen_[peer] = now;
      continue;
    }
    if (now - seen > deadline) dead.push_back(peer);
  }
  for (NodeId peer : dead) DeclarePeerDead(peer);

  for (NodeId peer : SortedKeys(peers_)) {
    auto hb = MakeMessage<HeartbeatMsg>();
    hb->code = code_;
    SendRaw(peer, hb);
    tm_.heartbeats_sent->Inc();
  }
  heartbeat_timer_ = events_->Schedule(options_.heartbeat_interval,
                                       [this] { OnHeartbeatTimer(); });
}

void OverlayNode::NotePeerAlive(NodeId peer, const BitCode* code_hint) {
  // last_seen_ is only ever read by OnHeartbeatTimer; skip the per-message
  // map write when failure detection is off.
  if (options_.heartbeat_interval > 0) last_seen_[peer] = events_->now();
  if (code_hint != nullptr) {
    auto it = peers_.find(peer);
    if (it != peers_.end() && it->second != *code_hint) {
      it->second = *code_hint;
      InvalidateRouteCache();
    }
  }
}

void OverlayNode::DeclarePeerDead(NodeId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  BitCode peer_code = it->second;
  peers_.erase(it);
  InvalidateRouteCache();
  last_seen_.erase(peer);
  tm_.peers_declared_dead->Inc();

  auto rit = retry_.find(peer);
  if (rit != retry_.end()) {
    if (rit->second.timer) events_->Cancel(rit->second.timer);
    retry_.erase(rit);
  }

  // Sibling takeover: absorb the failed sibling's region by shortening our
  // code (§3.8). Replicas of its data are already here when replication >= 1.
  // Guard: a recursive takeover may already have relabeled another node into
  // that region (the dead peer's code can be stale) — never absorb a region
  // a live peer covers.
  if (code_.length() > 0 && peer_code == code_.Sibling() &&
      !RegionCoveredByPeer(peer_code)) {
    tm_.takeovers->Inc();
    BitCode absorbed = peer_code;
    SetCode(code_.Parent());
    AnnounceCode();
    if (on_takeover_) on_takeover_(absorbed);
    return;
  }

  // The dead peer's exact sibling may not exist as a node (its sibling is a
  // subtree), or may be dead too. Watch the region: probe, notify the
  // sibling subtree, re-probe and escalate upward until some live branch
  // absorbs the vacancy (recursive takeover, §3.8).
  if (peer_code.length() > 0) {
    StartVacancyWatch(peer_code, options_.vacancy_escalations,
                      /*recheck_phase=*/false);
  }
}

void OverlayNode::StartVacancyWatch(const BitCode& region,
                                    int escalations_left, bool recheck_phase) {
  if (!alive_ || !joined_ || region.length() == 0) return;
  // If we cover it or know someone who does, nothing to repair.
  int cpl = code_.CommonPrefixLen(region);
  if (cpl == std::min(code_.length(), region.length())) return;
  if (RegionCoveredByPeer(region)) return;

  uint64_t probe_id =
      (static_cast<uint64_t>(static_cast<uint32_t>(id_)) << 32) | (++probe_seq_);
  auto probe = MakeMessage<RegionProbeMsg>();
  probe->region = region;
  probe->asker = id_;
  probe->probe_id = probe_id;
  BitCode target = region;
  while (target.length() < BitCode::kMaxLen) target.PushBack(0);
  Route(target, probe);

  VacancyWatch w;
  w.region = region;
  w.escalations_left = escalations_left;
  w.recheck_phase = recheck_phase;
  w.timeout_event = events_->Schedule(2 * options_.region_probe_timeout,
                                      [this, probe_id] {
                                        OnWatchTimeout(probe_id);
                                      });
  watches_[probe_id] = std::move(w);
}

void OverlayNode::OnWatchTimeout(uint64_t probe_id) {
  auto it = watches_.find(probe_id);
  if (it == watches_.end()) return;
  VacancyWatch w = std::move(it->second);
  watches_.erase(it);
  if (!alive_ || !joined_) return;

  if (!w.recheck_phase) {
    // The region is dead: tell its sibling subtree to absorb it, then
    // re-check whether the takeover happened.
    auto vacant = MakeMessage<RegionVacantMsg>();
    vacant->vacant = w.region;
    BitCode target = w.region.Sibling();
    while (target.length() < BitCode::kMaxLen) target.PushBack(0);
    Route(target, vacant);
    StartVacancyWatch(w.region, w.escalations_left, /*recheck_phase=*/true);
    return;
  }
  // Still dead after the notice: the sibling subtree must be dead as well —
  // escalate to the parent region so the next level's sibling absorbs both.
  if (w.escalations_left > 0 && w.region.length() > 1) {
    StartVacancyWatch(w.region.Parent(), w.escalations_left - 1,
                      /*recheck_phase=*/false);
  }
}

bool OverlayNode::RegionCoveredByPeer(const BitCode& p) const {
  for (const auto& [peer, pcode] : peers_) {
    if (p.IsPrefixOf(pcode) || pcode.IsPrefixOf(p)) return true;
  }
  return false;
}

void OverlayNode::OnRegionVacant(const RegionVacantMsg& m) {
  const BitCode& p = m.vacant;
  const int len = p.length();
  if (len == 0 || code_.length() < len) return;
  if (RegionCoveredByPeer(p)) return;
  // Check we are structurally eligible before spending a probe.
  bool exact_sibling = (code_.length() == len && code_ == p.Sibling());
  bool zeros_descendant = false;
  if (code_.length() > len && code_.Prefix(len) == p.Sibling()) {
    zeros_descendant = true;
    for (int i = len; i < code_.length(); ++i) {
      if (code_.bit(i) != 0) zeros_descendant = false;
    }
  }
  if (!exact_sibling && !zeros_descendant) return;

  // Probe-before-repair: a takeover elsewhere may already have filled the
  // region; only absorb if nobody answers for it.
  uint64_t region_hash = BitCode::Hash{}(p);
  if (!probed_regions_.insert(region_hash).second) return;  // probe in flight
  uint64_t probe_id =
      (static_cast<uint64_t>(static_cast<uint32_t>(id_)) << 32) | (++probe_seq_);
  auto probe = MakeMessage<RegionProbeMsg>();
  probe->region = p;
  probe->asker = id_;
  probe->probe_id = probe_id;
  BitCode target = p;
  while (target.length() < BitCode::kMaxLen) target.PushBack(0);
  Route(target, probe);

  VacancyProbe vp;
  vp.region = p;
  vp.timeout_event =
      events_->Schedule(options_.region_probe_timeout, [this, probe_id,
                                                        region_hash] {
        auto it = vacancy_probes_.find(probe_id);
        if (it == vacancy_probes_.end()) return;
        BitCode region = it->second.region;
        vacancy_probes_.erase(it);
        probed_regions_.erase(region_hash);
        TryAbsorbRegion(region);
      });
  vacancy_probes_[probe_id] = std::move(vp);
}

void OverlayNode::TryAbsorbRegion(const BitCode& p) {
  const int len = p.length();
  if (len == 0 || code_.length() < len) return;
  if (RegionCoveredByPeer(p)) return;
  if (code_.length() == len) {
    if (code_ == p.Sibling()) {
      tm_.takeovers->Inc();
      SetCode(code_.Parent());
      AnnounceCode();
      if (on_takeover_) on_takeover_(p);
    }
    return;
  }
  if (code_.Prefix(len) != p.Sibling()) return;
  for (int i = len; i < code_.length(); ++i) {
    if (code_.bit(i) != 0) return;
  }
  tm_.takeovers->Inc();
  SetCode(p);
  AnnounceCode();
  if (on_takeover_) on_takeover_(p);
}

void OverlayNode::OnRegionProbe(const RegionProbeMsg& m) {
  // We received the probe, so we own (part of) the probed region's path:
  // if our code is prefix-compatible with the region itself, the region is
  // alive. The asker is excluded — receiving its own probe back via routing
  // would defeat the check.
  if (m.asker == id_) return;
  int cpl = code_.CommonPrefixLen(m.region);
  if (cpl == std::min(code_.length(), m.region.length())) {
    auto alive = MakeMessage<RegionAliveMsg>();
    alive->probe_id = m.probe_id;
    SendRaw(m.asker, alive);
  }
}

void OverlayNode::OnRegionAlive(const RegionAliveMsg& m) {
  auto it = vacancy_probes_.find(m.probe_id);
  if (it != vacancy_probes_.end()) {
    if (it->second.timeout_event) events_->Cancel(it->second.timeout_event);
    probed_regions_.erase(BitCode::Hash{}(it->second.region));
    vacancy_probes_.erase(it);
    return;
  }
  auto wit = watches_.find(m.probe_id);
  if (wit != watches_.end()) {
    if (wit->second.timeout_event) events_->Cancel(wit->second.timeout_event);
    watches_.erase(wit);
  }
}

void OverlayNode::QueueForRetry(NodeId to, MessagePtr msg) {
  RetryState& rs = retry_[to];
  rs.queue.push_back(std::move(msg));
  if (rs.timer == 0) {
    SimTime backoff = options_.reconnect_backoff
                      << std::min(rs.attempts, 10);  // exponential
    rs.timer = events_->Schedule(backoff, [this, to] { OnRetryTimer(to); });
  }
}

void OverlayNode::OnRetryTimer(NodeId to) {
  auto it = retry_.find(to);
  if (it == retry_.end()) return;
  RetryState& rs = it->second;
  rs.timer = 0;
  rs.attempts++;
  if (rs.attempts > options_.reconnect_max_attempts) {
    GiveUpOnPeerQueue(to);
    return;
  }
  // Re-attempt every queued message; failures will re-enqueue via
  // HandleSendFailure with the incremented attempt count.
  std::deque<MessagePtr> q;
  q.swap(rs.queue);
  for (auto& m : q) SendRaw(to, std::move(m));
  // If everything goes through, no failure events arrive and the queue stays
  // empty; reset the attempt counter after a calm period.
  events_->Schedule(2 * options_.reconnect_backoff, [this, to] {
    auto it2 = retry_.find(to);
    if (it2 != retry_.end() && it2->second.queue.empty() &&
        it2->second.timer == 0) {
      retry_.erase(it2);
    }
  });
}

void OverlayNode::GiveUpOnPeerQueue(NodeId to) {
  auto it = retry_.find(to);
  if (it == retry_.end()) return;
  std::deque<MessagePtr> q;
  q.swap(it->second.queue);
  retry_.erase(it);

  // Avoid this peer for routing decisions for a while.
  avoid_until_[to] = events_->now() + 8 * options_.reconnect_backoff;
  InvalidateRouteCache();

  for (auto& m : q) {
    auto* om = m->IsOverlay() ? static_cast<OverlayMsg*>(m.get()) : nullptr;
    if (om != nullptr && om->kind() == OverlayMsgKind::kRouteEnvelope) {
      // Re-route around the failed link.
      ProcessEnvelope(std::static_pointer_cast<RouteEnvelope>(m));
    } else if (om == nullptr) {
      if (on_direct_failed_) on_direct_failed_(to, m);
    }
    // Overlay control messages are dropped; their protocols time out.
  }
}

void OverlayNode::StartRingSearch(std::shared_ptr<RouteEnvelope> env) {
  if (peers_.empty()) {
    tm_.dropped->Inc();
    return;
  }
  tm_.ring_searches->Inc();
  uint64_t search_id =
      (static_cast<uint64_t>(static_cast<uint32_t>(id_)) << 32) | (++ring_seq_);
  RingSearch rs;
  rs.env = std::move(env);
  rs.ttl = 1;
  ring_searches_[search_id] = std::move(rs);
  ContinueRingSearch(search_id);
}

void OverlayNode::ContinueRingSearch(uint64_t search_id) {
  auto it = ring_searches_.find(search_id);
  if (it == ring_searches_.end()) return;
  RingSearch& rs = it->second;
  if (rs.ttl > options_.ring_max_ttl) {
    tm_.dropped->Inc();
    ring_searches_.erase(it);
    return;
  }
  auto find = MakeMessage<RingFindMsg>();
  find->search_id = search_id;
  find->target = rs.env->target;
  // We need a node at least as close as us; strictly closer is ideal but an
  // equal match elsewhere may have a live path onward (§3.8: "overlaps the
  // query's code to an equal or greater extent").
  find->needed_cpl = code_.CommonPrefixLen(rs.env->target) + 1;
  find->stuck_node = id_;
  find->ttl = rs.ttl;
  for (NodeId peer : SortedKeys(peers_)) SendRaw(peer, find);

  rs.timeout_event =
      events_->Schedule(options_.ring_reply_timeout, [this, search_id] {
        auto it2 = ring_searches_.find(search_id);
        if (it2 == ring_searches_.end()) return;
        it2->second.ttl++;
        it2->second.timeout_event = 0;
        ContinueRingSearch(search_id);
      });
}

void OverlayNode::OnRingFind(NodeId from,
                             const std::shared_ptr<RingFindMsg>& m) {
  if (!joined_) return;
  if (!ring_seen_.insert(m->search_id ^ (static_cast<uint64_t>(m->ttl) << 56))
           .second) {
    return;
  }
  if (code_.CommonPrefixLen(m->target) >= m->needed_cpl ||
      OwnsTarget(m->target)) {
    auto found = MakeMessage<RingFoundMsg>();
    found->search_id = m->search_id;
    found->code = code_;
    SendRaw(m->stuck_node, found);
    return;
  }
  if (m->ttl > 1) {
    auto fwd = MakeMessage<RingFindMsg>(*m);
    fwd->ttl = m->ttl - 1;
    for (NodeId peer : SortedKeys(peers_)) {
      if (peer != from) SendRaw(peer, fwd);
    }
  }
}

void OverlayNode::OnRingFound(NodeId from, const RingFoundMsg& m) {
  auto it = ring_searches_.find(m.search_id);
  if (it == ring_searches_.end()) return;  // already resolved
  tm_.ring_found->Inc();
  std::shared_ptr<RouteEnvelope> env = std::move(it->second.env);
  if (it->second.timeout_event) events_->Cancel(it->second.timeout_event);
  ring_searches_.erase(it);
  // Adopt the discovered node as a routing peer and resume forwarding there.
  peers_[from] = m.code;
  InvalidateRouteCache();
  env->hops++;
  SendRaw(from, std::move(env));
}

}  // namespace mind
