// Overlay-node snapshot serialization (MSN1, DESIGN.md §14).
//
// The snapshot model is quiescent-except-timers: the only pending events a
// node may own at save time are its re-armable heartbeat timers. All
// transient protocol state (joins, retries, ring searches, vacancy repair)
// must have drained — each check below produces a precise error naming the
// structure still in flight, because a snapshot silently dropping an
// in-flight join would diverge from the straight-through run on restore.
#include <algorithm>
#include <string>
#include <vector>

#include "overlay/overlay_node.h"
#include "util/snapio.h"

namespace mind {

namespace {

// Sorted (NodeId, SimTime) view of an unordered map: the stream must not
// depend on hash-table iteration order.
std::vector<std::pair<NodeId, SimTime>> SortedTimeMap(
    const std::unordered_map<NodeId, SimTime>& m) {
  std::vector<std::pair<NodeId, SimTime>> v(m.begin(), m.end());
  std::sort(v.begin(), v.end());
  return v;
}

void WriteCode(SnapWriter* w, const BitCode& code) {
  w->U64(code.bits());
  w->U8(static_cast<uint8_t>(code.length()));
}

Result<BitCode> ReadCode(SnapReader* r, const char* field) {
  uint64_t bits;
  MIND_ASSIGN_OR_RETURN(bits, r->U64(field));
  uint8_t len;
  MIND_ASSIGN_OR_RETURN(len, r->U8(field));
  if (len > BitCode::kMaxLen) {
    return r->FieldError(field, "code length " + std::to_string(len) +
                                    " beyond " +
                                    std::to_string(BitCode::kMaxLen));
  }
  if (len < 64 && (bits >> len) != 0) {
    return r->FieldError(field, "code has bits above its length");
  }
  return BitCode::FromBits(bits, len);
}

Result<NodeId> ReadNodeId(SnapReader* r, const char* field, size_t fleet) {
  uint64_t raw;
  MIND_ASSIGN_OR_RETURN(raw, r->U64(field));
  const int64_t id = static_cast<int64_t>(raw);
  if (id != kInvalidNode && (id < 0 || static_cast<uint64_t>(id) >= fleet)) {
    return r->FieldError(field, "node id " + std::to_string(id) +
                                    " outside fleet of " +
                                    std::to_string(fleet));
  }
  return static_cast<NodeId>(id);
}

uint64_t IdBits(NodeId id) {
  return static_cast<uint64_t>(static_cast<int64_t>(id));
}

}  // namespace

bool OverlayNode::HasPendingHeartbeat() const {
  EventQueue::PendingInfo info;
  return heartbeat_timer_ != 0 && events_->EventInfo(heartbeat_timer_, &info);
}

Status OverlayNode::SaveSnapshotState(SnapWriter* w) const {
  // ---- quiescence: everything transient must have drained ----------------
  const std::string who = "overlay node " + std::to_string(id_);
  if (join_state_ != JoinState::kIdle) {
    return Status::Internal("snapshot: " + who +
                            " has a join attempt in flight (joiner side)");
  }
  if (pending_join_.has_value()) {
    return Status::Internal("snapshot: " + who +
                            " has a pending join (parent side, joiner " +
                            std::to_string(pending_join_->joiner) + ")");
  }
  if (!staged_adds_.empty()) {
    return Status::Internal("snapshot: " + who + " holds " +
                            std::to_string(staged_adds_.size()) +
                            " staged neighbor addition(s)");
  }
  if (!retry_.empty()) {
    return Status::Internal("snapshot: " + who + " holds " +
                            std::to_string(retry_.size()) +
                            " reliable-send retry queue(s)");
  }
  if (!ring_searches_.empty()) {
    return Status::Internal("snapshot: " + who + " has " +
                            std::to_string(ring_searches_.size()) +
                            " expanding-ring search(es) in flight");
  }
  if (!vacancy_probes_.empty()) {
    return Status::Internal("snapshot: " + who + " has " +
                            std::to_string(vacancy_probes_.size()) +
                            " vacancy probe(s) in flight");
  }
  if (!watches_.empty()) {
    return Status::Internal("snapshot: " + who + " has " +
                            std::to_string(watches_.size()) +
                            " vacancy watch(es) in flight");
  }
  EventQueue::PendingInfo join_pending;
  if (join_timer_ != 0 && events_->EventInfo(join_timer_, &join_pending)) {
    return Status::Internal("snapshot: " + who +
                            " has a live join retry timer");
  }

  // ---- durable state -----------------------------------------------------
  w->U8(alive_ ? 1 : 0);
  w->U8(joined_ ? 1 : 0);
  WriteCode(w, code_);
  w->U64(IdBits(join_parent_));

  w->U32(static_cast<uint32_t>(peers_.size()));
  for (const auto& [peer, pcode] : peers_) {  // NodeId-ascending by design
    w->U64(IdBits(peer));
    WriteCode(w, pcode);
  }

  const auto last_seen = SortedTimeMap(last_seen_);
  w->U32(static_cast<uint32_t>(last_seen.size()));
  for (const auto& [peer, t] : last_seen) {
    w->U64(IdBits(peer));
    w->U64(t);
  }

  const auto avoid = SortedTimeMap(avoid_until_);
  w->U32(static_cast<uint32_t>(avoid.size()));
  for (const auto& [peer, t] : avoid) {
    w->U64(IdBits(peer));
    w->U64(t);
  }

  // Id allocators: restoring these is what makes the unsaved dedup sets
  // safe — post-restore ids continue past every id ever issued.
  w->U64(join_seq_);
  w->U64(ring_seq_);
  w->U64(probe_seq_);
  w->U64(bcast_seq_);
  w->U32(static_cast<uint32_t>(join_failures_));

  // Heartbeat timer: the one event class allowed to be pending. Its full
  // ordering key is saved so a legacy-mode restore can re-insert it with
  // bit-identical (time, seq) and preserve the pinned legacy digest.
  EventQueue::PendingInfo hb;
  const bool hb_live =
      heartbeat_timer_ != 0 && events_->EventInfo(heartbeat_timer_, &hb);
  w->U8(hb_live ? 1 : 0);
  if (hb_live) {
    w->U64(hb.time);
    w->U8(hb.band);
    w->U64(hb.ukey);
    w->U64(hb.seq);
  }

  WriteRngState(w, rng_);
  return Status::OK();
}

Status OverlayNode::LoadSnapshotState(SnapReader* r, bool preserve_seqs) {
  const size_t fleet = net_->host_count();

  uint8_t alive, joined;
  MIND_ASSIGN_OR_RETURN(alive, r->U8("overlay.alive"));
  MIND_ASSIGN_OR_RETURN(joined, r->U8("overlay.joined"));
  if (alive > 1 || joined > 1) {
    return r->FieldError("overlay.alive", "not a boolean");
  }
  alive_ = alive != 0;
  joined_ = joined != 0;
  if (joined_ && !alive_) {
    return r->FieldError("overlay.joined",
                         "node " + std::to_string(id_) +
                             " marked joined but not alive");
  }
  MIND_ASSIGN_OR_RETURN(code_, ReadCode(r, "overlay.code"));
  MIND_ASSIGN_OR_RETURN(join_parent_,
                        ReadNodeId(r, "overlay.join_parent", fleet));

  uint32_t peer_count;
  MIND_ASSIGN_OR_RETURN(peer_count, r->U32("overlay.peer_count"));
  if (peer_count > fleet) {
    return r->FieldError("overlay.peer_count", "more peers than hosts");
  }
  peers_.clear();
  NodeId prev_peer = kInvalidNode;
  for (uint32_t i = 0; i < peer_count; ++i) {
    NodeId peer;
    MIND_ASSIGN_OR_RETURN(peer, ReadNodeId(r, "overlay.peer.id", fleet));
    if (peer == kInvalidNode || peer == id_) {
      return r->FieldError("overlay.peer.id",
                           "node " + std::to_string(id_) +
                               " lists an invalid peer");
    }
    if (i > 0 && peer <= prev_peer) {
      return r->FieldError("overlay.peer.id", "peer ids not ascending");
    }
    prev_peer = peer;
    MIND_ASSIGN_OR_RETURN(peers_[peer], ReadCode(r, "overlay.peer.code"));
  }

  uint32_t seen_count;
  MIND_ASSIGN_OR_RETURN(seen_count, r->U32("overlay.last_seen.count"));
  last_seen_.clear();
  for (uint32_t i = 0; i < seen_count; ++i) {
    NodeId peer;
    MIND_ASSIGN_OR_RETURN(peer, ReadNodeId(r, "overlay.last_seen.id", fleet));
    MIND_ASSIGN_OR_RETURN(last_seen_[peer], r->U64("overlay.last_seen.time"));
  }

  uint32_t avoid_count;
  MIND_ASSIGN_OR_RETURN(avoid_count, r->U32("overlay.avoid.count"));
  avoid_until_.clear();
  for (uint32_t i = 0; i < avoid_count; ++i) {
    NodeId peer;
    MIND_ASSIGN_OR_RETURN(peer, ReadNodeId(r, "overlay.avoid.id", fleet));
    MIND_ASSIGN_OR_RETURN(avoid_until_[peer], r->U64("overlay.avoid.time"));
  }

  MIND_ASSIGN_OR_RETURN(join_seq_, r->U64("overlay.join_seq"));
  MIND_ASSIGN_OR_RETURN(ring_seq_, r->U64("overlay.ring_seq"));
  MIND_ASSIGN_OR_RETURN(probe_seq_, r->U64("overlay.probe_seq"));
  MIND_ASSIGN_OR_RETURN(bcast_seq_, r->U64("overlay.bcast_seq"));
  uint32_t failures;
  MIND_ASSIGN_OR_RETURN(failures, r->U32("overlay.join_failures"));
  join_failures_ = static_cast<int>(failures);

  uint8_t hb_live;
  MIND_ASSIGN_OR_RETURN(hb_live, r->U8("overlay.heartbeat.present"));
  if (hb_live > 1) {
    return r->FieldError("overlay.heartbeat.present", "not a boolean");
  }
  if (hb_live != 0) {
    SimTime hb_time;
    MIND_ASSIGN_OR_RETURN(hb_time, r->U64("overlay.heartbeat.time"));
    uint8_t band;
    MIND_ASSIGN_OR_RETURN(band, r->U8("overlay.heartbeat.band"));
    uint64_t ukey, seq;
    MIND_ASSIGN_OR_RETURN(ukey, r->U64("overlay.heartbeat.ukey"));
    MIND_ASSIGN_OR_RETURN(seq, r->U64("overlay.heartbeat.seq"));
    if (hb_time < events_->now()) {
      return r->FieldError("overlay.heartbeat.time",
                           "heartbeat at " + std::to_string(hb_time) +
                               " is before the restored clock " +
                               std::to_string(events_->now()));
    }
    if (preserve_seqs) {
      // Legacy digests fold (time, seq) pairs: re-insert under the exact
      // saved sequence so the restored queue digests bit-identically.
      heartbeat_timer_ = events_->ScheduleAtKeyedWithSeq(
          hb_time, band, ukey, seq, [this] { OnHeartbeatTimer(); });
    } else {
      // Discipline digests fold (time, band, ukey) triples and ignore
      // per-queue seqs, so a fresh keyed insert is digest-identical — and
      // works when the restored run shards its queues differently.
      heartbeat_timer_ = events_->ScheduleAtKeyed(
          hb_time, band, ukey, [this] { OnHeartbeatTimer(); });
    }
  } else {
    heartbeat_timer_ = 0;
  }

  InvalidateRouteCache();
  return ReadRngState(r, &rng_, "overlay.rng");
}

}  // namespace mind
