// Overlay invariant validators (node-local and fleet-wide) and the
// overlay-state digest used by deterministic replay verification.
#include <algorithm>
#include <unordered_map>

#include "overlay/overlay_node.h"
#include "util/ordered.h"
#include "util/validate.h"

namespace mind {

Status OverlayNode::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  MIND_VALIDATE(alive_ || !joined_, "overlay: node " << id_ << " is joined but not alive");
  for (const auto& [peer, pcode] : peers_) {
    MIND_VALIDATE(peer != id_, "overlay: node " << id_ << " lists itself as a peer");
    MIND_VALIDATE(peer != kInvalidNode,
                  "overlay: node " << id_ << " lists kInvalidNode as a peer");
    MIND_VALIDATE(pcode.length() <= BitCode::kMaxLen,
                  "overlay: node " << id_ << " records peer " << peer
                                   << " with an over-long code");
  }
  if (pending_join_.has_value()) {
    MIND_VALIDATE(pending_join_->my_new_code == code_.Child(0),
                  "overlay: node " << id_ << " staged split code "
                                   << pending_join_->my_new_code.ToString()
                                   << " inconsistent with current code "
                                   << code_.ToString());
    MIND_VALIDATE(pending_join_->joiner_code == code_.Child(1),
                  "overlay: node " << id_ << " staged joiner code "
                                   << pending_join_->joiner_code.ToString()
                                   << " inconsistent with current code "
                                   << code_.ToString());
  }
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void OverlayNode::DigestInto(Fnv64* out) const {
  out->Mix(static_cast<uint64_t>(static_cast<int64_t>(id_)));
  out->Mix(static_cast<uint64_t>(alive_));
  out->Mix(static_cast<uint64_t>(joined_));
  out->Mix(code_.bits());
  out->Mix(static_cast<uint64_t>(code_.length()));
  const std::vector<NodeId> peer_ids = SortedKeys(peers_);
  out->Mix(static_cast<uint64_t>(peer_ids.size()));
  for (NodeId peer : peer_ids) {
    const BitCode& pcode = peers_.find(peer)->second;
    out->Mix(static_cast<uint64_t>(static_cast<int64_t>(peer)));
    out->Mix(pcode.bits());
    out->Mix(static_cast<uint64_t>(pcode.length()));
  }
}

Status ValidateOverlayInvariants(const std::vector<const OverlayNode*>& nodes) {
#if MIND_VALIDATORS_ENABLED
  std::unordered_map<NodeId, const OverlayNode*> by_id;
  std::vector<BitCode> codes;
  for (const OverlayNode* n : nodes) {
    MIND_RETURN_NOT_OK(n->ValidateInvariants());
    by_id[n->id()] = n;
    if (n->alive() && n->joined()) codes.push_back(n->code());
  }
  if (codes.empty()) return Status::OK();
  MIND_RETURN_NOT_OK(CheckCompleteCover(codes));
  for (const OverlayNode* n : nodes) {
    if (!n->alive() || !n->joined()) continue;
    if (n->code().empty()) continue;
    for (const auto& [peer, pcode] : n->peers()) {
      if (pcode != n->code().Sibling()) continue;
      auto it = by_id.find(peer);
      if (it == by_id.end()) continue;  // a node outside the validated set
      const OverlayNode* sib = it->second;
      if (!sib->alive() || !sib->joined()) continue;
      MIND_VALIDATE(sib->code() == pcode,
                    "overlay: node " << n->id() << " records sibling " << peer
                                     << " at code " << pcode.ToString()
                                     << " but that node holds "
                                     << sib->code().ToString());
      MIND_VALIDATE(sib->peers().count(n->id()) != 0,
                    "overlay: sibling link asymmetric: node "
                        << n->id() << " (" << n->code().ToString() << ") lists "
                        << peer << " but not vice versa");
    }
  }
#else
  (void)nodes;
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

}  // namespace mind
