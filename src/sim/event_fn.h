// A move-only callable with a 64-byte inline buffer, replacing
// std::function<void()> as the event-queue closure type.
//
// The simulator schedules millions of closures per run and nearly all of
// them are small lambdas (a `this`, a shared_ptr payload, a couple of
// integers — 16 to 56 bytes). libstdc++'s std::function spills anything
// over 16 bytes to the heap, so every scheduled event paid a malloc/free
// pair. EventFn keeps closures up to kInlineSize bytes inline; larger or
// throwing-move callables fall back to the heap transparently.
#ifndef MIND_SIM_EVENT_FN_H_
#define MIND_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/arena.h"

namespace mind {

class EventFn {
 public:
  /// Covers the largest hot-path closure (insert commit / query reply:
  /// ~56 bytes) with a little headroom.
  static constexpr size_t kInlineSize = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::kOps;
    } else {
      // Oversized closures go through the event pool, not ::operator new,
      // so even the fallback path stays inside the bounded-memory layer.
      void* mem = pool::Allocate(sizeof(D));
      *reinterpret_cast<D**>(buf_) = ::new (mem) D(std::forward<F>(f));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(&other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  static constexpr size_t kAlign = alignof(std::max_align_t);

  struct Ops {
    void (*invoke)(void*);
    // Move-constructs dst's payload from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<D*>(p))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void Destroy(void* p) { static_cast<D*>(p)->~D(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static void Invoke(void* p) { (**static_cast<D**>(p))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<D**>(dst) = *static_cast<D**>(src);
    }
    static void Destroy(void* p) {
      D* d = *static_cast<D**>(p);
      d->~D();
      pool::Deallocate(d, sizeof(D));
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }
  void MoveFrom(EventFn* other) {
    ops_ = other->ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other->buf_);
      other->ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kAlign) unsigned char buf_[kInlineSize];
};

}  // namespace mind

#endif  // MIND_SIM_EVENT_FN_H_
