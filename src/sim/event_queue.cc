#include "sim/event_queue.h"

#include <utility>

#include "util/logging.h"

namespace mind {

EventId EventQueue::ScheduleAt(SimTime t, EventFn fn) {
  MIND_CHECK_GE(t, now_) << "cannot schedule in the past";
  uint32_t slot;
  if (free_head_ != kNone) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.time = t;
  s.seq = ++next_seq_;
  s.live = true;
  s.fn = std::move(fn);
  heap_.push_back(slot);
  SiftUp(heap_.size() - 1);
  ++live_count_;
  return MakeId(s.gen, slot);
}

uint32_t EventQueue::DecodeLive(EventId id) const {
  uint32_t low = static_cast<uint32_t>(id);
  if (low == 0) return kNone;
  uint32_t slot = low - 1;
  if (slot >= slots_.size()) return kNone;
  if (slots_[slot].gen != static_cast<uint32_t>(id >> 32)) return kNone;
  return slot;
}

void EventQueue::Cancel(EventId id) {
  uint32_t slot = DecodeLive(id);
  if (slot == kNone || !slots_[slot].live) return;
  slots_[slot].live = false;
  slots_[slot].fn = EventFn();
  --live_count_;
  ++dead_in_heap_;
  if (dead_in_heap_ > heap_.size() / 2) Compact();
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    size_t left = 2 * i + 1;
    if (left >= n) break;
    size_t best = left;
    size_t right = left + 1;
    if (right < n && Before(heap_[right], heap_[left])) best = right;
    if (!Before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::HeapPopRoot() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::Release(uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::Compact() {
  size_t w = 0;
  for (uint32_t slot : heap_) {
    if (slots_[slot].live) {
      heap_[w++] = slot;
    } else {
      Release(slot);
    }
  }
  heap_.resize(w);
  dead_in_heap_ = 0;
  for (size_t i = w / 2; i-- > 0;) SiftDown(i);
}

uint32_t EventQueue::PopNextSlot() {
  while (!heap_.empty()) {
    uint32_t slot = heap_[0];
    HeapPopRoot();
    if (!slots_[slot].live) {
      --dead_in_heap_;
      Release(slot);
      continue;
    }
    return slot;
  }
  return kNone;
}

bool EventQueue::PeekTime(SimTime* t) {
  while (!heap_.empty()) {
    uint32_t slot = heap_[0];
    if (!slots_[slot].live) {
      HeapPopRoot();
      --dead_in_heap_;
      Release(slot);
      continue;
    }
    *t = slots_[slot].time;
    return true;
  }
  return false;
}

size_t EventQueue::Run(size_t limit) {
  size_t fired = 0;
  while (fired < limit) {
    uint32_t slot = PopNextSlot();
    if (slot == kNone) break;
    now_ = slots_[slot].time;
    EventFn fn = std::move(slots_[slot].fn);
    slots_[slot].live = false;
    --live_count_;
    // Release before invoking: the closure may schedule, reusing this slot
    // under a fresh generation (and possibly reallocating slots_).
    Release(slot);
    fn();
    ++fired;
  }
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

size_t EventQueue::RunUntil(SimTime t) {
  size_t fired = 0;
  SimTime next;
  while (PeekTime(&next) && next <= t) {
    uint32_t slot = PopNextSlot();
    if (slot == kNone) break;
    now_ = slots_[slot].time;
    EventFn fn = std::move(slots_[slot].fn);
    slots_[slot].live = false;
    --live_count_;
    Release(slot);
    fn();
    ++fired;
  }
  if (t > now_) now_ = t;
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

bool EventQueue::Step() {
  uint32_t slot = PopNextSlot();
  if (slot == kNone) return false;
  now_ = slots_[slot].time;
  EventFn fn = std::move(slots_[slot].fn);
  slots_[slot].live = false;
  --live_count_;
  Release(slot);
  fn();
  if (run_counter_ != nullptr) run_counter_->Inc();
  return true;
}

}  // namespace mind
