#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/validate.h"

namespace mind {

EventId EventQueue::ScheduleAtKeyed(SimTime t, uint8_t band, uint64_t ukey,
                                    EventFn fn) {
  MIND_CHECK_GE(t, now_) << "cannot schedule in the past";
  uint32_t slot;
  if (free_head_ != kNone) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.time = t;
  s.seq = ++next_seq_;
  s.band = band;
  s.ukey = ukey;
  s.live = true;
  s.fn = std::move(fn);
  heap_.push_back(slot);
  SiftUp(heap_.size() - 1);
  ++live_count_;
  return MakeId(s.gen, slot);
}

uint32_t EventQueue::DecodeLive(EventId id) const {
  uint32_t low = static_cast<uint32_t>(id);
  if (low == 0) return kNone;
  uint32_t slot = low - 1;
  if (slot >= slots_.size()) return kNone;
  if (slots_[slot].gen != static_cast<uint32_t>(id >> 32)) return kNone;
  return slot;
}

void EventQueue::Cancel(EventId id) {
  uint32_t slot = DecodeLive(id);
  if (slot == kNone || !slots_[slot].live) return;
  slots_[slot].live = false;
  slots_[slot].fn = EventFn();
  --live_count_;
  ++dead_in_heap_;
  if (dead_in_heap_ > heap_.size() / 2) Compact();
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    size_t left = 2 * i + 1;
    if (left >= n) break;
    size_t best = left;
    size_t right = left + 1;
    if (right < n && Before(heap_[right], heap_[left])) best = right;
    if (!Before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::HeapPopRoot() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::Release(uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::Compact() {
  size_t w = 0;
  for (uint32_t slot : heap_) {
    if (slots_[slot].live) {
      heap_[w++] = slot;
    } else {
      Release(slot);
    }
  }
  heap_.resize(w);
  dead_in_heap_ = 0;
  for (size_t i = w / 2; i-- > 0;) SiftDown(i);
}

uint32_t EventQueue::PopNextSlot() {
  while (!heap_.empty()) {
    uint32_t slot = heap_[0];
    HeapPopRoot();
    if (!slots_[slot].live) {
      --dead_in_heap_;
      Release(slot);
      continue;
    }
    return slot;
  }
  return kNone;
}

bool EventQueue::PeekTime(SimTime* t) {
  while (!heap_.empty()) {
    uint32_t slot = heap_[0];
    if (!slots_[slot].live) {
      HeapPopRoot();
      --dead_in_heap_;
      Release(slot);
      continue;
    }
    *t = slots_[slot].time;
    return true;
  }
  return false;
}

size_t EventQueue::Run(size_t limit) {
  size_t fired = 0;
  while (fired < limit) {
    uint32_t slot = PopNextSlot();
    if (slot == kNone) break;
    now_ = slots_[slot].time;
    EventFn fn = std::move(slots_[slot].fn);
    slots_[slot].live = false;
    --live_count_;
    // Release before invoking: the closure may schedule, reusing this slot
    // under a fresh generation (and possibly reallocating slots_).
    Release(slot);
    fn();
    MaybeValidate();
    ++fired;
  }
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

size_t EventQueue::RunUntil(SimTime t) {
  size_t fired = 0;
  SimTime next;
  while (PeekTime(&next) && next <= t) {
    uint32_t slot = PopNextSlot();
    if (slot == kNone) break;
    now_ = slots_[slot].time;
    EventFn fn = std::move(slots_[slot].fn);
    slots_[slot].live = false;
    --live_count_;
    Release(slot);
    fn();
    MaybeValidate();
    ++fired;
  }
  if (t > now_) now_ = t;
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

size_t EventQueue::RunUntilBefore(SimTime t) {
  size_t fired = 0;
  SimTime next;
  while (PeekTime(&next) && next < t) {
    uint32_t slot = PopNextSlot();
    if (slot == kNone) break;
    now_ = slots_[slot].time;
    EventFn fn = std::move(slots_[slot].fn);
    slots_[slot].live = false;
    --live_count_;
    Release(slot);
    fn();
    MaybeValidate();
    ++fired;
  }
  // The clock is left at the last fired event; the engine advances every
  // shard to a common barrier time afterwards (AdvanceTo), so a window that
  // overshoots the run target never drags the clock past it.
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

bool EventQueue::Step() {
  uint32_t slot = PopNextSlot();
  if (slot == kNone) return false;
  now_ = slots_[slot].time;
  EventFn fn = std::move(slots_[slot].fn);
  slots_[slot].live = false;
  --live_count_;
  Release(slot);
  fn();
  MaybeValidate();
  if (run_counter_ != nullptr) run_counter_->Inc();
  return true;
}

Status EventQueue::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  // Heap order: no entry sorts before its parent under (time, seq).
  for (size_t i = 1; i < heap_.size(); ++i) {
    const size_t parent = (i - 1) / 2;
    MIND_VALIDATE(heap_[i] < slots_.size(),
                  "event-queue: heap[" << i << "] = " << heap_[i]
                                       << " is not a valid slot index ("
                                       << slots_.size() << " slots)");
    MIND_VALIDATE(!Before(heap_[i], heap_[parent]),
                  "event-queue: heap property violated at heap[" << i << "]: slot "
                      << heap_[i] << " (t=" << slots_[heap_[i]].time << " seq="
                      << slots_[heap_[i]].seq << ") orders before its parent slot "
                      << heap_[parent] << " (t=" << slots_[heap_[parent]].time
                      << " seq=" << slots_[heap_[parent]].seq << ")");
  }
  if (!heap_.empty()) {
    MIND_VALIDATE(heap_[0] < slots_.size(),
                  "event-queue: heap[0] = " << heap_[0]
                                            << " is not a valid slot index");
  }

  // Every slot is on exactly one of {heap, free list}; the free list is
  // acyclic, properly terminated, and holds only dead slots.
  std::vector<uint8_t> where(slots_.size(), 0);  // bit0 = heap, bit1 = free list
  for (uint32_t s : heap_) {
    MIND_VALIDATE((where[s] & 1) == 0,
                  "event-queue: slot " << s << " appears twice in the heap");
    where[s] |= 1;
  }
  size_t free_len = 0;
  for (uint32_t s = free_head_; s != kNone; s = slots_[s].next_free) {
    MIND_VALIDATE(s < slots_.size(), "event-queue: free list points at invalid slot "
                                         << s << " (" << slots_.size() << " slots)");
    MIND_VALIDATE((where[s] & 2) == 0, "event-queue: free list cycles at slot " << s);
    MIND_VALIDATE((where[s] & 1) == 0,
                  "event-queue: slot " << s << " is both in the heap and on the free list");
    MIND_VALIDATE(!slots_[s].live, "event-queue: live slot " << s << " on the free list");
    where[s] |= 2;
    MIND_VALIDATE(++free_len <= slots_.size(),
                  "event-queue: free list longer than the slot array");
  }
  for (size_t s = 0; s < slots_.size(); ++s) {
    MIND_VALIDATE(where[s] != 0, "event-queue: slot " << s
                                     << " leaked (neither in heap nor on free list)");
  }

  // Counters agree with the slot flags; live events are never in the past,
  // and their sequence numbers are unique and within the allocated range.
  size_t live = 0;
  size_t dead_in_heap = 0;
  std::vector<uint64_t> seqs;
  for (uint32_t s : heap_) {
    const Slot& slot = slots_[s];
    if (slot.live) {
      ++live;
      MIND_VALIDATE(slot.time >= now_, "event-queue: live slot " << s << " at t="
                                           << slot.time << " is before now=" << now_);
      MIND_VALIDATE(slot.seq <= next_seq_,
                    "event-queue: slot " << s << " has seq " << slot.seq
                                         << " beyond high-water mark " << next_seq_);
      seqs.push_back(slot.seq);
    } else {
      ++dead_in_heap;
    }
  }
  MIND_VALIDATE(live == live_count_, "event-queue: live_count_ is " << live_count_
                                         << " but " << live << " heap slots are live");
  MIND_VALIDATE(dead_in_heap == dead_in_heap_,
                "event-queue: dead_in_heap_ is " << dead_in_heap_ << " but " << dead_in_heap
                                                 << " heap slots are dead");
  std::sort(seqs.begin(), seqs.end());
  for (size_t i = 1; i < seqs.size(); ++i) {
    MIND_VALIDATE(seqs[i] != seqs[i - 1],
                  "event-queue: duplicate sequence number " << seqs[i]);
  }
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void EventQueue::DigestInto(Fnv64* out) const {
  out->Mix(now_);
  std::vector<std::pair<SimTime, uint64_t>> live;
  live.reserve(live_count_);
  for (uint32_t s : heap_) {
    if (slots_[s].live) live.emplace_back(slots_[s].time, slots_[s].seq);
  }
  std::sort(live.begin(), live.end());
  out->Mix(static_cast<uint64_t>(live.size()));
  for (const auto& [t, seq] : live) {
    out->Mix(t);
    out->Mix(seq);
  }
}

void EventQueue::CollectKeyed(std::vector<std::array<uint64_t, 3>>* out) const {
  for (uint32_t s : heap_) {
    if (!slots_[s].live) continue;
    out->push_back({slots_[s].time, static_cast<uint64_t>(slots_[s].band),
                    slots_[s].ukey});
  }
}

bool EventQueue::EventInfo(EventId id, PendingInfo* out) const {
  uint32_t slot = DecodeLive(id);
  if (slot == kNone || !slots_[slot].live) return false;
  const Slot& s = slots_[slot];
  out->time = s.time;
  out->seq = s.seq;
  out->ukey = s.ukey;
  out->band = s.band;
  return true;
}

void EventQueue::CollectPendingInfo(std::vector<PendingInfo>* out) const {
  for (uint32_t s : heap_) {
    if (!slots_[s].live) continue;
    out->push_back(
        {slots_[s].time, slots_[s].seq, slots_[s].ukey, slots_[s].band});
  }
}

EventId EventQueue::ScheduleAtKeyedWithSeq(SimTime t, uint8_t band,
                                           uint64_t ukey, uint64_t seq,
                                           EventFn fn) {
  EventId id = ScheduleAtKeyed(t, band, ukey, std::move(fn));
  // Rewrite the freshly allocated seq with the snapshot's, and keep the
  // allocator's high-water mark past it. The slot index is recoverable from
  // the id; the heap position may shift, so re-establish heap order.
  uint32_t slot = DecodeLive(id);
  MIND_CHECK_NE(slot, kNone);
  slots_[slot].seq = seq;
  if (next_seq_ < seq) next_seq_ = seq;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i] == slot) {
      SiftUp(i);
      SiftDown(i);
      break;
    }
  }
  return id;
}

}  // namespace mind
