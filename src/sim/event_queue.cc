#include "sim/event_queue.h"

#include "util/logging.h"

namespace mind {

EventId EventQueue::ScheduleAt(SimTime t, EventFn fn) {
  MIND_CHECK_GE(t, now_) << "cannot schedule in the past";
  EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool EventQueue::PopNext(Event* out) {
  while (!heap_.empty()) {
    // top() is const&; the closure is moved out right before pop(), which is
    // safe because the heap ordering does not involve fn.
    Event& top = const_cast<Event&>(heap_.top());
    if (!live_.count(top.id)) {  // cancelled
      heap_.pop();
      continue;
    }
    live_.erase(top.id);
    *out = Event{top.time, top.id, std::move(top.fn)};
    heap_.pop();
    return true;
  }
  return false;
}

bool EventQueue::PeekTime(SimTime* t) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (!live_.count(top.id)) {
      heap_.pop();
      continue;
    }
    *t = top.time;
    return true;
  }
  return false;
}

size_t EventQueue::Run(size_t limit) {
  size_t fired = 0;
  Event ev;
  while (fired < limit && PopNext(&ev)) {
    now_ = ev.time;
    ev.fn();
    ++fired;
  }
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

size_t EventQueue::RunUntil(SimTime t) {
  size_t fired = 0;
  SimTime next;
  while (PeekTime(&next) && next <= t) {
    Event ev;
    if (!PopNext(&ev)) break;
    now_ = ev.time;
    ev.fn();
    ++fired;
  }
  if (t > now_) now_ = t;
  if (run_counter_ != nullptr) run_counter_->Inc(fired);
  return fired;
}

bool EventQueue::Step() {
  Event ev;
  if (!PopNext(&ev)) return false;
  now_ = ev.time;
  ev.fn();
  if (run_counter_ != nullptr) run_counter_->Inc();
  return true;
}

}  // namespace mind
