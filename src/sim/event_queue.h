// The discrete-event core: a virtual clock plus a priority queue of
// timestamped callbacks. Deterministic: ties are broken by insertion order.
#ifndef MIND_SIM_EVENT_QUEUE_H_
#define MIND_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "telemetry/metrics.h"

namespace mind {

using EventId = uint64_t;
using EventFn = std::function<void()>;

/// \brief Virtual clock + event queue.
///
/// Components schedule callbacks at future virtual times; Run() drains the
/// queue in timestamp order, advancing the clock. Events can be cancelled by
/// id (used for timers such as heartbeats and retry backoffs).
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (>= now).
  EventId ScheduleAt(SimTime t, EventFn fn);

  /// Schedules `fn` to run `delay` after now.
  EventId Schedule(SimTime delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; no-op if already fired or cancelled.
  void Cancel(EventId id) { live_.erase(id); }

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events fired.
  size_t Run(size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= t, then advances the clock to exactly t.
  size_t RunUntil(SimTime t);

  /// Fires the single next event, if any. Returns true if one fired.
  bool Step();

  bool empty() const { return live_.empty(); }
  size_t pending() const { return live_.size(); }

  /// Optional counter bumped once per fired event (`sim.events.processed`).
  void set_run_counter(telemetry::Counter* c) { run_counter_ = c; }

 private:
  struct Event {
    SimTime time;
    EventId id;  // also the tie-breaker: lower id fires first at equal time
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  // Pops the next live (non-cancelled) event; returns false if none.
  bool PopNext(Event* out);
  // Timestamp of the next live event; false if none (mutates heap to drop
  // cancelled prefixes).
  bool PeekTime(SimTime* t);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  telemetry::Counter* run_counter_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> live_;
};

}  // namespace mind

#endif  // MIND_SIM_EVENT_QUEUE_H_
