// The discrete-event core: a virtual clock plus a priority queue of
// timestamped callbacks. Deterministic: ties are broken by insertion order.
//
// Internals are built for the hot path (one Schedule + one fire per network
// message, millions per run):
//  * closures are EventFn (64-byte inline buffer) — no per-event malloc;
//  * events live in a slot array with a free list; the heap orders slot
//    indices, so heap moves shuffle 4-byte ints, never closures;
//  * Cancel is lazy: the slot is marked dead (its closure destroyed
//    immediately) and skipped at pop, with no tombstone hash set;
//  * when dead entries exceed half the heap, the heap is compacted in one
//    O(n) pass, so a cancel-heavy workload (timers) cannot grow memory.
#ifndef MIND_SIM_EVENT_QUEUE_H_
#define MIND_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"
#include "telemetry/metrics.h"
#include "util/digest.h"
#include "util/status.h"

namespace mind {

/// Opaque handle: generation in the high 32 bits, slot+1 in the low 32, so a
/// valid id is never 0 (callers use 0 as "no event"). Slot reuse bumps the
/// generation, which makes a stale Cancel on a reused slot a no-op.
using EventId = uint64_t;

/// \brief Virtual clock + event queue.
///
/// Components schedule callbacks at future virtual times; Run() drains the
/// queue in timestamp order, advancing the clock. Events can be cancelled by
/// id (used for timers such as heartbeats and retry backoffs).
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (>= now).
  EventId ScheduleAt(SimTime t, EventFn fn) {
    return ScheduleAtKeyed(t, 0, 0, std::move(fn));
  }

  /// Schedules `fn` at `t` with an explicit ordering key. Events fire in
  /// (time, band, ukey, insertion seq) order; plain ScheduleAt uses
  /// (band 0, ukey 0), so its relative order is pure insertion order exactly
  /// as before. The discipline-mode network layer keys message deliveries by
  /// engine-independent values (band, sender, per-link send index) so the
  /// same-timestamp event order at a host is identical whether the run is
  /// sequential or sharded across threads.
  EventId ScheduleAtKeyed(SimTime t, uint8_t band, uint64_t ukey, EventFn fn);

  /// Schedules `fn` to run `delay` after now.
  EventId Schedule(SimTime delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; no-op if already fired or cancelled. The
  /// closure is destroyed immediately (releasing captured resources); the
  /// heap entry is reclaimed lazily.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events fired.
  size_t Run(size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= t, then advances the clock to exactly t.
  size_t RunUntil(SimTime t);

  /// Runs events with timestamp strictly < t, leaving the clock at the last
  /// fired event. The parallel engine's window primitive: a shard executes
  /// the half-open window [now, t), and the engine aligns all shard clocks
  /// with AdvanceTo at the barrier.
  size_t RunUntilBefore(SimTime t);

  /// Advances the clock to max(now, t) without firing anything. Used at
  /// window barriers so every shard clock agrees before cross-shard events
  /// are admitted.
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Timestamp of the next live event; false if the queue is drained.
  bool PeekNextTime(SimTime* t) { return PeekTime(t); }

  /// Fires the single next event, if any. Returns true if one fired.
  bool Step();

  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }

  /// Introspection for the memory-regression tests: physical sizes of the
  /// slot array and the heap (live + not-yet-reclaimed dead entries).
  size_t slot_count() const { return slots_.size(); }
  size_t heap_size() const { return heap_.size(); }

  /// Optional counter bumped once per fired event (`sim.events.processed`).
  void set_run_counter(telemetry::Counter* c) { run_counter_ = c; }

  /// Registers a hook invoked after an event fires whenever at least
  /// `interval` of virtual time has passed since the previous invocation
  /// (piggybacked on the run loop, so it never keeps the queue non-empty).
  /// The hook typically MIND_CHECK_OKs a ValidateInvariants() sweep. Pass a
  /// null hook to disable.
  void set_validation_hook(std::function<void()> hook, SimTime interval) {
    validation_hook_ = std::move(hook);
    validation_interval_ = interval;
    next_validation_ = now_ + interval;
  }

  /// Checks internal consistency: heap order over (time, seq), every slot on
  /// exactly one of {heap, free list}, free list acyclic and dead-only,
  /// live/dead counters matching slot flags, no live event in the past, and
  /// live sequence numbers unique and <= the allocation high-water mark.
  /// Returns OK trivially when MIND_VALIDATORS is off (see util/validate.h).
  Status ValidateInvariants() const;

  /// Folds the queue's logical state (clock + sorted live (time, seq) pairs)
  /// into `out`. Independent of slot layout, heap shape and compaction
  /// history, so two behaviorally identical runs digest identically.
  void DigestInto(Fnv64* out) const;

  /// Appends the (time, band, ukey) triple of every live event to `out`
  /// (unsorted). Unlike DigestInto's (time, seq) pairs, these keys are
  /// engine-independent: per-queue insertion sequence numbers differ between
  /// a single global queue and per-shard queues, but the keyed triples do
  /// not. The discipline-mode StateDigest sorts the union across all shard
  /// queues and digests that.
  void CollectKeyed(std::vector<std::array<uint64_t, 3>>* out) const;

  // --- Snapshot support (src/mind/snapshot.cc) ---------------------------
  // A snapshot may only be taken when every pending event is a re-armable
  // timer (heartbeats). Save records each timer's ordering key via
  // EventInfo; restore re-creates the closure and re-inserts it with
  // ScheduleAtKeyedWithSeq so the (time, band, ukey, seq) ordering key — and
  // therefore the legacy (time, seq) digest — survives the round trip.

  /// Ordering key of a live pending event.
  struct PendingInfo {
    SimTime time = 0;
    uint64_t seq = 0;
    uint64_t ukey = 0;
    uint8_t band = 0;
  };

  /// Looks up a live event by handle; false if the id is stale/invalid.
  bool EventInfo(EventId id, PendingInfo* out) const;

  /// Appends the ordering key of every live event (unsorted). Snapshot save
  /// uses this to name unexpected non-timer events in its quiescence error.
  void CollectPendingInfo(std::vector<PendingInfo>* out) const;

  /// Schedules `fn` with an explicit insertion sequence number instead of
  /// allocating the next one; bumps the allocator past `seq` so later
  /// Schedules never collide. Restore-only: using this while the original
  /// event still exists would duplicate a tie-break key.
  EventId ScheduleAtKeyedWithSeq(SimTime t, uint8_t band, uint64_t ukey,
                                 uint64_t seq, EventFn fn);

  /// Insertion-sequence allocator high-water mark, for snapshot round trips
  /// that must preserve the exact seq a future Schedule would draw.
  uint64_t next_seq() const { return next_seq_; }
  void SetNextSeq(uint64_t v) { next_seq_ = v; }

 private:
  friend class EventQueueTestPeek;  // corruption injection in validator tests

  struct Slot {
    SimTime time = 0;
    uint64_t seq = 0;       // per-queue insertion order; the final tie-breaker
    uint64_t ukey = 0;      // engine-independent key within (time, band)
    uint32_t gen = 0;       // bumped on release; validates EventIds
    uint32_t next_free = kNone;
    uint8_t band = 0;       // ordering band within a timestamp (0 = local)
    bool live = false;
    EventFn fn;
  };
  static constexpr uint32_t kNone = UINT32_MAX;

  static EventId MakeId(uint32_t gen, uint32_t slot) {
    return (static_cast<uint64_t>(gen) << 32) | (slot + 1);
  }
  // Slot index of a handle, or kNone if the handle is stale/invalid.
  uint32_t DecodeLive(EventId id) const;

  bool Before(uint32_t a, uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.time != sb.time) return sa.time < sb.time;
    if (sa.band != sb.band) return sa.band < sb.band;
    if (sa.ukey != sb.ukey) return sa.ukey < sb.ukey;
    return sa.seq < sb.seq;
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  // Removes heap_[0] (caller owns the slot afterwards).
  void HeapPopRoot();
  // Returns a slot to the free list and invalidates outstanding ids.
  void Release(uint32_t slot);
  // Drops every dead entry from the heap in one pass and re-heapifies.
  void Compact();

  // Pops the next live event's slot; returns kNone if the queue is drained.
  uint32_t PopNextSlot();
  // Timestamp of the next live event; false if none (drops dead prefixes).
  bool PeekTime(SimTime* t);

  // Invokes the validation hook if due (called after an event fires).
  void MaybeValidate() {
    if (validation_hook_ && now_ >= next_validation_) {
      validation_hook_();
      next_validation_ = now_ + validation_interval_;
    }
  }

  SimTime now_ = 0;
  // mind-digest: skip(tie-break allocator; its order is visible via heap_/slots_)
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  // mind-digest: skip(lazy-deletion accounting; heap_/slots_ carry the events)
  size_t dead_in_heap_ = 0;
  // mind-digest: skip(slot free-list head; storage recycling, not sim state)
  uint32_t free_head_ = kNone;
  telemetry::Counter* run_counter_ = nullptr;
  std::function<void()> validation_hook_;
  // mind-digest: skip(validator cadence config; diagnostics, not sim state)
  SimTime validation_interval_ = 0;
  // mind-digest: skip(validator cadence cursor; diagnostics, not sim state)
  SimTime next_validation_ = 0;
  std::vector<uint32_t> heap_;
  std::vector<Slot> slots_;
};

}  // namespace mind

#endif  // MIND_SIM_EVENT_QUEUE_H_
