#include "sim/failure_injector.h"

#include "util/logging.h"

namespace mind {

FailureInjector::FailureInjector(EventQueue* events, Network* network,
                                 FailureOptions options)
    : events_(events), network_(network), options_(options), rng_(options.seed) {}

void FailureInjector::Start(SimTime horizon) {
  const size_t n = network_->host_count();
  const double hours = ToSeconds(horizon) / 3600.0;

  if (options_.link_flaps_per_pair_hour > 0) {
    for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
      for (NodeId b = a + 1; b < static_cast<NodeId>(n); ++b) {
        // Poisson process over the horizon, pre-sampled.
        double rate_per_us =
            options_.link_flaps_per_pair_hour / (3600.0 * 1e6);
        SimTime t = events_->now();
        for (;;) {
          t += static_cast<SimTime>(rng_.Exponential(rate_per_us));
          if (t >= events_->now() + horizon) break;
          SimTime dur = static_cast<SimTime>(rng_.Exponential(
              1.0 / static_cast<double>(options_.mean_flap_duration)));
          events_->ScheduleAt(t, [this, a, b, dur]() {
            network_->SetLinkDown(a, b, dur);
          });
          ++scheduled_flaps_;
        }
      }
    }
    (void)hours;
  }

  if (options_.node_crashes_per_hour > 0) {
    NodeId last = churn_last_ < 0 ? static_cast<NodeId>(n) - 1 : churn_last_;
    for (NodeId id = churn_first_; id <= last; ++id) {
      double rate_per_us = options_.node_crashes_per_hour / (3600.0 * 1e6);
      SimTime t = events_->now();
      for (;;) {
        t += static_cast<SimTime>(rng_.Exponential(rate_per_us));
        if (t >= events_->now() + horizon) break;
        SimTime down = static_cast<SimTime>(rng_.Exponential(
            1.0 / static_cast<double>(options_.mean_downtime)));
        events_->ScheduleAt(t, [this, id]() {
          if (!network_->IsNodeUp(id)) return;  // already down
          network_->SetNodeUp(id, false);
          if (on_crash_) on_crash_(id);
        });
        events_->ScheduleAt(t + down, [this, id]() {
          if (network_->IsNodeUp(id)) return;
          network_->SetNodeUp(id, true);
          if (on_revive_) on_revive_(id);
        });
        ++scheduled_crashes_;
        t += down;  // next crash only after recovery
      }
    }
  }
}

}  // namespace mind
