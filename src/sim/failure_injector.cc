#include "sim/failure_injector.h"

#include <algorithm>

#include "util/logging.h"

namespace mind {

FailureInjector::FailureInjector(EventQueue* events, Network* network,
                                 FailureOptions options)
    : events_(events), network_(network), options_(options), rng_(options.seed) {}

void FailureInjector::Start(SimTime horizon) {
  const size_t n = network_->host_count();
  const double hours = ToSeconds(horizon) / 3600.0;
  // Discipline mode: outages are registered as an immutable plan on the
  // network instead of SetLinkDown/SetNodeUp calls firing mid-run, so every
  // shard can resolve liveness at send time without cross-shard reads. The
  // random draws below are identical in both modes (same rng_ stream).
  const bool plan = network_->discipline();

  if (options_.link_flaps_per_pair_hour > 0) {
    for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
      for (NodeId b = a + 1; b < static_cast<NodeId>(n); ++b) {
        // Poisson process over the horizon, pre-sampled.
        double rate_per_us =
            options_.link_flaps_per_pair_hour / (3600.0 * 1e6);
        SimTime t = events_->now();
        for (;;) {
          t += static_cast<SimTime>(rng_.Exponential(rate_per_us));
          if (t >= events_->now() + horizon) break;
          SimTime dur = static_cast<SimTime>(rng_.Exponential(
              1.0 / static_cast<double>(options_.mean_flap_duration)));
          if (plan) {
            network_->PlanLinkOutage(a, b, t, t + std::max<SimTime>(dur, 1));
          } else {
            events_->ScheduleAt(t, [this, a, b, dur]() {
              network_->SetLinkDown(a, b, dur);
            });
          }
          ++scheduled_flaps_;
        }
      }
    }
    (void)hours;
  }

  if (options_.node_crashes_per_hour > 0) {
    NodeId last = churn_last_ < 0 ? static_cast<NodeId>(n) - 1 : churn_last_;
    for (NodeId id = churn_first_; id <= last; ++id) {
      double rate_per_us = options_.node_crashes_per_hour / (3600.0 * 1e6);
      SimTime t = events_->now();
      for (;;) {
        t += static_cast<SimTime>(rng_.Exponential(rate_per_us));
        if (t >= events_->now() + horizon) break;
        SimTime down = static_cast<SimTime>(rng_.Exponential(
            1.0 / static_cast<double>(options_.mean_downtime)));
        if (plan) {
          // Network-level blackout. The crash/revive callbacks run as events
          // on the node's own shard queue; overlay-level crash protocols
          // (which mutate fleet-wide state) stay a sequential-engine feature,
          // so callbacks are only scheduled when someone registered them.
          network_->PlanNodeOutage(id, t, t + std::max<SimTime>(down, 1));
          if (on_crash_) {
            network_->queue_for(id)->ScheduleAt(t,
                                                [this, id]() { on_crash_(id); });
          }
          if (on_revive_) {
            network_->queue_for(id)->ScheduleAt(
                t + std::max<SimTime>(down, 1),
                [this, id]() { on_revive_(id); });
          }
        } else {
          events_->ScheduleAt(t, [this, id]() {
            if (!network_->IsNodeUp(id)) return;  // already down
            network_->SetNodeUp(id, false);
            if (on_crash_) on_crash_(id);
          });
          events_->ScheduleAt(t + down, [this, id]() {
            if (network_->IsNodeUp(id)) return;
            network_->SetNodeUp(id, true);
            if (on_revive_) on_revive_(id);
          });
        }
        ++scheduled_crashes_;
        t += down;  // next crash only after recovery
      }
    }
  }
}

}  // namespace mind
