// Injects the failure pathologies the paper observed on PlanetLab: transient
// link flaps (routing transients in the underlying network) and node
// crash/recover churn.
#ifndef MIND_SIM_FAILURE_INJECTOR_H_
#define MIND_SIM_FAILURE_INJECTOR_H_

#include <functional>
#include <vector>

#include "sim/network.h"
#include "util/rng.h"

namespace mind {

struct FailureOptions {
  /// Expected number of link flaps per (directed pair, hour). 0 disables.
  double link_flaps_per_pair_hour = 0.0;
  /// Flap duration: exponential with this mean.
  SimTime mean_flap_duration = FromSeconds(10);
  /// Expected node crashes per (node, hour). 0 disables.
  double node_crashes_per_hour = 0.0;
  /// Downtime before a crashed node is revived: exponential with this mean.
  SimTime mean_downtime = FromSeconds(120);
  uint64_t seed = 0xfa11;
};

/// \brief Schedules random link outages and node churn on a Network.
///
/// Node crash/revive transitions are reported through callbacks so that the
/// overlay layer can run its failure-recovery and rejoin protocols.
class FailureInjector {
 public:
  FailureInjector(EventQueue* events, Network* network, FailureOptions options);

  /// Starts injecting over [now, now + horizon). Pre-schedules all events.
  void Start(SimTime horizon);

  /// Called with the node id when the injector crashes / revives a node.
  using NodeEventFn = std::function<void(NodeId)>;
  void set_on_crash(NodeEventFn fn) { on_crash_ = std::move(fn); }
  void set_on_revive(NodeEventFn fn) { on_revive_ = std::move(fn); }

  /// Only nodes in [first, last] are subject to churn (defaults: all).
  void RestrictChurn(NodeId first, NodeId last) {
    churn_first_ = first;
    churn_last_ = last;
  }

  size_t scheduled_flaps() const { return scheduled_flaps_; }
  size_t scheduled_crashes() const { return scheduled_crashes_; }

 private:
  EventQueue* events_;
  Network* network_;
  FailureOptions options_;
  Rng rng_;
  NodeEventFn on_crash_;
  NodeEventFn on_revive_;
  NodeId churn_first_ = 0;
  NodeId churn_last_ = -1;  // -1 => all
  size_t scheduled_flaps_ = 0;
  size_t scheduled_crashes_ = 0;
};

}  // namespace mind

#endif  // MIND_SIM_FAILURE_INJECTOR_H_
