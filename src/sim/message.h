// Message and Host abstractions for the simulated wide-area network.
#ifndef MIND_SIM_MESSAGE_H_
#define MIND_SIM_MESSAGE_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "util/arena.h"

namespace mind {

/// Identifier of a host attached to the Network (dense, 0-based).
using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/// \brief Base class for all simulated network messages.
///
/// SizeBytes() drives link transmission/queuing delay; subclasses carrying
/// tuples or query results override it with realistic wire sizes.
struct Message {
  virtual ~Message() = default;
  virtual size_t SizeBytes() const { return 64; }
  virtual const char* TypeName() const = 0;
  /// Cheap layer discriminators for the per-message dispatch paths (one
  /// virtual call instead of a dynamic_cast): overridden by OverlayMsg and
  /// MindMsg respectively. Callers static_cast after checking.
  virtual bool IsOverlay() const { return false; }
  virtual bool IsMind() const { return false; }
};

using MessagePtr = std::shared_ptr<Message>;

/// \brief Pool-allocated message construction — the only sanctioned way to
/// create a Message in src/sim, src/overlay and src/mind (the `raw-alloc`
/// lint bans `std::make_shared` there).
///
/// allocate_shared puts the shared_ptr control block and the payload in one
/// pooled block, so a message hop costs zero general-purpose allocations.
/// The block is returned to whichever thread's pool cache drops the last
/// reference — safe by design, blocks migrate between caches.
template <typename T, typename... Args>
std::shared_ptr<T> MakeMessage(Args&&... args) {
  return std::allocate_shared<T>(pool::PooledAllocator<T>(),
                                 std::forward<Args>(args)...);
}

/// \brief A network endpoint (one MIND process in the paper's deployment).
class Host {
 public:
  virtual ~Host() = default;

  /// Called when a message is delivered to this host.
  virtual void HandleMessage(NodeId from, const MessagePtr& msg) = 0;

  /// Called when a send from this host could not be completed (link down or
  /// peer dead) — the simulated analogue of a failed TCP connection.
  virtual void HandleSendFailure(NodeId to, const MessagePtr& msg) {
    (void)to;
    (void)msg;
  }
};

}  // namespace mind

#endif  // MIND_SIM_MESSAGE_H_
