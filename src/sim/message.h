// Message and Host abstractions for the simulated wide-area network.
#ifndef MIND_SIM_MESSAGE_H_
#define MIND_SIM_MESSAGE_H_

#include <cstddef>
#include <memory>

namespace mind {

/// Identifier of a host attached to the Network (dense, 0-based).
using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/// \brief Base class for all simulated network messages.
///
/// SizeBytes() drives link transmission/queuing delay; subclasses carrying
/// tuples or query results override it with realistic wire sizes.
struct Message {
  virtual ~Message() = default;
  virtual size_t SizeBytes() const { return 64; }
  virtual const char* TypeName() const = 0;
  /// Cheap layer discriminators for the per-message dispatch paths (one
  /// virtual call instead of a dynamic_cast): overridden by OverlayMsg and
  /// MindMsg respectively. Callers static_cast after checking.
  virtual bool IsOverlay() const { return false; }
  virtual bool IsMind() const { return false; }
};

using MessagePtr = std::shared_ptr<Message>;

/// \brief A network endpoint (one MIND process in the paper's deployment).
class Host {
 public:
  virtual ~Host() = default;

  /// Called when a message is delivered to this host.
  virtual void HandleMessage(NodeId from, const MessagePtr& msg) = 0;

  /// Called when a send from this host could not be completed (link down or
  /// peer dead) — the simulated analogue of a failed TCP connection.
  virtual void HandleSendFailure(NodeId to, const MessagePtr& msg) {
    (void)to;
    (void)msg;
  }
};

}  // namespace mind

#endif  // MIND_SIM_MESSAGE_H_
