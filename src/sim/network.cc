#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mind {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
// Speed of light in fibre ~ 200 km/ms; real paths are not great circles.
constexpr double kFibreKmPerMs = 200.0;
constexpr double kPathStretch = 1.3;
constexpr double kPerLinkOverheadMs = 1.5;

double DegToRad(double d) { return d * M_PI / 180.0; }
}  // namespace

double GreatCircleKm(const GeoPoint& a, const GeoPoint& b) {
  double phi1 = DegToRad(a.lat_deg), phi2 = DegToRad(b.lat_deg);
  double dphi = phi2 - phi1;
  double dlambda = DegToRad(b.lon_deg - a.lon_deg);
  double h = std::sin(dphi / 2) * std::sin(dphi / 2) +
             std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                 std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

SimTime PropagationDelayUs(const GeoPoint& a, const GeoPoint& b) {
  double km = GreatCircleKm(a, b) * kPathStretch;
  double ms = km / kFibreKmPerMs + kPerLinkOverheadMs;
  return FromMillis(ms);
}

Network::Network(EventQueue* events, NetworkOptions options,
                 telemetry::Telemetry* telemetry)
    : events_(events), options_(options), rng_(options.seed) {
  if (telemetry != nullptr) {
    telemetry::MetricsRegistry& m = telemetry->metrics();
    msgs_counter_ = &m.counter("sim.net.messages");
    bytes_counter_ = &m.counter("sim.net.bytes");
    loopback_counter_ = &m.counter("sim.net.loopback");
    send_fail_counter_ = &m.counter("sim.net.send_failures");
    inflight_fail_counter_ = &m.counter("sim.net.inflight_failures");
    queue_wait_ms_ = &m.histogram("sim.net.queue_wait_ms");
    delivery_delay_ms_ = &m.histogram("sim.net.delivery_delay_ms");
  }
}

NodeId Network::AddHost(Host* host) {
  MIND_CHECK(host != nullptr);
  hosts_.push_back(HostState{host, false, GeoPoint{}, true});
  return static_cast<NodeId>(hosts_.size() - 1);
}

NodeId Network::AddHost(Host* host, GeoPoint position) {
  NodeId id = AddHost(host);
  hosts_[id].has_position = true;
  hosts_[id].position = position;
  return id;
}

void Network::SetLatency(NodeId a, NodeId b, SimTime one_way) {
  latency_override_[DirKey(a, b)] = one_way;
  latency_override_[DirKey(b, a)] = one_way;
}

SimTime Network::Latency(NodeId a, NodeId b) const {
  if (!latency_override_.empty()) {
    auto it = latency_override_.find(DirKey(a, b));
    if (it != latency_override_.end()) return it->second;
  }
  const HostState& ha = hosts_[a];
  const HostState& hb = hosts_[b];
  if (ha.has_position && hb.has_position) {
    return PropagationDelayUs(ha.position, hb.position);
  }
  return options_.default_latency;
}

SimTime Network::JitterUs() {
  double ms = rng_.LogNormal(options_.jitter_mu_ln_ms, options_.jitter_sigma_ln);
  return FromMillis(ms);
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  MIND_CHECK(from >= 0 && static_cast<size_t>(from) < hosts_.size());
  MIND_CHECK(to >= 0 && static_cast<size_t>(to) < hosts_.size());
  if (!hosts_[from].up) return;  // a dead node cannot send

  if (from == to) {
    if (loopback_counter_ != nullptr) loopback_counter_->Inc();
    events_->Schedule(options_.loopback_delay, [this, from, to, msg]() {
      if (hosts_[to].up) hosts_[to].host->HandleMessage(from, msg);
    });
    return;
  }

  SimTime now = events_->now();
  LinkState& link = links_[DirKey(from, to)];

  // find(): operator[] on the reverse key would materialize a LinkState for
  // every (to, from) pair that never sends.
  auto rev = links_.find(DirKey(to, from));
  bool link_down = link.down_until > now ||
                   (rev != links_.end() && rev->second.down_until > now);
  if (link_down || !hosts_[to].up) {
    if (send_fail_counter_ != nullptr) send_fail_counter_->Inc();
    events_->Schedule(options_.send_fail_detect, [this, from, to, msg]() {
      if (hosts_[from].up) hosts_[from].host->HandleSendFailure(to, msg);
    });
    return;
  }

  double tx_sec =
      static_cast<double>(msg->SizeBytes()) / options_.bandwidth_bytes_per_sec;
  SimTime queue_wait = link.busy_until > now ? link.busy_until - now : 0;
  SimTime depart = std::max(now, link.busy_until) + FromSeconds(tx_sec);
  link.busy_until = depart;
  SimTime arrival = depart + Latency(from, to) + JitterUs();
  // The paper's prototype speaks TCP: per-link delivery is in order. Jitter
  // therefore stretches the stream but never reorders it.
  arrival = std::max(arrival, link.last_arrival + 1);
  link.last_arrival = arrival;
  SimTime delay = arrival - now;
  link.stats.messages++;
  link.stats.bytes += msg->SizeBytes();
  if (msgs_counter_ != nullptr) {
    msgs_counter_->Inc();
    bytes_counter_->Inc(msg->SizeBytes());
    queue_wait_ms_->Record(ToSeconds(queue_wait) * 1e3);
    delivery_delay_ms_->Record(ToSeconds(delay) * 1e3);
  }

  events_->Schedule(delay, [this, from, to, msg, delay]() {
    if (!hosts_[to].up) {
      // Destination died while the message was in flight: sender learns of
      // the failure (its TCP connection resets).
      if (inflight_fail_counter_ != nullptr) inflight_fail_counter_->Inc();
      if (hosts_[from].up) hosts_[from].host->HandleSendFailure(to, msg);
      return;
    }
    if (delay_observer_) delay_observer_(from, to, delay);
    hosts_[to].host->HandleMessage(from, msg);
  });
}

void Network::SetNodeUp(NodeId id, bool up) {
  MIND_CHECK(id >= 0 && static_cast<size_t>(id) < hosts_.size());
  hosts_[id].up = up;
}

bool Network::IsNodeUp(NodeId id) const {
  MIND_CHECK(id >= 0 && static_cast<size_t>(id) < hosts_.size());
  return hosts_[id].up;
}

void Network::SetLinkDown(NodeId a, NodeId b, SimTime duration) {
  SimTime until = events_->now() + duration;
  LinkState& ab = links_[DirKey(a, b)];
  LinkState& ba = links_[DirKey(b, a)];
  ab.down_until = std::max(ab.down_until, until);
  ba.down_until = std::max(ba.down_until, until);
}

bool Network::IsLinkUp(NodeId a, NodeId b) const {
  auto it = links_.find(DirKey(a, b));
  SimTime now = events_->now();
  if (it != links_.end() && it->second.down_until > now) return false;
  it = links_.find(DirKey(b, a));
  if (it != links_.end() && it->second.down_until > now) return false;
  return true;
}

Network::LinkStats Network::GetLinkStats(NodeId from, NodeId to) const {
  auto it = links_.find(DirKey(from, to));
  if (it == links_.end()) return LinkStats{};
  return it->second.stats;
}

}  // namespace mind
