#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include "sim/parallel_engine.h"
#include "util/snapio.h"
#include "util/logging.h"

namespace mind {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
// Speed of light in fibre ~ 200 km/ms; real paths are not great circles.
constexpr double kFibreKmPerMs = 200.0;
constexpr double kPathStretch = 1.3;
constexpr double kPerLinkOverheadMs = 1.5;

double DegToRad(double d) { return d * M_PI / 180.0; }
}  // namespace

double GreatCircleKm(const GeoPoint& a, const GeoPoint& b) {
  double phi1 = DegToRad(a.lat_deg), phi2 = DegToRad(b.lat_deg);
  double dphi = phi2 - phi1;
  double dlambda = DegToRad(b.lon_deg - a.lon_deg);
  double h = std::sin(dphi / 2) * std::sin(dphi / 2) +
             std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                 std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

SimTime PropagationDelayUs(const GeoPoint& a, const GeoPoint& b) {
  double km = GreatCircleKm(a, b) * kPathStretch;
  double ms = km / kFibreKmPerMs + kPerLinkOverheadMs;
  return FromMillis(ms);
}

Network::Network(EventQueue* events, NetworkOptions options,
                 telemetry::Telemetry* telemetry)
    : events_(events), options_(options), rng_(options.seed) {
  if (telemetry != nullptr) {
    telemetry::MetricsRegistry& m = telemetry->metrics();
    msgs_counter_ = &m.counter("sim.net.messages");
    bytes_counter_ = &m.counter("sim.net.bytes");
    loopback_counter_ = &m.counter("sim.net.loopback");
    send_fail_counter_ = &m.counter("sim.net.send_failures");
    inflight_fail_counter_ = &m.counter("sim.net.inflight_failures");
    queue_wait_ms_ = &m.histogram("sim.net.queue_wait_ms");
    delivery_delay_ms_ = &m.histogram("sim.net.delivery_delay_ms");
  }
}

NodeId Network::AddHost(Host* host) {
  MIND_CHECK(host != nullptr);
  MIND_CHECK(!InParallelPhase()) << "AddHost during a parallel phase";
  hosts_.push_back(HostState{host, false, GeoPoint{}, true, 0});
  return static_cast<NodeId>(hosts_.size() - 1);
}

NodeId Network::AddHost(Host* host, GeoPoint position) {
  NodeId id = AddHost(host);
  hosts_[id].has_position = true;
  hosts_[id].position = position;
  return id;
}

void Network::PresizeLinkTable() {
  MIND_CHECK(!InParallelPhase());
  // Only the outer (per-sender) vector must be at full extent before a
  // parallel run: shard workers index it concurrently. Rows stay sparse and
  // grow sender-locally (see LinkTo).
  links_.resize(hosts_.size());
}

void Network::SetLatency(NodeId a, NodeId b, SimTime one_way) {
  MIND_CHECK(!InParallelPhase()) << "SetLatency during a parallel phase";
  latency_override_[DirKey(a, b)] = one_way;
  latency_override_[DirKey(b, a)] = one_way;
  ++latency_epoch_;  // invalidates every per-link latency memo
}

SimTime Network::Latency(NodeId a, NodeId b) const {
  if (!latency_override_.empty()) {
    auto it = latency_override_.find(DirKey(a, b));
    if (it != latency_override_.end()) return it->second;
  }
  const HostState& ha = hosts_[a];
  const HostState& hb = hosts_[b];
  if (ha.has_position && hb.has_position) {
    return PropagationDelayUs(ha.position, hb.position);
  }
  return options_.default_latency;
}

SimTime Network::JitterUs() {
  double ms = rng_.LogNormal(options_.jitter_mu_ln_ms, options_.jitter_sigma_ln);
  return FromMillis(ms);
}

SimTime Network::JitterCounterUs(NodeId from, NodeId to,
                                 uint64_t counter) const {
  double ms = CounterLogNormal(options_.seed, DirKey(from, to), counter,
                               options_.jitter_mu_ln_ms,
                               options_.jitter_sigma_ln);
  return FromMillis(ms);
}

bool Network::InParallelPhase() const {
  return engine_ != nullptr && engine_->in_parallel_phase();
}

void Network::set_parallel_engine(ParallelEngine* engine) {
  MIND_CHECK(!InParallelPhase()) << "set_parallel_engine during a parallel phase";
  engine_ = engine;
}

void Network::SetDelayObserver(DelayObserver obs) {
  MIND_CHECK(!InParallelPhase()) << "SetDelayObserver during a parallel phase";
  delay_observer_ = std::move(obs);
}

EventQueue* Network::queue_for(NodeId id) const {
  return engine_ != nullptr ? engine_->queue_for(id) : events_;
}

void Network::DispatchKeyed(NodeId to, SimTime t, uint8_t band, uint64_t ukey,
                            EventFn fn) {
  if (engine_ != nullptr) {
    engine_->ScheduleKeyed(to, t, band, ukey, std::move(fn));
  } else {
    events_->ScheduleAtKeyed(t, band, ukey, std::move(fn));
  }
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  MIND_CHECK(from >= 0 && static_cast<size_t>(from) < hosts_.size());
  MIND_CHECK(to >= 0 && static_cast<size_t>(to) < hosts_.size());
  if (options_.discipline) {
    SendDiscipline(from, to, msg);
    return;
  }
  if (!hosts_[from].up) return;  // a dead node cannot send

  if (from == to) {
    if (loopback_counter_ != nullptr) loopback_counter_->Inc();
    events_->Schedule(options_.loopback_delay, [this, from, to, msg]() {
      if (hosts_[to].up) hosts_[to].host->HandleMessage(from, msg);
    });
    return;
  }

  SimTime now = events_->now();
  LinkState& link = LinkTo(from, to);

  bool link_down = false;
  if (!down_until_.empty()) {
    auto it = down_until_.find(DirKey(from, to));
    link_down = it != down_until_.end() && it->second > now;
  }
  if (link_down || !hosts_[to].up) {
    if (send_fail_counter_ != nullptr) send_fail_counter_->Inc();
    events_->Schedule(options_.send_fail_detect, [this, from, to, msg]() {
      if (hosts_[from].up) hosts_[from].host->HandleSendFailure(to, msg);
    });
    return;
  }

  double tx_sec =
      static_cast<double>(msg->SizeBytes()) / options_.bandwidth_bytes_per_sec;
  SimTime queue_wait = link.busy_until > now ? link.busy_until - now : 0;
  SimTime depart = std::max(now, link.busy_until) + FromSeconds(tx_sec);
  link.busy_until = depart;
  SimTime arrival = depart + CachedLatency(from, to, link) + JitterUs();
  // The paper's prototype speaks TCP: per-link delivery is in order. Jitter
  // therefore stretches the stream but never reorders it.
  arrival = std::max(arrival, link.last_arrival + 1);
  link.last_arrival = arrival;
  SimTime delay = arrival - now;
  link.stats.messages++;
  link.stats.bytes += msg->SizeBytes();
  if (msgs_counter_ != nullptr) {
    msgs_counter_->Inc();
    bytes_counter_->Inc(msg->SizeBytes());
    queue_wait_ms_->Record(ToSeconds(queue_wait) * 1e3);
    delivery_delay_ms_->Record(ToSeconds(delay) * 1e3);
  }

  events_->Schedule(delay, [this, from, to, msg, delay]() {
    if (!hosts_[to].up) {
      // Destination died while the message was in flight: sender learns of
      // the failure (its TCP connection resets).
      if (inflight_fail_counter_ != nullptr) inflight_fail_counter_->Inc();
      if (hosts_[from].up) hosts_[from].host->HandleSendFailure(to, msg);
      return;
    }
    if (delay_observer_) delay_observer_(from, to, delay);
    hosts_[to].host->HandleMessage(from, msg);
  });
}

void Network::SendDiscipline(NodeId from, NodeId to, MessagePtr msg) {
  EventQueue* src_q = queue_for(from);
  SimTime now = src_q->now();
  if (!IsNodeUpAt(from, now)) return;  // a dead node cannot send

  if (from == to) {
    if (loopback_counter_ != nullptr) loopback_counter_->Inc();
    SimTime arrival = now + options_.loopback_delay;
    // loopback_count is written only by its owning sender, and a shard's
    // senders run on exactly one worker — no cross-shard write is possible.
    // mind-lint: allow(phase-safety): sender-owned field, shard-exclusive
    uint64_t ukey = PackUkey(from, hosts_[from].loopback_count++);
    // Loopback never crosses a shard; liveness is re-checked at delivery
    // against the sender's own flag and the immutable plan.
    DispatchKeyed(to, arrival, kBandDelivery, ukey,
                  [this, from, to, msg, arrival]() {
                    if (IsNodeUpAt(to, arrival)) {
                      hosts_[to].host->HandleMessage(from, msg);
                    }
                  });
    return;
  }

  LinkState& link = LinkTo(from, to);
  uint64_t send_ix = link.send_count++;
  if (!IsLinkUpAt(from, to, now) || !IsNodeUpAt(to, now)) {
    if (send_fail_counter_ != nullptr) send_fail_counter_->Inc();
    DispatchKeyed(from, now + options_.send_fail_detect, kBandNotify,
                  PackUkey(to, send_ix), [this, from, to, msg]() {
                    if (IsNodeUpAt(from, queue_for(from)->now())) {
                      hosts_[from].host->HandleSendFailure(to, msg);
                    }
                  });
    return;
  }

  double tx_sec =
      static_cast<double>(msg->SizeBytes()) / options_.bandwidth_bytes_per_sec;
  SimTime queue_wait = link.busy_until > now ? link.busy_until - now : 0;
  SimTime depart = std::max(now, link.busy_until) + FromSeconds(tx_sec);
  link.busy_until = depart;
  SimTime arrival = depart + CachedLatency(from, to, link) +
                    JitterCounterUs(from, to, send_ix);
  arrival = std::max(arrival, link.last_arrival + 1);
  link.last_arrival = arrival;
  SimTime delay = arrival - now;
  link.stats.messages++;
  link.stats.bytes += msg->SizeBytes();
  if (msgs_counter_ != nullptr) {
    msgs_counter_->Inc();
    bytes_counter_->Inc(msg->SizeBytes());
    queue_wait_ms_->Record(ToSeconds(queue_wait) * 1e3);
    delivery_delay_ms_->Record(ToSeconds(delay) * 1e3);
  }

  if (!IsNodeUpAt(to, arrival)) {
    // In-flight loss, resolved at send time: the failure plan already knows
    // the destination will be down at arrival, so the sender schedules its
    // own notification locally — no cross-shard zero-lookahead event needed.
    DispatchKeyed(from, arrival, kBandNotify, PackUkey(to, send_ix),
                  [this, from, to, msg, arrival]() {
                    if (inflight_fail_counter_ != nullptr) {
                      inflight_fail_counter_->Inc();
                    }
                    if (IsNodeUpAt(from, arrival)) {
                      hosts_[from].host->HandleSendFailure(to, msg);
                    }
                  });
    return;
  }

  DispatchKeyed(to, arrival, kBandDelivery, PackUkey(from, send_ix),
                [this, from, to, msg, delay]() {
                  // Last-resort guard for dynamic (unplanned) death between
                  // send and arrival: the flag only mutates outside parallel
                  // phases, so both engines read the same value.
                  if (!hosts_[to].up) return;
                  if (delay_observer_) delay_observer_(from, to, delay);
                  hosts_[to].host->HandleMessage(from, msg);
                });
}

void Network::SetNodeUp(NodeId id, bool up) {
  MIND_CHECK(id >= 0 && static_cast<size_t>(id) < hosts_.size());
  MIND_CHECK(!InParallelPhase()) << "SetNodeUp during a parallel phase";
  hosts_[id].up = up;
}

bool Network::IsNodeUp(NodeId id) const {
  MIND_CHECK(id >= 0 && static_cast<size_t>(id) < hosts_.size());
  return hosts_[id].up;
}

void Network::SetLinkDown(NodeId a, NodeId b, SimTime duration) {
  MIND_CHECK(!InParallelPhase()) << "SetLinkDown during a parallel phase";
  SimTime until = events_->now() + duration;
  SimTime& ab = down_until_[DirKey(a, b)];
  SimTime& ba = down_until_[DirKey(b, a)];
  ab = std::max(ab, until);
  ba = std::max(ba, until);
}

bool Network::IsLinkUp(NodeId a, NodeId b) const {
  return IsLinkUpAt(a, b, events_->now());
}

void Network::PlanNodeOutage(NodeId id, SimTime down_at, SimTime up_at) {
  MIND_CHECK(id >= 0 && static_cast<size_t>(id) < hosts_.size());
  MIND_CHECK(!InParallelPhase()) << "PlanNodeOutage during a parallel phase";
  MIND_CHECK_LT(down_at, up_at);
  if (node_outages_.size() < hosts_.size()) node_outages_.resize(hosts_.size());
  node_outages_[id].push_back(Outage{down_at, up_at});
}

void Network::PlanLinkOutage(NodeId a, NodeId b, SimTime down_at,
                             SimTime up_at) {
  MIND_CHECK(!InParallelPhase()) << "PlanLinkOutage during a parallel phase";
  MIND_CHECK_LT(down_at, up_at);
  link_outages_[DirKey(a, b)].push_back(Outage{down_at, up_at});
  link_outages_[DirKey(b, a)].push_back(Outage{down_at, up_at});
}

bool Network::IsNodeUpAt(NodeId id, SimTime t) const {
  MIND_CHECK(id >= 0 && static_cast<size_t>(id) < hosts_.size());
  if (!hosts_[id].up) return false;
  if (static_cast<size_t>(id) < node_outages_.size()) {
    for (const Outage& o : node_outages_[id]) {
      if (o.from <= t && t < o.until) return false;
    }
  }
  return true;
}

bool Network::IsLinkUpAt(NodeId a, NodeId b, SimTime t) const {
  if (!down_until_.empty()) {
    auto it = down_until_.find(DirKey(a, b));
    if (it != down_until_.end() && it->second > t) return false;
    it = down_until_.find(DirKey(b, a));
    if (it != down_until_.end() && it->second > t) return false;
  }
  if (!link_outages_.empty()) {
    auto it = link_outages_.find(DirKey(a, b));
    if (it != link_outages_.end()) {
      for (const Outage& o : it->second) {
        if (o.from <= t && t < o.until) return false;
      }
    }
  }
  return true;
}

Network::LinkStats Network::GetLinkStats(NodeId from, NodeId to) const {
  if (static_cast<size_t>(from) >= links_.size()) return LinkStats{};
  const LinkState* link = links_[static_cast<size_t>(from)].Find(to);
  return link != nullptr ? link->stats : LinkStats{};
}

namespace {
constexpr uint64_t kNetSectionMark = 0x4d534e314e455431ull;  // "MSN1NET1"

// Sorted (key, value) view of an unordered map, so the stream is independent
// of hash-table iteration order.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedEntries(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>> v(
      m.begin(), m.end());
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return v;
}
}  // namespace

void Network::SaveSnapshotState(SnapWriter* w) const {
  w->U64(kNetSectionMark);
  w->U64(hosts_.size());
  for (const HostState& h : hosts_) {
    w->U8(h.up ? 1 : 0);
    w->U64(h.loopback_count);
  }

  w->U64(links_.size());
  for (const LinkRow& row : links_) {
    std::vector<std::pair<NodeId, const LinkState*>> entries;
    entries.reserve(row.active_links());
    row.ForEachLink([&entries](NodeId dst, const LinkState& state) {
      entries.emplace_back(dst, &state);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w->U64(entries.size());
    for (const auto& [dst, link] : entries) {
      w->U32(static_cast<uint32_t>(dst));
      w->U64(link->busy_until);
      w->U64(link->last_arrival);
      w->U64(link->send_count);
      w->U64(link->stats.messages);
      w->U64(link->stats.bytes);
      // cached_latency / latency_epoch are a memo; restore refills them.
    }
  }

  const auto down = SortedEntries(down_until_);
  w->U64(down.size());
  for (const auto& [key, until] : down) {
    w->U64(key);
    w->U64(until);
  }

  w->U64(node_outages_.size());
  for (const auto& plan : node_outages_) {
    w->U64(plan.size());
    for (const Outage& o : plan) {
      w->U64(o.from);
      w->U64(o.until);
    }
  }

  const auto link_plans = SortedEntries(link_outages_);
  w->U64(link_plans.size());
  for (const auto& [key, plan] : link_plans) {
    w->U64(key);
    w->U64(plan.size());
    for (const Outage& o : plan) {
      w->U64(o.from);
      w->U64(o.until);
    }
  }

  const auto overrides = SortedEntries(latency_override_);
  w->U64(overrides.size());
  for (const auto& [key, latency] : overrides) {
    w->U64(key);
    w->U64(latency);
  }

  WriteRngState(w, rng_);
}

Status Network::LoadSnapshotState(SnapReader* r) {
  MIND_CHECK(!InParallelPhase()) << "LoadSnapshotState during a parallel phase";
  MIND_RETURN_NOT_OK(r->Expect64(kNetSectionMark, "network.section"));
  uint64_t host_count;
  MIND_ASSIGN_OR_RETURN(host_count, r->U64("network.host_count"));
  if (host_count != hosts_.size()) {
    return r->FieldError("network.host_count",
                         "snapshot has " + std::to_string(host_count) +
                             " hosts but this fabric has " +
                             std::to_string(hosts_.size()));
  }
  for (HostState& h : hosts_) {
    uint8_t up;
    MIND_ASSIGN_OR_RETURN(up, r->U8("network.host.up"));
    if (up > 1) return r->FieldError("network.host.up", "not a boolean");
    h.up = up != 0;
    MIND_ASSIGN_OR_RETURN(h.loopback_count, r->U64("network.host.loopback"));
  }

  uint64_t row_count;
  MIND_ASSIGN_OR_RETURN(row_count, r->U64("network.link_rows"));
  if (row_count > hosts_.size()) {
    return r->FieldError("network.link_rows", "more rows than hosts");
  }
  links_.clear();
  links_.resize(hosts_.size());
  for (uint64_t from = 0; from < row_count; ++from) {
    uint64_t n;
    MIND_ASSIGN_OR_RETURN(n, r->U64("network.link_row.count"));
    if (n > hosts_.size()) {
      return r->FieldError("network.link_row.count",
                           "row " + std::to_string(from) + " claims " +
                               std::to_string(n) + " links in a fleet of " +
                               std::to_string(hosts_.size()));
    }
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t dst;
      MIND_ASSIGN_OR_RETURN(dst, r->U32("network.link.dst"));
      if (dst >= hosts_.size()) {
        return r->FieldError("network.link.dst",
                             "destination " + std::to_string(dst) +
                                 " out of range");
      }
      LinkState& link =
          links_[static_cast<size_t>(from)].FindOrInsert(
              static_cast<NodeId>(dst));
      MIND_ASSIGN_OR_RETURN(link.busy_until, r->U64("network.link.busy_until"));
      MIND_ASSIGN_OR_RETURN(link.last_arrival,
                            r->U64("network.link.last_arrival"));
      MIND_ASSIGN_OR_RETURN(link.send_count, r->U64("network.link.send_count"));
      MIND_ASSIGN_OR_RETURN(link.stats.messages,
                            r->U64("network.link.messages"));
      MIND_ASSIGN_OR_RETURN(link.stats.bytes, r->U64("network.link.bytes"));
    }
  }

  uint64_t down_count;
  MIND_ASSIGN_OR_RETURN(down_count, r->U64("network.down_until.count"));
  down_until_.clear();
  for (uint64_t i = 0; i < down_count; ++i) {
    uint64_t key, until;
    MIND_ASSIGN_OR_RETURN(key, r->U64("network.down_until.key"));
    MIND_ASSIGN_OR_RETURN(until, r->U64("network.down_until.value"));
    down_until_[key] = until;
  }

  uint64_t plan_nodes;
  MIND_ASSIGN_OR_RETURN(plan_nodes, r->U64("network.node_outages.count"));
  if (plan_nodes > hosts_.size()) {
    return r->FieldError("network.node_outages.count", "more plans than hosts");
  }
  node_outages_.clear();
  node_outages_.resize(plan_nodes);
  for (uint64_t i = 0; i < plan_nodes; ++i) {
    uint64_t n;
    MIND_ASSIGN_OR_RETURN(n, r->U64("network.node_outages.len"));
    node_outages_[i].resize(n);
    for (uint64_t j = 0; j < n; ++j) {
      MIND_ASSIGN_OR_RETURN(node_outages_[i][j].from,
                            r->U64("network.node_outage.from"));
      MIND_ASSIGN_OR_RETURN(node_outages_[i][j].until,
                            r->U64("network.node_outage.until"));
    }
  }

  uint64_t link_plan_count;
  MIND_ASSIGN_OR_RETURN(link_plan_count, r->U64("network.link_outages.count"));
  link_outages_.clear();
  for (uint64_t i = 0; i < link_plan_count; ++i) {
    uint64_t key, n;
    MIND_ASSIGN_OR_RETURN(key, r->U64("network.link_outages.key"));
    MIND_ASSIGN_OR_RETURN(n, r->U64("network.link_outages.len"));
    auto& plan = link_outages_[key];
    plan.resize(n);
    for (uint64_t j = 0; j < n; ++j) {
      MIND_ASSIGN_OR_RETURN(plan[j].from, r->U64("network.link_outage.from"));
      MIND_ASSIGN_OR_RETURN(plan[j].until, r->U64("network.link_outage.until"));
    }
  }

  uint64_t override_count;
  MIND_ASSIGN_OR_RETURN(override_count,
                        r->U64("network.latency_override.count"));
  latency_override_.clear();
  for (uint64_t i = 0; i < override_count; ++i) {
    uint64_t key, latency;
    MIND_ASSIGN_OR_RETURN(key, r->U64("network.latency_override.key"));
    MIND_ASSIGN_OR_RETURN(latency, r->U64("network.latency_override.value"));
    latency_override_[key] = latency;
  }
  // Overrides may differ from the construction-time table; invalidate memos.
  ++latency_epoch_;

  return ReadRngState(r, &rng_, "network.rng");
}

}  // namespace mind
