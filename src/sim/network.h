// Simulated wide-area network: geographic propagation delay, per-link FIFO
// bandwidth queues, jitter, link outages and node crashes.
//
// This substrate replaces the paper's PlanetLab deployment (see DESIGN.md §2):
// it reproduces the properties the evaluation depends on — propagation delay
// that follows real geography, queuing hotspots, transient link failures and
// node churn — under deterministic, seedable control.
#ifndef MIND_SIM_NETWORK_H_
#define MIND_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/time.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace mind {

class SnapReader;
class SnapWriter;

/// Latitude/longitude in degrees; used to derive propagation delays.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres.
double GreatCircleKm(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay for a fibre path between two points: distance at
/// ~2/3 c with a path-stretch factor, plus a fixed per-link overhead.
SimTime PropagationDelayUs(const GeoPoint& a, const GeoPoint& b);

class ParallelEngine;

struct NetworkOptions {
  /// One-way latency used for host pairs without coordinates or overrides.
  SimTime default_latency = FromMillis(20);
  /// Per-directed-link service rate; transmission time = size / bandwidth.
  double bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  /// Additive jitter: lognormal with these parameters, in milliseconds.
  /// Defaults give a ~0.5 ms median with an occasional multi-ms tail — the
  /// shape we attribute to shared PlanetLab hosts in the paper's runs.
  double jitter_mu_ln_ms = -0.7;
  double jitter_sigma_ln = 1.0;
  /// Time for a sender to detect that a send failed (peer dead / link down).
  SimTime send_fail_detect = FromMillis(200);
  /// Local loopback delivery delay (from == to).
  SimTime loopback_delay = 10;  // us
  uint64_t seed = 0x5eed;
  /// Deterministic-discipline mode (set by Simulator when `threads` or
  /// `deterministic_discipline` is requested; not meant to be set by hand).
  /// Under the discipline every random value on the delivery path is a pure
  /// function of (seed, directed link, per-link send index) instead of a
  /// shared-stream draw in event-execution order; deliveries are scheduled
  /// with engine-independent ordering keys; and in-flight loss is resolved at
  /// send time from the pre-registered failure plan. The same discipline run
  /// sequentially or sharded across any number of threads produces
  /// bit-identical state digests. Legacy mode (the default) is byte-for-byte
  /// the behavior of previous releases.
  bool discipline = false;
};

/// \brief The simulated network fabric.
///
/// Hosts register and obtain dense NodeIds. Send() models FIFO queuing on the
/// directed link, propagation delay and jitter, then delivers via
/// Host::HandleMessage. If the link is down or the destination dead, the
/// sender gets Host::HandleSendFailure after a detection delay.
class Network {
 public:
  /// `telemetry` is optional; when set, the fabric records per-send metrics
  /// (`sim.net.*`: message/byte counters, queue-wait and delivery-delay
  /// histograms) into its registry.
  Network(EventQueue* events, NetworkOptions options,
          telemetry::Telemetry* telemetry = nullptr);

  /// Registers a host without coordinates.
  NodeId AddHost(Host* host);
  /// Registers a host at a geographic position; latency to other positioned
  /// hosts follows great-circle distance.
  NodeId AddHost(Host* host, GeoPoint position);

  size_t host_count() const { return hosts_.size(); }

  /// Overrides the one-way latency between a and b (both directions).
  void SetLatency(NodeId a, NodeId b, SimTime one_way);

  /// One-way latency currently in effect between a and b.
  SimTime Latency(NodeId a, NodeId b) const;

  /// Bumped by every SetLatency; consumers caching latency-derived values
  /// (per-link memos, the parallel engine's lookahead matrix) recompute when
  /// it moves.
  uint64_t latency_generation() const { return latency_epoch_; }

  /// Sends a message. See class comment for delivery/failure semantics.
  void Send(NodeId from, NodeId to, MessagePtr msg);

  /// Marks a node dead/alive. Dead nodes neither send nor receive; messages
  /// already in flight toward a node that dies are lost (sender notified).
  void SetNodeUp(NodeId id, bool up);
  bool IsNodeUp(NodeId id) const;

  /// Takes the (undirected) link down for `duration` from now. Overlapping
  /// calls extend the outage.
  void SetLinkDown(NodeId a, NodeId b, SimTime duration);
  bool IsLinkUp(NodeId a, NodeId b) const;

  /// Pre-registers a node outage over [down_at, up_at). Discipline mode: the
  /// failure plan is immutable while shards execute, so any shard can resolve
  /// "will the destination be alive at arrival?" at send time without
  /// cross-shard reads. The node still runs its own timers while planned-down;
  /// only network delivery to/from it is suppressed (overlay-level crash
  /// protocols remain a sequential-engine feature).
  void PlanNodeOutage(NodeId id, SimTime down_at, SimTime up_at);
  /// Pre-registers an outage of the (undirected) link over [down_at, up_at).
  void PlanLinkOutage(NodeId a, NodeId b, SimTime down_at, SimTime up_at);

  /// Node liveness at virtual time `t`: the dynamic up flag AND no planned
  /// outage covering t. Safe to call from any shard during a parallel phase
  /// (the flag and the plan are both frozen while shards run).
  bool IsNodeUpAt(NodeId id, SimTime t) const;
  /// Link liveness at `t` (dynamic outages + planned outages, both directions).
  bool IsLinkUpAt(NodeId a, NodeId b, SimTime t) const;

  /// Wires the parallel engine in (Simulator does this); discipline-mode
  /// sends then route to the destination's shard queue, buffering across
  /// shard boundaries during a parallel phase. Serial context only.
  void set_parallel_engine(ParallelEngine* engine);
  /// The queue that owns `id`'s events: its shard queue under the parallel
  /// engine, the global queue otherwise.
  EventQueue* queue_for(NodeId id) const;

  bool discipline() const { return options_.discipline; }
  bool has_delay_observer() const { return static_cast<bool>(delay_observer_); }

  /// Grows the dense per-host link table to its full host_count x host_count
  /// extent. The parallel engine calls this (in serial context) before every
  /// run: LinkTo() grows the table lazily, and a reallocation from one shard
  /// worker would race with reads from another. After pre-sizing, workers
  /// only ever touch rows owned by their own shard's senders.
  void PresizeLinkTable();

  /// Per-directed-link transfer counters (Fig 12 uses the message counts).
  struct LinkStats {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  LinkStats GetLinkStats(NodeId from, NodeId to) const;

  /// Observer invoked on each delivery with (from, to, total one-way delay).
  /// Used by the Fig 8 bench to trace per-link transmission delays.
  /// Serial context only: every shard consults the observer on delivery, so
  /// swapping it mid-phase would race (and unobserved swaps would not replay).
  using DelayObserver = std::function<void(NodeId, NodeId, SimTime)>;
  void SetDelayObserver(DelayObserver obs);

  EventQueue* events() const { return events_; }

  /// Serializes the fabric's mutable state — host up flags and loopback
  /// counters, per-directed-link FIFO clocks and send counters, dynamic and
  /// planned outages, latency overrides, and the jitter rng — in canonical
  /// (sender, destination) order. Latency memos are a pure cache and are not
  /// saved. Part of the MSN1 snapshot (DESIGN.md §14).
  void SaveSnapshotState(SnapWriter* w) const;
  /// Restores state saved by SaveSnapshotState into a freshly constructed
  /// fabric with the same registered hosts.
  Status LoadSnapshotState(SnapReader* r);

 private:
  struct HostState {
    Host* host = nullptr;
    bool has_position = false;
    GeoPoint position;
    bool up = true;
    uint64_t loopback_count = 0;  // discipline: keys same-host deliveries
  };
  // Per-directed-link state. Rows are indexed densely by sender; within a
  // row, destinations live in a sparse open-addressed table (LinkRow below):
  // a node only ever talks to its overlay neighbors plus direct-reply
  // targets, so at 10k+ hosts the old dense row (hosts x 64 bytes = 640 KB
  // per sender, 6.4 GB total) would dwarf every other structure. Every field
  // is written only by the sending side, so under the parallel engine a row
  // is touched exclusively by the shard that owns its sender. Outages live
  // in the sparse maps below (shared, but frozen while shards execute),
  // keeping this hot-path struct lean.
  // alignas(64): one directed link's hot state occupies exactly one cache
  // line, so a shard worker's send never shares a line with another link.
  struct alignas(64) LinkState {
    SimTime busy_until = 0;    // FIFO transmit queue tail (directed)
    SimTime last_arrival = 0;  // enforces in-order (TCP-like) delivery
    uint64_t send_count = 0;   // discipline: per-link RNG counter + ukey
    LinkStats stats;
    // Memoized Latency(from, to), valid while latency_epoch matches the
    // network's epoch. Every send used to recompute great-circle trig (or an
    // override hash lookup); now a link pays that once per SetLatency epoch.
    // Pure cache — never digested, bumping the epoch never changes results.
    SimTime cached_latency = 0;
    uint64_t latency_epoch = 0;  // 0 = never filled (epochs start at 1)
  };
  struct Outage {
    SimTime from = 0;
    SimTime until = 0;
  };

  /// One sender's destination table: open-addressed, power-of-two capacity,
  /// linear probing, no erase (links never disappear, only their hosts do).
  /// Behavior is identical to the former dense row — storage layout is the
  /// only change, and nothing iterates a row in table order.
  class LinkRow {
   public:
    LinkState& FindOrInsert(NodeId to) {
      if (slots_.empty()) Rehash(8);
      size_t i = Probe(to);
      if (slots_[i].dst == to) return slots_[i].state;
      if ((size_ + 1) * 4 > slots_.size() * 3) {
        Rehash(slots_.size() * 2);
        i = Probe(to);
      }
      slots_[i].dst = to;
      ++size_;
      return slots_[i].state;
    }
    const LinkState* Find(NodeId to) const {
      if (slots_.empty()) return nullptr;
      const size_t i = Probe(to);
      return slots_[i].dst == to ? &slots_[i].state : nullptr;
    }
    size_t active_links() const { return size_; }
    size_t HeapBytes() const { return slots_.size() * sizeof(Slot); }

    /// Visits every active (dst, state) pair in table order; snapshot save
    /// sorts by dst afterwards so the stream is layout-independent.
    template <typename F>
    void ForEachLink(F&& f) const {
      for (const auto& s : slots_) {
        if (s.dst != kInvalidNode) f(s.dst, s.state);
      }
    }

   private:
    struct Slot {
      NodeId dst = kInvalidNode;
      LinkState state;
    };
    size_t Probe(NodeId to) const {
      const size_t mask = slots_.size() - 1;
      size_t i = (static_cast<uint64_t>(static_cast<uint32_t>(to)) *
                  0x9e3779b97f4a7c15ull >> 32) & mask;
      while (slots_[i].dst != to && slots_[i].dst != kInvalidNode) {
        i = (i + 1) & mask;
      }
      return i;
    }
    void Rehash(size_t cap) {
      std::vector<Slot> old = std::move(slots_);
      slots_.assign(cap, Slot{});
      for (auto& s : old) {
        if (s.dst == kInvalidNode) continue;
        slots_[Probe(s.dst)] = std::move(s);
      }
    }
    std::vector<Slot> slots_;
    size_t size_ = 0;
  };

  uint64_t DirKey(NodeId from, NodeId to) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }
  // (host id, per-link counter) packed into an engine-independent ordering
  // key: unique within its band at the destination queue.
  static uint64_t PackUkey(NodeId id, uint64_t counter) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(id)) << 40) |
           (counter & ((uint64_t{1} << 40) - 1));
  }

  LinkState& LinkTo(NodeId from, NodeId to) {
    // The engine calls PresizeLinkTable() before every parallel run, so the
    // lazy growth of the outer vector below can only trigger in serial
    // context. Growth *within* a row is shard-safe: a row belongs to its
    // sender, and a sender is executed by exactly one shard worker.
    // mind-lint: allow(phase-safety): presized before parallel runs
    if (links_.size() < hosts_.size()) links_.resize(hosts_.size());
    return links_[static_cast<size_t>(from)].FindOrInsert(to);
  }

  SimTime JitterUs();
  // Latency(from, to) through the link's per-epoch memo (see LinkState).
  // The memo is sender-owned like every LinkState field, so shard workers
  // fill it race-free for their own senders.
  SimTime CachedLatency(NodeId from, NodeId to, LinkState& link) const {
    if (link.latency_epoch != latency_epoch_) {
      link.cached_latency = Latency(from, to);
      link.latency_epoch = latency_epoch_;
    }
    return link.cached_latency;
  }
  // Discipline-mode jitter: pure function of (seed, link, send index).
  SimTime JitterCounterUs(NodeId from, NodeId to, uint64_t counter) const;
  void SendDiscipline(NodeId from, NodeId to, MessagePtr msg);
  // Routes a keyed event to `to`'s owning queue, buffering across shard
  // boundaries during a parallel phase.
  void DispatchKeyed(NodeId to, SimTime t, uint8_t band, uint64_t ukey,
                     EventFn fn);
  bool InParallelPhase() const;
  // Ordering bands within one timestamp at a host (band 0 = local events).
  static constexpr uint8_t kBandDelivery = 1;
  static constexpr uint8_t kBandNotify = 2;

  EventQueue* events_;
  NetworkOptions options_;
  Rng rng_;
  ParallelEngine* engine_ = nullptr;
  // Cached instruments (nullptr when constructed without telemetry).
  telemetry::Counter* msgs_counter_ = nullptr;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* loopback_counter_ = nullptr;
  telemetry::Counter* send_fail_counter_ = nullptr;
  telemetry::Counter* inflight_fail_counter_ = nullptr;
  telemetry::SimHistogram* queue_wait_ms_ = nullptr;
  telemetry::SimHistogram* delivery_delay_ms_ = nullptr;
  std::vector<HostState> hosts_;
  std::vector<LinkRow> links_;
  std::unordered_map<uint64_t, SimTime> down_until_;  // dynamic outages
  std::vector<std::vector<Outage>> node_outages_;     // planned, per node
  std::unordered_map<uint64_t, std::vector<Outage>> link_outages_;  // planned
  std::unordered_map<uint64_t, SimTime> latency_override_;
  // mind-digest: skip(cache invalidation epoch; latency memos are derived)
  uint64_t latency_epoch_ = 1;
  DelayObserver delay_observer_;
};

}  // namespace mind

#endif  // MIND_SIM_NETWORK_H_
