// Simulated wide-area network: geographic propagation delay, per-link FIFO
// bandwidth queues, jitter, link outages and node crashes.
//
// This substrate replaces the paper's PlanetLab deployment (see DESIGN.md §2):
// it reproduces the properties the evaluation depends on — propagation delay
// that follows real geography, queuing hotspots, transient link failures and
// node churn — under deterministic, seedable control.
#ifndef MIND_SIM_NETWORK_H_
#define MIND_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/time.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace mind {

/// Latitude/longitude in degrees; used to derive propagation delays.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres.
double GreatCircleKm(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay for a fibre path between two points: distance at
/// ~2/3 c with a path-stretch factor, plus a fixed per-link overhead.
SimTime PropagationDelayUs(const GeoPoint& a, const GeoPoint& b);

struct NetworkOptions {
  /// One-way latency used for host pairs without coordinates or overrides.
  SimTime default_latency = FromMillis(20);
  /// Per-directed-link service rate; transmission time = size / bandwidth.
  double bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  /// Additive jitter: lognormal with these parameters, in milliseconds.
  /// Defaults give a ~0.5 ms median with an occasional multi-ms tail — the
  /// shape we attribute to shared PlanetLab hosts in the paper's runs.
  double jitter_mu_ln_ms = -0.7;
  double jitter_sigma_ln = 1.0;
  /// Time for a sender to detect that a send failed (peer dead / link down).
  SimTime send_fail_detect = FromMillis(200);
  /// Local loopback delivery delay (from == to).
  SimTime loopback_delay = 10;  // us
  uint64_t seed = 0x5eed;
};

/// \brief The simulated network fabric.
///
/// Hosts register and obtain dense NodeIds. Send() models FIFO queuing on the
/// directed link, propagation delay and jitter, then delivers via
/// Host::HandleMessage. If the link is down or the destination dead, the
/// sender gets Host::HandleSendFailure after a detection delay.
class Network {
 public:
  /// `telemetry` is optional; when set, the fabric records per-send metrics
  /// (`sim.net.*`: message/byte counters, queue-wait and delivery-delay
  /// histograms) into its registry.
  Network(EventQueue* events, NetworkOptions options,
          telemetry::Telemetry* telemetry = nullptr);

  /// Registers a host without coordinates.
  NodeId AddHost(Host* host);
  /// Registers a host at a geographic position; latency to other positioned
  /// hosts follows great-circle distance.
  NodeId AddHost(Host* host, GeoPoint position);

  size_t host_count() const { return hosts_.size(); }

  /// Overrides the one-way latency between a and b (both directions).
  void SetLatency(NodeId a, NodeId b, SimTime one_way);

  /// One-way latency currently in effect between a and b.
  SimTime Latency(NodeId a, NodeId b) const;

  /// Sends a message. See class comment for delivery/failure semantics.
  void Send(NodeId from, NodeId to, MessagePtr msg);

  /// Marks a node dead/alive. Dead nodes neither send nor receive; messages
  /// already in flight toward a node that dies are lost (sender notified).
  void SetNodeUp(NodeId id, bool up);
  bool IsNodeUp(NodeId id) const;

  /// Takes the (undirected) link down for `duration` from now. Overlapping
  /// calls extend the outage.
  void SetLinkDown(NodeId a, NodeId b, SimTime duration);
  bool IsLinkUp(NodeId a, NodeId b) const;

  /// Per-directed-link transfer counters (Fig 12 uses the message counts).
  struct LinkStats {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  LinkStats GetLinkStats(NodeId from, NodeId to) const;

  /// Observer invoked on each delivery with (from, to, total one-way delay).
  /// Used by the Fig 8 bench to trace per-link transmission delays.
  using DelayObserver = std::function<void(NodeId, NodeId, SimTime)>;
  void SetDelayObserver(DelayObserver obs) { delay_observer_ = std::move(obs); }

  EventQueue* events() const { return events_; }

 private:
  struct HostState {
    Host* host = nullptr;
    bool has_position = false;
    GeoPoint position;
    bool up = true;
  };
  struct LinkState {
    SimTime busy_until = 0;    // FIFO transmit queue tail (directed)
    SimTime down_until = 0;    // outage end (stored on the directed pair)
    SimTime last_arrival = 0;  // enforces in-order (TCP-like) delivery
    LinkStats stats;
  };

  uint64_t DirKey(NodeId from, NodeId to) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  SimTime JitterUs();

  EventQueue* events_;
  NetworkOptions options_;
  Rng rng_;
  // Cached instruments (nullptr when constructed without telemetry).
  telemetry::Counter* msgs_counter_ = nullptr;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* loopback_counter_ = nullptr;
  telemetry::Counter* send_fail_counter_ = nullptr;
  telemetry::Counter* inflight_fail_counter_ = nullptr;
  telemetry::SimHistogram* queue_wait_ms_ = nullptr;
  telemetry::SimHistogram* delivery_delay_ms_ = nullptr;
  std::vector<HostState> hosts_;
  std::unordered_map<uint64_t, LinkState> links_;
  std::unordered_map<uint64_t, SimTime> latency_override_;
  DelayObserver delay_observer_;
};

}  // namespace mind

#endif  // MIND_SIM_NETWORK_H_
