#include "sim/parallel_engine.h"

#include <algorithm>

#include "sim/network.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace mind {

namespace {
// Shard the current thread is executing; -1 in serial context. File-local so
// the threading surface stays behind the engine boundary.
thread_local int tls_shard = -1;
}  // namespace

int ParallelEngine::current_shard() { return tls_shard; }

ParallelEngine::ParallelEngine(EventQueue* control, Network* network,
                               int threads, int shards)
    : control_(control), network_(network), threads_(threads) {
  MIND_CHECK_GE(threads, 1);
  int s = shards > 0 ? shards : kDefaultShards;
  queues_.reserve(s);
  for (int i = 0; i < s; ++i) queues_.push_back(std::make_unique<EventQueue>());
  outbox_.resize(s);
  fired_.resize(s, 0);
}

ParallelEngine::~ParallelEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w.join();
}

void ParallelEngine::ScheduleKeyed(NodeId owner, SimTime t, uint8_t band,
                                   uint64_t ukey, EventFn fn) {
  int dst = ShardOf(owner);
  if (in_parallel_phase_ && tls_shard != dst) {
    MIND_CHECK_GE(tls_shard, 0)
        << "cross-shard schedule from outside a shard worker";
    outbox_[tls_shard].push_back(Pending{t, ukey, dst, band, std::move(fn)});
  } else {
    queues_[dst]->ScheduleAtKeyed(t, band, ukey, std::move(fn));
  }
}

SimTime ParallelEngine::lookahead() {
  size_t hosts = network_->host_count();
  if (lookahead_ == 0 || hosts != lookahead_host_count_) ComputeLookahead();
  return lookahead_;
}

void ParallelEngine::ComputeLookahead() {
  size_t n = network_->host_count();
  MIND_CHECK_GT(n, 0u) << "parallel engine needs registered hosts";
  SimTime min_latency = UINT64_MAX;
  for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
    for (NodeId b = a + 1; b < static_cast<NodeId>(n); ++b) {
      if (ShardOf(a) == ShardOf(b)) continue;
      min_latency = std::min(min_latency, network_->Latency(a, b));
      min_latency = std::min(min_latency, network_->Latency(b, a));
    }
  }
  if (min_latency == UINT64_MAX) {
    // All hosts landed in one shard: any window width is conservative.
    min_latency = FromMillis(1);
  }
  MIND_CHECK_GE(min_latency, 1u)
      << "zero cross-shard latency leaves no conservative lookahead";
  lookahead_ = min_latency;
  lookahead_host_count_ = n;
}

void ParallelEngine::EnsureWorkers() {
  if (threads_ <= 1 || !workers_.empty()) return;
  workers_.reserve(threads_ - 1);
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i]() {
      uint64_t seen = 0;
      for (;;) {
        uint64_t e;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
          if (stop_.load(std::memory_order_acquire)) return;
          std::this_thread::yield();
        }
        seen = e;
        RunShardsInWindow(i);
        done_.fetch_add(1, std::memory_order_release);
      }
    });
  }
}

void ParallelEngine::RunShardsInWindow(int executor) {
  for (int s = executor; s < shard_count(); s += threads_) {
    tls_shard = s;
    telemetry::SetShardSlot(s + 1);
    fired_[s] = queues_[s]->RunUntilBefore(window_end_);
    telemetry::SetShardSlot(0);
    tls_shard = -1;
  }
}

size_t ParallelEngine::RunWindows(SimTime target, bool bounded, size_t limit) {
  MIND_CHECK(!in_parallel_phase_) << "re-entrant parallel run";
  MIND_CHECK(control_->empty())
      << "events pending on the control queue would never fire under the "
         "parallel engine; schedule workload via Simulator::ScheduleOn";
  MIND_CHECK(!network_->has_delay_observer())
      << "delay observers are a sequential-engine feature";
  lookahead();  // compute / refresh
  network_->PresizeLinkTable();  // shard workers must never reallocate it
  EnsureWorkers();
  size_t total = 0;
  while (total < limit) {
    bool any = false;
    SimTime next = 0;
    for (auto& q : queues_) {
      SimTime qt;
      if (q->PeekNextTime(&qt) && (!any || qt < next)) {
        next = qt;
        any = true;
      }
    }
    if (!any || (bounded && next > target)) break;
    SimTime wend = next + lookahead_;
    if (bounded && wend > target) wend = target + 1;  // final (inclusive) window

    window_end_ = wend;
    done_.store(0, std::memory_order_relaxed);
    in_parallel_phase_ = true;
    if (workers_.empty()) {
      RunShardsInWindow(0);
    } else {
      // Release helpers, then execute our own slice: the orchestrator is
      // executor 0, so a window needs threads-1 cross-thread handoffs, not
      // threads+1.
      epoch_.fetch_add(1, std::memory_order_release);
      RunShardsInWindow(0);
      while (done_.load(std::memory_order_acquire) < threads_ - 1) {
        std::this_thread::yield();
      }
    }
    in_parallel_phase_ = false;
    for (size_t f : fired_) total += f;

    // Exchange cross-shard sends in (source shard, append order). The
    // destination queue re-checks t >= now, which is exactly the conservative
    // guarantee: everything sent during [next, wend) arrives at >= wend.
    for (auto& box : outbox_) {
      for (auto& p : box) {
        queues_[p.dst]->ScheduleAtKeyed(p.t, p.band, p.ukey, std::move(p.fn));
      }
      box.clear();
    }

    SimTime clock = bounded ? std::min(wend, target) : wend;
    for (auto& q : queues_) q->AdvanceTo(clock);
    control_->AdvanceTo(clock);
    if (barrier_hook_ && clock >= next_hook_) {
      barrier_hook_();
      next_hook_ = clock + barrier_interval_;
    }
  }
  if (bounded) {
    for (auto& q : queues_) q->AdvanceTo(target);
    control_->AdvanceTo(target);
  }
  return total;
}

size_t ParallelEngine::Run(size_t limit) { return RunWindows(0, false, limit); }

size_t ParallelEngine::RunUntil(SimTime t) {
  return RunWindows(t, true, SIZE_MAX);
}

}  // namespace mind
