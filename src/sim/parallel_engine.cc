#include "sim/parallel_engine.h"

#include <algorithm>
#include <chrono>  // mind-lint: allow(wall-clock): barrier-wait diagnostics only, never fed back into simulation state

#include "sim/network.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace mind {

namespace {
// Shard the current thread is executing; -1 in serial context. File-local so
// the threading surface stays behind the engine boundary.
thread_local int tls_shard = -1;

// Spin budget before a waiter falls back to its condition variable. Windows
// are typically tens of microseconds apart, so most waits resolve within the
// spin; the condvar leg only pays off on skewed windows and idle periods.
constexpr int kSpinIters = 4000;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

inline SimTime SatAdd(SimTime a, SimTime b) {
  SimTime r;
  return __builtin_add_overflow(a, b, &r) ? UINT64_MAX : r;
}

inline SimTime SatMul(SimTime a, SimTime b) {
  SimTime r;
  return __builtin_mul_overflow(a, b, &r) ? UINT64_MAX : r;
}

template <size_t N>
inline void BumpLog2(std::array<uint64_t, N>& hist, uint64_t v) {
  size_t bucket =
      v == 0 ? 0
             : std::min<size_t>(static_cast<size_t>(64 - __builtin_clzll(v)),
                                N - 1);
  hist[bucket]++;
}
}  // namespace

int ParallelEngine::current_shard() { return tls_shard; }

int ParallelEngine::DefaultShardCount() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return kDefaultShards;
  int s = static_cast<int>(2 * hw);
  return std::clamp(s, kDefaultShards, kMaxAutoShards);
}

ParallelEngine::ParallelEngine(EventQueue* control, Network* network,
                               int threads, int shards, ExecutorPolicy policy)
    : control_(control), network_(network), threads_(threads), policy_(policy) {
  MIND_CHECK_GE(threads, 1);
  int s = shards > 0 ? shards : DefaultShardCount();
  queues_.reserve(s);
  for (int i = 0; i < s; ++i) queues_.push_back(std::make_unique<EventQueue>());
  lanes_ = std::vector<ShardLane>(s);
  steal_cursors_ = std::make_unique<StealCursor[]>(threads_);
  stats_.shard_events.resize(s, 0);
  active_.reserve(s);
}

ParallelEngine::~ParallelEngine() {
  stop_.store(true, std::memory_order_seq_cst);
  { std::lock_guard<std::mutex> lk(wake_mu_); }  // order the store vs sleepers
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelEngine::ScheduleKeyed(NodeId owner, SimTime t, uint8_t band,
                                   uint64_t ukey, EventFn fn) {
  int dst = ShardOf(owner);
  if (in_parallel_phase_ && tls_shard != dst) {
    MIND_CHECK_GE(tls_shard, 0)
        << "cross-shard schedule from outside a shard worker";
    lanes_[tls_shard].outbox.push_back(
        Pending{t, ukey, dst, band, std::move(fn)});
  } else {
    queues_[dst]->ScheduleAtKeyed(t, band, ukey, std::move(fn));
  }
}

SimTime ParallelEngine::lookahead() {
  size_t hosts = network_->host_count();
  if (lookahead_ == 0 || hosts != lookahead_host_count_ ||
      lookahead_generation_ != network_->latency_generation()) {
    ComputeLookahead();
  }
  return lookahead_;
}

void ParallelEngine::ComputeLookahead() {
  size_t n = network_->host_count();
  MIND_CHECK_GT(n, 0u) << "parallel engine needs registered hosts";
  const int S = shard_count();
  latency_matrix_.assign(static_cast<size_t>(S) * S, UINT64_MAX);
  SimTime min_latency = UINT64_MAX;
  // One O(n^2) pass fills both the global minimum (the classic lookahead,
  // still the unit of the adaptive cap) and the per-shard-pair minima that
  // drive the per-shard horizons.
  for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
    int sa = ShardOf(a);
    for (NodeId b = 0; b < static_cast<NodeId>(n); ++b) {
      if (a == b) continue;
      int sb = ShardOf(b);
      if (sa == sb) continue;
      SimTime l = network_->Latency(a, b);
      SimTime& cell = latency_matrix_[static_cast<size_t>(sa) * S + sb];
      cell = std::min(cell, l);
      min_latency = std::min(min_latency, l);
    }
  }
  if (min_latency == UINT64_MAX) {
    // All hosts landed in one shard: any window width is conservative.
    min_latency = FromMillis(1);
  }
  MIND_CHECK_GE(min_latency, 1u)
      << "zero cross-shard latency leaves no conservative lookahead";
  // Close the matrix under relaying (Floyd-Warshall, S <= kMaxAutoShards so
  // S^3 is trivial): a shard with no pending events is invisible to the
  // horizon minima, yet a message can wake it mid-run and it can relay
  // onward after less than the direct r->s latency. Any causal chain from a
  // pending event in r to an arrival at s takes at least the shortest-path
  // distance D[r][s], so horizons built on the closure are safe against
  // relays through any subset of shards.
  for (int k = 0; k < S; ++k) {
    for (int r = 0; r < S; ++r) {
      SimTime rk = latency_matrix_[static_cast<size_t>(r) * S + k];
      if (rk == UINT64_MAX) continue;
      for (int c = 0; c < S; ++c) {
        SimTime kc = latency_matrix_[static_cast<size_t>(k) * S + c];
        if (kc == UINT64_MAX) continue;
        SimTime& cell = latency_matrix_[static_cast<size_t>(r) * S + c];
        cell = std::min(cell, SatAdd(rk, kc));
      }
    }
  }
  // The diagonal starts at infinity, so the closure leaves D[s][s] = the
  // minimum round-trip cycle through s. That is exactly the echo bound the
  // horizons need: shard s's own execution from t_s can cause an arrival
  // back into s (via any relay chain) no earlier than t_s + D[s][s].
  lookahead_ = min_latency;
  lookahead_host_count_ = n;
  lookahead_generation_ = network_->latency_generation();
}

void ParallelEngine::EnsureWorkers() {
  if (threads_ <= 1 || !workers_.empty()) return;
  workers_.reserve(threads_ - 1);
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

void ParallelEngine::WorkerLoop(int executor) {
  uint64_t seen = 0;
  for (;;) {
    // Await the next window (or shutdown): spin briefly, then sleep. The
    // orchestrator bumps epoch_ while holding wake_mu_, so the wait
    // predicate can never observe the old epoch after the bump and then
    // sleep through the notify.
    int spins = 0;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (epoch_.load(std::memory_order_acquire) != seen) break;
      if (++spins >= kSpinIters) {
        std::unique_lock<std::mutex> lk(wake_mu_);
        wake_cv_.wait(lk, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
        spins = 0;
      } else {
        CpuRelax();
      }
    }
    // The orchestrator waits for all helpers before the next bump, so the
    // epoch moves by exactly one window at a time.
    seen = epoch_.load(std::memory_order_acquire);
    RunShardsInWindow(executor);
    int finished = done_.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (finished >= threads_ - 1 &&
        orch_waiting_.load(std::memory_order_seq_cst)) {
      // Empty critical section: if the orchestrator is mid-wait it holds
      // done_mu_ until it actually sleeps, so the notify below cannot land
      // in the gap between its predicate check and its sleep.
      { std::lock_guard<std::mutex> lk(done_mu_); }
      done_cv_.notify_one();
    }
  }
}

void ParallelEngine::RunOneShard(int s) {
  tls_shard = s;
  telemetry::SetShardSlot(s + 1);
  lanes_[s].fired = queues_[s]->RunUntilBefore(lanes_[s].wend);
  telemetry::SetShardSlot(0);
  tls_shard = -1;
}

void ParallelEngine::RunShardsInWindow(int executor) {
  const size_t n = active_.size();
  switch (policy_) {
    case ExecutorPolicy::kStatic:
      for (size_t i = static_cast<size_t>(executor); i < n;
           i += static_cast<size_t>(threads_)) {
        RunOneShard(active_[i]);
      }
      break;
    case ExecutorPolicy::kDynamic:
      for (;;) {
        size_t i = claim_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        RunOneShard(active_[i]);
      }
      break;
    case ExecutorPolicy::kStealing:
      // Drain our own contiguous slice, then steal from the others in ring
      // order. A cursor may overshoot its slice end by up to one increment
      // per thief; the bound check discards the overshoot.
      for (int off = 0; off < threads_; ++off) {
        int victim = (executor + off) % threads_;
        const size_t lo = SliceBegin(victim, n);
        const size_t hi = SliceBegin(victim + 1, n);
        std::atomic<size_t>& cursor = steal_cursors_[victim].next;
        for (;;) {
          size_t i = lo + cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= hi) break;
          RunOneShard(active_[i]);
        }
      }
      break;
  }
}

void ParallelEngine::RunWindowParallel() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
  RunShardsInWindow(0);

  const int need = threads_ - 1;
  // mind-lint: allow(wall-clock): measures orchestrator barrier wait for diagnostics; never read by simulation logic
  auto wait_begin = std::chrono::steady_clock::now();
  int spins = 0;
  while (done_.load(std::memory_order_acquire) < need) {
    if (++spins < kSpinIters) {
      CpuRelax();
      continue;
    }
    // Announce the sleep (seq_cst, Dekker-paired with the worker's
    // done_.fetch_add + orch_waiting_ load) so the last finisher knows to
    // take the mutex and notify.
    orch_waiting_.store(true, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] {
      return done_.load(std::memory_order_acquire) >= need;
    });
    orch_waiting_.store(false, std::memory_order_relaxed);
    break;
  }
  // mind-lint: allow(wall-clock): barrier-wait diagnostics only
  auto wait_end = std::chrono::steady_clock::now();
  auto wait_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wait_end -
                                                           wait_begin)
          .count());
  stats_.barrier_wait_ns_total += wait_ns;
  BumpLog2(stats_.barrier_wait_log2_ns, wait_ns);
}

size_t ParallelEngine::RunWindows(SimTime target, bool bounded, size_t limit) {
  MIND_CHECK(!in_parallel_phase_) << "re-entrant parallel run";
  MIND_CHECK(control_->empty())
      << "events pending on the control queue would never fire under the "
         "parallel engine; schedule workload via Simulator::ScheduleOn";
  MIND_CHECK(!network_->has_delay_observer())
      << "delay observers are a sequential-engine feature";
  lookahead();  // compute / refresh the latency matrix
  network_->PresizeLinkTable();  // shard workers must never reallocate it
  EnsureWorkers();
  const int S = shard_count();
  size_t total = 0;
  while (total < limit) {
    // A barrier hook may retarget latencies between windows; the matrix must
    // follow or horizons computed from stale (larger) entries become unsafe.
    if (lookahead_generation_ != network_->latency_generation()) {
      ComputeLookahead();
    }

    // Earliest pending event per shard and globally.
    bool any = false;
    SimTime t_min = 0;
    for (int s = 0; s < S; ++s) {
      ShardLane& lane = lanes_[s];
      lane.has_next = queues_[s]->PeekNextTime(&lane.next_time);
      if (lane.has_next && (!any || lane.next_time < t_min)) {
        t_min = lane.next_time;
        any = true;
      }
    }
    if (!any || (bounded && t_min > target)) break;

    // Adaptive horizon cap: the window never reaches past
    // t_min + multiplier * lookahead, and never past a due barrier hook.
    // Clamping every horizon to the hook time makes the window that reaches
    // it a full synchronization point (all shard clocks equal), preserving
    // the hook's "clocks agree" contract.
    SimTime cap = SatAdd(t_min, SatMul(cap_multiplier_, lookahead_));
    if (barrier_hook_) {
      SimTime hook_cap = next_hook_ > t_min ? next_hook_ : SatAdd(t_min, 1);
      cap = std::min(cap, hook_cap);
    }

    // Per-shard safe horizons: shard s may run strictly before
    // min over pending r of (t_r + D[r][s]), where D is the shortest-path
    // closure of the shard latency graph and D[s][s] is the minimum
    // round-trip. Every event executed anywhere this window is part of a
    // causal chain rooted at some pending event (t_r, shard r), and each
    // cross-shard hop in the chain pays at least the corresponding latency,
    // so nothing can arrive at s before that bound — including echoes of
    // s's own sends relayed back to it (the r == s term).
    active_.clear();
    for (int s = 0; s < S; ++s) {
      ShardLane& lane = lanes_[s];
      SimTime horizon = UINT64_MAX;
      for (int r = 0; r < S; ++r) {
        if (!lanes_[r].has_next) continue;
        horizon = std::min(
            horizon, SatAdd(lanes_[r].next_time,
                            latency_matrix_[static_cast<size_t>(r) * S + s]));
      }
      SimTime wend = std::min(horizon, cap);
      if (bounded && wend > target) wend = SatAdd(target, 1);  // final window
      lane.wend = wend;
      lane.fired = 0;
      lane.runnable = lane.has_next && lane.next_time < wend;
      if (lane.runnable) active_.push_back(s);
    }
    // The t_min shard always satisfies t_min < wend (every horizon and cap
    // term is >= t_min + 1), so a window always makes progress.
    MIND_CHECK(!active_.empty()) << "window computed with no runnable shard";

    if (policy_ == ExecutorPolicy::kDynamic && active_.size() > 1) {
      // Longest-processing-time order for the shared claim cursor. pending()
      // counts events beyond the horizon too — an estimate, but claim order
      // is pure wall-clock policy, so any order is correct.
      std::sort(active_.begin(), active_.end(), [&](int a, int b) {
        size_t pa = queues_[a]->pending();
        size_t pb = queues_[b]->pending();
        if (pa != pb) return pa > pb;
        return a < b;
      });
    }

    stats_.windows++;
    if (cap_multiplier_ > 1) stats_.widened_windows++;
    if (active_.size() == 1) {
      // Solo window: one shard (often far behind the rest, or briefly alone
      // with pending work) runs on the orchestrator without waking helpers
      // or paying a barrier. With per-shard horizons it can drain all the
      // way to its cap in one window.
      stats_.solo_windows++;
      in_parallel_phase_ = true;
      RunOneShard(active_[0]);
      in_parallel_phase_ = false;
    } else {
      claim_.store(0, std::memory_order_relaxed);
      for (int e = 0; e < threads_; ++e) {
        steal_cursors_[e].next.store(0, std::memory_order_relaxed);
      }
      done_.store(0, std::memory_order_relaxed);
      in_parallel_phase_ = true;
      if (workers_.empty()) {
        RunShardsInWindow(0);
      } else {
        RunWindowParallel();
      }
      in_parallel_phase_ = false;
    }

    uint64_t window_events = 0;
    for (int s : active_) {
      window_events += lanes_[s].fired;
      stats_.shard_events[s] += lanes_[s].fired;
    }
    total += window_events;
    stats_.events += window_events;

    // Exchange cross-shard sends in (source shard, append order). The
    // destination queue re-checks t >= now, which is exactly the conservative
    // guarantee: everything sent during the window arrives at or after the
    // destination's horizon.
    uint64_t exchanged = 0;
    for (ShardLane& lane : lanes_) {
      for (Pending& p : lane.outbox) {
        queues_[p.dst]->ScheduleAtKeyed(p.t, p.band, p.ukey, std::move(p.fn));
      }
      exchanged += lane.outbox.size();
      lane.outbox.clear();
    }
    stats_.exchanged += exchanged;
    BumpLog2(stats_.exchange_size_log2, exchanged);

    // Adapt the cap from the committed exchange volume — a deterministic
    // function of simulation state, so the window sequence replays exactly
    // regardless of thread count or executor policy.
    if (exchanged <= kSparseExchangeFactor * static_cast<uint64_t>(S)) {
      cap_multiplier_ = std::min(cap_multiplier_ * 2, kMaxCapMultiplier);
    } else if (exchanged >= kDenseExchangeFactor * static_cast<uint64_t>(S)) {
      cap_multiplier_ = std::max<uint64_t>(cap_multiplier_ / 2, 1);
    }
    stats_.max_multiplier = std::max(stats_.max_multiplier, cap_multiplier_);

    // Commit per-shard clocks and advance the control (serial) clock to the
    // floor across shards.
    SimTime floor = UINT64_MAX;
    for (int s = 0; s < S; ++s) {
      SimTime clock =
          bounded ? std::min(lanes_[s].wend, target) : lanes_[s].wend;
      queues_[s]->AdvanceTo(clock);
      floor = std::min(floor, queues_[s]->now());
    }
    control_->AdvanceTo(floor);
    if (barrier_hook_ && floor >= next_hook_) {
      barrier_hook_();
      next_hook_ = floor + barrier_interval_;
    }
  }
  if (bounded) {
    for (auto& q : queues_) q->AdvanceTo(target);
    control_->AdvanceTo(target);
  }
  return total;
}

size_t ParallelEngine::Run(size_t limit) { return RunWindows(0, false, limit); }

size_t ParallelEngine::RunUntil(SimTime t) {
  return RunWindows(t, true, SIZE_MAX);
}

}  // namespace mind
