// Sharded parallel discrete-event engine under conservative time windows.
//
// Hosts are partitioned into S shards by id (id % S); each shard owns its own
// EventQueue. Each window, every shard s gets a private horizon
//
//   W_s = min over shards r != s with pending work of (t_r + L[r][s])
//
// where t_r is shard r's earliest pending event and L[r][s] is the minimum
// network latency from any host of r to any host of s. Any message r sends
// carries a timestamp >= t_r, so it arrives at s at or after t_r + L[r][s]
// >= W_s: shard s can safely execute everything strictly before W_s without
// hearing from anyone. This per-shard horizon strictly dominates the classic
// global window [T, T + min-latency) — a shard whose inbound links are slow
// (or whose peers are idle far in the future) runs far ahead in one window
// instead of being dragged along at the global pace.
//
// Horizons are additionally capped at T + m * lookahead where T is the global
// minimum pending time and m is an adaptive multiplier: it doubles after a
// window whose cross-shard exchange was sparse and halves after a dense one
// (kSparse/kDenseExchangeFactor). The multiplier is driven purely by
// committed per-window simulation statistics — never by wall-clock — so the
// window sequence, and hence every statistic derived from it, is identical
// across thread counts and across runs.
//
// Cross-shard sends are buffered per source shard and exchanged at the window
// barrier in deterministic (source shard, append order) order — and, more
// importantly, carry engine-independent ordering keys (see
// EventQueue::ScheduleAtKeyed), so the destination's execution order does not
// depend on exchange order at all.
//
// Determinism strategy: the shard count S is picked once at startup
// (DefaultShardCount) and fixed independently of the worker thread count.
// Each shard's event sequence is fully determined by its own queue contents
// plus the keyed cross-shard messages it receives, so any assignment of
// shards to threads — 1 worker or 8, static slices or work stealing —
// executes the identical computation. Cross-thread bit-identity therefore
// holds by construction; the interesting proof obligation (discharged by
// tools/check_determinism.sh) is identity against the *sequential* engine
// running the same discipline, which rests on the keyed event ordering and
// the counter-based per-link RNG streams (NetworkOptions::discipline).
//
// This file is the one place in src/{sim,overlay,mind,space,storage} allowed
// to use raw threading primitives (see tools/mind_lint.py, rule
// "concurrency").
#ifndef MIND_SIM_PARALLEL_ENGINE_H_
#define MIND_SIM_PARALLEL_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/time.h"

namespace mind {

class Network;

/// How shards of a window are assigned to executor threads. Pure wall-clock
/// policy: every policy runs the identical computation (see file comment), so
/// digests are policy-independent; only load balance differs.
enum class ExecutorPolicy {
  /// Fixed round-robin slice: executor k runs active shards at positions
  /// {k, k + threads, ...}. No shared state, best cache affinity, worst
  /// balance under skew.
  kStatic,
  /// Single shared claim cursor over the active list, which is sorted by
  /// pending-event count (longest processing time first). Executors grab the
  /// next unclaimed shard as they finish — classic LPT list scheduling.
  kDynamic,
  /// Per-executor slices with work stealing: each executor drains its own
  /// contiguous slice via a private cursor, then steals from other slices.
  /// Like kStatic's affinity when balanced, like kDynamic under skew.
  kStealing,
};

/// Aggregate engine statistics, all derived from simulation-deterministic
/// quantities except the barrier-wait timings (wall-clock, diagnostic only).
struct EngineStats {
  uint64_t windows = 0;        ///< parallel windows executed
  uint64_t events = 0;         ///< events fired across all shards
  uint64_t exchanged = 0;      ///< cross-shard messages exchanged at barriers
  uint64_t solo_windows = 0;   ///< windows with one runnable shard (no barrier)
  uint64_t widened_windows = 0;  ///< windows run with cap multiplier > 1
  uint64_t max_multiplier = 1;   ///< peak adaptive cap multiplier reached
  /// log2 histogram of per-window exchanged message counts; bucket b counts
  /// windows with floor(log2(msgs)) == b - 1, bucket 0 counts empty windows.
  std::array<uint64_t, 24> exchange_size_log2{};
  /// log2 histogram of per-window orchestrator barrier-wait nanoseconds.
  std::array<uint64_t, 32> barrier_wait_log2_ns{};
  uint64_t barrier_wait_ns_total = 0;
  /// Events fired per shard over the engine's lifetime (imbalance metric).
  std::vector<uint64_t> shard_events;
};

/// \brief Windowed parallel executor over per-shard event queues.
///
/// Owned by Simulator when SimulatorOptions::threads > 0; not intended for
/// standalone construction by user code.
class ParallelEngine {
 public:
  /// Shard-count floor. The shard partition is part of the simulated world's
  /// identity (it fixes the host->queue mapping), but digests are partition-
  /// independent (see file comment), so the default count may adapt to the
  /// machine; it just never drops below this floor so small hosts still
  /// exercise real cross-shard traffic.
  static constexpr int kDefaultShards = 8;
  /// Cap for the automatic shard count: per-window horizon computation is
  /// O(S^2) and exchange is O(S), so unbounded growth on large machines
  /// would tax every window.
  static constexpr int kMaxAutoShards = 32;

  /// Shard count used when the caller does not pin one: twice the hardware
  /// concurrency (so dynamic executors have slack to balance), clamped to
  /// [kDefaultShards, kMaxAutoShards]. Machines up to 4 cores therefore keep
  /// the historical 8-shard partition.
  static int DefaultShardCount();

  /// `threads` >= 1 workers; `shards` == 0 picks DefaultShardCount().
  ParallelEngine(EventQueue* control, Network* network, int threads,
                 int shards, ExecutorPolicy policy = ExecutorPolicy::kDynamic);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shard_count() const { return static_cast<int>(queues_.size()); }
  int threads() const { return threads_; }
  ExecutorPolicy policy() const { return policy_; }
  int ShardOf(NodeId id) const {
    return static_cast<int>(static_cast<uint32_t>(id) %
                            static_cast<uint32_t>(queues_.size()));
  }
  EventQueue* queue_for(NodeId id) { return queues_[ShardOf(id)].get(); }
  EventQueue& shard_queue(int s) { return *queues_[s]; }
  const EventQueue& shard_queue(int s) const { return *queues_[s]; }

  /// True while shard workers are executing a window. Network uses this to
  /// reject world mutations (SetNodeUp, SetLatency, ...) that would race.
  bool in_parallel_phase() const { return in_parallel_phase_; }

  /// Shard the calling thread is currently executing, or -1 in serial
  /// context (the orchestrating thread between windows).
  static int current_shard();

  /// Schedules a keyed event on `owner`'s shard queue. During a parallel
  /// phase a cross-shard schedule is buffered in the calling shard's outbox
  /// and exchanged at the barrier; everything else goes straight in.
  void ScheduleKeyed(NodeId owner, SimTime t, uint8_t band, uint64_t ukey,
                     EventFn fn);

  /// Windowed equivalents of EventQueue::Run / RunUntil across all shards.
  /// Run's `limit` is enforced at window granularity.
  size_t Run(size_t limit);
  size_t RunUntil(SimTime t);

  /// Hook invoked in serial context at the first barrier at or after every
  /// `interval` of virtual time (periodic invariant validation). All shard
  /// clocks agree when it runs: the engine clamps horizons to the hook time,
  /// so the window that reaches it is a synchronization point.
  void set_barrier_hook(std::function<void()> hook, SimTime interval) {
    barrier_hook_ = std::move(hook);
    barrier_interval_ = interval;
    next_hook_ = control_->now() + interval;
  }

  /// The conservative lookahead: minimum latency between hosts of different
  /// shards (computed lazily, recomputed when hosts are added or latencies
  /// are overridden). Also the unit of the adaptive window cap.
  SimTime lookahead();

  /// Engine statistics accumulated since construction (see EngineStats).
  const EngineStats& stats() const { return stats_; }

  /// Sparse-exchange threshold: a window whose barrier exchanged at most
  /// shard_count * this many messages doubles the cap multiplier.
  static constexpr uint64_t kSparseExchangeFactor = 1;
  /// Dense-exchange threshold: at least shard_count * this halves it.
  static constexpr uint64_t kDenseExchangeFactor = 8;
  /// Ceiling for the adaptive cap multiplier.
  static constexpr uint64_t kMaxCapMultiplier = 1024;

 private:
  struct Pending {
    SimTime t = 0;
    uint64_t ukey = 0;
    int dst = 0;
    uint8_t band = 0;
    EventFn fn;
  };

  /// Per-shard per-window state, cache-line-padded: `outbox` and `fired` are
  /// written by whichever executor claims the shard, `wend` is read-only
  /// during the phase. Padding keeps two executors finishing adjacent shards
  /// from bouncing one line.
  struct alignas(64) ShardLane {
    std::vector<Pending> outbox;  // cross-shard sends, drained at the barrier
    uint64_t fired = 0;           // events executed this window
    SimTime wend = 0;             // this shard's window end (exclusive)
    SimTime next_time = 0;        // earliest pending event (serial scratch)
    bool has_next = false;
    bool runnable = false;        // next_time < wend, executes this window
  };
  /// Per-executor claim cursor for ExecutorPolicy::kStealing (padded so
  /// steals don't share a line with the owner's increments).
  struct alignas(64) StealCursor {
    std::atomic<size_t> next{0};
  };

  size_t RunWindows(SimTime target, bool bounded, size_t limit);
  // Executes shards of the current window's active list on this executor
  // according to policy_. Executor 0 is the orchestrating thread itself;
  // 1..threads-1 are the helper threads.
  void RunShardsInWindow(int executor);
  void RunOneShard(int s);
  void EnsureWorkers();
  void WorkerLoop(int executor);
  // Releases helpers for one window and waits for them to finish, recording
  // the orchestrator's wait time in stats_. Requires workers_ non-empty.
  void RunWindowParallel();
  // Recomputes lookahead_ and the shard-pair latency matrix from the
  // network's current host set and latency overrides.
  void ComputeLookahead();
  // Start of executor e's slice of an n-entry active list (kStealing).
  size_t SliceBegin(int e, size_t n) const {
    return n * static_cast<size_t>(e) / static_cast<size_t>(threads_);
  }

  EventQueue* control_;
  Network* network_;
  int threads_;
  ExecutorPolicy policy_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<ShardLane> lanes_;  // indexed by shard
  // Minimum host-to-host latency from shard r to shard s at r*S+s;
  // UINT64_MAX where no host pair exists. Recomputed with lookahead_.
  std::vector<SimTime> latency_matrix_;
  SimTime lookahead_ = 0;
  size_t lookahead_host_count_ = 0;
  uint64_t lookahead_generation_ = 0;  // Network::latency_generation snapshot
  uint64_t cap_multiplier_ = 1;        // adaptive window cap, in lookaheads
  std::function<void()> barrier_hook_;
  SimTime barrier_interval_ = 0;
  SimTime next_hook_ = 0;
  EngineStats stats_;
  // Plain fields published to workers via the epoch_ release/acquire pair.
  bool in_parallel_phase_ = false;
  std::vector<int> active_;  // shard ids runnable this window (claim order)
  std::unique_ptr<StealCursor[]> steal_cursors_;  // one per executor
  alignas(64) std::atomic<size_t> claim_{0};    // kDynamic shared cursor
  std::vector<std::thread> workers_;  // threads_ - 1 helpers; main is exec 0
  // Hybrid spin/condvar barrier. Workers spin briefly on epoch_, then sleep
  // on wake_cv_; the orchestrator bumps epoch_ under wake_mu_ so a worker
  // can never recheck-then-sleep across the bump (no lost wakeups). The
  // done-side is symmetric with orch_waiting_ announcing the sleep
  // (seq_cst on both sides, Dekker-style) so workers only touch done_mu_
  // when the orchestrator actually went to sleep.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> orch_waiting_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace mind

#endif  // MIND_SIM_PARALLEL_ENGINE_H_
