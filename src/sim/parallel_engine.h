// Sharded parallel discrete-event engine under conservative time windows.
//
// Hosts are partitioned into S shards by id (id % S); each shard owns its own
// EventQueue. A window is the half-open interval [T, T + lookahead) where T is
// the earliest pending event across all shards and the lookahead is the
// minimum cross-shard link latency: any message sent during the window
// arrives at or after the window end, so shards cannot affect each other
// inside a window and may execute concurrently. Cross-shard sends are
// buffered per source shard and exchanged at the window barrier in
// deterministic (source shard, append order) order — and, more importantly,
// carry engine-independent ordering keys (see EventQueue::ScheduleAtKeyed),
// so the destination's execution order does not depend on exchange order at
// all.
//
// Determinism strategy: the shard count S is FIXED independently of the
// worker thread count. Each shard's event sequence is fully determined by its
// own queue contents plus the keyed cross-shard messages it receives, so any
// assignment of shards to threads — 1 worker or 8 — executes the identical
// computation. Cross-thread bit-identity therefore holds by construction; the
// interesting proof obligation (discharged by tools/check_determinism.sh) is
// identity against the *sequential* engine running the same discipline, which
// rests on the keyed event ordering and the counter-based per-link RNG
// streams (NetworkOptions::discipline).
//
// This file is the one place in src/{sim,overlay,mind,space,storage} allowed
// to use raw threading primitives (see tools/mind_lint.py, rule
// "concurrency").
#ifndef MIND_SIM_PARALLEL_ENGINE_H_
#define MIND_SIM_PARALLEL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/time.h"

namespace mind {

class Network;

/// \brief Windowed parallel executor over per-shard event queues.
///
/// Owned by Simulator when SimulatorOptions::threads > 0; not intended for
/// standalone construction by user code.
class ParallelEngine {
 public:
  /// Default shard count. Deliberately independent of the thread count and of
  /// std::thread::hardware_concurrency(): the shard partition is part of the
  /// simulated world's identity, the thread count is not.
  static constexpr int kDefaultShards = 8;

  /// `threads` >= 1 workers; `shards` == 0 picks kDefaultShards.
  ParallelEngine(EventQueue* control, Network* network, int threads,
                 int shards);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shard_count() const { return static_cast<int>(queues_.size()); }
  int threads() const { return threads_; }
  int ShardOf(NodeId id) const {
    return static_cast<int>(static_cast<uint32_t>(id) %
                            static_cast<uint32_t>(queues_.size()));
  }
  EventQueue* queue_for(NodeId id) { return queues_[ShardOf(id)].get(); }
  EventQueue& shard_queue(int s) { return *queues_[s]; }
  const EventQueue& shard_queue(int s) const { return *queues_[s]; }

  /// True while shard workers are executing a window. Network uses this to
  /// reject world mutations (SetNodeUp, SetLatency, ...) that would race.
  bool in_parallel_phase() const { return in_parallel_phase_; }

  /// Shard the calling thread is currently executing, or -1 in serial
  /// context (the orchestrating thread between windows).
  static int current_shard();

  /// Schedules a keyed event on `owner`'s shard queue. During a parallel
  /// phase a cross-shard schedule is buffered in the calling shard's outbox
  /// and exchanged at the barrier; everything else goes straight in.
  void ScheduleKeyed(NodeId owner, SimTime t, uint8_t band, uint64_t ukey,
                     EventFn fn);

  /// Windowed equivalents of EventQueue::Run / RunUntil across all shards.
  /// Run's `limit` is enforced at window granularity.
  size_t Run(size_t limit);
  size_t RunUntil(SimTime t);

  /// Hook invoked in serial context at the first barrier at or after every
  /// `interval` of virtual time (periodic invariant validation). All shard
  /// clocks agree when it runs.
  void set_barrier_hook(std::function<void()> hook, SimTime interval) {
    barrier_hook_ = std::move(hook);
    barrier_interval_ = interval;
    next_hook_ = control_->now() + interval;
  }

  /// The conservative lookahead: minimum latency between hosts of different
  /// shards (computed lazily, recomputed if hosts were added).
  SimTime lookahead();

 private:
  struct Pending {
    SimTime t = 0;
    uint64_t ukey = 0;
    int dst = 0;
    uint8_t band = 0;
    EventFn fn;
  };

  size_t RunWindows(SimTime target, bool bounded, size_t limit);
  // Executes this executor's static shard slice {s : s % threads == executor}
  // for the current window. Executor 0 is the orchestrating thread itself;
  // 1..threads-1 are the helper threads. The slice assignment is pure
  // wall-clock policy: any shard-to-executor mapping runs the identical
  // computation, static slices just keep each shard's working set on one
  // core and avoid a shared claim counter.
  void RunShardsInWindow(int executor);
  void EnsureWorkers();
  void ComputeLookahead();

  EventQueue* control_;
  Network* network_;
  int threads_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<std::vector<Pending>> outbox_;  // indexed by source shard
  std::vector<size_t> fired_;                 // per shard, per window
  SimTime lookahead_ = 0;
  size_t lookahead_host_count_ = 0;
  std::function<void()> barrier_hook_;
  SimTime barrier_interval_ = 0;
  SimTime next_hook_ = 0;
  // Plain fields published to workers via the epoch_ release/acquire pair.
  bool in_parallel_phase_ = false;
  SimTime window_end_ = 0;
  std::vector<std::thread> workers_;  // threads_ - 1 helpers; main is executor 0
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace mind

#endif  // MIND_SIM_PARALLEL_ENGINE_H_
