#include "sim/simulator.h"

#include "util/logging.h"

namespace mind {

Simulator::Simulator(SimulatorOptions options)
    : telemetry_([this]() { return events_.now(); }), rng_(options.seed) {
  options.network.seed = rng_.Fork(1).Next();
  options.failures.seed = rng_.Fork(2).Next();
  network_ = std::make_unique<Network>(&events_, options.network, &telemetry_);
  failures_ = std::make_unique<FailureInjector>(&events_, network_.get(),
                                                options.failures);
  events_.set_run_counter(&metrics().counter("sim.events.processed"));
  SetLogClock(this, [this]() { return events_.now(); });
}

Simulator::~Simulator() { ClearLogClock(this); }

}  // namespace mind
