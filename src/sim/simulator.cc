#include "sim/simulator.h"

namespace mind {

Simulator::Simulator(SimulatorOptions options) : rng_(options.seed) {
  options.network.seed = rng_.Fork(1).Next();
  options.failures.seed = rng_.Fork(2).Next();
  network_ = std::make_unique<Network>(&events_, options.network);
  failures_ = std::make_unique<FailureInjector>(&events_, network_.get(),
                                                options.failures);
}

}  // namespace mind
