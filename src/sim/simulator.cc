#include "sim/simulator.h"

#include <algorithm>

#include "util/logging.h"

namespace mind {

Simulator::Simulator(SimulatorOptions options)
    : telemetry_([this]() { return events_.now(); }), rng_(options.seed) {
  options.network.seed = rng_.Fork(1).Next();
  options.failures.seed = rng_.Fork(2).Next();
  options.network.discipline =
      options.threads > 0 || options.deterministic_discipline;
  network_ = std::make_unique<Network>(&events_, options.network, &telemetry_);
  failures_ = std::make_unique<FailureInjector>(&events_, network_.get(),
                                                options.failures);
  telemetry::Counter* run_counter = &metrics().counter("sim.events.processed");
  events_.set_run_counter(run_counter);
  SetLogClock(this, [this]() { return events_.now(); });
  if (options.threads > 0) {
    engine_ = std::make_unique<ParallelEngine>(&events_, network_.get(),
                                               options.threads, options.shards,
                                               options.executor_policy);
    network_->set_parallel_engine(engine_.get());
    // Counters and histograms get one slot per shard (plus the serial slot)
    // so worker recordings never share memory; reads aggregate.
    metrics().EnableSharding(engine_->shard_count() + 1);
    for (int s = 0; s < engine_->shard_count(); ++s) {
      engine_->shard_queue(s).set_run_counter(run_counter);
    }
    // The tracer's span tree mutates shared state on every call; it stays a
    // sequential-engine feature (metric digests are unaffected — see the
    // PR 3 telemetry-transparency guarantee).
    telemetry_.tracer().set_enabled(false);
  }
}

Simulator::~Simulator() { ClearLogClock(this); }

void Simulator::DigestEventsKeyed(Fnv64* out) const {
  std::vector<std::array<uint64_t, 3>> keys;
  events_.CollectKeyed(&keys);
  if (engine_ != nullptr) {
    for (int s = 0; s < engine_->shard_count(); ++s) {
      engine_->shard_queue(s).CollectKeyed(&keys);
    }
  }
  std::sort(keys.begin(), keys.end());
  out->Mix(static_cast<uint64_t>(keys.size()));
  for (const auto& k : keys) {
    out->Mix(k[0]);
    out->Mix(k[1]);
    out->Mix(k[2]);
  }
}

}  // namespace mind
