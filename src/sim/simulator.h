// Convenience owner of the discrete-event world: clock, network, failure
// injector and the root RNG.
#ifndef MIND_SIM_SIMULATOR_H_
#define MIND_SIM_SIMULATOR_H_

#include <memory>

#include "sim/event_queue.h"
#include "sim/failure_injector.h"
#include "sim/network.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace mind {

struct SimulatorOptions {
  NetworkOptions network;
  FailureOptions failures;
  uint64_t seed = 0x5eed;
};

/// \brief One simulated world.
///
/// Construct, add hosts via network(), schedule workload via events(), then
/// Run()/RunUntil() to execute.
class Simulator {
 public:
  explicit Simulator(SimulatorOptions options = {});
  ~Simulator();

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  Network& network() { return *network_; }
  FailureInjector& failures() { return *failures_; }
  Rng& rng() { return rng_; }

  telemetry::Telemetry& telemetry() { return telemetry_; }
  telemetry::MetricsRegistry& metrics() { return telemetry_.metrics(); }
  telemetry::Tracer& tracer() { return telemetry_.tracer(); }

  SimTime now() const { return events_.now(); }

  /// Runs until the event queue drains (or `limit` events).
  size_t Run(size_t limit = SIZE_MAX) { return events_.Run(limit); }

  /// Runs all events with timestamp <= t and advances the clock to t.
  size_t RunUntil(SimTime t) { return events_.RunUntil(t); }

  /// Runs `delta` past the current virtual time.
  size_t RunFor(SimTime delta) { return events_.RunUntil(events_.now() + delta); }

 private:
  EventQueue events_;
  // Telemetry outlives network_/failures_ (declared first) so instruments
  // cached by components stay valid through their destruction.
  telemetry::Telemetry telemetry_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<FailureInjector> failures_;
};

}  // namespace mind

#endif  // MIND_SIM_SIMULATOR_H_
