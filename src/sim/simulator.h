// Convenience owner of the discrete-event world: clock, network, failure
// injector and the root RNG.
#ifndef MIND_SIM_SIMULATOR_H_
#define MIND_SIM_SIMULATOR_H_

#include <memory>

#include "sim/event_queue.h"
#include "sim/failure_injector.h"
#include "sim/network.h"
#include "sim/parallel_engine.h"
#include "telemetry/telemetry.h"
#include "util/digest.h"
#include "util/rng.h"

namespace mind {

struct SimulatorOptions {
  NetworkOptions network;
  FailureOptions failures;
  uint64_t seed = 0x5eed;
  /// > 0 opts in to the sharded parallel engine with that many worker
  /// threads (which implies the deterministic discipline below). 0 — the
  /// default — is the sequential engine, byte-for-byte the legacy behavior.
  int threads = 0;
  /// Shard count for the parallel engine; 0 picks
  /// ParallelEngine::DefaultShardCount() (hardware-derived, floor
  /// kDefaultShards). Fixed independently of `threads`, so digests are
  /// identical for any thread count over the same shard count — and, because
  /// ordering keys are engine-independent, across shard counts too.
  int shards = 0;
  /// How window shards are mapped to executor threads (load-balance policy
  /// only — digests are identical across policies). kDynamic claims shards
  /// from a shared LPT-ordered list; see ExecutorPolicy for the others.
  ExecutorPolicy executor_policy = ExecutorPolicy::kDynamic;
  /// Runs the *sequential* engine under the parallel engine's determinism
  /// discipline (counter-based per-link RNG, keyed event ordering,
  /// send-time in-flight-loss resolution). Produces the same StateDigest as
  /// any threads > 0 configuration with the same seed/shards — the
  /// cross-engine identity check_determinism.sh proves.
  bool deterministic_discipline = false;
};

/// \brief One simulated world.
///
/// Construct, add hosts via network(), schedule workload via events(), then
/// Run()/RunUntil() to execute.
class Simulator {
 public:
  explicit Simulator(SimulatorOptions options = {});
  ~Simulator();

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  Network& network() { return *network_; }
  FailureInjector& failures() { return *failures_; }
  Rng& rng() { return rng_; }

  telemetry::Telemetry& telemetry() { return telemetry_; }
  telemetry::MetricsRegistry& metrics() { return telemetry_.metrics(); }
  telemetry::Tracer& tracer() { return telemetry_.tracer(); }

  SimTime now() const { return events_.now(); }

  /// Runs until the event queue drains (or `limit` events; the parallel
  /// engine enforces the limit at window granularity).
  size_t Run(size_t limit = SIZE_MAX) {
    return engine_ ? engine_->Run(limit) : events_.Run(limit);
  }

  /// Runs all events with timestamp <= t and advances the clock to t.
  size_t RunUntil(SimTime t) {
    return engine_ ? engine_->RunUntil(t) : events_.RunUntil(t);
  }

  /// Runs `delta` past the current virtual time.
  size_t RunFor(SimTime delta) { return RunUntil(events_.now() + delta); }

  /// True when the delivery path runs the determinism discipline (threads
  /// opted in, or deterministic_discipline set).
  bool discipline() const { return network_->discipline(); }

  /// The parallel engine, or nullptr on the sequential path.
  ParallelEngine* parallel_engine() { return engine_.get(); }
  const ParallelEngine* parallel_engine() const { return engine_.get(); }

  /// Engine statistics (windows, exchange volume, barrier waits, per-shard
  /// balance), or nullptr on the sequential path.
  const EngineStats* engine_stats() const {
    return engine_ ? &engine_->stats() : nullptr;
  }

  /// The queue that owns `id`'s events: its shard queue under the parallel
  /// engine, the global queue otherwise. Hosts bind to this at construction;
  /// workload drivers schedule onto it via ScheduleOn.
  EventQueue* queue_for(NodeId id) {
    return engine_ ? engine_->queue_for(id) : &events_;
  }

  /// Schedules `fn` at absolute time `at` on the queue owning `owner`.
  /// On the sequential path this is exactly events().ScheduleAt.
  EventId ScheduleOn(NodeId owner, SimTime at, EventFn fn) {
    return queue_for(owner)->ScheduleAt(at, std::move(fn));
  }

  /// Mixes the engine-independent (time, band, ukey) triples of every
  /// pending event — across all shard queues, sorted — into `out`. The
  /// discipline-mode replacement for events().DigestInto (whose per-queue
  /// sequence numbers differ between engines).
  void DigestEventsKeyed(Fnv64* out) const;

 private:
  EventQueue events_;
  // Telemetry outlives network_/failures_ (declared first) so instruments
  // cached by components stay valid through their destruction.
  telemetry::Telemetry telemetry_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<FailureInjector> failures_;
  std::unique_ptr<ParallelEngine> engine_;
};

}  // namespace mind

#endif  // MIND_SIM_SIMULATOR_H_
