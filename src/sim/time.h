// Virtual time. All simulation timestamps are microseconds in uint64.
#ifndef MIND_SIM_TIME_H_
#define MIND_SIM_TIME_H_

#include <cstdint>

namespace mind {

/// Virtual time in microseconds since the start of the simulation.
using SimTime = uint64_t;

constexpr SimTime kUsPerMs = 1000;
constexpr SimTime kUsPerSec = 1000 * 1000;
constexpr SimTime kUsPerMin = 60 * kUsPerSec;
constexpr SimTime kUsPerHour = 60 * kUsPerMin;
constexpr SimTime kUsPerDay = 24 * kUsPerHour;

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * 1e6); }
constexpr SimTime FromMillis(double ms) { return static_cast<SimTime>(ms * 1e3); }

}  // namespace mind

#endif  // MIND_SIM_TIME_H_
