#include "space/cut_tree.h"

#include <algorithm>

#include "util/logging.h"
#include "util/snapio.h"
#include "util/validate.h"

namespace mind {

CutTree CutTree::Even(const Schema& schema) {
  MIND_CHECK_OK(schema.Validate());
  return CutTree(schema);
}

Result<CutTree> CutTree::Balanced(const Schema& schema, const Histogram& hist,
                                  int depth) {
  MIND_RETURN_NOT_OK(schema.Validate());
  if (!(hist.schema() == schema)) {
    return Status::InvalidArgument("histogram schema does not match index schema");
  }
  if (depth < 0 || depth > 24) {
    return Status::InvalidArgument("balanced cut depth must be in [0, 24]");
  }
  CutTree tree(schema);
  tree.materialized_depth_ = depth;
  if (depth == 0) return tree;
  auto items = hist.WeightedCellCenters();
  tree.nodes_.reserve((size_t{1} << depth) - 1);
  BuildBalancedRec(&tree, hist, &items, 0, items.size(),
                   Rect::FullSpace(schema), 0, depth);
  return tree;
}

int CutTree::BuildBalancedRec(CutTree* tree, const Histogram& hist,
                              std::vector<std::pair<Point, double>>* items,
                              size_t begin, size_t end, const Rect& rect,
                              int depth, int max_depth) {
  if (depth >= max_depth) return -1;
  const int k = tree->schema_.dims();

  double total = 0.0;
  for (size_t i = begin; i < end; ++i) total += (*items)[i].second;

  // Try dimensions starting from the round-robin choice; skip any where no
  // interior, mass-splitting cut exists (e.g. a timestamp domain far wider
  // than the day's data). Degenerate cuts would burn tree depth and leave
  // provably-empty regions assigned to real nodes.
  //
  // The cut interpolates *within* the weighted-median histogram cell
  // (uniform-within-cell assumption): cutting at cell centers can misplace
  // the cut by half a cell, which is fatal when the live data spans less
  // than one cell along the dimension.
  int chosen_dim = -1;
  Value chosen_cut = 0;
  for (int offset = 0; offset < k && chosen_dim < 0 && total > 0.0; ++offset) {
    const int dim = (depth + offset) % k;
    const Interval iv = rect.interval(dim);
    if (iv.lo >= iv.hi) continue;
    std::sort(items->begin() + begin, items->begin() + end,
              [dim](const auto& a, const auto& b) {
                return a.first[dim] < b.first[dim];
              });
    // Walk to the weighted median cell along `dim`, grouping items that
    // share the same coordinate (they lie in the same histogram bin).
    double before = 0.0;
    double in_cell = 0.0;
    Value median_coord = iv.lo;
    {
      size_t i = begin;
      while (i < end) {
        Value coord = (*items)[i].first[dim];
        double group = 0.0;
        size_t j = i;
        while (j < end && (*items)[j].first[dim] == coord) {
          group += (*items)[j].second;
          ++j;
        }
        if (before + group >= total / 2.0) {
          median_coord = coord;
          in_cell = group;
          break;
        }
        before += group;
        i = j;
      }
      if (in_cell <= 0.0) continue;  // no median found (empty)
    }
    const int bin = hist.BinOf(dim, median_coord);
    const Value blo = hist.BinLo(dim, bin);
    const Value bhi = hist.BinHi(dim, bin);
    double frac = (total / 2.0 - before) / in_cell;
    frac = std::clamp(frac, 0.0, 1.0);
    long double width = static_cast<long double>(bhi - blo) + 1;
    Value cut = blo + static_cast<Value>(static_cast<long double>(frac) * width);
    if (cut > bhi) cut = bhi;
    // Keep the cut interior to the region.
    if (cut >= iv.hi) cut = iv.hi - 1;
    if (cut < iv.lo) cut = iv.lo;
    // Expected mass on each side under uniform-within-cell: reject cuts that
    // starve a side.
    long double cell_frac_low =
        width > 0 ? (static_cast<long double>(cut - blo) + 1) / width : 1.0;
    if (cut < blo) cell_frac_low = 0.0;
    if (cut > bhi) cell_frac_low = 1.0;
    double low_est = before + static_cast<double>(cell_frac_low) * in_cell;
    double high_est = total - low_est;
    if (low_est <= total * 1e-3 || high_est <= total * 1e-3) continue;
    // If essentially all mass sits inside one cell, the interpolated cut is
    // guesswork (the data may occupy a sliver of the cell): prefer a
    // dimension the histogram can actually resolve, and let the fallback
    // below bisect within the cell otherwise.
    if (in_cell >= total * 0.95) continue;
    chosen_dim = dim;
    chosen_cut = cut;
  }

  if (chosen_dim < 0) {
    // The histogram cannot resolve a split (all mass within one cell per
    // dimension): bisect within the occupied cell of the widest dimension.
    // Real data inside the cell still spreads across it, so repeated
    // bisection converges on it like a binary search.
    int dim = depth % k;
    uint64_t best_span = 0;
    for (int d = 0; d < k; ++d) {
      uint64_t span = rect.interval(d).Size();
      if (span > best_span) {
        best_span = span;
        dim = d;
      }
    }
    const Interval iv = rect.interval(dim);
    Value lo = iv.lo, hi = iv.hi;
    if (total > 0.0 && lo < hi) {
      // Locate the weighted-median cell along `dim` and clip to it.
      std::sort(items->begin() + begin, items->begin() + end,
                [dim](const auto& a, const auto& b) {
                  return a.first[dim] < b.first[dim];
                });
      double acc = 0.0;
      Value median_coord = lo;
      for (size_t i = begin; i < end; ++i) {
        acc += (*items)[i].second;
        if (acc >= total / 2.0) {
          median_coord = (*items)[i].first[dim];
          break;
        }
      }
      const int bin = hist.BinOf(dim, median_coord);
      Value clo = std::max(lo, hist.BinLo(dim, bin));
      Value chi = std::min(hi, hist.BinHi(dim, bin));
      if (clo < chi) {
        lo = clo;
        hi = chi;
      }
    }
    chosen_dim = dim;
    chosen_cut = lo >= hi ? iv.lo : lo + (hi - lo) / 2;
    if (chosen_cut >= iv.hi) chosen_cut = iv.hi - 1;
    if (chosen_cut < iv.lo) chosen_cut = iv.lo;
  }

  // Partition items (cells go whole to the side containing their center).
  auto mid_it = std::partition(items->begin() + begin, items->begin() + end,
                               [chosen_dim, chosen_cut](const auto& a) {
                                 return a.first[chosen_dim] <= chosen_cut;
                               });
  size_t mid = static_cast<size_t>(mid_it - items->begin());

  int idx = static_cast<int>(tree->nodes_.size());
  tree->nodes_.push_back(
      Node{chosen_cut, static_cast<int16_t>(chosen_dim), -1, -1});

  Rect left = rect;
  left.mutable_interval(chosen_dim)->hi = chosen_cut;
  int c0 = BuildBalancedRec(tree, hist, items, begin, mid, left, depth + 1,
                            max_depth);

  int c1 = -1;
  if (chosen_cut < rect.interval(chosen_dim).hi) {
    Rect right = rect;
    right.mutable_interval(chosen_dim)->lo = chosen_cut + 1;
    c1 = BuildBalancedRec(tree, hist, items, mid, end, right, depth + 1,
                          max_depth);
  }
  tree->nodes_[idx].child0 = c0;
  tree->nodes_[idx].child1 = c1;
  return idx;
}

CutTree::Cursor CutTree::Root() const {
  Cursor c;
  c.rect = Rect::FullSpace(schema_);
  c.node = nodes_.empty() ? -1 : 0;
  c.depth = 0;
  return c;
}

int CutTree::CursorDim(const Cursor& c) const {
  return c.node >= 0 ? nodes_[c.node].dim : DimAtDepth(c.depth);
}

Value CutTree::CutValue(const Cursor& c) const {
  if (c.node >= 0) return nodes_[c.node].cut;
  const Interval iv = c.rect.interval(CursorDim(c));
  return iv.lo + (iv.hi - iv.lo) / 2;
}

bool CutTree::Descend(Cursor* c, int bit) const {
  const int dim = CursorDim(*c);
  const Value cut = CutValue(*c);
  const Interval iv = c->rect.interval(dim);
  if (bit == 0) {
    c->rect.mutable_interval(dim)->hi = cut;
    c->node = (c->node >= 0) ? nodes_[c->node].child0 : -1;
  } else {
    if (cut >= iv.hi) return false;  // empty high side
    c->rect.mutable_interval(dim)->lo = cut + 1;
    c->node = (c->node >= 0) ? nodes_[c->node].child1 : -1;
  }
  ++c->depth;
  return true;
}

BitCode CutTree::CodeForPoint(const Point& p, int len) const {
  MIND_CHECK(len >= 0 && len <= BitCode::kMaxLen);
  const int k = schema_.dims();
  MIND_CHECK_EQ(static_cast<int>(p.size()), k);
  // Descent only ever inspects one interval per level, so the cursor is three
  // stack arrays instead of a heap-backed Rect + clamped Point copy — this is
  // the hottest call on the insert path (once per insert_record, once per
  // stored replica).
  constexpr int kStackDims = 16;
  if (k > kStackDims) {
    Point q = schema_.Clamp(p);
    Cursor c = Root();
    BitCode code;
    for (int i = 0; i < len; ++i) {
      const int bit = (q[CursorDim(c)] <= CutValue(c)) ? 0 : 1;
      bool ok = Descend(&c, bit);
      MIND_CHECK(ok);
      code.PushBack(bit);
    }
    return code;
  }
  Value q[kStackDims], lo[kStackDims], hi[kStackDims];
  for (int d = 0; d < k; ++d) {
    const AttributeDef& a = schema_.attr(d);
    lo[d] = a.min;
    hi[d] = a.max;
    q[d] = p[d] < a.min ? a.min : (p[d] > a.max ? a.max : p[d]);
  }
  if (nodes_.empty()) {
    // Even tree: pure midpoint bisection, dimension strictly round-robin. A
    // midpoint cut is always interior (cut < hi whenever lo < hi, and lo == hi
    // forces bit 0), so the branch-free form needs no emptiness check.
    uint64_t bits = 0;
    int dim = 0;
    for (int i = 0; i < len; ++i) {
      const Value cut = lo[dim] + (hi[dim] - lo[dim]) / 2;
      const uint64_t bit = q[dim] > cut ? 1 : 0;
      if (bit) {
        lo[dim] = cut + 1;
      } else {
        hi[dim] = cut;
      }
      bits = (bits << 1) | bit;
      if (++dim == k) dim = 0;
    }
    return BitCode::FromBits(bits, len);
  }
  int node = 0;
  BitCode code;
  for (int i = 0; i < len; ++i) {
    int dim;
    Value cut;
    if (node >= 0) {
      dim = nodes_[node].dim;
      cut = nodes_[node].cut;
    } else {
      dim = i % k;
      cut = lo[dim] + (hi[dim] - lo[dim]) / 2;
    }
    if (q[dim] <= cut) {
      hi[dim] = cut;
      node = node >= 0 ? nodes_[node].child0 : -1;
      code.PushBack(0);
    } else {
      MIND_CHECK(cut < hi[dim]);  // q[dim] > cut, so the high side is non-empty
      lo[dim] = cut + 1;
      node = node >= 0 ? nodes_[node].child1 : -1;
      code.PushBack(1);
    }
  }
  return code;
}

std::optional<Rect> CutTree::RectForCode(const BitCode& code) const {
  Cursor c = Root();
  for (int i = 0; i < code.length(); ++i) {
    if (!Descend(&c, code.bit(i))) return std::nullopt;
  }
  return c.rect;
}

BitCode CutTree::MinimalContainingCode(const Rect& query, int max_len) const {
  MIND_CHECK_EQ(query.dims(), schema_.dims());
  MIND_CHECK(max_len >= 0 && max_len <= BitCode::kMaxLen);
  Cursor c = Root();
  BitCode code;
  auto clipped = Rect::FullSpace(schema_).Intersect(query);
  if (!clipped) return code;  // query outside the space: empty code (root)
  const Rect q = *clipped;
  while (code.length() < max_len) {
    const int dim = CursorDim(c);
    const Value cut = CutValue(c);
    const Interval qi = q.interval(dim);
    int bit;
    if (qi.hi <= cut) {
      bit = 0;
    } else if (qi.lo > cut) {
      bit = 1;
    } else {
      break;  // query straddles the cut
    }
    if (!Descend(&c, bit)) break;
    code.PushBack(bit);
  }
  return code;
}

std::vector<BitCode> CutTree::IntersectingChildren(const Rect& query,
                                                   const BitCode& code) const {
  std::vector<BitCode> out;
  Cursor c = Root();
  for (int i = 0; i < code.length(); ++i) {
    if (!Descend(&c, code.bit(i))) return out;  // empty region: no children
  }
  for (int bit = 0; bit <= 1; ++bit) {
    Cursor child = c;
    if (!Descend(&child, bit)) continue;
    if (child.rect.Intersects(query)) out.push_back(code.Child(bit));
  }
  return out;
}

void CutTree::CoverRec(const Cursor& c, const Rect& query, int len,
                       size_t max_codes, BitCode* prefix,
                       std::vector<BitCode>* out, bool* overflow) const {
  if (*overflow) return;
  if (!c.rect.Intersects(query)) return;
  if (prefix->length() == len) {
    if (out->size() >= max_codes) {
      *overflow = true;
      return;
    }
    out->push_back(*prefix);
    return;
  }
  for (int bit = 0; bit <= 1; ++bit) {
    Cursor child = c;
    if (!Descend(&child, bit)) continue;
    prefix->PushBack(bit);
    CoverRec(child, query, len, max_codes, prefix, out, overflow);
    prefix->PopBack();
  }
}

Status CutTree::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  if (nodes_.empty()) return Status::OK();  // Even tree: nothing materialized
  const int k = schema_.dims();
  std::vector<uint8_t> visited(nodes_.size(), 0);
  // (node index, region, depth) — regions recomputed exactly as Descend does,
  // so the cut-in-range checks below certify the children tile the parent.
  struct Frame {
    int32_t node;
    Rect rect;
    int depth;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, Rect::FullSpace(schema_), 0});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    MIND_VALIDATE(f.node >= 0 && static_cast<size_t>(f.node) < nodes_.size(),
                  "cut-tree: child link " << f.node << " out of range ("
                                          << nodes_.size() << " nodes)");
    MIND_VALIDATE(!visited[f.node],
                  "cut-tree: node " << f.node
                                    << " reachable twice (shared subtree would "
                                       "give two regions the same code)");
    visited[f.node] = 1;
    const Node& n = nodes_[static_cast<size_t>(f.node)];
    MIND_VALIDATE(f.depth < materialized_depth_,
                  "cut-tree: node " << f.node << " at depth " << f.depth
                                    << " exceeds materialized depth "
                                    << materialized_depth_);
    MIND_VALIDATE(n.dim >= 0 && n.dim < k, "cut-tree: node " << f.node << " cuts dimension "
                                               << n.dim << " outside schema (" << k
                                               << " dims)");
    const Interval iv = f.rect.interval(n.dim);
    MIND_VALIDATE(iv.Contains(n.cut),
                  "cut-tree: node " << f.node << " cut " << n.cut
                                    << " outside its region [" << iv.lo << ", "
                                    << iv.hi << "] on dim " << n.dim
                                    << " (children would not tile the parent)");
    MIND_VALIDATE(n.cut < iv.hi || n.child1 < 0,
                  "cut-tree: node " << f.node << " has a child on the empty high side "
                                    << "(cut " << n.cut << " == hi " << iv.hi << ")");
    if (n.child0 >= 0) {
      Rect left = f.rect;
      left.mutable_interval(n.dim)->hi = n.cut;
      stack.push_back(Frame{n.child0, std::move(left), f.depth + 1});
    }
    if (n.child1 >= 0) {
      Rect right = f.rect;
      right.mutable_interval(n.dim)->lo = n.cut + 1;
      stack.push_back(Frame{n.child1, std::move(right), f.depth + 1});
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    MIND_VALIDATE(visited[i], "cut-tree: node " << i << " orphaned (unreachable from root)");
  }
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

Result<std::vector<BitCode>> CutTree::Cover(const Rect& query, int len,
                                            size_t max_codes) const {
  MIND_CHECK(len >= 0 && len <= BitCode::kMaxLen);
  std::vector<BitCode> out;
  BitCode prefix;
  bool overflow = false;
  CoverRec(Root(), query, len, max_codes, &prefix, &out, &overflow);
  if (overflow) {
    return Status::OutOfRange("query cover exceeds max_codes at len " +
                              std::to_string(len));
  }
  return out;
}

void CutTree::SaveSnapshotState(SnapWriter* w) const {
  w->U32(static_cast<uint32_t>(schema_.dims()));
  for (const AttributeDef& a : schema_.attrs()) {
    w->Str(a.name);
    w->U64(a.min);
    w->U64(a.max);
  }
  w->U32(static_cast<uint32_t>(materialized_depth_));
  w->U64(nodes_.size());
  for (const Node& n : nodes_) {
    w->U64(n.cut);
    w->U16(static_cast<uint16_t>(n.dim));
    w->U32(static_cast<uint32_t>(n.child0));
    w->U32(static_cast<uint32_t>(n.child1));
  }
}

Result<CutTree> CutTree::LoadSnapshotState(SnapReader* r) {
  uint32_t dims;
  MIND_ASSIGN_OR_RETURN(dims, r->U32("cut_tree.dims"));
  if (dims == 0 || dims > 64) {
    return r->FieldError("cut_tree.dims", "implausible dimension count " +
                                              std::to_string(dims));
  }
  std::vector<AttributeDef> attrs(dims);
  for (AttributeDef& a : attrs) {
    MIND_ASSIGN_OR_RETURN(a.name, r->Str("cut_tree.attr.name", 1024));
    MIND_ASSIGN_OR_RETURN(a.min, r->U64("cut_tree.attr.min"));
    MIND_ASSIGN_OR_RETURN(a.max, r->U64("cut_tree.attr.max"));
  }
  CutTree tree{Schema(std::move(attrs))};
  MIND_RETURN_NOT_OK(tree.schema_.Validate());

  uint32_t depth;
  MIND_ASSIGN_OR_RETURN(depth, r->U32("cut_tree.materialized_depth"));
  if (depth > 24) {
    return r->FieldError("cut_tree.materialized_depth",
                         "depth " + std::to_string(depth) + " beyond limit 24");
  }
  tree.materialized_depth_ = static_cast<int>(depth);

  uint64_t node_count;
  MIND_ASSIGN_OR_RETURN(node_count, r->U64("cut_tree.node_count"));
  if (node_count > (uint64_t{1} << 26)) {
    return r->FieldError("cut_tree.node_count", "implausible node count " +
                                                    std::to_string(node_count));
  }
  tree.nodes_.resize(node_count);
  for (Node& n : tree.nodes_) {
    MIND_ASSIGN_OR_RETURN(n.cut, r->U64("cut_tree.node.cut"));
    uint16_t dim;
    MIND_ASSIGN_OR_RETURN(dim, r->U16("cut_tree.node.dim"));
    n.dim = static_cast<int16_t>(dim);
    if (n.dim < 0 || n.dim >= tree.schema_.dims()) {
      return r->FieldError("cut_tree.node.dim",
                           "dimension " + std::to_string(n.dim) +
                               " outside schema with " +
                               std::to_string(tree.schema_.dims()) + " dims");
    }
    uint32_t c0, c1;
    MIND_ASSIGN_OR_RETURN(c0, r->U32("cut_tree.node.child0"));
    MIND_ASSIGN_OR_RETURN(c1, r->U32("cut_tree.node.child1"));
    n.child0 = static_cast<int32_t>(c0);
    n.child1 = static_cast<int32_t>(c1);
    const auto valid_child = [&](int32_t c) {
      return c == -1 || (c >= 0 && static_cast<uint64_t>(c) < node_count);
    };
    if (!valid_child(n.child0) || !valid_child(n.child1)) {
      return r->FieldError("cut_tree.node.child",
                           "child index outside the node table");
    }
  }
  MIND_RETURN_NOT_OK(tree.ValidateInvariants());
  return tree;
}

}  // namespace mind
