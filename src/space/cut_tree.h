// The data-space embedding at the heart of MIND (paper §3.4, §3.7).
//
// A CutTree recursively cuts the k-dimensional data space with axis-aligned
// hyper-planes, cycling through the dimensions (dimension = depth mod k).
// Each cut appends one bit to the region's code: 0 for the low side, 1 for
// the high side, so every hyper-rectangle produced by the cuts carries a
// BitCode. A tuple is stored at the overlay node whose vertex code maximally
// matches the tuple's region code; a query's covering codes determine which
// nodes it must visit.
//
// Two construction modes:
//  * Even(): every cut bisects the current interval at its midpoint. Simple,
//    but skewed traffic data then piles up on few nodes (Figure 2).
//  * Balanced(): the first `depth` cuts are chosen from a multi-dimensional
//    histogram of a previous day's data so that each side carries roughly
//    half the mass (Figure 5, bottom right; §3.7). Beyond the materialized
//    depth, descent continues with midpoint cuts.
//
// The tree is per-index, per-version state, installed identically at every
// node; it is deliberately decoupled from the overlay structure (the paper's
// key design point).
#ifndef MIND_SPACE_CUT_TREE_H_
#define MIND_SPACE_CUT_TREE_H_

#include <memory>
#include <optional>
#include <vector>

#include "space/histogram.h"
#include "space/rect.h"
#include "space/schema.h"
#include "util/bitcode.h"
#include "util/status.h"

namespace mind {

class SnapReader;
class SnapWriter;

class CutTree {
 public:
  /// Pure midpoint cuts (no materialized nodes).
  static CutTree Even(const Schema& schema);

  /// Histogram-balanced cuts for the first `depth` levels. The histogram's
  /// schema must equal `schema`; depth in [0, 24] (2^depth regions).
  static Result<CutTree> Balanced(const Schema& schema, const Histogram& hist,
                                  int depth);

  const Schema& schema() const { return schema_; }
  int materialized_depth() const { return materialized_depth_; }

  /// Code of length `len` for a point (clamped into the domain first).
  BitCode CodeForPoint(const Point& p, int len) const;

  /// The hyper-rectangle addressed by `code`, or nullopt if the code walks
  /// into an empty side (possible only for codes not produced by descent).
  std::optional<Rect> RectForCode(const BitCode& code) const;

  /// Longest code (<= max_len bits) whose rectangle fully contains
  /// query ∩ space. This is where a query is first routed (§3.6).
  BitCode MinimalContainingCode(const Rect& query, int max_len) const;

  /// The children codes of `code` (one bit longer) whose rectangles
  /// intersect `query`; 0, 1 or 2 entries. Used by nodes to split queries
  /// into sub-queries. `rect` must be the rectangle of `code`.
  std::vector<BitCode> IntersectingChildren(const Rect& query,
                                            const BitCode& code) const;

  /// All codes of length exactly `len` whose rectangles intersect `query`.
  /// Errors with OutOfRange if more than `max_codes` would be produced.
  Result<std::vector<BitCode>> Cover(const Rect& query, int len,
                                     size_t max_codes = 65536) const;

  /// Dimension cut at a given depth.
  int DimAtDepth(int depth) const { return depth % schema_.dims(); }

  /// Checks materialized-tree well-formedness: every node reachable from the
  /// root exactly once (a shared subtree would give two regions the same
  /// code), no orphan nodes, cut dimensions within the schema, each cut
  /// interior to its region (which is exactly what makes the two children
  /// tile the parent rectangle with no gap or overlap), and an empty high
  /// side only where the child link is absent. Returns OK trivially when
  /// MIND_VALIDATORS is off (see util/validate.h).
  Status ValidateInvariants() const;

  /// Serializes the full tree — schema, materialized depth, node table — for
  /// the MSN1 snapshot (DESIGN.md §14). Trees are immutable once installed,
  /// so the snapshot layer interns them and writes each distinct tree once.
  void SaveSnapshotState(SnapWriter* w) const;
  /// Reconstructs a tree written by SaveSnapshotState; the restored tree is
  /// validated (ValidateInvariants) before being returned.
  static Result<CutTree> LoadSnapshotState(SnapReader* r);

 private:
  friend class CutTreeTestPeek;  // corruption injection in validator tests

  struct Node {
    Value cut = 0;       // low side: [lo, cut]; high side: [cut+1, hi]
    int16_t dim = 0;     // balanced cuts may deviate from round-robin when a
                         // dimension is degenerate (no interior cut exists)
    int32_t child0 = -1; // materialized children (-1 => implicit midpoint)
    int32_t child1 = -1;
  };

  // Walking state: current region + materialized node (or -1).
  struct Cursor {
    Rect rect;
    int node = -1;
    int depth = 0;
  };

  explicit CutTree(Schema schema) : schema_(std::move(schema)) {}

  Cursor Root() const;
  // Dimension cut at the cursor (materialized node's dim, else round-robin).
  int CursorDim(const Cursor& c) const;
  // Cut value applied at the cursor's depth within its rect.
  Value CutValue(const Cursor& c) const;
  // Descends one level. Returns false if that side is empty (only possible
  // for bit==1 on a single-value interval).
  bool Descend(Cursor* c, int bit) const;

  void CoverRec(const Cursor& c, const Rect& query, int len, size_t max_codes,
                BitCode* prefix, std::vector<BitCode>* out, bool* overflow) const;

  static int BuildBalancedRec(CutTree* tree, const Histogram& hist,
                              std::vector<std::pair<Point, double>>* items,
                              size_t begin, size_t end, const Rect& rect,
                              int depth, int max_depth);

  Schema schema_;
  int materialized_depth_ = 0;
  std::vector<Node> nodes_;  // empty for Even(); else root at index 0
};

/// Immutable shared handle; cut trees are distributed to every node of an
/// index and never mutated after installation.
using CutTreeRef = std::shared_ptr<const CutTree>;

}  // namespace mind

#endif  // MIND_SPACE_CUT_TREE_H_
