#include "space/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mind {

namespace {
using u128 = unsigned __int128;

// Inclusive-domain span as a 128-bit count (max - min + 1 can overflow 64).
u128 Span(Value min, Value max) { return static_cast<u128>(max - min) + 1; }
}  // namespace

Histogram::Histogram(const Schema& schema, int bins_per_dim)
    : schema_(schema), bins_per_dim_(bins_per_dim) {
  MIND_CHECK_GE(bins_per_dim, 1);
  MIND_CHECK_GE(schema.dims(), 1);
  u128 cells = 1;
  for (int d = 0; d < schema.dims(); ++d) {
    cells *= static_cast<u128>(bins_per_dim);
    MIND_CHECK(cells <= static_cast<u128>(UINT64_MAX))
        << "histogram grid too large";
  }
  num_cells_ = static_cast<uint64_t>(cells);
}

int Histogram::BinOf(int dim, Value v) const {
  const AttributeDef& a = schema_.attr(dim);
  if (v < a.min) v = a.min;
  if (v > a.max) v = a.max;
  u128 span = Span(a.min, a.max);
  u128 off = static_cast<u128>(v - a.min);
  int bin = static_cast<int>(off * static_cast<u128>(bins_per_dim_) / span);
  return std::min(bin, bins_per_dim_ - 1);
}

Value Histogram::BinLo(int dim, int bin) const {
  const AttributeDef& a = schema_.attr(dim);
  u128 span = Span(a.min, a.max);
  return a.min + static_cast<Value>(span * static_cast<u128>(bin) /
                                    static_cast<u128>(bins_per_dim_));
}

Value Histogram::BinHi(int dim, int bin) const {
  if (bin == bins_per_dim_ - 1) return schema_.attr(dim).max;
  return BinLo(dim, bin + 1) - 1;
}

uint64_t Histogram::CellKey(const std::vector<int>& cell) const {
  MIND_CHECK_EQ(static_cast<int>(cell.size()), dims());
  uint64_t key = 0;
  for (int d = 0; d < dims(); ++d) {
    MIND_CHECK(cell[d] >= 0 && cell[d] < bins_per_dim_);
    key = key * static_cast<uint64_t>(bins_per_dim_) +
          static_cast<uint64_t>(cell[d]);
  }
  return key;
}

void Histogram::CellFromKey(uint64_t key, std::vector<int>* cell) const {
  cell->resize(dims());
  for (int d = dims() - 1; d >= 0; --d) {
    (*cell)[d] = static_cast<int>(key % static_cast<uint64_t>(bins_per_dim_));
    key /= static_cast<uint64_t>(bins_per_dim_);
  }
}

void Histogram::Add(const Point& p, double mass) {
  MIND_CHECK_EQ(static_cast<int>(p.size()), dims());
  uint64_t key = 0;
  for (int d = 0; d < dims(); ++d) {
    key = key * static_cast<uint64_t>(bins_per_dim_) +
          static_cast<uint64_t>(BinOf(d, p[d]));
  }
  cells_[key] += mass;
  total_ += mass;
}

Status Histogram::Merge(const Histogram& other) {
  if (!(other.schema_ == schema_) || other.bins_per_dim_ != bins_per_dim_) {
    return Status::InvalidArgument(
        "histogram merge requires identical schema and granularity");
  }
  for (const auto& [key, mass] : other.cells_) {
    cells_[key] += mass;
  }
  total_ += other.total_;
  return Status::OK();
}

double Histogram::CellMass(const std::vector<int>& cell) const {
  auto it = cells_.find(CellKey(cell));
  return it == cells_.end() ? 0.0 : it->second;
}

std::vector<std::pair<Point, double>> Histogram::WeightedCellCenters() const {
  std::vector<std::pair<Point, double>> out;
  out.reserve(cells_.size());
  std::vector<int> cell;
  for (const auto& [key, mass] : cells_) {
    CellFromKey(key, &cell);
    Point center(dims());
    for (int d = 0; d < dims(); ++d) {
      Value lo = BinLo(d, cell[d]);
      Value hi = BinHi(d, cell[d]);
      center[d] = lo + (hi - lo) / 2;
    }
    out.emplace_back(std::move(center), mass);
  }
  // Deterministic order independent of hash-map iteration.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

double Histogram::MassInRect(const Rect& r) const {
  MIND_CHECK_EQ(r.dims(), dims());
  double sum = 0.0;
  std::vector<int> cell;
  for (const auto& [key, mass] : cells_) {
    CellFromKey(key, &cell);
    double frac = 1.0;
    for (int d = 0; d < dims() && frac > 0.0; ++d) {
      Value blo = BinLo(d, cell[d]);
      Value bhi = BinHi(d, cell[d]);
      Value lo = std::max(blo, r.interval(d).lo);
      Value hi = std::min(bhi, r.interval(d).hi);
      if (lo > hi) {
        frac = 0.0;
        break;
      }
      long double cover = static_cast<long double>(hi - lo) + 1;
      long double width = static_cast<long double>(bhi - blo) + 1;
      frac *= static_cast<double>(cover / width);
    }
    sum += mass * frac;
  }
  return sum;
}

std::vector<double> Histogram::Densify() const {
  MIND_CHECK_LE(num_cells_, uint64_t{1} << 24) << "grid too large to densify";
  std::vector<double> dense(num_cells_, 0.0);
  for (const auto& [key, mass] : cells_) dense[key] = mass;
  return dense;
}

}  // namespace mind
