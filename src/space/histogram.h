// Sparse multi-dimensional equi-width histograms.
//
// MIND uses histograms in two places (paper §2.2, §3.7):
//   * a designated node aggregates per-node histograms once a day and the
//     result drives the *balanced cuts* of the next day's index version;
//   * the mismatch metric (Appendix A) compares day-to-day distributions to
//     justify that stationarity.
#ifndef MIND_SPACE_HISTOGRAM_H_
#define MIND_SPACE_HISTOGRAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "space/rect.h"
#include "space/schema.h"
#include "util/status.h"

namespace mind {

/// \brief A d-dimensional grid of bins_per_dim^d equal-width cells over the
/// schema's domain, storing (possibly fractional) masses sparsely.
class Histogram {
 public:
  /// bins_per_dim must be >= 1 and bins_per_dim^dims must fit in uint64.
  Histogram(const Schema& schema, int bins_per_dim);

  const Schema& schema() const { return schema_; }
  int bins_per_dim() const { return bins_per_dim_; }
  int dims() const { return schema_.dims(); }
  uint64_t num_cells() const { return num_cells_; }
  size_t num_nonzero_cells() const { return cells_.size(); }

  /// Adds mass at a point (coordinates outside the domain are clamped).
  void Add(const Point& p, double mass = 1.0);

  /// Adds all of `other`'s mass; requires identical schema and granularity.
  Status Merge(const Histogram& other);

  double total_mass() const { return total_; }

  /// Bin index of a value along one dimension (clamped into range).
  int BinOf(int dim, Value v) const;

  /// Inclusive value bounds of a bin along a dimension.
  Value BinLo(int dim, int bin) const;
  Value BinHi(int dim, int bin) const;

  /// Mass of one cell, addressed by per-dimension bin indices.
  double CellMass(const std::vector<int>& cell) const;

  /// All nonzero cells as (cell-center point, mass) pairs — the input to
  /// balanced-cut construction.
  std::vector<std::pair<Point, double>> WeightedCellCenters() const;

  /// Mass intersecting `r`, with linear (uniform-within-cell) interpolation
  /// of partially covered cells.
  double MassInRect(const Rect& r) const;

  /// Per-cell masses, dense, in row-major cell order (for tests / plots).
  /// Only call for small grids.
  std::vector<double> Densify() const;

 private:
  uint64_t CellKey(const std::vector<int>& cell) const;
  void CellFromKey(uint64_t key, std::vector<int>* cell) const;

  Schema schema_;
  int bins_per_dim_;
  uint64_t num_cells_;
  std::unordered_map<uint64_t, double> cells_;
  double total_ = 0.0;
};

}  // namespace mind

#endif  // MIND_SPACE_HISTOGRAM_H_
