#include "space/mismatch.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace mind {

namespace {

Status CheckComparable(const Histogram& a, const Histogram& b) {
  if (!(a.schema() == b.schema()) || a.bins_per_dim() != b.bins_per_dim()) {
    return Status::InvalidArgument(
        "mismatch requires identical schema and granularity");
  }
  return Status::OK();
}

// Walks the union of nonzero cells of both histograms, accumulating
// sum |wa * a(x) - wb * b(x)| / 2.
double HalfL1(const Histogram& a, const Histogram& b, double wa, double wb) {
  // Compare via dense cell keys when tiny, else via cell centers (which are
  // identical for identical grids). We recover cells through
  // WeightedCellCenters to stay independent of the sparse-map internals.
  auto ca = a.WeightedCellCenters();
  auto cb = b.WeightedCellCenters();
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i].first == cb[j].first) {
      sum += std::fabs(wa * ca[i].second - wb * cb[j].second);
      ++i;
      ++j;
    } else if (ca[i].first < cb[j].first) {
      sum += std::fabs(wa * ca[i].second);
      ++i;
    } else {
      sum += std::fabs(wb * cb[j].second);
      ++j;
    }
  }
  for (; i < ca.size(); ++i) sum += std::fabs(wa * ca[i].second);
  for (; j < cb.size(); ++j) sum += std::fabs(wb * cb[j].second);
  return sum / 2.0;
}

}  // namespace

Result<double> MismatchTuples(const Histogram& a, const Histogram& b) {
  MIND_RETURN_NOT_OK(CheckComparable(a, b));
  return HalfL1(a, b, 1.0, 1.0);
}

Result<double> MismatchFraction(const Histogram& a, const Histogram& b) {
  MIND_RETURN_NOT_OK(CheckComparable(a, b));
  if (a.total_mass() <= 0.0 || b.total_mass() <= 0.0) {
    return Status::InvalidArgument("mismatch of empty histogram");
  }
  return HalfL1(a, b, 1.0 / a.total_mass(), 1.0 / b.total_mass());
}

}  // namespace mind
