// The mismatch metric of Appendix A: the fraction of data that must move to
// turn one day's distribution into another's, computed over a common
// multi-dimensional histogram grid. Used to validate diurnal stationarity
// (Figure 3) and to bound re-balancing cost.
#ifndef MIND_SPACE_MISMATCH_H_
#define MIND_SPACE_MISMATCH_H_

#include "space/histogram.h"
#include "util/status.h"

namespace mind {

/// Raw mismatch: sum_x |I(i,x) - I(j,x)| / 2 over all bins, in tuples.
/// Requires identical schema and granularity.
Result<double> MismatchTuples(const Histogram& a, const Histogram& b);

/// Normalized mismatch in [0, 1]: histograms are first normalized to unit
/// mass, so the value is the fraction of data that must be rearranged.
/// This is what Figure 3 plots ("mismatch close to 1" for hourly histograms).
Result<double> MismatchFraction(const Histogram& a, const Histogram& b);

}  // namespace mind

#endif  // MIND_SPACE_MISMATCH_H_
