#include "space/rect.h"

#include "util/logging.h"

namespace mind {

Rect Rect::FullSpace(const Schema& schema) {
  std::vector<Interval> ivs;
  ivs.reserve(schema.dims());
  for (const auto& a : schema.attrs()) ivs.push_back(Interval{a.min, a.max});
  return Rect(std::move(ivs));
}

bool Rect::Contains(const Point& p) const {
  MIND_CHECK_EQ(static_cast<int>(p.size()), dims());
  for (int d = 0; d < dims(); ++d) {
    if (!ivs_[d].Contains(p[d])) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  MIND_CHECK_EQ(other.dims(), dims());
  for (int d = 0; d < dims(); ++d) {
    if (other.ivs_[d].lo < ivs_[d].lo || other.ivs_[d].hi > ivs_[d].hi) {
      return false;
    }
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  MIND_CHECK_EQ(other.dims(), dims());
  for (int d = 0; d < dims(); ++d) {
    if (!ivs_[d].Intersects(other.ivs_[d])) return false;
  }
  return true;
}

std::optional<Rect> Rect::Intersect(const Rect& other) const {
  if (!Intersects(other)) return std::nullopt;
  std::vector<Interval> ivs(dims());
  for (int d = 0; d < dims(); ++d) {
    ivs[d].lo = std::max(ivs_[d].lo, other.ivs_[d].lo);
    ivs[d].hi = std::min(ivs_[d].hi, other.ivs_[d].hi);
  }
  return Rect(std::move(ivs));
}

std::string Rect::ToString() const {
  // Appended piecewise: a chained operator+ here trips GCC 12's -Wrestrict
  // false positive (PR105651) under -O3.
  std::string s;
  for (int d = 0; d < dims(); ++d) {
    if (d) s += 'x';
    s += '[';
    s += std::to_string(ivs_[d].lo);
    s += ',';
    s += std::to_string(ivs_[d].hi);
    s += ']';
  }
  return s;
}

}  // namespace mind
