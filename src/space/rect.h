// Hyper-rectangles: the unit of both data-space partitioning (the regions
// produced by cuts) and querying (a MIND query is a hyper-rectangle).
#ifndef MIND_SPACE_RECT_H_
#define MIND_SPACE_RECT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "space/schema.h"

namespace mind {

/// Inclusive interval [lo, hi] over a uint64 attribute domain.
struct Interval {
  Value lo = 0;
  Value hi = 0;

  bool Contains(Value v) const { return lo <= v && v <= hi; }
  bool Intersects(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  /// Number of values covered; saturates at UINT64_MAX for the full domain.
  uint64_t Size() const {
    uint64_t span = hi - lo;
    return span == UINT64_MAX ? UINT64_MAX : span + 1;
  }
  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// \brief An axis-aligned hyper-rectangle: one inclusive interval per
/// dimension. A wildcarded query attribute is simply the full domain interval.
class Rect {
 public:
  Rect() = default;
  explicit Rect(std::vector<Interval> ivs) : ivs_(std::move(ivs)) {}

  /// The full data space of a schema.
  static Rect FullSpace(const Schema& schema);

  int dims() const { return static_cast<int>(ivs_.size()); }
  const Interval& interval(int d) const { return ivs_[d]; }
  Interval* mutable_interval(int d) { return &ivs_[d]; }

  bool Contains(const Point& p) const;
  bool Contains(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  /// Intersection, or nullopt if disjoint.
  std::optional<Rect> Intersect(const Rect& other) const;

  /// "[lo1,hi1]x[lo2,hi2]x...".
  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) { return a.ivs_ == b.ivs_; }

 private:
  std::vector<Interval> ivs_;
};

}  // namespace mind

#endif  // MIND_SPACE_RECT_H_
