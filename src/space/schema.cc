#include "space/schema.h"

#include <unordered_set>

#include "util/logging.h"

namespace mind {

Status Schema::Validate() const {
  if (attrs_.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  std::unordered_set<std::string> names;
  for (const auto& a : attrs_) {
    if (a.name.empty()) {
      return Status::InvalidArgument("schema attribute with empty name");
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.min > a.max) {
      return Status::InvalidArgument("attribute " + a.name + " has min > max");
    }
  }
  return Status::OK();
}

int Schema::FindAttr(const std::string& name) const {
  for (int i = 0; i < dims(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return -1;
}

Point Schema::Clamp(Point p) const {
  MIND_CHECK_EQ(static_cast<int>(p.size()), dims());
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < attrs_[i].min) p[i] = attrs_[i].min;
    if (p[i] > attrs_[i].max) p[i] = attrs_[i].max;
  }
  return p;
}

bool Schema::Contains(const Point& p) const {
  if (static_cast<int>(p.size()) != dims()) return false;
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < attrs_[i].min || p[i] > attrs_[i].max) return false;
  }
  return true;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.attrs_.size() != b.attrs_.size()) return false;
  for (size_t i = 0; i < a.attrs_.size(); ++i) {
    if (a.attrs_[i].name != b.attrs_[i].name ||
        a.attrs_[i].min != b.attrs_[i].min || a.attrs_[i].max != b.attrs_[i].max) {
      return false;
    }
  }
  return true;
}

}  // namespace mind
