// Index schemas: the k attributes of a MIND index and their value domains.
//
// All attribute values are normalized to uint64. IP addresses map directly;
// timestamps are seconds; byte counts and fanouts are plain integers. Each
// attribute declares inclusive domain bounds [min, max]; following the paper
// (§4.1, footnote), values above max are clamped to max ("assigned the
// largest possible range") — the bounds are chosen so that <0.1% of tuples
// exceed them.
#ifndef MIND_SPACE_SCHEMA_H_
#define MIND_SPACE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mind {

/// One attribute value.
using Value = uint64_t;

/// A data item's position in the k-dimensional attribute space: one Value
/// per schema attribute, in schema order.
using Point = std::vector<Value>;

struct AttributeDef {
  std::string name;
  Value min = 0;
  Value max = UINT64_MAX;
};

/// \brief The ordered attribute list of a MIND index.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attrs) : attrs_(std::move(attrs)) {}

  /// Checks names are unique and non-empty and min <= max for every attribute.
  Status Validate() const;

  int dims() const { return static_cast<int>(attrs_.size()); }
  const AttributeDef& attr(int i) const { return attrs_[i]; }
  const std::vector<AttributeDef>& attrs() const { return attrs_; }

  /// Index of the attribute named `name`, or -1.
  int FindAttr(const std::string& name) const;

  /// Clamps each coordinate of `p` into its attribute domain.
  Point Clamp(Point p) const;

  /// True if every coordinate of `p` lies within its attribute domain.
  bool Contains(const Point& p) const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<AttributeDef> attrs_;
};

}  // namespace mind

#endif  // MIND_SPACE_SCHEMA_H_
