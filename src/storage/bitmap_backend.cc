#include "storage/bitmap_backend.h"

#include <algorithm>
#include <map>

#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/validate.h"

namespace mind {

void RleBitmap::Set(uint64_t pos) {
  MIND_CHECK(pos >= next_pos_);
  const uint64_t chunk = pos / 63;
  const uint64_t cur = chunk_base_ / 63;
  if (chunk != cur) {
    FlushActive();
    if (chunk > cur + 1) AppendFill(false, chunk - cur - 1);
    chunk_base_ = chunk * 63;
  }
  active_ |= uint64_t{1} << (pos - chunk_base_);
  ++count_;
  next_pos_ = pos + 1;
}

void RleBitmap::FlushActive() {
  if (active_ == 0) {
    AppendFill(false, 1);
  } else if (active_ == kLiteralMask) {
    AppendFill(true, 1);
  } else {
    words_.push_back(active_);
  }
  active_ = 0;
}

void RleBitmap::AppendFill(bool value, uint64_t chunks) {
  const uint64_t vbit = value ? kFillValueBit : 0;
  while (chunks > 0) {
    if (!words_.empty() && (words_.back() & kFillFlag) != 0 &&
        (words_.back() & kFillValueBit) == vbit &&
        (words_.back() & kRunMask) < kRunMask) {
      const uint64_t have = words_.back() & kRunMask;
      const uint64_t add = std::min(chunks, kRunMask - have);
      words_.back() = kFillFlag | vbit | (have + add);
      chunks -= add;
      continue;
    }
    const uint64_t add = std::min(chunks, kRunMask);
    words_.push_back(kFillFlag | vbit | add);
    chunks -= add;
  }
}

Status RleBitmap::Validate(const char* what, uint32_t bucket) const {
#if MIND_VALIDATORS_ENABLED
  uint64_t chunks = 0;
  uint64_t decoded = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t w = words_[i];
    if ((w & kFillFlag) != 0) {
      const uint64_t run = w & kRunMask;
      MIND_VALIDATE(run > 0, "bitmap-index: " << what << " " << bucket
                                              << " bitmap word " << i
                                              << " is a zero-length fill");
      chunks += run;
      if ((w & kFillValueBit) != 0) decoded += run * 63;
    } else {
      ++chunks;
      decoded += static_cast<uint64_t>(__builtin_popcountll(w));
    }
  }
  MIND_VALIDATE(chunks * 63 == chunk_base_,
                "bitmap-index: " << what << " " << bucket
                                 << " bitmap encodes " << chunks * 63
                                 << " bits but its active chunk starts at "
                                 << chunk_base_);
  decoded += static_cast<uint64_t>(__builtin_popcountll(active_));
  MIND_VALIDATE((active_ & ~kLiteralMask) == 0,
                "bitmap-index: " << what << " " << bucket
                                 << " active chunk has bits beyond 63");
  MIND_VALIDATE(decoded == count_,
                "bitmap-index: " << what << " " << bucket << " decodes to "
                                 << decoded
                                 << " set bits but its cardinality counter is "
                                 << count_);
#else
  (void)what;
  (void)bucket;
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

// mind-lint: allow(backend-purity): optional counter wiring per docs/BACKENDS.md
BitmapIndexBackend::BitmapIndexBackend(telemetry::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    set_bits_ = &metrics->counter("storage.backend.bitmap.set_bits");
  }
}

void BitmapIndexBackend::Append(StoredRow row) {
  const uint64_t id = rows_.size();
  fine_.Get(FineBucket(row.key)).Set(id);
  summary_.Get(SummaryBucket(row.key)).Set(id);
  rows_.push_back(std::move(row));
  if (set_bits_ != nullptr) set_bits_->Inc(2);
}

uint64_t BitmapIndexBackend::overhead_bytes() const {
  // Encoded words plus a directory entry per bucket; telemetry-facing only.
  uint64_t words = 0;
  for (size_t i = 0; i < fine_.size(); ++i) words += fine_.map_at(i).words();
  for (size_t i = 0; i < summary_.size(); ++i) {
    words += summary_.map_at(i).words();
  }
  return words * 8 + (fine_.size() + summary_.size()) * 16;
}

namespace {
// Software-pipelined gather: a bucket's row ids are arrival-order positions,
// so consecutive set bits land on scattered rows_ lines. Buffer a batch of
// ids, prefetching each row as its id is decoded, and consume the batch one
// prefetch-distance later — decode work hides the row fetches.
constexpr size_t kGatherBatch = 16;

template <typename Filter>
void GatherRows(const RleBitmap& bm, const std::vector<StoredRow>& rows,
                RowConsumer& out, Filter&& keep) {
  uint64_t batch[kGatherBatch];
  size_t n = 0;
  bm.ForEachSet([&](uint64_t id) {
    scan::PrefetchRead(&rows[id]);
    batch[n++] = id;
    if (n == kGatherBatch) {
      for (uint64_t b : batch) {
        if (keep(rows[b])) out.Consume(rows[b]);
      }
      n = 0;
    }
  });
  for (size_t i = 0; i < n; ++i) {
    if (keep(rows[batch[i]])) out.Consume(rows[batch[i]]);
  }
}
}  // namespace

void BitmapIndexBackend::EmitAll(const RleBitmap& bm, RowConsumer& out) const {
  GatherRows(bm, rows_, out, [](const StoredRow&) { return true; });
}

void BitmapIndexBackend::EmitFiltered(const RleBitmap& bm, const KeyRange& kr,
                                      RowConsumer& out) const {
  GatherRows(bm, rows_, out, [&kr](const StoredRow& r) {
    return r.key >= kr.lo && r.key <= kr.hi;
  });
}

void BitmapIndexBackend::ScanRange(const KeyRange& kr, RowConsumer& out) const {
  if (kr.lo == 0 && kr.hi == UINT64_MAX) {
    // Full-range cover (the root code): every row qualifies.
    ScanAllRows(out);
    return;
  }
  constexpr int kFineShift = 64 - kBucketBits;
  constexpr int kSummaryShift = 64 - kSummaryBits;
  constexpr uint32_t kChildren = 1u << (kBucketBits - kSummaryBits);
  const uint32_t s_hi = SummaryBucket(kr.hi);
  for (size_t si = summary_.LowerBound(SummaryBucket(kr.lo));
       si < summary_.size() && summary_.id_at(si) <= s_hi; ++si) {
    if (si + 1 < summary_.size()) scan::PrefetchRead(&summary_.map_at(si + 1));
    const uint32_t s = summary_.id_at(si);
    const uint64_t s_start = uint64_t{s} << kSummaryShift;
    const uint64_t s_end = s_start | ((uint64_t{1} << kSummaryShift) - 1);
    if (kr.lo <= s_start && s_end <= kr.hi) {
      // Wholly covered summary bucket: one bitmap stands in for its 64
      // children — the hierarchical pruning win.
      EmitAll(summary_.map_at(si), out);
      continue;
    }
    const uint32_t f_lo = std::max(FineBucket(kr.lo), s * kChildren);
    const uint32_t f_hi =
        std::min(FineBucket(kr.hi), s * kChildren + (kChildren - 1));
    for (size_t fi = fine_.LowerBound(f_lo);
         fi < fine_.size() && fine_.id_at(fi) <= f_hi; ++fi) {
      if (fi + 1 < fine_.size()) scan::PrefetchRead(&fine_.map_at(fi + 1));
      const uint64_t b_start = uint64_t{fine_.id_at(fi)} << kFineShift;
      const uint64_t b_end = b_start | ((uint64_t{1} << kFineShift) - 1);
      if (kr.lo <= b_start && b_end <= kr.hi) {
        EmitAll(fine_.map_at(fi), out);
      } else {
        // Range endpoint inside the bucket (cover_len finer than the bucket
        // grid): per-row key check. Never taken with default knobs, where
        // cover ranges are bucket-aligned.
        EmitFiltered(fine_.map_at(fi), kr, out);
      }
    }
  }
}

void BitmapIndexBackend::ScanAllRows(RowConsumer& out) const {
  scan::SweepRows<true>(rows_, 0, rows_.size(),
                        [&out](const StoredRow& r) { out.Consume(r); });
}

Status BitmapIndexBackend::ValidateInvariants(const CutTree& cuts, int code_len,
                                              uint64_t expect_bytes) const {
#if MIND_VALIDATORS_ENABLED
  uint64_t bytes = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const StoredRow& r = rows_[i];
    const BitCode code = cuts.CodeForPoint(r.tuple.point, code_len);
    const uint64_t expect =
        code.empty() ? 0 : code.bits() << (64 - code.length());
    MIND_VALIDATE(r.key == expect,
                  "bitmap-index: row " << i << " (origin " << r.tuple.origin
                                       << " seq " << r.tuple.seq << ") keyed "
                                       << r.key << " but its point codes to "
                                       << expect
                                       << " under the installed cut tree");
    bytes += r.tuple.WireBytes() + kRowOverheadBytes;
  }
  MIND_VALIDATE(bytes == expect_bytes,
                "bitmap-index: approx_bytes_ is "
                    << expect_bytes << " but stored rows sum to " << bytes);

  // Every row id in exactly its own fine and summary bucket, each once.
  std::vector<uint64_t> ids;
  auto decode = [&ids](const RleBitmap& bm) {
    ids.clear();
    bm.ForEachSet([&ids](uint64_t id) { ids.push_back(id); });
  };
  // Directory order: strictly increasing bucket ids (the probes binary-search
  // the id arrays, so a misordered directory silently misses buckets).
  for (size_t i = 1; i < fine_.size(); ++i) {
    MIND_VALIDATE(fine_.id_at(i - 1) < fine_.id_at(i),
                  "bitmap-index: fine directory misordered at entry "
                      << i << " (" << fine_.id_at(i - 1) << " then "
                      << fine_.id_at(i) << ")");
  }
  for (size_t i = 1; i < summary_.size(); ++i) {
    MIND_VALIDATE(summary_.id_at(i - 1) < summary_.id_at(i),
                  "bitmap-index: summary directory misordered at entry "
                      << i << " (" << summary_.id_at(i - 1) << " then "
                      << summary_.id_at(i) << ")");
  }
  std::vector<uint8_t> fine_seen(rows_.size(), 0);
  std::map<uint32_t, uint64_t> child_cards;  // summary bucket -> fine total
  uint64_t fine_total = 0;
  for (size_t fi = 0; fi < fine_.size(); ++fi) {
    const uint32_t b = fine_.id_at(fi);
    const RleBitmap& bm = fine_.map_at(fi);
    MIND_RETURN_NOT_OK(bm.Validate("fine bucket", b));
    decode(bm);
    for (uint64_t id : ids) {
      MIND_VALIDATE(id < rows_.size(),
                    "bitmap-index: fine bucket " << b << " lists row id " << id
                                                 << " beyond the "
                                                 << rows_.size()
                                                 << " stored rows");
      MIND_VALIDATE(FineBucket(rows_[id].key) == b,
                    "bitmap-index: fine bucket "
                        << b << " lists row " << id << " (key "
                        << rows_[id].key << ") that buckets to "
                        << FineBucket(rows_[id].key));
      ++fine_seen[id];
    }
    child_cards[b >> (kBucketBits - kSummaryBits)] += bm.cardinality();
    fine_total += bm.cardinality();
  }
  MIND_VALIDATE(fine_total == rows_.size(),
                "bitmap-index: fine buckets hold " << fine_total
                                                   << " row ids for "
                                                   << rows_.size()
                                                   << " stored rows");
  for (size_t i = 0; i < fine_seen.size(); ++i) {
    MIND_VALIDATE(fine_seen[i] == 1,
                  "bitmap-index: row " << i << " (key " << rows_[i].key
                                       << ") appears in " << int{fine_seen[i]}
                                       << " fine buckets instead of exactly "
                                          "its own");
  }
  for (size_t si = 0; si < summary_.size(); ++si) {
    const uint32_t s = summary_.id_at(si);
    const RleBitmap& bm = summary_.map_at(si);
    MIND_RETURN_NOT_OK(bm.Validate("summary bucket", s));
    MIND_VALIDATE(bm.cardinality() == child_cards[s],
                  "bitmap-index: summary bucket "
                      << s << " cardinality " << bm.cardinality()
                      << " disagrees with its fine children's total "
                      << child_cards[s]);
    decode(bm);
    for (uint64_t id : ids) {
      MIND_VALIDATE(id < rows_.size() && SummaryBucket(rows_[id].key) == s,
                    "bitmap-index: summary bucket "
                        << s << " lists row " << id
                        << " that does not summarize to it");
    }
  }
  MIND_VALIDATE(summary_.size() <= fine_.size(),
                "bitmap-index: " << summary_.size() << " summary buckets for "
                                 << fine_.size() << " fine buckets");
#else
  (void)cuts;
  (void)code_len;
  (void)expect_bytes;
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

}  // namespace mind
