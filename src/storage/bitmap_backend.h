// Hierarchical compressed-bitmap backend (DESIGN.md §13, docs/BACKENDS.md).
//
// Rows are kept in arrival order in one flat vector; the index is a two-level
// directory of word-aligned run-length-compressed bitmaps over the key space:
//
//   fine level     top kBucketBits (12) key bits -> bitmap of row ids
//   summary level  top kSummaryBits (6) key bits -> union of its 64 children
//
// Appending a row sets one bit in its fine bucket and one in its summary
// bucket — O(1) always, no re-sort and no merge, which is why this layout
// wins ingest-heavy churn. A range scan walks the (sparse, ordered) bucket
// directories: summary buckets wholly inside the range are emitted from the
// single summary bitmap, partially covered ones descend to fine buckets, and
// only fine buckets straddling a range endpoint re-check row keys. With the
// default cover granularity (cover_len == kBucketBits) every merged cover
// range is fine-bucket aligned, so that straddle path never runs and the
// rows visited are exactly the rows a sorted-run scan would visit.
#ifndef MIND_STORAGE_BITMAP_BACKEND_H_
#define MIND_STORAGE_BITMAP_BACKEND_H_

#include <cstdint>
#include <vector>

#include "storage/index_backend.h"
#include "storage/scan_kernels.h"

namespace mind {

namespace telemetry {
class Counter;
}  // namespace telemetry

/// Word-aligned RLE bitmap (WAH-style) over 63-bit logical chunks.
///
/// Encoded words: MSB 0 -> literal carrying the next 63 bits; MSB 1 -> fill,
/// bit 62 the fill value, low 62 bits the run length in 63-bit chunks. The
/// chunk currently being filled stays in `active_` and is encoded only when
/// a Set crosses into a later chunk, so Set is append-only: positions must
/// strictly increase (row ids do).
class RleBitmap {
 public:
  /// Sets bit `pos`; `pos` must be greater than every previously set bit.
  void Set(uint64_t pos);

  /// Number of set bits.
  uint64_t cardinality() const { return count_; }

  /// Physical encoded words (the active chunk counts as one).
  uint64_t words() const { return words_.size() + 1; }

  /// Invokes `fn(pos)` for every set bit in increasing position order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    uint64_t pos = 0;
    for (uint64_t w : words_) {
      if ((w & kFillFlag) != 0) {
        const uint64_t chunks = w & kRunMask;
        if ((w & kFillValueBit) != 0) {
          for (uint64_t i = 0; i < chunks * 63; ++i) fn(pos + i);
        }
        pos += chunks * 63;
      } else {
        for (uint64_t bits = w; bits != 0; bits &= bits - 1) {
          fn(pos + static_cast<uint64_t>(__builtin_ctzll(bits)));
        }
        pos += 63;
      }
    }
    for (uint64_t bits = active_; bits != 0; bits &= bits - 1) {
      fn(pos + static_cast<uint64_t>(__builtin_ctzll(bits)));
    }
  }

  /// Structural word invariants: fills have nonzero runs, decoded length
  /// matches the active chunk's base, decoded set bits match cardinality().
  /// `what`/`bucket` label the owning bucket in diagnostics. Returns OK
  /// trivially when MIND_VALIDATORS is off.
  Status Validate(const char* what, uint32_t bucket) const;

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  static constexpr uint64_t kFillFlag = uint64_t{1} << 63;
  static constexpr uint64_t kFillValueBit = uint64_t{1} << 62;
  static constexpr uint64_t kRunMask = kFillValueBit - 1;
  static constexpr uint64_t kLiteralMask = kFillFlag - 1;

  void FlushActive();
  void AppendFill(bool value, uint64_t chunks);

  std::vector<uint64_t> words_;  // encoded chunks before the active one
  uint64_t active_ = 0;          // literal bits of chunk [chunk_base_, +63)
  uint64_t chunk_base_ = 0;      // logical position of active_'s bit 0
  uint64_t next_pos_ = 0;        // smallest position Set still accepts
  uint64_t count_ = 0;           // set bits
};

/// Sorted flat bucket directory: bucket ids in one contiguous cache-line-
/// aligned array searched with the branch-free prefetching kernels, bitmaps
/// in a parallel array. Replaces the former std::map directories: a probe
/// touches 16 ids per line instead of chasing red-black tree pointers, and a
/// range walk is a linear sweep over both arrays. Inserting a *new* bucket
/// shifts the tail, but the directory is bounded (2^kBucketBits entries) and
/// the hot path — appending to an existing bucket — never inserts.
class BucketDirectory {
 public:
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  uint32_t id_at(size_t i) const { return ids_[i]; }
  const RleBitmap& map_at(size_t i) const { return maps_[i]; }
  RleBitmap& map_at(size_t i) { return maps_[i]; }

  /// First position whose bucket id is >= `id`; size() if none.
  size_t LowerBound(uint32_t id) const {
    return scan::LowerBound<true>(ids_.data(), ids_.size(), id);
  }

  /// The bitmap for `id`, inserted empty at its sorted position if absent.
  RleBitmap& Get(uint32_t id) {
    const size_t i = LowerBound(id);
    if (i < ids_.size() && ids_[i] == id) return maps_[i];
    ids_.insert(ids_.begin() + static_cast<long>(i), id);
    maps_.insert(maps_.begin() + static_cast<long>(i), RleBitmap());
    return maps_[i];
  }

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  std::vector<uint32_t, scan::AlignedAlloc<uint32_t>> ids_;  // sorted
  std::vector<RleBitmap> maps_;  // maps_[i] indexes bucket ids_[i]'s rows
};

class BitmapIndexBackend final : public IndexBackend {
 public:
  /// Fine bucket = top 12 key bits: matches TupleStoreOptions::cover_len's
  /// default, which makes merged cover ranges bucket-aligned (see the file
  /// comment). Summary bucket = top 6 bits, 64 fine children each.
  static constexpr int kBucketBits = 12;
  static constexpr int kSummaryBits = 6;

  // A null registry leaves behavior and digests identical (docs/BACKENDS.md).
  // mind-lint: allow(backend-purity): optional counters per docs/BACKENDS.md
  explicit BitmapIndexBackend(telemetry::MetricsRegistry* metrics);

  IndexBackendKind kind() const override { return IndexBackendKind::kBitmap; }
  void Append(StoredRow row) override;
  /// Bitmaps are append-final: nothing to merge, nothing to re-sort.
  void Compact() override {}
  size_t size() const override { return rows_.size(); }
  uint64_t overhead_bytes() const override;
  void ScanRange(const KeyRange& kr, RowConsumer& out) const override;
  void ScanAllRows(RowConsumer& out) const override;
  Status ValidateInvariants(const CutTree& cuts, int code_len,
                            uint64_t expect_bytes) const override;

  size_t fine_buckets() const { return fine_.size(); }
  size_t summary_buckets() const { return summary_.size(); }

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  static uint32_t FineBucket(uint64_t key) {
    return static_cast<uint32_t>(key >> (64 - kBucketBits));
  }
  static uint32_t SummaryBucket(uint64_t key) {
    return static_cast<uint32_t>(key >> (64 - kSummaryBits));
  }

  void EmitAll(const RleBitmap& bm, RowConsumer& out) const;
  void EmitFiltered(const RleBitmap& bm, const KeyRange& kr,
                    RowConsumer& out) const;

  std::vector<StoredRow> rows_;  // arrival order; bitmaps hold row ids
  // Sparse ordered directories: only non-empty buckets exist, and ordered
  // iteration gives range scans and validation a deterministic walk.
  BucketDirectory fine_;
  BucketDirectory summary_;
  // storage.backend.bitmap.* counters; null without a registry.
  // mind-lint: allow(backend-purity): optional counter per docs/BACKENDS.md
  telemetry::Counter* set_bits_ = nullptr;
};

}  // namespace mind

#endif  // MIND_STORAGE_BITMAP_BACKEND_H_
