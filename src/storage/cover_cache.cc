#include "storage/cover_cache.h"

#include "telemetry/metrics.h"
#include "util/digest.h"

namespace mind {

namespace {

uint64_t EntryDigest(const Rect& rect, const CutTree* cuts, int len) {
  Fnv64 h;
  h.Mix(static_cast<uint64_t>(rect.dims()));
  for (int d = 0; d < rect.dims(); ++d) {
    h.Mix(rect.interval(d).lo);
    h.Mix(rect.interval(d).hi);
  }
  h.Mix(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(cuts)));
  h.Mix(static_cast<uint64_t>(len));
  return h.value();
}

}  // namespace

CoverRanges ComputeCoverRanges(const CutTree& cuts, const Rect& rect, int len,
                               size_t max_codes) {
  CoverRanges out;
  auto cover = cuts.Cover(rect, len, max_codes);
  if (!cover.ok()) {
    out.fallback = true;
    return out;
  }
  for (const BitCode& code : cover.value()) {
    uint64_t lo = CodeKey(code);
    uint64_t hi = CodeKeyEnd(code);
    // CoverRec emits codes in ascending key order (bit-0 child first), so
    // abutting regions arrive adjacent and merge in place.
    if (!out.ranges.empty() && out.ranges.back().hi != UINT64_MAX &&
        out.ranges.back().hi + 1 == lo) {
      out.ranges.back().hi = hi;
    } else {
      out.ranges.push_back({lo, hi});
    }
  }
  return out;
}

CoverCache::CoverCache(telemetry::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    hits_ = &metrics->counter("storage.cover_cache.hits");
    misses_ = &metrics->counter("storage.cover_cache.misses");
  }
}

const CoverRanges* CoverCache::GetOrCompute(const Rect& rect,
                                            const CutTreeRef& cuts, int len,
                                            size_t max_codes) {
  if (table_epoch_ != epoch_) {
    table_.clear();
    entries_ = 0;
    table_epoch_ = epoch_;
  }
  const uint64_t key = EntryDigest(rect, cuts.get(), len);
  auto it = table_.find(key);
  if (it != table_.end()) {
    for (const Entry& e : it->second) {
      if (e.len == len && e.cuts.get() == cuts.get() && e.rect == rect) {
        if (hits_ != nullptr) hits_->Inc();
        return &e.cover;
      }
    }
  }
  if (misses_ != nullptr) misses_->Inc();
  if (entries_ >= kMaxEntries) {
    table_.clear();
    entries_ = 0;
  }
  Entry e;
  e.rect = rect;
  e.cuts = cuts;
  e.len = len;
  e.cover = ComputeCoverRanges(*cuts, rect, len, max_codes);
  std::vector<Entry>& chain = table_[key];
  chain.push_back(std::move(e));
  ++entries_;
  return &chain.back().cover;
}

}  // namespace mind
