// Memoized query covers for the per-node query path.
//
// CutTree::Cover is a pure function of an immutable cut tree, a query
// rectangle and the cover length, yet the query path recomputes it for every
// store scan — twice per resolved sub-query, since the primary and replica
// stores of a version share one embedding. The cache maps (rect digest, cuts
// identity, cover length) to the cover lowered into *merged key ranges*:
// abutting codes collapse into one range, so adjacent codes cost one binary
// search instead of many.
//
// Entries pin their cut tree (CutTreeRef), so pointer identity can never be
// confused by allocator address reuse, and every hit is verified against the
// stored rectangle — a digest collision degrades to a recompute, never to
// wrong ranges. Invalidation mirrors the overlay route cache: Invalidate()
// bumps an epoch and the table clears lazily at the next lookup. Because
// entries are pure functions of pinned immutable inputs they cannot go
// stale; the epoch exists to release memory when indices are dropped or the
// node crashes.
#ifndef MIND_STORAGE_COVER_CACHE_H_
#define MIND_STORAGE_COVER_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "space/cut_tree.h"
#include "space/rect.h"

namespace mind {

namespace telemetry {
class Counter;
class MetricsRegistry;
}  // namespace telemetry

/// Inclusive interval [lo, hi] in tuple-store key space (left-aligned code
/// bits; see TupleStore).
struct KeyRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// Left-aligned 64-bit key of a code, and the inclusive end of the key range
/// its region occupies. The store's row keys and the cover's ranges live in
/// this one key space.
inline uint64_t CodeKey(const BitCode& code) {
  if (code.length() == 0) return 0;
  return code.bits() << (64 - code.length());
}
inline uint64_t CodeKeyEnd(const BitCode& code) {
  if (code.length() == 0) return UINT64_MAX;
  uint64_t span =
      (code.length() == 64) ? 0 : ((uint64_t{1} << (64 - code.length())) - 1);
  return CodeKey(code) + span;
}

/// A query cover lowered to key space, abutting codes merged — or `fallback`
/// when Cover() overflowed `max_codes` and the scan must walk every row.
struct CoverRanges {
  bool fallback = false;
  std::vector<KeyRange> ranges;
};

/// Merged key ranges of `cuts.Cover(rect, len, max_codes)` (fallback on
/// cover overflow). Pure; the cache and cache-less scans share it.
CoverRanges ComputeCoverRanges(const CutTree& cuts, const Rect& rect, int len,
                               size_t max_codes);

class CoverCache {
 public:
  /// `metrics`, when non-null, receives `storage.cover_cache.hits` and
  /// `storage.cover_cache.misses`.
  explicit CoverCache(telemetry::MetricsRegistry* metrics = nullptr);

  /// The merged ranges for (rect, cuts, len), computed and cached on miss.
  /// The returned pointer is valid until the next GetOrCompute or
  /// Invalidate call.
  const CoverRanges* GetOrCompute(const Rect& rect, const CutTreeRef& cuts,
                                  int len, size_t max_codes);

  /// Epoch bump; the table clears at the next lookup (route-cache idiom).
  void Invalidate() { ++epoch_; }

  /// Cached entry count (after any pending epoch clear has been applied).
  size_t size() const { return table_epoch_ == epoch_ ? entries_ : 0; }

  /// Entry budget; the table clears wholesale when it fills. Query workloads
  /// re-probe the same few rectangles per distributed query (one per store
  /// per sub-query), so a small table already captures the win.
  static constexpr size_t kMaxEntries = 512;

 private:
  struct Entry {
    Rect rect;
    CutTreeRef cuts;  // pinned: identity stays unique for the entry's life
    int len = 0;
    CoverRanges cover;
  };

  uint64_t epoch_ = 0;
  uint64_t table_epoch_ = 0;
  // digest-keyed chains: a hash collision is resolved by the full (rect,
  // cuts, len) comparison below, never trusted.
  std::unordered_map<uint64_t, std::vector<Entry>> table_;
  size_t entries_ = 0;
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
};

}  // namespace mind

#endif  // MIND_STORAGE_COVER_CACHE_H_
