#include "storage/index_backend.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "storage/bitmap_backend.h"
#include "storage/sorted_runs_backend.h"
#include "storage/tuple_store.h"
#include "util/logging.h"

namespace mind {

const char* IndexBackendKindName(IndexBackendKind kind) {
  switch (kind) {
    case IndexBackendKind::kSortedRuns:
      return "sorted";
    case IndexBackendKind::kBitmap:
      return "bitmap";
    case IndexBackendKind::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

IndexBackendKind DefaultIndexBackendKind() {
  // Read once and cached: the environment must not change mid-run, or two
  // nodes created at different times could disagree on the default.
  static const IndexBackendKind kind = [] {
    const char* env = std::getenv("MIND_BACKEND");
    if (env == nullptr || std::strcmp(env, "sorted") == 0) {
      return IndexBackendKind::kSortedRuns;
    }
    if (std::strcmp(env, "bitmap") == 0) return IndexBackendKind::kBitmap;
    if (std::strcmp(env, "adaptive") == 0) return IndexBackendKind::kAdaptive;
    MIND_LOG(Warning) << "MIND_BACKEND=" << env
                   << " is not sorted|bitmap|adaptive; using sorted";
    return IndexBackendKind::kSortedRuns;
  }();
  return kind;
}

namespace {

// Calibration constants for the DGFIndex-style workload cost model
// (docs/BACKENDS.md §"Adaptive cost model"; calibrated against
// bench_fig19_churn's store phases). Abstract units — only the ratio between
// the two totals matters, and the inputs are sim-deterministic, so the
// choice replays bit-identically.
constexpr double kSortedAppend = 1.0;       // delta push per insert
constexpr double kSortedMergePerRow = 0.5;  // x log2(N): amortized compaction
constexpr double kSortedProbe = 2.0;        // x log2(N): searches per range
constexpr double kSortedRowVisit = 1.0;     // contiguous run walk
constexpr double kBitmapSet = 2.5;          // fine + summary RLE append
constexpr double kBitmapBucketProbe = 6.0;  // directory walk per range
constexpr double kBitmapRowVisit = 1.5;     // decode + row-id indirection

double Log2Rows(double n) { return std::log2(n + 2.0); }

}  // namespace

BackendCostEstimate EstimateBackendCosts(const BackendWorkloadStats& stats) {
  const double n = static_cast<double>(stats.rows);
  const double r = static_cast<double>(stats.cover_ranges);
  const double e = static_cast<double>(stats.rows_examined);
  BackendCostEstimate c;
  c.sorted = n * (kSortedAppend + kSortedMergePerRow * Log2Rows(n)) +
             r * kSortedProbe * Log2Rows(n) + e * kSortedRowVisit;
  c.bitmap = n * kBitmapSet + r * kBitmapBucketProbe + e * kBitmapRowVisit;
  return c;
}

IndexBackendKind ChooseIndexBackend(const BackendWorkloadStats& stats) {
  if (stats.cold()) return IndexBackendKind::kSortedRuns;
  const BackendCostEstimate c = EstimateBackendCosts(stats);
  return c.bitmap < c.sorted ? IndexBackendKind::kBitmap
                             : IndexBackendKind::kSortedRuns;
}

std::unique_ptr<IndexBackend> MakeIndexBackend(
    IndexBackendKind kind, const TupleStoreOptions& options,
    telemetry::MetricsRegistry* metrics) {
  switch (kind) {
    case IndexBackendKind::kSortedRuns:
      return std::make_unique<SortedRunsBackend>(
          options.compaction, options.compact_min_delta, options.compact_ratio,
          metrics);
    case IndexBackendKind::kBitmap:
      return std::make_unique<BitmapIndexBackend>(metrics);
    case IndexBackendKind::kAdaptive:
      break;
  }
  MIND_CHECK(false);  // kAdaptive must resolve via ChooseIndexBackend first
  return nullptr;
}

}  // namespace mind
