// The per-store index-backend seam (DESIGN.md §13, docs/BACKENDS.md).
//
// A TupleStore owns exactly one IndexBackend: the physical layout holding its
// rows. The facade keeps everything layout-independent — cover computation
// (and the shared CoverCache), rectangle filtering, scan-efficiency counters,
// digests, histograms, byte accounting — while the backend answers one
// question fast: "which stored rows have keys inside this range?".
//
// The contract every backend must honor (docs/BACKENDS.md spells out the
// obligations in full):
//
//   * ScanRange(kr) visits each row whose key lies in [kr.lo, kr.hi] exactly
//     once, and no row outside it. Visit ORDER is backend-private: everything
//     downstream (reply assembly, digests, histogram mass, query-processing
//     latency) is order-independent by construction, so a backend may emit
//     key order, arrival order, or bucket order.
//   * ScanAllRows visits every row exactly once (fallback scans, digests,
//     histograms).
//   * Compact() is layout-only: results, counts and digests are identical
//     whether or not it ever runs.
//   * Digest transparency: because the facade folds digests from ScanAllRows
//     with an order-independent accumulator, swapping backends must leave
//     MindNet::StateDigest and every replay digest bit-identical. The
//     StorePathIntegrationTest.BackendsAreTransparent sweep enforces this.
#ifndef MIND_STORAGE_INDEX_BACKEND_H_
#define MIND_STORAGE_INDEX_BACKEND_H_

#include <cstdint>
#include <memory>

#include "space/cut_tree.h"
#include "storage/cover_cache.h"
#include "storage/tuple.h"

namespace mind {

namespace telemetry {
class MetricsRegistry;
}  // namespace telemetry

struct TupleStoreOptions;

/// Physical layouts a store can run on. kAdaptive is a *selection policy*,
/// not a layout: the store resolves it to one of the concrete kinds at
/// construction from the previous version's workload stats (DGFIndex-style
/// cost estimate, see ChooseIndexBackend).
enum class IndexBackendKind {
  kSortedRuns = 0,  // two sorted runs, LSM-style (the PR 4 layout; default)
  kBitmap = 1,      // hierarchical word-aligned RLE bitmaps over key buckets
  kAdaptive = 2,    // pick kSortedRuns or kBitmap per store from ingest stats
};

/// Short stable name ("sorted", "bitmap", "adaptive") — used in telemetry
/// counter names and bench export keys, so changing one is a schema change.
const char* IndexBackendKindName(IndexBackendKind kind);

/// The session-wide default: MIND_BACKEND=sorted|bitmap|adaptive when set
/// (read once, cached — the env must not change mid-run), else kSortedRuns.
/// Applied only to MindOptions::store_backend; a TupleStore constructed
/// directly always defaults to kSortedRuns regardless of the environment.
IndexBackendKind DefaultIndexBackendKind();

/// A stored tuple and its left-aligned data-space code key — the unit every
/// backend stores and every scan visits.
struct StoredRow {
  uint64_t key;  // left-aligned code bits (CodeKey of the insert code)
  Tuple tuple;
};

/// Fixed per-row overhead charged to approx_bytes() on top of the tuple's
/// wire size (key + bookkeeping; backend-independent so byte accounting and
/// capacity gauges never depend on the layout choice).
inline constexpr uint64_t kRowOverheadBytes = 16;

/// Ingest/query tallies a closing store hands to its successor at version
/// freeze — the evidence base for the adaptive backend choice. All fields are
/// sim-deterministic (no telemetry, no wall clock), so the choice replays
/// bit-identically.
struct BackendWorkloadStats {
  uint64_t rows = 0;           // tuples inserted
  uint64_t queries = 0;        // store scans served
  uint64_t cover_ranges = 0;   // merged key ranges across all scans
  uint64_t rows_examined = 0;  // rows visited by those scans
  uint64_t rows_matched = 0;   // rows that passed the rectangle filter
  bool cold() const { return rows == 0 && queries == 0; }
};

/// Estimated total workload cost (abstract units) of running the observed
/// workload on each concrete backend — the DGFIndex-style model documented
/// in docs/BACKENDS.md §"Adaptive cost model".
struct BackendCostEstimate {
  double sorted = 0;
  double bitmap = 0;
};
BackendCostEstimate EstimateBackendCosts(const BackendWorkloadStats& stats);

/// The concrete kind kAdaptive resolves to: the cheaper estimate, kSortedRuns
/// on cold stats or a tie. Pure and deterministic; never returns kAdaptive.
IndexBackendKind ChooseIndexBackend(const BackendWorkloadStats& stats);

/// Type-erased per-row visitor. Implemented by a stack adapter in the facade
/// (RowConsumerAdapter) so the scan hot path pays one virtual call per row
/// and never allocates.
class RowConsumer {
 public:
  virtual void Consume(const StoredRow& row) = 0;

 protected:
  ~RowConsumer() = default;
};

template <typename Fn>
class RowConsumerAdapter final : public RowConsumer {
 public:
  explicit RowConsumerAdapter(Fn& fn) : fn_(fn) {}
  void Consume(const StoredRow& row) override { fn_(row); }

 private:
  Fn& fn_;
};

/// One physical layout. See the file comment for the contract; see
/// docs/BACKENDS.md for the checklist a third backend must satisfy.
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;

  virtual IndexBackendKind kind() const = 0;
  const char* name() const { return IndexBackendKindName(kind()); }

  /// Adds one row. Keys arrive in any order; amortized O(1) is the target.
  virtual void Append(StoredRow row) = 0;

  /// Version-freeze / maintenance hook. Layout-only by contract.
  virtual void Compact() = 0;

  virtual size_t size() const = 0;

  /// Bytes of index structure beyond the tuples themselves (bitmap words,
  /// bucket directories, ...). Telemetry-facing only: never part of
  /// approx_bytes(), digests, or anything the sim's timing can see.
  virtual uint64_t overhead_bytes() const = 0;

  /// Visits exactly the rows whose key lies in [kr.lo, kr.hi], each once.
  virtual void ScanRange(const KeyRange& kr, RowConsumer& out) const = 0;

  /// Visits every row exactly once.
  virtual void ScanAllRows(RowConsumer& out) const = 0;

  /// Backend-structure invariants (run order, bitmap shape, bucket
  /// membership), plus the shared obligations: every row's key equals its
  /// point's code under `cuts` at `code_len` bits, and the rows' wire bytes
  /// (+ kRowOverheadBytes each) sum to `expect_bytes`. Returns OK trivially
  /// when MIND_VALIDATORS is off.
  virtual Status ValidateInvariants(const CutTree& cuts, int code_len,
                                    uint64_t expect_bytes) const = 0;
};

/// Constructs a concrete backend. `kind` must not be kAdaptive (resolve it
/// first with ChooseIndexBackend). `metrics` may be null; backends register
/// their storage.* counters against it otherwise.
std::unique_ptr<IndexBackend> MakeIndexBackend(
    IndexBackendKind kind, const TupleStoreOptions& options,
    telemetry::MetricsRegistry* metrics);

}  // namespace mind

#endif  // MIND_STORAGE_INDEX_BACKEND_H_
