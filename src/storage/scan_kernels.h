// Cache-conscious scan primitives shared by the index backends.
//
// The motivating observation ("Fast Query Processing by Distributing an
// Index over CPU Caches", PAPERS.md) is that a range probe's cost is cache
// misses, not comparisons. Three techniques, all layout-transparent:
//
//  * branch-free binary search: the classic base += (probe < key) ? half : 0
//    form compiles to a conditional move, so the probe loop has no
//    mispredicted branch and the next iteration's two candidate midpoints
//    can be prefetched before the current compare resolves;
//  * parallel key columns: backends search a contiguous uint64_t array
//    (8 keys per cache line, 64-byte aligned via AlignedAlloc) instead of
//    striding through 70-byte StoredRow structs — the last three probe
//    levels of a 4k-row run share one line instead of touching three;
//  * two-bound range scans: one LowerBound for kr.lo plus one UpperBound
//    for kr.hi turn the emit loop into a pure [begin, end) sweep with no
//    per-row hi check, and the sweep prefetches rows a fixed distance ahead.
//
// Every kernel is templated on `kPrefetch` so the micro-benches
// (BM_ScanRangeSorted / BM_ScanRangeBitmap / BM_CoverProbe) can measure the
// prefetch contribution in isolation; backends always instantiate the
// prefetching variant. Results are bit-identical either way: prefetch is a
// pure hint and the search math does not change.
#ifndef MIND_STORAGE_SCAN_KERNELS_H_
#define MIND_STORAGE_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mind {
namespace scan {

/// Cache-line size assumed by the aligned allocator and the prefetch
/// distance math. 64 bytes everywhere this project runs.
inline constexpr std::size_t kCacheLineBytes = 64;

/// How many rows ahead of the emit cursor a range sweep prefetches. StoredRow
/// is ~two cache lines, so 8 rows keeps roughly a dozen lines in flight —
/// enough to hide a DRAM miss without thrashing L1.
inline constexpr std::size_t kEmitPrefetchDistance = 8;

/// Read-prefetch with high temporal locality. A plain function (not a macro)
/// so call sites stay greppable; compiles to one prefetcht0 / prfm.
inline void PrefetchRead(const void* p) { __builtin_prefetch(p, 0, 3); }

/// Minimal cache-line-aligned allocator: run key columns and bucket
/// directories start on a line boundary, so key i and key i+7 never straddle
/// one avoidably.
template <typename T>
struct AlignedAlloc {
  using value_type = T;

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }
  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) {
    return true;
  }
};

/// Contiguous cache-line-aligned key column (the "run node" layout).
using KeyColumn = std::vector<uint64_t, AlignedAlloc<uint64_t>>;

/// First index i in the sorted [keys, keys+n) with keys[i] >= key; n if none.
/// Branch-free: the interval update is a conditional move, and each level
/// prefetches both candidate midpoints of the next level.
template <bool kPrefetch, typename K>
inline std::size_t LowerBound(const K* keys, std::size_t n, K key) {
  if (n == 0) return 0;
  const K* base = keys;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    if constexpr (kPrefetch) {
      PrefetchRead(base + half / 2);
      PrefetchRead(base + half + (len - half) / 2);
    }
    base += (base[half - 1] < key) ? half : 0;
    len -= half;
  }
  return static_cast<std::size_t>(base - keys) + (*base < key ? 1 : 0);
}

/// First index i in the sorted [keys, keys+n) with keys[i] > key; n if none.
template <bool kPrefetch, typename K>
inline std::size_t UpperBound(const K* keys, std::size_t n, K key) {
  if (n == 0) return 0;
  const K* base = keys;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    if constexpr (kPrefetch) {
      PrefetchRead(base + half / 2);
      PrefetchRead(base + half + (len - half) / 2);
    }
    base += (base[half - 1] <= key) ? half : 0;
    len -= half;
  }
  return static_cast<std::size_t>(base - keys) + (*base <= key ? 1 : 0);
}

/// The [begin, end) index range of keys inside the inclusive [lo, hi] range:
/// one LowerBound for lo, one UpperBound for hi over the remaining suffix.
/// The caller's emit loop needs no per-row hi comparison afterwards.
template <bool kPrefetch, typename K>
inline std::pair<std::size_t, std::size_t> RangeBounds(const K* keys,
                                                       std::size_t n, K lo,
                                                       K hi) {
  const std::size_t b = LowerBound<kPrefetch>(keys, n, lo);
  const std::size_t e = b + UpperBound<kPrefetch>(keys + b, n - b, hi);
  return {b, e};
}

/// Sweeps rows[begin, end) through `emit` with a fixed prefetch distance.
/// `rows` only needs operator[]; `emit` receives a const reference.
template <bool kPrefetch, typename Rows, typename Emit>
inline void SweepRows(const Rows& rows, std::size_t begin, std::size_t end,
                      Emit&& emit) {
  for (std::size_t i = begin; i < end; ++i) {
    if constexpr (kPrefetch) {
      const std::size_t ahead = i + kEmitPrefetchDistance;
      if (ahead < end) PrefetchRead(&rows[ahead]);
    }
    emit(rows[i]);
  }
}

/// Whether SweepFieldSum below runs its vectorized arm in this build.
inline constexpr bool kHaveAvx2Gather =
#if defined(__AVX2__)
    true;
#else
    false;
#endif

/// The reduction-shaped specialization of SweepRows: sums the uint64_t field
/// at byte offset `field_offset` of each row in rows[begin, end).
///
/// When the emit callback is a pure field accumulation (count/sum style
/// aggregation over a range scan), the callback indirection disappears and
/// the per-row loads become a strided gather — under AVX2, four rows' fields
/// per _mm256_i64gather_epi64 (byte-offset indices, scale 1, so row size
/// need not be a multiple of 8). The scalar fallback is bit-identical:
/// integer summation is associative, lane order does not matter. The offset
/// is a runtime value (member pointers through non-standard-layout rows).
template <typename Row>
inline uint64_t SweepFieldSum(const Row* rows, std::size_t begin,
                              std::size_t end, std::size_t field_offset) {
  const char* base = reinterpret_cast<const char*>(rows) + field_offset;
  uint64_t sum = 0;
  std::size_t i = begin;
#if defined(__AVX2__)
  const __m256i idx = _mm256_set_epi64x(
      static_cast<long long>(3 * sizeof(Row)),
      static_cast<long long>(2 * sizeof(Row)),
      static_cast<long long>(1 * sizeof(Row)), 0);
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= end; i += 4) {
    const auto* p =
        reinterpret_cast<const long long*>(base + i * sizeof(Row));
    acc = _mm256_add_epi64(acc, _mm256_i64gather_epi64(p, idx, 1));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
#endif
  for (; i < end; ++i) {
    uint64_t v;
    std::memcpy(&v, base + i * sizeof(Row), sizeof(v));
    sum += v;
  }
  return sum;
}

}  // namespace scan
}  // namespace mind

#endif  // MIND_STORAGE_SCAN_KERNELS_H_
