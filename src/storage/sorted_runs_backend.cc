#include "storage/sorted_runs_backend.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/validate.h"

namespace mind {

// mind-lint: allow(backend-purity): optional counter wiring per docs/BACKENDS.md
SortedRunsBackend::SortedRunsBackend(bool compaction, size_t compact_min_delta,
                                     size_t compact_ratio,
                                     telemetry::MetricsRegistry* metrics)
    : compaction_(compaction),
      compact_min_delta_(compact_min_delta),
      compact_ratio_(compact_ratio) {
  MIND_CHECK(compact_ratio_ > 0);
  if (metrics != nullptr) {
    compactions_ = &metrics->counter("storage.compaction.count");
    compaction_rows_ = &metrics->counter("storage.compaction.rows");
  }
}

void SortedRunsBackend::Append(StoredRow row) {
  // An append that keeps key order keeps the delta sorted (time-correlated
  // inserts often do); only a true inversion forces the lazy re-sort.
  if (!delta_.empty() && delta_.back().key > row.key) delta_sorted_ = false;
  delta_keys_.push_back(row.key);
  delta_.push_back(std::move(row));
  MaybeCompact();
}

void SortedRunsBackend::RebuildKeys(const std::vector<StoredRow>& run,
                                    scan::KeyColumn* keys) {
  keys->resize(run.size());
  for (size_t i = 0; i < run.size(); ++i) (*keys)[i] = run[i].key;
}

void SortedRunsBackend::MaybeCompact() {
  if (!compaction_) return;
  if (delta_.size() < compact_min_delta_) return;
  if (delta_.size() * compact_ratio_ <= base_.size()) return;
  Compact();
}

void SortedRunsBackend::Compact() {
  if (delta_.empty()) return;
  EnsureDeltaSorted();
  const size_t merged = delta_.size();
  const size_t mid = base_.size();
  base_.insert(base_.end(), std::make_move_iterator(delta_.begin()),
               std::make_move_iterator(delta_.end()));
  std::inplace_merge(
      base_.begin(), base_.begin() + static_cast<long>(mid), base_.end(),
      [](const StoredRow& a, const StoredRow& b) { return a.key < b.key; });
  delta_.clear();
  delta_keys_.clear();
  delta_sorted_ = true;
  RebuildKeys(base_, &base_keys_);
  if (compactions_ != nullptr) compactions_->Inc();
  if (compaction_rows_ != nullptr) compaction_rows_->Inc(merged);
}

void SortedRunsBackend::EnsureDeltaSorted() const {
  if (delta_sorted_) return;
  std::sort(delta_.begin(), delta_.end(),
            [](const StoredRow& a, const StoredRow& b) { return a.key < b.key; });
  delta_sorted_ = true;
  RebuildKeys(delta_, &delta_keys_);
}

void SortedRunsBackend::ScanRun(const std::vector<StoredRow>& run,
                                const scan::KeyColumn& keys, const KeyRange& kr,
                                RowConsumer& out) const {
  const auto [begin, end] =
      scan::RangeBounds<true>(keys.data(), keys.size(), kr.lo, kr.hi);
  scan::SweepRows<true>(run, begin, end,
                        [&out](const StoredRow& r) { out.Consume(r); });
}

void SortedRunsBackend::ScanRange(const KeyRange& kr, RowConsumer& out) const {
  EnsureDeltaSorted();
  ScanRun(base_, base_keys_, kr, out);
  ScanRun(delta_, delta_keys_, kr, out);
}

void SortedRunsBackend::ScanAllRows(RowConsumer& out) const {
  // Walk both runs as they sit — a scan that visits everything gains nothing
  // from restored key order.
  for (const StoredRow& r : base_) out.Consume(r);
  for (const StoredRow& r : delta_) out.Consume(r);
}

Status SortedRunsBackend::ValidateInvariants(const CutTree& cuts, int code_len,
                                             uint64_t expect_bytes) const {
#if MIND_VALIDATORS_ENABLED
  uint64_t bytes = 0;
  auto check_run = [&](const std::vector<StoredRow>& run, bool claims_sorted,
                       const char* name) -> Status {
    for (size_t i = 0; i < run.size(); ++i) {
      const StoredRow& r = run[i];
      MIND_VALIDATE(!claims_sorted || i == 0 || run[i - 1].key <= r.key,
                    "tuple-store: " << name << " run claims sorted but row " << i
                                    << " (key " << r.key << ") is below row "
                                    << i - 1 << " (key " << run[i - 1].key
                                    << ")");
      const BitCode code = cuts.CodeForPoint(r.tuple.point, code_len);
      const uint64_t expect =
          code.empty() ? 0 : code.bits() << (64 - code.length());
      MIND_VALIDATE(r.key == expect,
                    "tuple-store: " << name << " row " << i << " (origin "
                                    << r.tuple.origin << " seq " << r.tuple.seq
                                    << ") keyed " << r.key
                                    << " but its point codes to " << expect
                                    << " under the installed cut tree");
      bytes += r.tuple.WireBytes() + kRowOverheadBytes;
    }
    return Status::OK();
  };
  // The base run's order is unconditional; the delta's only when claimed.
  MIND_RETURN_NOT_OK(check_run(base_, true, "base"));
  MIND_RETURN_NOT_OK(check_run(delta_, delta_sorted_, "delta"));
  // The derived key columns must mirror their runs element-for-element:
  // probes search the column but emits read the rows, so drift would
  // silently return wrong rows.
  auto check_keys = [](const std::vector<StoredRow>& run,
                       const scan::KeyColumn& keys,
                       const char* name) -> Status {
    MIND_VALIDATE(keys.size() == run.size(),
                  "tuple-store: " << name << " key column holds " << keys.size()
                                  << " keys for " << run.size() << " rows");
    for (size_t i = 0; i < run.size(); ++i) {
      MIND_VALIDATE(keys[i] == run[i].key,
                    "tuple-store: " << name << " key column entry " << i
                                    << " is " << keys[i]
                                    << " but the row is keyed " << run[i].key);
    }
    return Status::OK();
  };
  MIND_RETURN_NOT_OK(check_keys(base_, base_keys_, "base"));
  MIND_RETURN_NOT_OK(check_keys(delta_, delta_keys_, "delta"));
  MIND_VALIDATE(bytes == expect_bytes,
                "tuple-store: approx_bytes_ is "
                    << expect_bytes << " but base+delta rows sum to " << bytes);
#else
  (void)cuts;
  (void)code_len;
  (void)expect_bytes;
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

}  // namespace mind
