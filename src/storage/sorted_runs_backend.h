// The two-sorted-run (LSM-style) backend — the PR 4 layout, now behind the
// IndexBackend seam.
//
// A large *base* run that is always in key order absorbs compactions; a small
// *delta* run absorbs inserts and is sorted lazily, so an insert between
// queries costs a delta re-sort of a few rows, never a full re-sort. A range
// scan binary-searches both runs. Compaction merges the delta into the base
// when it exceeds a size ratio of the base, and at daily version freeze
// (IndexVersions::AddVersion → TupleStore::Compact).
//
// Each run carries a parallel cache-line-aligned key column
// (scan::KeyColumn): range probes run the branch-free prefetching binary
// search over 8-keys-per-line data instead of striding through ~70-byte
// StoredRow structs, and the emit loop is a pure [begin, end) sweep (see
// storage/scan_kernels.h). The column is derived state — rebuilt after a
// delta sort or a compaction — and never feeds digests.
#ifndef MIND_STORAGE_SORTED_RUNS_BACKEND_H_
#define MIND_STORAGE_SORTED_RUNS_BACKEND_H_

#include <cstdint>
#include <vector>

#include "storage/index_backend.h"
#include "storage/scan_kernels.h"

namespace mind {

namespace telemetry {
class Counter;
}  // namespace telemetry

class SortedRunsBackend final : public IndexBackend {
 public:
  /// `compaction` gates the automatic ratio trigger; an explicit Compact()
  /// call always merges (the facade's compaction_enabled knob decides who
  /// calls it at version freeze). Layout-only either way.
  // mind-lint: allow(backend-purity): optional counters per docs/BACKENDS.md
  SortedRunsBackend(bool compaction, size_t compact_min_delta,
                    size_t compact_ratio, telemetry::MetricsRegistry* metrics);

  IndexBackendKind kind() const override {
    return IndexBackendKind::kSortedRuns;
  }
  void Append(StoredRow row) override;
  void Compact() override;
  size_t size() const override { return base_.size() + delta_.size(); }
  /// The parallel key columns are the only structure beyond the rows.
  uint64_t overhead_bytes() const override {
    return (base_keys_.size() + delta_keys_.size()) * sizeof(uint64_t);
  }
  void ScanRange(const KeyRange& kr, RowConsumer& out) const override;
  void ScanAllRows(RowConsumer& out) const override;
  Status ValidateInvariants(const CutTree& cuts, int code_len,
                            uint64_t expect_bytes) const override;

  size_t base_size() const { return base_.size(); }
  size_t delta_size() const { return delta_.size(); }

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  void MaybeCompact();
  void EnsureDeltaSorted() const;
  static void RebuildKeys(const std::vector<StoredRow>& run,
                          scan::KeyColumn* keys);
  void ScanRun(const std::vector<StoredRow>& run, const scan::KeyColumn& keys,
               const KeyRange& kr, RowConsumer& out) const;

  bool compaction_;
  size_t compact_min_delta_;
  size_t compact_ratio_;
  mutable std::vector<StoredRow> base_;   // always key-sorted
  mutable std::vector<StoredRow> delta_;  // recent; sorted iff delta_sorted_
  mutable bool delta_sorted_ = true;
  // Parallel key columns, element i always mirroring run[i].key (appends
  // push both; a lazy delta re-sort rebuilds). Derived, never digested.
  mutable scan::KeyColumn base_keys_;
  mutable scan::KeyColumn delta_keys_;
  // storage.compaction.* counters; null without a registry.
  // mind-lint: allow(backend-purity): optional counter per docs/BACKENDS.md
  telemetry::Counter* compactions_ = nullptr;
  // mind-lint: allow(backend-purity): optional counter per docs/BACKENDS.md
  telemetry::Counter* compaction_rows_ = nullptr;
};

}  // namespace mind

#endif  // MIND_STORAGE_SORTED_RUNS_BACKEND_H_
