// Tuples: the multi-attribute data records inserted into MIND indices.
//
// Following the paper's record layout (§4.1), a record has k *indexed*
// attributes (the Point) followed by carried-along attributes that are
// returned with query results but not indexed (e.g. source_prefix and the
// observing monitor for Index-1).
#ifndef MIND_STORAGE_TUPLE_H_
#define MIND_STORAGE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "space/schema.h"

namespace mind {

struct Tuple {
  /// Indexed attribute values, in schema order.
  Point point;
  /// Carried (non-indexed) attribute values.
  std::vector<Value> extra;
  /// Identifier of the monitor/node that generated the record. A query
  /// result's set of origins is the paper's "which monitors saw the
  /// anomalous traffic" by-product (§5).
  int origin = -1;
  /// Unique id assigned by the inserting monitor (origin, seq) is unique.
  uint64_t seq = 0;

  /// Approximate wire size, used for simulated transmission delays.
  size_t WireBytes() const {
    return 24 + 8 * (point.size() + extra.size());
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.origin == b.origin && a.seq == b.seq && a.point == b.point &&
           a.extra == b.extra;
  }
};

}  // namespace mind

#endif  // MIND_STORAGE_TUPLE_H_
