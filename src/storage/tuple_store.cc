#include "storage/tuple_store.h"

#include <algorithm>

#include "util/logging.h"
#include "util/validate.h"

namespace mind {

namespace {
// Left-aligned key of a code and the (inclusive) key range it covers.
uint64_t KeyOf(const BitCode& code) {
  if (code.length() == 0) return 0;
  return code.bits() << (64 - code.length());
}
uint64_t KeyRangeEnd(const BitCode& code) {
  if (code.length() == 0) return UINT64_MAX;
  uint64_t span = (code.length() == 64) ? 0 : ((uint64_t{1} << (64 - code.length())) - 1);
  return KeyOf(code) + span;
}
// Cover length for queries: fine enough to prune, coarse enough to bound the
// number of ranges.
constexpr int kQueryCoverLen = 12;
constexpr size_t kMaxCoverCodes = 4096;
}  // namespace

TupleStore::TupleStore(CutTreeRef cuts, int code_len)
    : cuts_(std::move(cuts)), code_len_(code_len) {
  MIND_CHECK(cuts_ != nullptr);
  MIND_CHECK(code_len_ > 0 && code_len_ <= BitCode::kMaxLen);
}

void TupleStore::Insert(Tuple tuple) {
  BitCode code = cuts_->CodeForPoint(tuple.point, code_len_);
  approx_bytes_ += tuple.WireBytes() + 16;
  rows_.push_back(Row{KeyOf(code), std::move(tuple)});
  sorted_ = false;
}

void TupleStore::InsertCoded(Tuple tuple, const BitCode& code) {
  MIND_CHECK(code.length() >= code_len_);
  approx_bytes_ += tuple.WireBytes() + 16;
  rows_.push_back(Row{KeyOf(code.Prefix(code_len_)), std::move(tuple)});
  sorted_ = false;
}

void TupleStore::EnsureSorted() const {
  if (sorted_) return;
  std::sort(rows_.begin(), rows_.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  sorted_ = true;
}

template <typename Fn>
void TupleStore::Scan(const Rect& rect, Fn&& fn) const {
  EnsureSorted();
  int len = std::min(kQueryCoverLen, code_len_);
  auto cover = cuts_->Cover(rect, len, kMaxCoverCodes);
  if (!cover.ok()) {
    // Pathologically wide query: fall back to a full scan.
    for (const Row& r : rows_) {
      ++scan_rows_examined_;
      if (rect.Contains(r.tuple.point)) {
        ++scan_rows_matched_;
        fn(r.tuple);
      }
    }
    return;
  }
  for (const BitCode& code : cover.value()) {
    uint64_t lo = KeyOf(code);
    uint64_t hi = KeyRangeEnd(code);
    auto first = std::lower_bound(
        rows_.begin(), rows_.end(), lo,
        [](const Row& r, uint64_t k) { return r.key < k; });
    for (auto it = first; it != rows_.end() && it->key <= hi; ++it) {
      ++scan_rows_examined_;
      if (rect.Contains(it->tuple.point)) {
        ++scan_rows_matched_;
        fn(it->tuple);
      }
    }
  }
}

std::vector<Tuple> TupleStore::Query(const Rect& rect) const {
  std::vector<Tuple> out;
  Scan(rect, [&out](const Tuple& t) { out.push_back(t); });
  return out;
}

size_t TupleStore::Count(const Rect& rect) const {
  size_t n = 0;
  Scan(rect, [&n](const Tuple&) { ++n; });
  return n;
}

Status TupleStore::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  uint64_t bytes = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    MIND_VALIDATE(!sorted_ || i == 0 || rows_[i - 1].key <= r.key,
                  "tuple-store: claims sorted but row " << i << " (key " << r.key
                      << ") is below row " << i - 1 << " (key " << rows_[i - 1].key
                      << ")");
    const BitCode code = cuts_->CodeForPoint(r.tuple.point, code_len_);
    const uint64_t expect =
        code.empty() ? 0 : code.bits() << (64 - code.length());
    MIND_VALIDATE(r.key == expect,
                  "tuple-store: row " << i << " (origin " << r.tuple.origin << " seq "
                                      << r.tuple.seq << ") keyed " << r.key
                                      << " but its point codes to " << expect
                                      << " under the installed cut tree");
    bytes += r.tuple.WireBytes() + 16;
  }
  MIND_VALIDATE(bytes == approx_bytes_,
                "tuple-store: approx_bytes_ is " << approx_bytes_ << " but rows sum to "
                                                 << bytes);
  MIND_RETURN_NOT_OK(cuts_->ValidateInvariants());
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void TupleStore::DigestInto(Fnv64* out) const {
  OrderIndependentAccumulator acc;
  for (const Row& r : rows_) {
    Fnv64 h;
    h.Mix(r.key);
    h.Mix(static_cast<uint64_t>(static_cast<int64_t>(r.tuple.origin)));
    h.Mix(r.tuple.seq);
    h.Mix(static_cast<uint64_t>(r.tuple.point.size()));
    for (Value v : r.tuple.point) h.Mix(v);
    h.Mix(static_cast<uint64_t>(r.tuple.extra.size()));
    for (Value v : r.tuple.extra) h.Mix(v);
    acc.Add(h.value());
  }
  acc.DigestInto(out);
}

Histogram TupleStore::BuildHistogram(int bins_per_dim, int time_attr,
                                     Value time_shift) const {
  Histogram h(cuts_->schema(), bins_per_dim);
  if (time_attr < 0 || time_shift == 0) {
    for (const Row& r : rows_) h.Add(r.tuple.point);
    return h;
  }
  const Value max = cuts_->schema().attr(time_attr).max;
  Point p;
  for (const Row& r : rows_) {
    p = r.tuple.point;
    Value shifted = p[time_attr] + time_shift;
    p[time_attr] = (shifted < p[time_attr] || shifted > max) ? max : shifted;
    h.Add(p);
  }
  return h;
}

}  // namespace mind
