#include "storage/tuple_store.h"

#include <algorithm>
#include <string>

#include "storage/sorted_runs_backend.h"
#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/snapio.h"
#include "util/validate.h"

namespace mind {

TupleStore::TupleStore(CutTreeRef cuts, TupleStoreConfig config)
    : cuts_(std::move(cuts)),
      code_len_(config.code_len),
      opts_(config.options),
      cover_cache_(config.cover_cache) {
  MIND_CHECK(cuts_ != nullptr);
  MIND_CHECK(code_len_ > 0 && code_len_ <= BitCode::kMaxLen);
  MIND_CHECK(opts_.compact_ratio > 0);
  IndexBackendKind kind = opts_.backend;
  if (kind == IndexBackendKind::kAdaptive) {
    kind = ChooseIndexBackend(config.adaptive_stats);
    if (config.metrics != nullptr) {
      config.metrics
          ->counter(std::string("storage.backend.adaptive.chose_") +
                    IndexBackendKindName(kind))
          .Inc();
    }
  }
  backend_ = MakeIndexBackend(kind, opts_, config.metrics);
  if (cover_cache_ == nullptr) {
    // No shared per-node cache injected: memoize covers privately. Entries
    // are pure functions of (rect, pinned cuts, len), so this is invisible
    // to results and digests.
    owned_cover_cache_ = std::make_unique<CoverCache>();
    cover_cache_ = owned_cover_cache_.get();
  }
  if (config.metrics != nullptr) {
    config.metrics
        ->counter(std::string("storage.backend.") + backend_->name() +
                  ".opens")
        .Inc();
    cover_fallbacks_ = &config.metrics->counter("storage.cover.fallback");
  }
}

TupleStore::TupleStore(CutTreeRef cuts, int code_len)
    : TupleStore(std::move(cuts),
                 TupleStoreConfig{code_len, {}, nullptr, nullptr, {}}) {}

void TupleStore::Insert(Tuple tuple) {
  BitCode code = cuts_->CodeForPoint(tuple.point, code_len_);
  InsertRow(StoredRow{CodeKey(code), std::move(tuple)});
}

void TupleStore::InsertCoded(Tuple tuple, const BitCode& code) {
  MIND_CHECK(code.length() >= code_len_);
  InsertRow(StoredRow{CodeKey(code.Prefix(code_len_)), std::move(tuple)});
}

void TupleStore::InsertRow(StoredRow row) {
  approx_bytes_ += row.tuple.WireBytes() + kRowOverheadBytes;
  backend_->Append(std::move(row));
}

void TupleStore::Compact() { backend_->Compact(); }

size_t TupleStore::base_size() const {
  if (backend_->kind() == IndexBackendKind::kSortedRuns) {
    return static_cast<const SortedRunsBackend*>(backend_.get())->base_size();
  }
  return backend_->size();
}

size_t TupleStore::delta_size() const {
  if (backend_->kind() == IndexBackendKind::kSortedRuns) {
    return static_cast<const SortedRunsBackend*>(backend_.get())->delta_size();
  }
  return 0;
}

BackendWorkloadStats TupleStore::workload_stats() const {
  BackendWorkloadStats s;
  s.rows = backend_->size();
  s.queries = scan_queries_;
  s.cover_ranges = scan_cover_ranges_;
  s.rows_examined = scan_rows_examined_;
  s.rows_matched = scan_rows_matched_;
  return s;
}

template <typename Fn>
void TupleStore::ForEachRow(Fn&& fn) const {
  RowConsumerAdapter<Fn> sink(fn);
  backend_->ScanAllRows(sink);
}

template <typename Fn>
void TupleStore::Scan(const Rect& rect, Fn&& fn) const {
  const int len = std::min(opts_.cover_len, code_len_);
  CoverRanges local;
  const CoverRanges* cover;
  if (cover_cache_ != nullptr) {
    cover = cover_cache_->GetOrCompute(rect, cuts_, len, opts_.max_cover_codes);
  } else {
    local = ComputeCoverRanges(*cuts_, rect, len, opts_.max_cover_codes);
    cover = &local;
  }
  ++scan_queries_;
  auto visit = [&](const StoredRow& r) {
    ++scan_rows_examined_;
    if (rect.Contains(r.tuple.point)) {
      ++scan_rows_matched_;
      fn(r.tuple);
    }
  };
  RowConsumerAdapter<decltype(visit)> sink(visit);
  if (cover->fallback) {
    // Pathologically wide query: walk every row as it sits — a scan that
    // visits everything gains nothing from key pruning.
    if (cover_fallbacks_ != nullptr) cover_fallbacks_->Inc();
    ++scan_cover_ranges_;  // the full scan counts as one maximal range
    backend_->ScanAllRows(sink);
    return;
  }
  scan_cover_ranges_ += cover->ranges.size();
  for (const KeyRange& kr : cover->ranges) backend_->ScanRange(kr, sink);
}

std::vector<Tuple> TupleStore::Query(const Rect& rect) const {
  std::vector<Tuple> out;
  QueryInto(rect, &out);
  return out;
}

void TupleStore::QueryInto(const Rect& rect, std::vector<Tuple>* out) const {
  Scan(rect, [out](const Tuple& t) { out->push_back(t); });
}

size_t TupleStore::Count(const Rect& rect) const {
  size_t n = 0;
  Scan(rect, [&n](const Tuple&) { ++n; });
  return n;
}

Status TupleStore::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  MIND_RETURN_NOT_OK(
      backend_->ValidateInvariants(*cuts_, code_len_, approx_bytes_));
  MIND_RETURN_NOT_OK(cuts_->ValidateInvariants());
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void TupleStore::DigestInto(Fnv64* out) const {
  OrderIndependentAccumulator acc;
  ForEachRow([&acc](const StoredRow& r) {
    Fnv64 h;
    h.Mix(r.key);
    h.Mix(static_cast<uint64_t>(static_cast<int64_t>(r.tuple.origin)));
    h.Mix(r.tuple.seq);
    h.Mix(static_cast<uint64_t>(r.tuple.point.size()));
    for (Value v : r.tuple.point) h.Mix(v);
    h.Mix(static_cast<uint64_t>(r.tuple.extra.size()));
    for (Value v : r.tuple.extra) h.Mix(v);
    acc.Add(h.value());
  });
  acc.DigestInto(out);
}

void TupleStore::DigestEmptyInto(Fnv64* out) {
  OrderIndependentAccumulator acc;
  acc.DigestInto(out);
}

void TupleStore::SaveSnapshotState(SnapWriter* w) const {
  w->U64(scan_rows_examined_);
  w->U64(scan_rows_matched_);
  w->U64(scan_queries_);
  w->U64(scan_cover_ranges_);
  w->U64(backend_->size());
  ForEachRow([w](const StoredRow& r) {
    w->U64(r.key);
    w->U64(static_cast<uint64_t>(static_cast<int64_t>(r.tuple.origin)));
    w->U64(r.tuple.seq);
    w->U32(static_cast<uint32_t>(r.tuple.point.size()));
    for (Value v : r.tuple.point) w->U64(v);
    w->U32(static_cast<uint32_t>(r.tuple.extra.size()));
    for (Value v : r.tuple.extra) w->U64(v);
  });
}

Status TupleStore::LoadSnapshotState(SnapReader* r) {
  MIND_ASSIGN_OR_RETURN(scan_rows_examined_, r->U64("store.rows_examined"));
  MIND_ASSIGN_OR_RETURN(scan_rows_matched_, r->U64("store.rows_matched"));
  MIND_ASSIGN_OR_RETURN(scan_queries_, r->U64("store.queries"));
  MIND_ASSIGN_OR_RETURN(scan_cover_ranges_, r->U64("store.cover_ranges"));
  uint64_t rows;
  MIND_ASSIGN_OR_RETURN(rows, r->U64("store.row_count"));
  for (uint64_t i = 0; i < rows; ++i) {
    StoredRow row;
    MIND_ASSIGN_OR_RETURN(row.key, r->U64("store.row.key"));
    uint64_t origin;
    MIND_ASSIGN_OR_RETURN(origin, r->U64("store.row.origin"));
    row.tuple.origin = static_cast<int>(static_cast<int64_t>(origin));
    MIND_ASSIGN_OR_RETURN(row.tuple.seq, r->U64("store.row.seq"));
    uint32_t point_len;
    MIND_ASSIGN_OR_RETURN(point_len, r->U32("store.row.point_len"));
    const uint32_t dims = static_cast<uint32_t>(cuts_->schema().dims());
    if (point_len != dims) {
      return r->FieldError("store.row.point_len",
                           "row " + std::to_string(i) + " has " +
                               std::to_string(point_len) +
                               " coordinates, schema has " +
                               std::to_string(dims));
    }
    row.tuple.point.resize(point_len);
    for (Value& v : row.tuple.point) {
      MIND_ASSIGN_OR_RETURN(v, r->U64("store.row.point"));
    }
    uint32_t extra_len;
    MIND_ASSIGN_OR_RETURN(extra_len, r->U32("store.row.extra_len"));
    if (extra_len > 4096) {
      return r->FieldError("store.row.extra_len", "implausible carried-value "
                                                  "count " +
                                                      std::to_string(extra_len));
    }
    row.tuple.extra.resize(extra_len);
    for (Value& v : row.tuple.extra) {
      MIND_ASSIGN_OR_RETURN(v, r->U64("store.row.extra"));
    }
    InsertRow(std::move(row));
  }
  return Status::OK();
}

Histogram TupleStore::BuildHistogram(int bins_per_dim, int time_attr,
                                     Value time_shift) const {
  Histogram h(cuts_->schema(), bins_per_dim);
  if (time_attr < 0 || time_shift == 0) {
    ForEachRow([&h](const StoredRow& r) { h.Add(r.tuple.point); });
    return h;
  }
  const Value max = cuts_->schema().attr(time_attr).max;
  Point p;
  ForEachRow([&](const StoredRow& r) {
    p = r.tuple.point;
    Value shifted = p[time_attr] + time_shift;
    p[time_attr] = (shifted < p[time_attr] || shifted > max) ? max : shifted;
    h.Add(p);
  });
  return h;
}

}  // namespace mind
