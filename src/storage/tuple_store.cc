#include "storage/tuple_store.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/validate.h"

namespace mind {

TupleStore::TupleStore(CutTreeRef cuts, TupleStoreConfig config)
    : cuts_(std::move(cuts)),
      code_len_(config.code_len),
      opts_(config.options),
      cover_cache_(config.cover_cache) {
  MIND_CHECK(cuts_ != nullptr);
  MIND_CHECK(code_len_ > 0 && code_len_ <= BitCode::kMaxLen);
  MIND_CHECK(opts_.compact_ratio > 0);
  if (config.metrics != nullptr) {
    compactions_ = &config.metrics->counter("storage.compaction.count");
    compaction_rows_ = &config.metrics->counter("storage.compaction.rows");
    cover_fallbacks_ = &config.metrics->counter("storage.cover.fallback");
  }
}

TupleStore::TupleStore(CutTreeRef cuts, int code_len)
    : TupleStore(std::move(cuts), TupleStoreConfig{code_len, {}, nullptr,
                                                   nullptr}) {}

void TupleStore::Insert(Tuple tuple) {
  BitCode code = cuts_->CodeForPoint(tuple.point, code_len_);
  InsertRow(Row{CodeKey(code), std::move(tuple)});
}

void TupleStore::InsertCoded(Tuple tuple, const BitCode& code) {
  MIND_CHECK(code.length() >= code_len_);
  InsertRow(Row{CodeKey(code.Prefix(code_len_)), std::move(tuple)});
}

void TupleStore::InsertRow(Row row) {
  approx_bytes_ += row.tuple.WireBytes() + 16;
  // An append that keeps key order keeps the delta sorted (time-correlated
  // inserts often do); only a true inversion forces the lazy re-sort.
  if (!delta_.empty() && delta_.back().key > row.key) delta_sorted_ = false;
  delta_.push_back(std::move(row));
  MaybeCompact();
}

void TupleStore::MaybeCompact() {
  if (!opts_.compaction) return;
  if (delta_.size() < opts_.compact_min_delta) return;
  if (delta_.size() * opts_.compact_ratio <= base_.size()) return;
  Compact();
}

void TupleStore::Compact() {
  if (delta_.empty()) return;
  EnsureDeltaSorted();
  const size_t merged = delta_.size();
  const size_t mid = base_.size();
  base_.insert(base_.end(), std::make_move_iterator(delta_.begin()),
               std::make_move_iterator(delta_.end()));
  std::inplace_merge(base_.begin(), base_.begin() + static_cast<long>(mid),
                     base_.end(),
                     [](const Row& a, const Row& b) { return a.key < b.key; });
  delta_.clear();
  delta_sorted_ = true;
  if (compactions_ != nullptr) compactions_->Inc();
  if (compaction_rows_ != nullptr) compaction_rows_->Inc(merged);
}

void TupleStore::EnsureDeltaSorted() const {
  if (delta_sorted_) return;
  std::sort(delta_.begin(), delta_.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  delta_sorted_ = true;
}

template <typename Fn>
void TupleStore::ScanAll(const std::vector<Row>& run, const Rect& rect,
                         Fn& fn) const {
  for (const Row& r : run) {
    ++scan_rows_examined_;
    if (rect.Contains(r.tuple.point)) {
      ++scan_rows_matched_;
      fn(r.tuple);
    }
  }
}

template <typename Fn>
void TupleStore::ScanRange(const std::vector<Row>& run, const KeyRange& kr,
                           const Rect& rect, Fn& fn) const {
  auto first = std::lower_bound(
      run.begin(), run.end(), kr.lo,
      [](const Row& r, uint64_t k) { return r.key < k; });
  for (auto it = first; it != run.end() && it->key <= kr.hi; ++it) {
    ++scan_rows_examined_;
    if (rect.Contains(it->tuple.point)) {
      ++scan_rows_matched_;
      fn(it->tuple);
    }
  }
}

template <typename Fn>
void TupleStore::Scan(const Rect& rect, Fn&& fn) const {
  const int len = std::min(opts_.cover_len, code_len_);
  CoverRanges local;
  const CoverRanges* cover;
  if (cover_cache_ != nullptr) {
    cover = cover_cache_->GetOrCompute(rect, cuts_, len, opts_.max_cover_codes);
  } else {
    local = ComputeCoverRanges(*cuts_, rect, len, opts_.max_cover_codes);
    cover = &local;
  }
  if (cover->fallback) {
    // Pathologically wide query: walk every row of both runs as they sit —
    // a scan that visits everything gains nothing from restored key order.
    if (cover_fallbacks_ != nullptr) cover_fallbacks_->Inc();
    ScanAll(base_, rect, fn);
    ScanAll(delta_, rect, fn);
    return;
  }
  EnsureDeltaSorted();
  for (const KeyRange& kr : cover->ranges) {
    ScanRange(base_, kr, rect, fn);
    ScanRange(delta_, kr, rect, fn);
  }
}

std::vector<Tuple> TupleStore::Query(const Rect& rect) const {
  std::vector<Tuple> out;
  QueryInto(rect, &out);
  return out;
}

void TupleStore::QueryInto(const Rect& rect, std::vector<Tuple>* out) const {
  Scan(rect, [out](const Tuple& t) { out->push_back(t); });
}

size_t TupleStore::Count(const Rect& rect) const {
  size_t n = 0;
  Scan(rect, [&n](const Tuple&) { ++n; });
  return n;
}

Status TupleStore::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  uint64_t bytes = 0;
  auto check_run = [&](const std::vector<Row>& run, bool claims_sorted,
                       const char* name) -> Status {
    for (size_t i = 0; i < run.size(); ++i) {
      const Row& r = run[i];
      MIND_VALIDATE(!claims_sorted || i == 0 || run[i - 1].key <= r.key,
                    "tuple-store: " << name << " run claims sorted but row " << i
                                    << " (key " << r.key << ") is below row "
                                    << i - 1 << " (key " << run[i - 1].key
                                    << ")");
      const BitCode code = cuts_->CodeForPoint(r.tuple.point, code_len_);
      const uint64_t expect =
          code.empty() ? 0 : code.bits() << (64 - code.length());
      MIND_VALIDATE(r.key == expect,
                    "tuple-store: " << name << " row " << i << " (origin "
                                    << r.tuple.origin << " seq " << r.tuple.seq
                                    << ") keyed " << r.key
                                    << " but its point codes to " << expect
                                    << " under the installed cut tree");
      bytes += r.tuple.WireBytes() + 16;
    }
    return Status::OK();
  };
  // The base run's order is unconditional; the delta's only when claimed.
  MIND_RETURN_NOT_OK(check_run(base_, true, "base"));
  MIND_RETURN_NOT_OK(check_run(delta_, delta_sorted_, "delta"));
  MIND_VALIDATE(bytes == approx_bytes_,
                "tuple-store: approx_bytes_ is "
                    << approx_bytes_ << " but base+delta rows sum to " << bytes);
  MIND_RETURN_NOT_OK(cuts_->ValidateInvariants());
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void TupleStore::DigestInto(Fnv64* out) const {
  OrderIndependentAccumulator acc;
  auto fold_run = [&acc](const std::vector<Row>& run) {
    for (const Row& r : run) {
      Fnv64 h;
      h.Mix(r.key);
      h.Mix(static_cast<uint64_t>(static_cast<int64_t>(r.tuple.origin)));
      h.Mix(r.tuple.seq);
      h.Mix(static_cast<uint64_t>(r.tuple.point.size()));
      for (Value v : r.tuple.point) h.Mix(v);
      h.Mix(static_cast<uint64_t>(r.tuple.extra.size()));
      for (Value v : r.tuple.extra) h.Mix(v);
      acc.Add(h.value());
    }
  };
  fold_run(base_);
  fold_run(delta_);
  acc.DigestInto(out);
}

Histogram TupleStore::BuildHistogram(int bins_per_dim, int time_attr,
                                     Value time_shift) const {
  Histogram h(cuts_->schema(), bins_per_dim);
  if (time_attr < 0 || time_shift == 0) {
    for (const Row& r : base_) h.Add(r.tuple.point);
    for (const Row& r : delta_) h.Add(r.tuple.point);
    return h;
  }
  const Value max = cuts_->schema().attr(time_attr).max;
  Point p;
  auto add_shifted = [&](const Row& r) {
    p = r.tuple.point;
    Value shifted = p[time_attr] + time_shift;
    p[time_attr] = (shifted < p[time_attr] || shifted > max) ? max : shifted;
    h.Add(p);
  };
  for (const Row& r : base_) add_shifted(r);
  for (const Row& r : delta_) add_shifted(r);
  return h;
}

}  // namespace mind
