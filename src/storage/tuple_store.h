// Per-node, per-(index, version) tuple storage with rectangle queries.
//
// Replaces the paper's MySQL/JDBC backend (DESIGN.md §2). Tuples are keyed by
// their data-space code (left-aligned in 64 bits) and held in one pluggable
// IndexBackend (DESIGN.md §13, docs/BACKENDS.md): two sorted runs LSM-style
// (kSortedRuns, the default), hierarchical compressed bitmaps over key
// buckets (kBitmap), or a per-store adaptive choice between the two from the
// previous version's workload stats (kAdaptive). A rectangle query narrows to
// the merged key ranges of its covering codes (optionally through a shared
// CoverCache) and asks the backend for each range. The backend choice is
// digest-transparent: results, counts, timings and replay digests are
// bit-identical across every backend (the facade owns everything a digest or
// the simulation can see; the backend only owns the physical layout).
#ifndef MIND_STORAGE_TUPLE_STORE_H_
#define MIND_STORAGE_TUPLE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/rect.h"
#include "storage/cover_cache.h"
#include "storage/index_backend.h"
#include "storage/tuple.h"
#include "util/digest.h"

namespace mind {

struct TupleStoreOptions {
  /// Merge the delta run into the base run at the size-ratio trigger (and at
  /// version freeze). Off leaves every insert in the delta run. Layout-only:
  /// query results, counts and digests are identical either way. Ignored by
  /// backends without a compaction concept (kBitmap).
  bool compaction = true;
  /// Compaction triggers once the delta holds at least this many rows...
  size_t compact_min_delta = 64;
  /// ...and delta * ratio exceeds the base size (amortizes the merge).
  size_t compact_ratio = 4;
  /// Query cover granularity: fine enough to prune, coarse enough to bound
  /// the number of ranges. The default matches the bitmap backend's fine
  /// bucket grid, keeping cover ranges bucket-aligned.
  int cover_len = 12;
  /// Cover() code budget; overflow takes the full-scan fallback path.
  size_t max_cover_codes = 4096;
  /// Physical layout behind the store (DESIGN.md §13). kAdaptive resolves to
  /// kSortedRuns or kBitmap at construction from
  /// TupleStoreConfig::adaptive_stats. Digest-transparent by contract.
  IndexBackendKind backend = IndexBackendKind::kSortedRuns;
};

/// Everything a store needs besides its cut tree: key precision, layout
/// policy, and the optional per-node sharables (metrics, cover cache).
/// IndexVersions stamps one config onto every store it opens.
struct TupleStoreConfig {
  int code_len = 32;
  TupleStoreOptions options;
  telemetry::MetricsRegistry* metrics = nullptr;  // storage.* counters
  CoverCache* cover_cache = nullptr;              // shared, owned by the node
  /// Workload evidence for options.backend == kAdaptive: IndexVersions copies
  /// the closing store's workload_stats() here before opening the next
  /// version, so each day's choice follows that index's observed mix.
  BackendWorkloadStats adaptive_stats;
};

class TupleStore {
 public:
  /// `cuts` is the embedding under which tuples are coded; `config.code_len`
  /// the stored key precision (also the maximum useful cover length).
  TupleStore(CutTreeRef cuts, TupleStoreConfig config);
  /// Default config with the given key precision (tests, standalone use).
  TupleStore(CutTreeRef cuts, int code_len);

  /// Adds a tuple (O(1) amortized; appends into the backend).
  void Insert(Tuple tuple);

  /// Adds a tuple whose data-space code is already known (the insert message
  /// carries it end-to-end), skipping the CodeForPoint descent. `code` must
  /// equal `cuts()->CodeForPoint(tuple.point, n)` for some n >= code_len.
  void InsertCoded(Tuple tuple, const BitCode& code);

  /// Backend maintenance now (the version-freeze hook; the sorted-runs
  /// backend merges its delta down, the bitmap backend has nothing to do).
  /// Layout-only.
  void Compact();

  size_t size() const { return backend_->size(); }
  /// Sorted-runs layout detail, kept for tests and capacity introspection:
  /// other backends report size()/0 (everything "base", nothing pending).
  size_t base_size() const;
  size_t delta_size() const;
  uint64_t approx_bytes() const { return approx_bytes_; }
  bool compaction_enabled() const { return opts_.compaction; }

  /// The resolved physical layout (never kAdaptive) and its stable name.
  IndexBackendKind backend_kind() const { return backend_->kind(); }
  const char* backend_name() const { return backend_->name(); }

  /// Ingest/query tallies since construction — handed to the next version's
  /// store as kAdaptive evidence. Sim-deterministic (telemetry-independent).
  BackendWorkloadStats workload_stats() const;

  /// All tuples whose point lies inside `rect`.
  std::vector<Tuple> Query(const Rect& rect) const;

  /// Appends the matches to `*out` without an intermediate vector — the
  /// zero-copy reply-assembly entry point (results land directly in the
  /// outgoing QueryReplyMsg).
  void QueryInto(const Rect& rect, std::vector<Tuple>* out) const;

  /// Number of matching tuples without materializing them.
  size_t Count(const Rect& rect) const;

  /// Histogram of the stored points at the given granularity (input to the
  /// daily balancing service). If `time_attr` >= 0, that coordinate is
  /// shifted forward by `time_shift` (clamped into the domain): cuts built
  /// from day d's data must be positioned where day d+1's timestamps will
  /// fall, or every new tuple lands on the high side of every time cut.
  Histogram BuildHistogram(int bins_per_dim, int time_attr = -1,
                           Value time_shift = 0) const;

  const CutTreeRef& cuts() const { return cuts_; }

  /// Cumulative scan-efficiency counters (rows visited vs. rows matched over
  /// every Query/Count so far). Callers snapshot before/after a query and
  /// record the deltas (`storage.scan.*` histograms).
  uint64_t scan_rows_examined() const { return scan_rows_examined_; }
  uint64_t scan_rows_matched() const { return scan_rows_matched_; }

  /// Checks storage consistency: the backend's structural invariants (run
  /// order for sorted runs; bucket membership, cardinalities and word shape
  /// for bitmaps), every row's key equal to its point's code under the
  /// installed cut tree, the byte accounting matching the stored rows, and
  /// the cut tree itself well-formed. Returns OK trivially when
  /// MIND_VALIDATORS is off.
  Status ValidateInvariants() const;

  /// Folds the stored tuples into `out`, independent of row order *and* of
  /// the physical layout (the digest must see neither compaction timing nor
  /// the backend choice).
  void DigestInto(Fnv64* out) const;

  /// What DigestInto folds for a store with no rows. Version chains hold
  /// never-written versions as null stores (IndexVersions lazy open); their
  /// digest must be byte-identical to a materialized-but-empty store's.
  static void DigestEmptyInto(Fnv64* out);

  /// Serializes the scan counters and every stored row for the MSN1 snapshot
  /// (DESIGN.md §14). The resolved backend kind is written by the caller
  /// (IndexVersions), which must construct the restored store with that kind
  /// before it can load. The physical base/delta layout is NOT preserved —
  /// backends are digest- and timing-transparent by contract, so restore may
  /// re-pack rows freely.
  void SaveSnapshotState(SnapWriter* w) const;
  /// Restores rows and counters written by SaveSnapshotState into this
  /// freshly constructed, empty store.
  Status LoadSnapshotState(SnapReader* r);

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  void InsertRow(StoredRow row);
  // Invokes fn on every tuple inside rect.
  template <typename Fn>
  void Scan(const Rect& rect, Fn&& fn) const;
  // Invokes fn on every stored row, layout order (digests, histograms).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const;

  // mind-digest: skip(shared cut-tree handle; derived row keys are digested)
  CutTreeRef cuts_;
  // mind-digest: skip(fixed at open; implied by every digested row key)
  int code_len_;
  // mind-digest: skip(construction-time config, not evolving state)
  TupleStoreOptions opts_;
  std::unique_ptr<IndexBackend> backend_;
  mutable uint64_t scan_rows_examined_ = 0;
  mutable uint64_t scan_rows_matched_ = 0;
  mutable uint64_t scan_queries_ = 0;
  mutable uint64_t scan_cover_ranges_ = 0;
  // mind-digest: skip(derived size estimate; recomputable from digested rows)
  uint64_t approx_bytes_ = 0;
  CoverCache* cover_cache_ = nullptr;
  // Fallback when no shared cache is injected: monitoring queries re-probe
  // the same rectangles, and ComputeCoverRanges is ~40% of a warm Count, so
  // even a standalone store memoizes.
  // mind-digest: skip(pure-function cover memo; no observable state)
  std::unique_ptr<CoverCache> owned_cover_cache_;
  // storage.cover.* counters; null without a registry.
  telemetry::Counter* cover_fallbacks_ = nullptr;
};

}  // namespace mind

#endif  // MIND_STORAGE_TUPLE_STORE_H_
