// Per-node, per-(index, version) tuple storage with rectangle queries.
//
// Replaces the paper's MySQL/JDBC backend (DESIGN.md §2). Tuples are keyed by
// their data-space code (left-aligned in 64 bits) and held in two sorted
// runs, LSM-style: a large *base* run that is always in key order and a
// small *delta* run that absorbs inserts and is sorted lazily. A rectangle
// query narrows to the merged key ranges of its covering codes (optionally
// through a shared CoverCache) and binary-searches both runs — so an insert
// between queries costs a delta re-sort of a few rows, never a full re-sort.
// Compaction merges the delta into the base when it exceeds a size ratio of
// the base, and at daily version freeze (IndexVersions::AddVersion).
#ifndef MIND_STORAGE_TUPLE_STORE_H_
#define MIND_STORAGE_TUPLE_STORE_H_

#include <cstdint>
#include <vector>

#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/rect.h"
#include "storage/cover_cache.h"
#include "storage/tuple.h"
#include "util/digest.h"

namespace mind {

struct TupleStoreOptions {
  /// Merge the delta run into the base run at the size-ratio trigger (and at
  /// version freeze). Off leaves every insert in the delta run. Layout-only:
  /// query results, counts and digests are identical either way.
  bool compaction = true;
  /// Compaction triggers once the delta holds at least this many rows...
  size_t compact_min_delta = 64;
  /// ...and delta * ratio exceeds the base size (amortizes the merge).
  size_t compact_ratio = 4;
  /// Query cover granularity: fine enough to prune, coarse enough to bound
  /// the number of ranges.
  int cover_len = 12;
  /// Cover() code budget; overflow takes the full-scan fallback path.
  size_t max_cover_codes = 4096;
};

/// Everything a store needs besides its cut tree: key precision, layout
/// policy, and the optional per-node sharables (metrics, cover cache).
/// IndexVersions stamps one config onto every store it opens.
struct TupleStoreConfig {
  int code_len = 32;
  TupleStoreOptions options;
  telemetry::MetricsRegistry* metrics = nullptr;  // storage.* counters
  CoverCache* cover_cache = nullptr;              // shared, owned by the node
};

class TupleStore {
 public:
  /// `cuts` is the embedding under which tuples are coded; `config.code_len`
  /// the stored key precision (also the maximum useful cover length).
  TupleStore(CutTreeRef cuts, TupleStoreConfig config);
  /// Default config with the given key precision (tests, standalone use).
  TupleStore(CutTreeRef cuts, int code_len);

  /// Adds a tuple (O(1) amortized; appends to the delta run).
  void Insert(Tuple tuple);

  /// Adds a tuple whose data-space code is already known (the insert message
  /// carries it end-to-end), skipping the CodeForPoint descent. `code` must
  /// equal `cuts()->CodeForPoint(tuple.point, n)` for some n >= code_len.
  void InsertCoded(Tuple tuple, const BitCode& code);

  /// Merges the delta run into the base run now (the version-freeze hook;
  /// inserts trigger it automatically per TupleStoreOptions). Layout-only.
  void Compact();

  size_t size() const { return base_.size() + delta_.size(); }
  size_t base_size() const { return base_.size(); }
  size_t delta_size() const { return delta_.size(); }
  uint64_t approx_bytes() const { return approx_bytes_; }
  bool compaction_enabled() const { return opts_.compaction; }

  /// All tuples whose point lies inside `rect`.
  std::vector<Tuple> Query(const Rect& rect) const;

  /// Appends the matches to `*out` without an intermediate vector — the
  /// zero-copy reply-assembly entry point (results land directly in the
  /// outgoing QueryReplyMsg).
  void QueryInto(const Rect& rect, std::vector<Tuple>* out) const;

  /// Number of matching tuples without materializing them.
  size_t Count(const Rect& rect) const;

  /// Histogram of the stored points at the given granularity (input to the
  /// daily balancing service). If `time_attr` >= 0, that coordinate is
  /// shifted forward by `time_shift` (clamped into the domain): cuts built
  /// from day d's data must be positioned where day d+1's timestamps will
  /// fall, or every new tuple lands on the high side of every time cut.
  Histogram BuildHistogram(int bins_per_dim, int time_attr = -1,
                           Value time_shift = 0) const;

  const CutTreeRef& cuts() const { return cuts_; }

  /// Cumulative scan-efficiency counters (rows visited vs. rows matched over
  /// every Query/Count so far). Callers snapshot before/after a query and
  /// record the deltas (`storage.scan.*` histograms).
  uint64_t scan_rows_examined() const { return scan_rows_examined_; }
  uint64_t scan_rows_matched() const { return scan_rows_matched_; }

  /// Checks storage consistency: the base run always in key order, the delta
  /// run in key order when delta_sorted_ claims so, every row's key equal to
  /// its point's code under the installed cut tree, the byte accounting
  /// matching the rows of both runs, and the cut tree itself well-formed.
  /// Returns OK trivially when MIND_VALIDATORS is off.
  Status ValidateInvariants() const;

  /// Folds the stored tuples into `out`, independent of row order *and* of
  /// the base/delta split (the digest must not see compaction timing).
  void DigestInto(Fnv64* out) const;

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  struct Row {
    uint64_t key;  // left-aligned code bits
    Tuple tuple;
  };

  void InsertRow(Row row);
  void MaybeCompact();
  void EnsureDeltaSorted() const;
  // Invokes fn on every tuple inside rect.
  template <typename Fn>
  void Scan(const Rect& rect, Fn&& fn) const;
  // Every match within one run / one key range of one run.
  template <typename Fn>
  void ScanAll(const std::vector<Row>& run, const Rect& rect, Fn& fn) const;
  template <typename Fn>
  void ScanRange(const std::vector<Row>& run, const KeyRange& kr,
                 const Rect& rect, Fn& fn) const;

  CutTreeRef cuts_;
  int code_len_;
  TupleStoreOptions opts_;
  mutable std::vector<Row> base_;   // always key-sorted
  mutable std::vector<Row> delta_;  // recent inserts; sorted iff delta_sorted_
  mutable bool delta_sorted_ = true;
  mutable uint64_t scan_rows_examined_ = 0;
  mutable uint64_t scan_rows_matched_ = 0;
  uint64_t approx_bytes_ = 0;
  CoverCache* cover_cache_ = nullptr;
  // storage.compaction.* / storage.cover.* counters; null without a registry.
  telemetry::Counter* compactions_ = nullptr;
  telemetry::Counter* compaction_rows_ = nullptr;
  telemetry::Counter* cover_fallbacks_ = nullptr;
};

}  // namespace mind

#endif  // MIND_STORAGE_TUPLE_STORE_H_
