// Per-node, per-(index, version) tuple storage with rectangle queries.
//
// Replaces the paper's MySQL/JDBC backend (DESIGN.md §2). Tuples are keyed by
// their data-space code (left-aligned in 64 bits), kept sorted, and a
// rectangle query first narrows to the key ranges of its covering codes and
// then filters exactly — the in-memory analogue of the prototype's SQL
// statement over a code-clustered table.
#ifndef MIND_STORAGE_TUPLE_STORE_H_
#define MIND_STORAGE_TUPLE_STORE_H_

#include <cstdint>
#include <vector>

#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/rect.h"
#include "storage/tuple.h"
#include "util/digest.h"

namespace mind {

class TupleStore {
 public:
  /// `cuts` is the embedding under which tuples are coded; `code_len` the
  /// stored key precision (also the maximum useful cover length).
  TupleStore(CutTreeRef cuts, int code_len);

  /// Adds a tuple (O(1) amortized; the sort order is restored lazily).
  void Insert(Tuple tuple);

  /// Adds a tuple whose data-space code is already known (the insert message
  /// carries it end-to-end), skipping the CodeForPoint descent. `code` must
  /// equal `cuts()->CodeForPoint(tuple.point, n)` for some n >= code_len.
  void InsertCoded(Tuple tuple, const BitCode& code);

  size_t size() const { return rows_.size(); }
  uint64_t approx_bytes() const { return approx_bytes_; }

  /// All tuples whose point lies inside `rect`.
  std::vector<Tuple> Query(const Rect& rect) const;

  /// Number of matching tuples without materializing them.
  size_t Count(const Rect& rect) const;

  /// Histogram of the stored points at the given granularity (input to the
  /// daily balancing service). If `time_attr` >= 0, that coordinate is
  /// shifted forward by `time_shift` (clamped into the domain): cuts built
  /// from day d's data must be positioned where day d+1's timestamps will
  /// fall, or every new tuple lands on the high side of every time cut.
  Histogram BuildHistogram(int bins_per_dim, int time_attr = -1,
                           Value time_shift = 0) const;

  const CutTreeRef& cuts() const { return cuts_; }

  /// Cumulative scan-efficiency counters (rows visited vs. rows matched over
  /// every Query/Count so far). Callers snapshot before/after a query and
  /// record the deltas (`storage.scan.*` histograms).
  uint64_t scan_rows_examined() const { return scan_rows_examined_; }
  uint64_t scan_rows_matched() const { return scan_rows_matched_; }

  /// Checks storage consistency: rows in key order when sorted_ claims so,
  /// every row's key equal to its point's code under the installed cut tree,
  /// the byte accounting matching the rows, and the cut tree itself
  /// well-formed. Returns OK trivially when MIND_VALIDATORS is off.
  Status ValidateInvariants() const;

  /// Folds the stored tuples into `out`, independent of row order (rows are
  /// only lazily sorted, and the sort is not stable within a key).
  void DigestInto(Fnv64* out) const;

 private:
  friend class TupleStoreTestPeek;  // corruption injection in validator tests

  struct Row {
    uint64_t key;  // left-aligned code bits
    Tuple tuple;
  };

  void EnsureSorted() const;
  // Invokes fn on every tuple inside rect.
  template <typename Fn>
  void Scan(const Rect& rect, Fn&& fn) const;

  CutTreeRef cuts_;
  int code_len_;
  mutable std::vector<Row> rows_;
  mutable bool sorted_ = true;
  mutable uint64_t scan_rows_examined_ = 0;
  mutable uint64_t scan_rows_matched_ = 0;
  uint64_t approx_bytes_ = 0;
};

}  // namespace mind

#endif  // MIND_STORAGE_TUPLE_STORE_H_
