#include "storage/version_manager.h"

#include "util/logging.h"
#include "util/validate.h"

namespace mind {

Status IndexVersions::AddVersion(VersionId id, CutTreeRef cuts, SimTime start) {
  if (cuts == nullptr) {
    return Status::InvalidArgument("null cut tree");
  }
  if (!entries_.empty()) {
    if (id <= entries_.back().id) {
      return Status::InvalidArgument("version ids must increase");
    }
    if (start < entries_.back().start) {
      return Status::InvalidArgument("version start times must not decrease");
    }
    // Daily freeze (§3.7): the closing version stops taking the bulk of the
    // inserts once the new one opens; merge its delta down now so its
    // history is served from a single sorted run. (Stragglers timestamped
    // into the old window still insert fine — they just reopen a delta.)
    if (entries_.back().store->compaction_enabled()) {
      entries_.back().store->Compact();
    }
    // Adaptive backend hand-off: the closing store's observed ingest/query
    // mix is the evidence the next version's store resolves kAdaptive with
    // (a cold chain starts on kSortedRuns; see ChooseIndexBackend).
    if (config_.options.backend == IndexBackendKind::kAdaptive) {
      config_.adaptive_stats = entries_.back().store->workload_stats();
    }
  }
  Entry e;
  e.id = id;
  e.start = start;
  e.cuts = cuts;
  e.store = std::make_unique<TupleStore>(std::move(cuts), config_);
  entries_.push_back(std::move(e));
  ++epoch_;
  return Status::OK();
}

TupleStore* IndexVersions::StoreForTime(SimTime t) {
  TupleStore* best = nullptr;
  for (auto& e : entries_) {
    if (e.start <= t) best = e.store.get();
  }
  return best;
}

const IndexVersions::Entry* IndexVersions::Find(VersionId id) const {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

TupleStore* IndexVersions::Store(VersionId id) {
  return const_cast<TupleStore*>(
      static_cast<const IndexVersions*>(this)->Store(id));
}

const TupleStore* IndexVersions::Store(VersionId id) const {
  const Entry* e = Find(id);
  return e ? e->store.get() : nullptr;
}

CutTreeRef IndexVersions::Cuts(VersionId id) const {
  const Entry* e = Find(id);
  return e ? e->cuts : nullptr;
}

std::vector<VersionId> IndexVersions::VersionsOverlapping(SimTime t1,
                                                          SimTime t2) const {
  std::vector<VersionId> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    SimTime start = entries_[i].start;
    SimTime end = (i + 1 < entries_.size()) ? entries_[i + 1].start : UINT64_MAX;
    if (start <= t2 && t1 < end) out.push_back(entries_[i].id);
  }
  return out;
}

std::vector<IndexVersions::VersionInfo> IndexVersions::Versions() const {
  std::vector<VersionInfo> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back({e.id, e.start});
  return out;
}

Result<SimTime> IndexVersions::StartOf(VersionId id) const {
  const Entry* e = Find(id);
  if (e == nullptr) return Status::NotFound("unknown version");
  return e->start;
}

std::optional<VersionId> IndexVersions::LatestVersion() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.back().id;
}

Status IndexVersions::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    MIND_VALIDATE(i == 0 || entries_[i - 1].id < e.id,
                  "version-manager: version ids not strictly increasing ("
                      << entries_[i - 1].id << " then " << e.id << ")");
    MIND_VALIDATE(i == 0 || entries_[i - 1].start <= e.start,
                  "version-manager: version " << e.id << " starts at " << e.start
                                              << ", before version " << entries_[i - 1].id
                                              << " at " << entries_[i - 1].start);
    MIND_VALIDATE(e.cuts != nullptr, "version-manager: version " << e.id << " has no cut tree");
    MIND_VALIDATE(e.store != nullptr, "version-manager: version " << e.id << " has no store");
    MIND_VALIDATE(e.store->cuts().get() == e.cuts.get(),
                  "version-manager: version " << e.id
                                              << " cut tree desynced from its store's "
                                                 "(queries and stored tuples would be "
                                                 "coded under different embeddings)");
    MIND_RETURN_NOT_OK(e.store->ValidateInvariants());
  }
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void IndexVersions::DigestInto(Fnv64* out) const {
  out->Mix(static_cast<uint64_t>(entries_.size()));
  for (const auto& e : entries_) {
    out->Mix(static_cast<uint64_t>(e.id));
    out->Mix(e.start);
    e.store->DigestInto(out);
  }
}

size_t IndexVersions::TotalTuples() const {
  size_t n = 0;
  for (const auto& e : entries_) n += e.store->size();
  return n;
}

uint64_t IndexVersions::TotalBytes() const {
  uint64_t n = 0;
  for (const auto& e : entries_) n += e.store->approx_bytes();
  return n;
}

}  // namespace mind
