#include "storage/version_manager.h"

#include "util/logging.h"
#include "util/snapio.h"
#include "util/validate.h"

namespace mind {

Status IndexVersions::AddVersion(VersionId id, CutTreeRef cuts, SimTime start) {
  if (cuts == nullptr) {
    return Status::InvalidArgument("null cut tree");
  }
  if (!entries_.empty()) {
    if (id <= entries_.back().id) {
      return Status::InvalidArgument("version ids must increase");
    }
    if (start < entries_.back().start) {
      return Status::InvalidArgument("version start times must not decrease");
    }
    // Daily freeze (§3.7): the closing version stops taking the bulk of the
    // inserts once the new one opens; merge its delta down now so its
    // history is served from a single sorted run. (Stragglers timestamped
    // into the old window still insert fine — they just reopen a delta.)
    // A never-written (lazy) store has nothing to freeze.
    if (entries_.back().store != nullptr &&
        entries_.back().store->compaction_enabled()) {
      entries_.back().store->Compact();
    }
    // Adaptive backend hand-off: the closing store's observed ingest/query
    // mix is the evidence the next version's store resolves kAdaptive with
    // (a cold chain starts on kSortedRuns; see ChooseIndexBackend). A lazy
    // closing store saw no ingest and no queries: zero evidence, exactly
    // what an eager empty store would report.
    if (config_.options.backend == IndexBackendKind::kAdaptive) {
      config_.adaptive_stats = entries_.back().store != nullptr
                                   ? entries_.back().store->workload_stats()
                                   : BackendWorkloadStats{};
    }
  }
  Entry e;
  e.id = id;
  e.start = start;
  e.cuts = std::move(cuts);
  e.adaptive_at_open = config_.adaptive_stats;
  entries_.push_back(std::move(e));
  ++epoch_;
  return Status::OK();
}

TupleStore* IndexVersions::Materialize(Entry* e) {
  if (e->store == nullptr) {
    TupleStoreConfig config = config_;
    config.adaptive_stats = e->adaptive_at_open;
    e->store = std::make_unique<TupleStore>(e->cuts, config);
  }
  return e->store.get();
}

TupleStore* IndexVersions::StoreForTime(SimTime t) {
  Entry* best = nullptr;
  for (auto& e : entries_) {
    if (e.start <= t) best = &e;
  }
  return best != nullptr ? Materialize(best) : nullptr;
}

const IndexVersions::Entry* IndexVersions::Find(VersionId id) const {
  for (const auto& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

TupleStore* IndexVersions::Store(VersionId id) {
  Entry* e = const_cast<Entry*>(Find(id));
  return e != nullptr ? Materialize(e) : nullptr;
}

const TupleStore* IndexVersions::Store(VersionId id) const {
  const Entry* e = Find(id);
  return e ? e->store.get() : nullptr;
}

CutTreeRef IndexVersions::Cuts(VersionId id) const {
  const Entry* e = Find(id);
  return e ? e->cuts : nullptr;
}

std::vector<VersionId> IndexVersions::VersionsOverlapping(SimTime t1,
                                                          SimTime t2) const {
  std::vector<VersionId> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    SimTime start = entries_[i].start;
    SimTime end = (i + 1 < entries_.size()) ? entries_[i + 1].start : UINT64_MAX;
    if (start <= t2 && t1 < end) out.push_back(entries_[i].id);
  }
  return out;
}

std::vector<IndexVersions::VersionInfo> IndexVersions::Versions() const {
  std::vector<VersionInfo> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back({e.id, e.start});
  return out;
}

Result<SimTime> IndexVersions::StartOf(VersionId id) const {
  const Entry* e = Find(id);
  if (e == nullptr) return Status::NotFound("unknown version");
  return e->start;
}

std::optional<VersionId> IndexVersions::LatestVersion() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.back().id;
}

Status IndexVersions::ValidateInvariants() const {
#if MIND_VALIDATORS_ENABLED
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    MIND_VALIDATE(i == 0 || entries_[i - 1].id < e.id,
                  "version-manager: version ids not strictly increasing ("
                      << entries_[i - 1].id << " then " << e.id << ")");
    MIND_VALIDATE(i == 0 || entries_[i - 1].start <= e.start,
                  "version-manager: version " << e.id << " starts at " << e.start
                                              << ", before version " << entries_[i - 1].id
                                              << " at " << entries_[i - 1].start);
    MIND_VALIDATE(e.cuts != nullptr, "version-manager: version " << e.id << " has no cut tree");
    // A null store is a lazily-opened version that has never been written.
    if (e.store != nullptr) {
      MIND_VALIDATE(e.store->cuts().get() == e.cuts.get(),
                    "version-manager: version " << e.id
                                                << " cut tree desynced from its store's "
                                                   "(queries and stored tuples would be "
                                                   "coded under different embeddings)");
      MIND_RETURN_NOT_OK(e.store->ValidateInvariants());
    }
  }
#endif  // MIND_VALIDATORS_ENABLED
  return Status::OK();
}

void IndexVersions::DigestInto(Fnv64* out) const {
  out->Mix(static_cast<uint64_t>(entries_.size()));
  for (const auto& e : entries_) {
    out->Mix(static_cast<uint64_t>(e.id));
    out->Mix(e.start);
    if (e.store != nullptr) {
      e.store->DigestInto(out);
    } else {
      TupleStore::DigestEmptyInto(out);
    }
  }
}

void IndexVersions::SaveSnapshotState(
    SnapWriter* w,
    const std::function<uint32_t(const CutTreeRef&)>& tree_index) const {
  w->U64(epoch_);
  w->U64(entries_.size());
  for (const Entry& e : entries_) {
    w->U32(e.id);
    w->U64(e.start);
    w->U32(tree_index(e.cuts));
    w->U64(e.adaptive_at_open.rows);
    w->U64(e.adaptive_at_open.queries);
    w->U64(e.adaptive_at_open.cover_ranges);
    w->U64(e.adaptive_at_open.rows_examined);
    w->U64(e.adaptive_at_open.rows_matched);
    if (e.store == nullptr) {
      w->U8(0);  // lazy: the version has never been written
    } else {
      w->U8(1);
      w->U8(static_cast<uint8_t>(e.store->backend_kind()));
      e.store->SaveSnapshotState(w);
    }
  }
}

Status IndexVersions::LoadSnapshotState(SnapReader* r,
                                        const std::vector<CutTreeRef>& trees) {
  if (!entries_.empty()) {
    return Status::Internal("snapshot: restoring into a non-empty chain");
  }
  MIND_ASSIGN_OR_RETURN(epoch_, r->U64("versions.epoch"));
  uint64_t count;
  MIND_ASSIGN_OR_RETURN(count, r->U64("versions.count"));
  if (count > (uint64_t{1} << 20)) {
    return r->FieldError("versions.count",
                         "implausible chain length " + std::to_string(count));
  }
  entries_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    MIND_ASSIGN_OR_RETURN(e.id, r->U32("versions.entry.id"));
    MIND_ASSIGN_OR_RETURN(e.start, r->U64("versions.entry.start"));
    uint32_t tree_idx;
    MIND_ASSIGN_OR_RETURN(tree_idx, r->U32("versions.entry.tree"));
    if (tree_idx >= trees.size()) {
      return r->FieldError("versions.entry.tree",
                           "tree index " + std::to_string(tree_idx) +
                               " outside the interned table of " +
                               std::to_string(trees.size()));
    }
    e.cuts = trees[tree_idx];
    MIND_ASSIGN_OR_RETURN(e.adaptive_at_open.rows, r->U64("versions.ao.rows"));
    MIND_ASSIGN_OR_RETURN(e.adaptive_at_open.queries,
                          r->U64("versions.ao.queries"));
    MIND_ASSIGN_OR_RETURN(e.adaptive_at_open.cover_ranges,
                          r->U64("versions.ao.cover_ranges"));
    MIND_ASSIGN_OR_RETURN(e.adaptive_at_open.rows_examined,
                          r->U64("versions.ao.rows_examined"));
    MIND_ASSIGN_OR_RETURN(e.adaptive_at_open.rows_matched,
                          r->U64("versions.ao.rows_matched"));
    if (!entries_.empty()) {
      if (e.id <= entries_.back().id) {
        return r->FieldError("versions.entry.id",
                             "version ids not strictly increasing");
      }
      if (e.start < entries_.back().start) {
        return r->FieldError("versions.entry.start",
                             "version start times decrease");
      }
    }
    uint8_t materialized;
    MIND_ASSIGN_OR_RETURN(materialized, r->U8("versions.entry.materialized"));
    if (materialized > 1) {
      return r->FieldError("versions.entry.materialized", "not a boolean");
    }
    if (materialized != 0) {
      uint8_t kind;
      MIND_ASSIGN_OR_RETURN(kind, r->U8("versions.entry.backend"));
      if (kind != static_cast<uint8_t>(IndexBackendKind::kSortedRuns) &&
          kind != static_cast<uint8_t>(IndexBackendKind::kBitmap)) {
        return r->FieldError(
            "versions.entry.backend",
            "kind " + std::to_string(kind) +
                " is not a resolved backend (0=sorted, 1=bitmap)");
      }
      // Reopen with the saved resolved kind: never re-run the adaptive
      // choice at restore, or a chain snapshotted mid-history could flip
      // its layout and (through scan counters) its future evidence.
      TupleStoreConfig config = config_;
      config.options.backend = static_cast<IndexBackendKind>(kind);
      config.adaptive_stats = e.adaptive_at_open;
      e.store = std::make_unique<TupleStore>(e.cuts, config);
      MIND_RETURN_NOT_OK(e.store->LoadSnapshotState(r));
    }
    entries_.push_back(std::move(e));
  }
  // AddVersion keeps config_.adaptive_stats equal to the newest entry's
  // open-time evidence; restore the same relationship.
  if (!entries_.empty()) {
    config_.adaptive_stats = entries_.back().adaptive_at_open;
  }
  return Status::OK();
}

size_t IndexVersions::TotalTuples() const {
  size_t n = 0;
  for (const auto& e : entries_) {
    if (e.store != nullptr) n += e.store->size();
  }
  return n;
}

uint64_t IndexVersions::TotalBytes() const {
  uint64_t n = 0;
  for (const auto& e : entries_) {
    if (e.store != nullptr) n += e.store->approx_bytes();
  }
  return n;
}

}  // namespace mind
