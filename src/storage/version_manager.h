// Daily index versions (paper §3.7).
//
// MIND never migrates historical data when the balanced cuts change: each
// newly installed cut tree opens a new *version* of the index, valid from its
// installation time. A query's time range selects the version(s) it must be
// evaluated against.
#ifndef MIND_STORAGE_VERSION_MANAGER_H_
#define MIND_STORAGE_VERSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"
#include "space/cut_tree.h"
#include "storage/tuple_store.h"

namespace mind {

using VersionId = uint32_t;

/// \brief The version chain of one index at one node.
class IndexVersions {
 public:
  /// Default store policy with the given key precision (tests, tools).
  explicit IndexVersions(int code_len) { config_.code_len = code_len; }
  /// Full store config: every opened version's store is stamped with it
  /// (layout policy, metrics registry, the node's shared cover cache).
  explicit IndexVersions(TupleStoreConfig config) : config_(config) {}

  /// Opens a new version valid from `start`. Versions must be added in
  /// increasing (id, start) order; the previous version closes at `start`
  /// and — the daily freeze — gets its delta run compacted down, so sealed
  /// stores serve their history at base-run cost.
  ///
  /// The new version's store is *lazy*: opening a version records only the
  /// chain entry (id, start, cuts); the TupleStore materializes on the first
  /// write. A wide-area deployment installs re-balanced cuts on every node
  /// every day, but most nodes receive no data for most versions — eager
  /// stores would grow every node by two allocations per day forever
  /// (bench_fig22_scale10k's RSS gate catches exactly that).
  Status AddVersion(VersionId id, CutTreeRef cuts, SimTime start);

  /// True if `id` has been opened on this chain (materialized or not).
  /// The existence check for protocol paths; Store(id) == nullptr no longer
  /// distinguishes "unknown version" from "no data yet".
  bool HasVersion(VersionId id) const { return Find(id) != nullptr; }

  /// Version in effect at time t (the last version with start <= t), or
  /// nullptr if none. Write-path accessor: materializes the store.
  TupleStore* StoreForTime(SimTime t);

  /// Store of a specific version. The non-const overload is the write path:
  /// it materializes a lazy store (nullptr only for unknown ids). The const
  /// overload is the read path: nullptr for unknown *or* never-written
  /// versions, which readers treat as an empty store.
  TupleStore* Store(VersionId id);
  const TupleStore* Store(VersionId id) const;

  /// Cut tree of a specific version, or nullptr.
  CutTreeRef Cuts(VersionId id) const;

  /// Ids of versions whose validity window [start, next_start) overlaps
  /// [t1, t2] (inclusive); the last version is open-ended.
  std::vector<VersionId> VersionsOverlapping(SimTime t1, SimTime t2) const;

  /// Latest version id, or nullopt if none.
  std::optional<VersionId> LatestVersion() const;

  /// Monotonic count of versions ever opened on this chain. The front-end's
  /// standing queries snapshot this to detect that re-balanced cuts were
  /// installed since their last execution (a cheap "did anything change"
  /// check that never touches the stores).
  uint64_t epoch() const { return epoch_; }

  /// All versions with their validity start times, in order.
  struct VersionInfo {
    VersionId id;
    SimTime start;
  };
  std::vector<VersionInfo> Versions() const;

  /// Start time of a version; error if unknown.
  Result<SimTime> StartOf(VersionId id) const;

  size_t TotalTuples() const;
  uint64_t TotalBytes() const;

  /// Checks the version chain: ids strictly increasing, starts nondecreasing,
  /// every entry carrying a cut tree and a store, and each store built over
  /// the *same* cut tree the chain records for that version (a desync here
  /// would code queries and stored tuples under different embeddings). Also
  /// validates each store. Returns OK trivially when MIND_VALIDATORS is off.
  Status ValidateInvariants() const;

  /// Folds the version chain (ids, start times, store contents) into `out`.
  void DigestInto(Fnv64* out) const;

  /// Serializes the chain for the MSN1 snapshot (DESIGN.md §14).
  /// `tree_index` maps each entry's cut tree to its index in the snapshot's
  /// interned tree table (trees are shared across nodes and written once).
  /// Lazy (never-written) stores serialize as a single absent flag.
  void SaveSnapshotState(SnapWriter* w,
                         const std::function<uint32_t(const CutTreeRef&)>&
                             tree_index) const;
  /// Restores a chain written by SaveSnapshotState into this freshly
  /// constructed (empty) manager; `trees` is the deserialized interned tree
  /// table. Materialized stores are reopened with their saved resolved
  /// backend kind — never re-resolved, so a restore mid-history cannot flip
  /// an adaptive choice.
  Status LoadSnapshotState(SnapReader* r, const std::vector<CutTreeRef>& trees);

 private:
  friend class VersionManagerTestPeek;  // corruption injection in validator tests

  struct Entry {
    VersionId id;
    SimTime start;
    CutTreeRef cuts;
    /// Null until the first write (see AddVersion). Readers treat null as an
    /// empty store; DigestInto folds the empty-store digest so lazy and
    /// materialized-but-empty chains are indistinguishable.
    std::unique_ptr<TupleStore> store;
    /// kAdaptive evidence captured when this version opened, so a store
    /// materializing late still resolves its backend exactly as an eager
    /// store would have at AddVersion time.
    BackendWorkloadStats adaptive_at_open;
  };
  const Entry* Find(VersionId id) const;
  /// Creates the entry's store on first write (config_ + adaptive_at_open).
  TupleStore* Materialize(Entry* e);

  // mind-digest: skip(construction-time config, not evolving state)
  TupleStoreConfig config_;
  std::vector<Entry> entries_;  // sorted by (id, start)
  // mind-digest: skip(monotone open counter; observability only, see epoch())
  uint64_t epoch_ = 0;          // versions ever opened (see epoch())
};

}  // namespace mind

#endif  // MIND_STORAGE_VERSION_MANAGER_H_
