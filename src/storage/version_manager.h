// Daily index versions (paper §3.7).
//
// MIND never migrates historical data when the balanced cuts change: each
// newly installed cut tree opens a new *version* of the index, valid from its
// installation time. A query's time range selects the version(s) it must be
// evaluated against.
#ifndef MIND_STORAGE_VERSION_MANAGER_H_
#define MIND_STORAGE_VERSION_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.h"
#include "space/cut_tree.h"
#include "storage/tuple_store.h"

namespace mind {

using VersionId = uint32_t;

/// \brief The version chain of one index at one node.
class IndexVersions {
 public:
  /// Default store policy with the given key precision (tests, tools).
  explicit IndexVersions(int code_len) { config_.code_len = code_len; }
  /// Full store config: every opened version's store is stamped with it
  /// (layout policy, metrics registry, the node's shared cover cache).
  explicit IndexVersions(TupleStoreConfig config) : config_(config) {}

  /// Opens a new version valid from `start`. Versions must be added in
  /// increasing (id, start) order; the previous version closes at `start`
  /// and — the daily freeze — gets its delta run compacted down, so sealed
  /// stores serve their history at base-run cost.
  Status AddVersion(VersionId id, CutTreeRef cuts, SimTime start);

  /// Version in effect at time t (the last version with start <= t), or
  /// nullptr if none.
  TupleStore* StoreForTime(SimTime t);

  /// Store of a specific version, or nullptr.
  TupleStore* Store(VersionId id);
  const TupleStore* Store(VersionId id) const;

  /// Cut tree of a specific version, or nullptr.
  CutTreeRef Cuts(VersionId id) const;

  /// Ids of versions whose validity window [start, next_start) overlaps
  /// [t1, t2] (inclusive); the last version is open-ended.
  std::vector<VersionId> VersionsOverlapping(SimTime t1, SimTime t2) const;

  /// Latest version id, or nullopt if none.
  std::optional<VersionId> LatestVersion() const;

  /// Monotonic count of versions ever opened on this chain. The front-end's
  /// standing queries snapshot this to detect that re-balanced cuts were
  /// installed since their last execution (a cheap "did anything change"
  /// check that never touches the stores).
  uint64_t epoch() const { return epoch_; }

  /// All versions with their validity start times, in order.
  struct VersionInfo {
    VersionId id;
    SimTime start;
  };
  std::vector<VersionInfo> Versions() const;

  /// Start time of a version; error if unknown.
  Result<SimTime> StartOf(VersionId id) const;

  size_t TotalTuples() const;
  uint64_t TotalBytes() const;

  /// Checks the version chain: ids strictly increasing, starts nondecreasing,
  /// every entry carrying a cut tree and a store, and each store built over
  /// the *same* cut tree the chain records for that version (a desync here
  /// would code queries and stored tuples under different embeddings). Also
  /// validates each store. Returns OK trivially when MIND_VALIDATORS is off.
  Status ValidateInvariants() const;

  /// Folds the version chain (ids, start times, store contents) into `out`.
  void DigestInto(Fnv64* out) const;

 private:
  friend class VersionManagerTestPeek;  // corruption injection in validator tests

  struct Entry {
    VersionId id;
    SimTime start;
    CutTreeRef cuts;
    std::unique_ptr<TupleStore> store;
  };
  const Entry* Find(VersionId id) const;

  // mind-digest: skip(construction-time config, not evolving state)
  TupleStoreConfig config_;
  std::vector<Entry> entries_;  // sorted by (id, start)
  // mind-digest: skip(monotone open counter; observability only, see epoch())
  uint64_t epoch_ = 0;          // versions ever opened (see epoch())
};

}  // namespace mind

#endif  // MIND_STORAGE_VERSION_MANAGER_H_
