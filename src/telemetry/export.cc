#include "telemetry/export.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "telemetry/json.h"

// Stamped by the top-level CMakeLists at configure time; the fallbacks keep
// out-of-band compiles (e.g. a bare clang-tidy invocation) building.
#ifndef MIND_GIT_SHA
#define MIND_GIT_SHA "unknown"
#endif
#ifndef MIND_BUILD_TYPE
#define MIND_BUILD_TYPE "unknown"
#endif

namespace mind {
namespace telemetry {

namespace {

// The run-environment block: everything needed to judge whether two exports
// are comparable (same build shape, same duty cycle, same engine config).
std::string DutyEnv() {
  const char* env = std::getenv("MIND_BENCH_DUTY");
  return env != nullptr ? env : "";
}

JsonValue HistogramJson(const SimHistogram& h) {
  JsonValue v = JsonValue::Object();
  v.Set("count", JsonValue::Number(static_cast<double>(h.count())));
  v.Set("sum", JsonValue::Number(h.sum()));
  v.Set("min", JsonValue::Number(h.min()));
  v.Set("max", JsonValue::Number(h.max()));
  v.Set("mean", JsonValue::Number(h.Mean()));
  v.Set("p50", JsonValue::Number(h.Percentile(50)));
  v.Set("p90", JsonValue::Number(h.Percentile(90)));
  v.Set("p99", JsonValue::Number(h.Percentile(99)));
  return v;
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace

std::string JsonExporter::Export(const MetricsRegistry& registry,
                                 const RunMeta& meta) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Number(1));
  doc.Set("bench", JsonValue::Str(meta.bench));

  JsonValue m = JsonValue::Object();
  m.Set("seed", JsonValue::Number(static_cast<double>(meta.seed)));
  m.Set("topology", JsonValue::Str(meta.topology));
  m.Set("nodes", JsonValue::Number(meta.nodes));
  for (const auto& [k, v] : meta.extra) m.Set(k, JsonValue::Str(v));
  doc.Set("meta", std::move(m));

  JsonValue run = JsonValue::Object();
  run.Set("threads", JsonValue::Number(meta.threads));
  run.Set("duty", JsonValue::Str(DutyEnv()));
  run.Set("build_type", JsonValue::Str(MIND_BUILD_TYPE));
  run.Set("git_sha", JsonValue::Str(MIND_GIT_SHA));
  doc.Set("run", std::move(run));

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : registry.counters()) {
    counters.Set(name, JsonValue::Number(static_cast<double>(c->value())));
  }
  doc.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, g] : registry.gauges()) {
    gauges.Set(name, JsonValue::Number(g->value()));
  }
  doc.Set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::Object();
  for (const auto& [name, h] : registry.histograms()) {
    hists.Set(name, HistogramJson(*h));
  }
  doc.Set("histograms", std::move(hists));

  return doc.ToString() + "\n";
}

Status JsonExporter::WriteFile(const MetricsRegistry& registry,
                               const RunMeta& meta, const std::string& path) {
  return WriteStringToFile(Export(registry, meta), path);
}

std::string JsonExporter::DefaultPath(const RunMeta& meta) {
  return "BENCH_" + meta.bench + ".json";
}

std::string CsvExporter::Export(const MetricsRegistry& registry,
                                const RunMeta& meta) {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  out << "meta," << meta.bench << ",seed," << meta.seed << "\n";
  out << "meta," << meta.bench << ",topology," << meta.topology << "\n";
  out << "meta," << meta.bench << ",nodes," << meta.nodes << "\n";
  for (const auto& [k, v] : meta.extra) {
    out << "meta," << meta.bench << "," << k << "," << v << "\n";
  }
  out << "run," << meta.bench << ",threads," << meta.threads << "\n";
  out << "run," << meta.bench << ",duty," << DutyEnv() << "\n";
  out << "run," << meta.bench << ",build_type," << MIND_BUILD_TYPE << "\n";
  out << "run," << meta.bench << ",git_sha," << MIND_GIT_SHA << "\n";
  for (const auto& [name, c] : registry.counters()) {
    out << "counter," << name << ",value," << c->value() << "\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    out << "gauge," << name << ",value," << FormatDouble(g->value()) << "\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    out << "histogram," << name << ",count," << h->count() << "\n";
    out << "histogram," << name << ",sum," << FormatDouble(h->sum()) << "\n";
    out << "histogram," << name << ",min," << FormatDouble(h->min()) << "\n";
    out << "histogram," << name << ",max," << FormatDouble(h->max()) << "\n";
    out << "histogram," << name << ",mean," << FormatDouble(h->Mean()) << "\n";
    out << "histogram," << name << ",p50," << FormatDouble(h->Percentile(50))
        << "\n";
    out << "histogram," << name << ",p90," << FormatDouble(h->Percentile(90))
        << "\n";
    out << "histogram," << name << ",p99," << FormatDouble(h->Percentile(99))
        << "\n";
  }
  return out.str();
}

Status CsvExporter::WriteFile(const MetricsRegistry& registry,
                              const RunMeta& meta, const std::string& path) {
  return WriteStringToFile(Export(registry, meta), path);
}

}  // namespace telemetry
}  // namespace mind
