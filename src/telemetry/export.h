// Snapshot exporters: serialize a MetricsRegistry plus run metadata into
// machine-readable files next to the human-readable bench tables.
//
// JSON schema (schema_version 1), stable across runs so downstream plots can
// diff BENCH_*.json files between commits:
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "meta": {"seed": ..., "topology": "...", "nodes": ..., ...extra},
//     "run": {"threads": ..., "duty": "...", "build_type": "...",
//             "git_sha": "..."},
//     "counters": {"overlay.join.attempts": 42, ...},
//     "gauges": {"bench.fig16.success_pct.f10": 98.5, ...},
//     "histograms": {
//       "mind.query.latency_ms": {"count":..., "sum":..., "min":...,
//         "max":..., "mean":..., "p50":..., "p90":..., "p99":...},
//       ...
//     }
//   }
//
// CSV is a flat `kind,name,field,value` table of the same snapshot for
// spreadsheet import.
#ifndef MIND_TELEMETRY_EXPORT_H_
#define MIND_TELEMETRY_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>

#include "telemetry/metrics.h"
#include "util/status.h"

namespace mind {
namespace telemetry {

/// Run metadata stamped into every export so a BENCH_*.json file is
/// self-describing (which bench, which seed, which deployment shape).
struct RunMeta {
  std::string bench;      // e.g. "fig07_insert_latency"
  uint64_t seed = 0;
  std::string topology;   // e.g. "transit_stub", "flat"
  int nodes = 0;
  /// Worker threads of the parallel engine (0 = sequential engine).
  int threads = 0;
  std::map<std::string, std::string> extra;  // free-form key/values
};

class JsonExporter {
 public:
  /// Serializes the registry snapshot + metadata to a JSON document.
  static std::string Export(const MetricsRegistry& registry,
                            const RunMeta& meta);
  /// Export + write to `path`.
  static Status WriteFile(const MetricsRegistry& registry, const RunMeta& meta,
                          const std::string& path);
  /// Canonical output filename: "BENCH_<meta.bench>.json".
  static std::string DefaultPath(const RunMeta& meta);
};

class CsvExporter {
 public:
  /// Flat `kind,name,field,value` rows (header included).
  static std::string Export(const MetricsRegistry& registry,
                            const RunMeta& meta);
  static Status WriteFile(const MetricsRegistry& registry, const RunMeta& meta,
                          const std::string& path);
};

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_EXPORT_H_
