#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mind {
namespace telemetry {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::GetPath(const std::string& dotted) const {
  const JsonValue* cur = this;
  size_t pos = 0;
  while (cur != nullptr && pos <= dotted.size()) {
    size_t dot = dotted.find('.', pos);
    std::string key = dotted.substr(pos, dot == std::string::npos
                                             ? std::string::npos
                                             : dot - pos);
    cur = cur->Get(key);
    if (dot == std::string::npos) return cur;
    pos = dot + 1;
  }
  return cur;
}

void JsonValue::Set(std::string key, JsonValue v) {
  if (type_ != Type::kObject) return;
  object_[std::move(key)] = std::move(v);
}

void JsonValue::Push(JsonValue v) {
  if (type_ != Type::kArray) return;
  array_.push_back(std::move(v));
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonValue::ToString() const {
  std::ostringstream out;
  switch (type_) {
    case Type::kNull:
      out << "null";
      break;
    case Type::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Type::kNumber: {
      char buf[40];
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      out << buf;
      break;
    }
    case Type::kString:
      out << JsonQuote(string_);
      break;
    case Type::kArray: {
      out << "[";
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out << ",";
        first = false;
        out << v.ToString();
      }
      out << "]";
      break;
    }
    case Type::kObject: {
      out << "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out << ",";
        first = false;
        out << JsonQuote(k) << ":" << v.ToString();
      }
      out << "}";
      break;
    }
  }
  return out.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    MIND_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      MIND_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue::Null();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::Bool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::Bool(false);
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    double d = std::strtod(num.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') return Err("bad number '" + num + "'");
    return JsonValue::Number(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          if (code > 0x7f) return Err("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      MIND_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Push(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      MIND_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      MIND_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace telemetry
}  // namespace mind
