// Minimal JSON document model and recursive-descent parser, sufficient for
// the BENCH_*.json exporter schema: null/bool/number/string/array/object,
// UTF-8 passthrough, \uXXXX unescaped to a literal code point byte-wise only
// for ASCII. Used by tests to round-trip exporter output and by tooling that
// reads bench snapshots; not a general-purpose JSON library.
#ifndef MIND_TELEMETRY_JSON_H_
#define MIND_TELEMETRY_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mind {
namespace telemetry {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses a complete document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return array_; }
  const std::map<std::string, JsonValue>& fields() const { return object_; }

  /// Object member lookup; nullptr if absent or not an object.
  const JsonValue* Get(const std::string& key) const;
  /// Dotted-path lookup over nested objects ("meta.seed").
  const JsonValue* GetPath(const std::string& dotted) const;

  // Builders (no-ops on wrong type, checked by callers/tests).
  void Set(std::string key, JsonValue v);
  void Push(JsonValue v);

  /// Serializes back to compact JSON (object keys in sorted order; numbers
  /// via %.17g so doubles round-trip exactly).
  std::string ToString() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes a string for embedding in a JSON document (quotes included).
std::string JsonQuote(std::string_view s);

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_JSON_H_
