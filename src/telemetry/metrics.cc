#include "telemetry/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace mind {
namespace telemetry {

namespace {
// Which shard slot this thread's recordings attribute to; 0 = serial context.
thread_local int tls_shard_slot = 0;
}  // namespace

void SetShardSlot(int slot) { tls_shard_slot = slot; }
int ShardSlot() { return tls_shard_slot; }

SimHistogram::SimHistogram(const bool* enabled, const HistogramOptions& opts)
    : enabled_(enabled) {
  MIND_CHECK_GT(opts.min_bound, 0.0);
  MIND_CHECK_GT(opts.growth, 1.0);
  MIND_CHECK_GT(opts.buckets, 0);
  bounds_.reserve(static_cast<size_t>(opts.buckets));
  double b = opts.min_bound;
  for (int i = 0; i < opts.buckets; ++i) {
    bounds_.push_back(b);
    b *= opts.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void SimHistogram::Record(double v) {
#ifdef MIND_TELEMETRY_DISABLED
  (void)v;
#else
  if (!*enabled_) return;
  if (v < 0) v = 0;
  int slot = shards_.empty() ? 0 : ShardSlot();
  if (slot == 0) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<size_t>(it - bounds_.begin())];
    return;
  }
  Shard& s = shards_[static_cast<size_t>(slot - 1)];
  if (s.counts.empty()) s.counts.assign(bounds_.size() + 1, 0);
  if (s.count == 0) {
    s.min = s.max = v;
  } else {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  ++s.count;
  s.sum += v;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++s.counts[static_cast<size_t>(it - bounds_.begin())];
#endif
}

uint64_t SimHistogram::count() const {
  uint64_t n = count_;
  for (const Shard& s : shards_) n += s.count;
  return n;
}

double SimHistogram::sum() const {
  double v = sum_;
  for (const Shard& s : shards_) v += s.sum;
  return v;
}

double SimHistogram::min() const {
  bool have = count_ > 0;
  double v = have ? min_ : 0;
  for (const Shard& s : shards_) {
    if (s.count == 0) continue;
    v = have ? std::min(v, s.min) : s.min;
    have = true;
  }
  return v;
}

double SimHistogram::max() const {
  bool have = count_ > 0;
  double v = have ? max_ : 0;
  for (const Shard& s : shards_) {
    if (s.count == 0) continue;
    v = have ? std::max(v, s.max) : s.max;
    have = true;
  }
  return v;
}

double SimHistogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  // Extend the bounds with the observed max as the overflow bucket's edge so
  // the shared interpolation helper covers all counts_.size() buckets.
  std::vector<double> bounds = bounds_;
  double mx = max();
  bounds.push_back(std::max(mx, bounds_.back()));
  double v;
  if (shards_.empty()) {
    v = PercentileFromBuckets(counts_, bounds, p);
  } else {
    std::vector<uint64_t> merged = counts_;
    for (const Shard& s : shards_) {
      if (s.counts.empty()) continue;
      for (size_t i = 0; i < merged.size(); ++i) merged[i] += s.counts[i];
    }
    v = PercentileFromBuckets(merged, bounds, p);
  }
  return std::clamp(v, min(), mx);
}

void SimHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
  for (Shard& s : shards_) {
    std::fill(s.counts.begin(), s.counts.end(), 0);
    s.count = 0;
    s.sum = s.min = s.max = 0;
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
    if (shard_slots_ > 0) it->second->EnableSharding(shard_slots_);
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return *it->second;
}

SimHistogram& MetricsRegistry::histogram(const std::string& name,
                                         HistogramOptions opts) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<SimHistogram>(
                                new SimHistogram(&enabled_, opts)))
             .first;
    if (shard_slots_ > 0) it->second->EnableSharding(shard_slots_);
  }
  return *it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const SimHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::EnableSharding(int slots) {
  MIND_CHECK_GT(slots, 1);
  shard_slots_ = slots;
  for (auto& [name, c] : counters_) c->EnableSharding(slots);
  for (auto& [name, h] : histograms_) h->EnableSharding(slots);
}

}  // namespace telemetry
}  // namespace mind
