#include "telemetry/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace mind {
namespace telemetry {

SimHistogram::SimHistogram(const bool* enabled, const HistogramOptions& opts)
    : enabled_(enabled) {
  MIND_CHECK_GT(opts.min_bound, 0.0);
  MIND_CHECK_GT(opts.growth, 1.0);
  MIND_CHECK_GT(opts.buckets, 0);
  bounds_.reserve(static_cast<size_t>(opts.buckets));
  double b = opts.min_bound;
  for (int i = 0; i < opts.buckets; ++i) {
    bounds_.push_back(b);
    b *= opts.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void SimHistogram::Record(double v) {
#ifdef MIND_TELEMETRY_DISABLED
  (void)v;
#else
  if (!*enabled_) return;
  if (v < 0) v = 0;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
#endif
}

double SimHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  // Extend the bounds with the observed max as the overflow bucket's edge so
  // the shared interpolation helper covers all counts_.size() buckets.
  std::vector<double> bounds = bounds_;
  bounds.push_back(std::max(max_, bounds_.back()));
  double v = PercentileFromBuckets(counts_, bounds, p);
  return std::clamp(v, min_, max_);
}

void SimHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return *it->second;
}

SimHistogram& MetricsRegistry::histogram(const std::string& name,
                                         HistogramOptions opts) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<SimHistogram>(
                                new SimHistogram(&enabled_, opts)))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const SimHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace telemetry
}  // namespace mind
