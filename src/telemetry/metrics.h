// Metrics registry: named counters, gauges and fixed-bucket histograms,
// cheap enough to stay always-on in the simulator hot path.
//
// Naming convention (see DESIGN.md "Telemetry"): `layer.component.metric`,
// e.g. `sim.net.bytes`, `overlay.join.attempts`, `mind.dac.insert_wait_ms`.
// A unit suffix (`_ms`, `_bytes`) documents what a histogram records.
//
// Instruments are owned by the registry and returned by stable reference, so
// hot paths resolve a name once and cache the pointer. Recording respects the
// registry-wide enabled flag (one predictable branch); compiling with
// MIND_TELEMETRY_DISABLED turns every recording call into a no-op.
#ifndef MIND_TELEMETRY_METRICS_H_
#define MIND_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/stats.h"

namespace mind {
namespace telemetry {

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
#ifndef MIND_TELEMETRY_DISABLED
    if (*enabled_) value_ += delta;
#else
    (void)delta;
#endif
  }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  uint64_t value_ = 0;
  const bool* enabled_;
};

/// Last-write-wins numeric level (queue depths, fractions, sizes).
class Gauge {
 public:
  void Set(double v) {
#ifndef MIND_TELEMETRY_DISABLED
    if (*enabled_) value_ = v;
#else
    (void)v;
#endif
  }
  void Add(double delta) {
#ifndef MIND_TELEMETRY_DISABLED
    if (*enabled_) value_ += delta;
#else
    (void)delta;
#endif
  }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  double value_ = 0;
  const bool* enabled_;
};

/// Bucket layout of a SimHistogram: geometric bounds
/// min_bound * growth^i for i in [0, buckets). Values above the last bound
/// land in an overflow bucket whose upper edge is the observed maximum.
struct HistogramOptions {
  double min_bound = 1e-3;
  double growth = 1.07;
  int buckets = 360;  // covers ~10 decades above min_bound
};

/// Fixed-bucket histogram for sim-time (or any nonnegative) samples, with
/// percentile extraction by in-bucket interpolation. Recording is O(log B)
/// with no allocation; the worst-case percentile error is one bucket's
/// relative width (~growth - 1).
class SimHistogram {
 public:
  void Record(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double Mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }
  /// p in [0, 100]; interpolated inside the covering bucket and clamped to
  /// the observed [min, max].
  double Percentile(double p) const;

  const std::vector<uint64_t>& bucket_counts() const { return counts_; }
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  void Reset();

 private:
  friend class MetricsRegistry;
  SimHistogram(const bool* enabled, const HistogramOptions& opts);

  std::vector<double> bounds_;   // upper edges, size B
  std::vector<uint64_t> counts_; // size B + 1 (last = overflow)
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  const bool* enabled_;
};

/// Owner of all named instruments of one run (usually one per Simulator;
/// benches may also hold a standalone registry for run-level aggregates).
/// Instrument references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  SimHistogram& histogram(const std::string& name, HistogramOptions opts = {});

  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const SimHistogram* FindHistogram(const std::string& name) const;

  /// Runtime kill switch: while false, every recording call is a no-op.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Deterministic (name-sorted) iteration for exporters.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<SimHistogram>>& histograms()
      const {
    return histograms_;
  }

  /// Zeroes every instrument (names and references survive).
  void Reset();

 private:
#ifdef MIND_TELEMETRY_DISABLED
  bool enabled_ = false;
#else
  bool enabled_ = true;
#endif
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<SimHistogram>> histograms_;
};

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_METRICS_H_
