// Metrics registry: named counters, gauges and fixed-bucket histograms,
// cheap enough to stay always-on in the simulator hot path.
//
// Naming convention (see DESIGN.md "Telemetry"): `layer.component.metric`,
// e.g. `sim.net.bytes`, `overlay.join.attempts`, `mind.dac.insert_wait_ms`.
// A unit suffix (`_ms`, `_bytes`) documents what a histogram records.
//
// Instruments are owned by the registry and returned by stable reference, so
// hot paths resolve a name once and cache the pointer. Recording respects the
// registry-wide enabled flag (one predictable branch); compiling with
// MIND_TELEMETRY_DISABLED turns every recording call into a no-op.
#ifndef MIND_TELEMETRY_METRICS_H_
#define MIND_TELEMETRY_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/stats.h"

namespace mind {
namespace telemetry {

class MetricsRegistry;

/// Shard slot recording calls on this thread attribute to: 0 is the serial
/// context; the parallel engine sets 1 + shard while a worker executes a
/// shard. Sharded instruments route each write to its slot, so concurrent
/// shard workers never touch the same memory, and reads aggregate — sums and
/// min/max merges commute, so the aggregate is independent of thread count.
void SetShardSlot(int slot);
int ShardSlot();

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
#ifndef MIND_TELEMETRY_DISABLED
    if (*enabled_) {
      if (slots_ == nullptr) {
        value_ += delta;
      } else {
        (*slots_)[static_cast<size_t>(ShardSlot()) * kSlotStride] += delta;
      }
    }
#else
    (void)delta;
#endif
  }
  uint64_t value() const {
    uint64_t v = value_;
    if (slots_ != nullptr) {
      for (size_t i = 0; i < slots_->size(); i += kSlotStride) v += (*slots_)[i];
    }
    return v;
  }
  void Reset() {
    value_ = 0;
    if (slots_ != nullptr) std::fill(slots_->begin(), slots_->end(), 0);
  }

 private:
  friend class MetricsRegistry;
  // One cache line per slot so shard workers do not false-share.
  static constexpr size_t kSlotStride = 8;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  void EnableSharding(int slots) {
    slots_ = std::make_unique<std::vector<uint64_t>>(
        static_cast<size_t>(slots) * kSlotStride, 0);
  }
  uint64_t value_ = 0;
  const bool* enabled_;
  std::unique_ptr<std::vector<uint64_t>> slots_;
};

/// Last-write-wins numeric level (queue depths, fractions, sizes).
/// Serial-context instrument: last-write-wins has no commutative merge, so
/// gauges are not sharded — set them from the orchestrating thread between
/// windows (all in-tree writers already do).
class Gauge {
 public:
  void Set(double v) {
#ifndef MIND_TELEMETRY_DISABLED
    if (*enabled_) value_ = v;
#else
    (void)v;
#endif
  }
  void Add(double delta) {
#ifndef MIND_TELEMETRY_DISABLED
    if (*enabled_) value_ += delta;
#else
    (void)delta;
#endif
  }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  double value_ = 0;
  const bool* enabled_;
};

/// Bucket layout of a SimHistogram: geometric bounds
/// min_bound * growth^i for i in [0, buckets). Values above the last bound
/// land in an overflow bucket whose upper edge is the observed maximum.
struct HistogramOptions {
  double min_bound = 1e-3;
  double growth = 1.07;
  int buckets = 360;  // covers ~10 decades above min_bound
};

/// Fixed-bucket histogram for sim-time (or any nonnegative) samples, with
/// percentile extraction by in-bucket interpolation. Recording is O(log B)
/// with no allocation; the worst-case percentile error is one bucket's
/// relative width (~growth - 1).
class SimHistogram {
 public:
  void Record(double v);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double Mean() const {
    uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0;
  }
  /// p in [0, 100]; interpolated inside the covering bucket and clamped to
  /// the observed [min, max].
  double Percentile(double p) const;

  /// Raw bucket arrays of the serial slot (shard slots, if any, are merged
  /// by the accessors above, not here; no in-tree caller needs raw merged
  /// buckets).
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  void Reset();

 private:
  friend class MetricsRegistry;
  SimHistogram(const bool* enabled, const HistogramOptions& opts);
  void EnableSharding(int slots) { shards_.resize(slots > 1 ? slots - 1 : 0); }
  // Per-shard-slot state (slot i >= 1 maps to shards_[i - 1]; slot 0 uses
  // the base fields). Bucket arrays allocate lazily on first record.
  struct Shard {
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  std::vector<double> bounds_;   // upper edges, size B
  std::vector<uint64_t> counts_; // size B + 1 (last = overflow)
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  const bool* enabled_;
  std::vector<Shard> shards_;
};

/// Owner of all named instruments of one run (usually one per Simulator;
/// benches may also hold a standalone registry for run-level aggregates).
/// Instrument references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  SimHistogram& histogram(const std::string& name, HistogramOptions opts = {});

  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const SimHistogram* FindHistogram(const std::string& name) const;

  /// Runtime kill switch: while false, every recording call is a no-op.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Deterministic (name-sorted) iteration for exporters.
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<SimHistogram>>& histograms()
      const {
    return histograms_;
  }

  /// Zeroes every instrument (names and references survive).
  void Reset();

  /// Switches counters and histograms to per-shard-slot recording with
  /// `slots` slots (serial slot 0 + one per shard). Called once by the
  /// parallel engine's Simulator before any worker records; instruments
  /// created later inherit the mode. Reads aggregate across slots.
  void EnableSharding(int slots);
  int shard_slots() const { return shard_slots_; }

 private:
#ifdef MIND_TELEMETRY_DISABLED
  bool enabled_ = false;
#else
  bool enabled_ = true;
#endif
  int shard_slots_ = 0;  // 0 = unsharded
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<SimHistogram>> histograms_;
};

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_METRICS_H_
