// Publishes the pool allocator's aggregate statistics (util/arena.h) as
// `memory.pool.*` gauges, so every bench export carries the bounded-memory
// evidence alongside its own figures (BENCH_SCHEMA.md).
//
// Serial-context helper like all gauge writers: call between windows or at
// sample points from the orchestrating thread.
#ifndef MIND_TELEMETRY_POOL_GAUGES_H_
#define MIND_TELEMETRY_POOL_GAUGES_H_

#include "telemetry/metrics.h"
#include "util/arena.h"

namespace mind {
namespace telemetry {

inline void PublishPoolGauges(MetricsRegistry& registry) {
  const pool::Stats s = pool::GatherStats();
  registry.gauge("memory.pool.live_bytes").Set(static_cast<double>(s.live_bytes));
  registry.gauge("memory.pool.peak_bytes").Set(static_cast<double>(s.peak_bytes));
  registry.gauge("memory.pool.slab_bytes").Set(static_cast<double>(s.slab_bytes));
  registry.gauge("memory.pool.allocs").Set(static_cast<double>(s.allocs));
  registry.gauge("memory.pool.frees").Set(static_cast<double>(s.frees));
  registry.gauge("memory.pool.oversize_allocs")
      .Set(static_cast<double>(s.oversize_allocs));
  registry.gauge("memory.pool.oversize_bytes")
      .Set(static_cast<double>(s.oversize_bytes));
}

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_POOL_GAUGES_H_
