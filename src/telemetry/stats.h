// Shared statistics helpers. Single home for percentile/mean extraction so
// the bench tables, the registry histograms and the exporters all agree on
// one definition (linear interpolation between order statistics).
#ifndef MIND_TELEMETRY_STATS_H_
#define MIND_TELEMETRY_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mind {
namespace telemetry {

/// Exact percentile of a sample (p in [0, 100]), linearly interpolated
/// between the two nearest order statistics. Copies and sorts.
inline double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Percentile from bucketed counts (the fixed-bucket histogram path).
/// `counts[i]` holds the number of samples in (bounds[i-1], bounds[i]];
/// bucket 0 covers (-inf, bounds[0]]. The result interpolates linearly
/// inside the bucket that contains the requested rank.
inline double PercentileFromBuckets(const std::vector<uint64_t>& counts,
                                    const std::vector<double>& bounds,
                                    double p) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    uint64_t next = seen + counts[i];
    if (static_cast<double>(next) >= rank) {
      double lo = (i == 0) ? 0.0 : bounds[i - 1];
      double hi = bounds[std::min(i, bounds.size() - 1)];
      double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    seen = next;
  }
  return bounds.empty() ? 0 : bounds.back();
}

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_STATS_H_
