// Umbrella facade: one Telemetry object per Simulator bundles the metrics
// registry and the tracer behind a single enable switch. See DESIGN.md
// "Telemetry" for the metric naming convention and span taxonomy.
#ifndef MIND_TELEMETRY_TELEMETRY_H_
#define MIND_TELEMETRY_TELEMETRY_H_

#include <functional>

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mind {
namespace telemetry {

class Telemetry {
 public:
  explicit Telemetry(std::function<SimTime()> clock)
      : tracer_(std::move(clock)) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  bool enabled() const { return metrics_.enabled(); }
  void set_enabled(bool enabled) {
    metrics_.set_enabled(enabled);
    tracer_.set_enabled(enabled);
  }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_TELEMETRY_H_
