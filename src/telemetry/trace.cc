#include "telemetry/trace.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace mind {
namespace telemetry {

Tracer::Tracer(std::function<SimTime()> clock, size_t max_traces,
               size_t max_spans_per_trace)
    : clock_(std::move(clock)),
      max_traces_(max_traces),
      max_spans_per_trace_(max_spans_per_trace) {
  MIND_CHECK(clock_ != nullptr);
  MIND_CHECK_GT(max_traces_, 0u);
}

Tracer::TraceBuf* Tracer::GetOrCreateTrace(uint64_t trace_id) {
  if (trace_id == mru_id_ && mru_ != nullptr) return mru_;
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    if (traces_.size() >= max_traces_) EvictOldest();
    order_.push_back(trace_id);
    if (spare_trace_) {
      spare_trace_.key() = trace_id;
      it = traces_.insert(std::move(spare_trace_)).position;
    } else {
      it = traces_.emplace(trace_id, TraceBuf{}).first;
    }
  }
  mru_id_ = trace_id;
  mru_ = &it->second;
  return mru_;
}

void Tracer::EvictOldest() {
  while (!order_.empty()) {
    uint64_t victim = order_.front();
    order_.pop_front();
    auto it = traces_.find(victim);
    if (it == traces_.end()) continue;  // already gone
    for (const TraceSpan& s : it->second.spans) {
      auto nh = index_.extract(s.span_id);
      if (nh && spare_index_.size() < 2 * max_spans_per_trace_) {
        spare_index_.push_back(std::move(nh));
      }
    }
    if (victim == mru_id_) mru_ = nullptr;
    spare_trace_ = traces_.extract(it);
    spare_trace_.mapped().spans.clear();  // keep capacity for reuse
    ++traces_evicted_;
    return;
  }
}

uint64_t Tracer::StartSpan(uint64_t trace_id, std::string name,
                           uint64_t parent_id, int node) {
#ifdef MIND_TELEMETRY_DISABLED
  (void)trace_id;
  (void)name;
  (void)parent_id;
  (void)node;
  return 0;
#else
  if (!enabled_) return 0;
  TraceBuf* buf = GetOrCreateTrace(trace_id);
  if (buf->spans.size() >= max_spans_per_trace_) {
    ++spans_dropped_;
    return 0;
  }
  TraceSpan span;
  span.span_id = next_span_id_++;
  span.trace_id = trace_id;
  span.parent_id = parent_id;
  span.name = std::move(name);
  span.node = node;
  span.start = clock_();
  if (!spare_index_.empty()) {
    auto nh = std::move(spare_index_.back());
    spare_index_.pop_back();
    nh.key() = span.span_id;
    nh.mapped() = SpanRef{buf, buf->spans.size()};
    index_.insert(std::move(nh));
  } else {
    index_.emplace(span.span_id, SpanRef{buf, buf->spans.size()});
  }
  buf->spans.push_back(std::move(span));
  return buf->spans.back().span_id;
#endif
}

void Tracer::EndSpan(uint64_t span_id) {
  if (span_id == 0) return;
  auto it = index_.find(span_id);
  if (it == index_.end()) return;  // evicted
  TraceSpan& span = it->second.buf->spans[it->second.idx];
  if (span.closed) return;
  span.end = clock_();
  span.closed = true;
}

void Tracer::Note(uint64_t span_id, const std::string& key,
                  std::string value) {
  if (span_id == 0) return;
  auto it = index_.find(span_id);
  if (it == index_.end()) return;
  it->second.buf->spans[it->second.idx].notes.emplace_back(key,
                                                           std::move(value));
}

const std::vector<TraceSpan>* Tracer::GetTrace(uint64_t trace_id) const {
  auto it = traces_.find(trace_id);
  return it == traces_.end() ? nullptr : &it->second.spans;
}

std::vector<SpanNode> Tracer::Tree(uint64_t trace_id) const {
  std::vector<SpanNode> roots;
  const std::vector<TraceSpan>* spans = GetTrace(trace_id);
  if (spans == nullptr) return roots;
  // Group children indices by parent id; spans whose parent is missing
  // (0, evicted, or dropped past the cap) become roots.
  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::unordered_map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans->size(); ++i) by_id[(*spans)[i].span_id] = i;
  std::vector<size_t> root_idx;
  for (size_t i = 0; i < spans->size(); ++i) {
    const TraceSpan& s = (*spans)[i];
    if (s.parent_id != 0 && by_id.count(s.parent_id)) {
      children[s.parent_id].push_back(i);
    } else {
      root_idx.push_back(i);
    }
  }
  std::function<SpanNode(size_t)> build = [&](size_t i) {
    SpanNode n;
    n.span = &(*spans)[i];
    auto it = children.find(n.span->span_id);
    if (it != children.end()) {
      for (size_t c : it->second) n.children.push_back(build(c));
    }
    return n;
  };
  for (size_t i : root_idx) roots.push_back(build(i));
  return roots;
}

std::string Tracer::Dump(uint64_t trace_id) const {
  std::ostringstream out;
  std::function<void(const SpanNode&, int)> rec = [&](const SpanNode& n,
                                                      int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
    out << n.span->name << " node=" << n.span->node << " ["
        << ToSeconds(n.span->start) << "s";
    if (n.span->closed) {
      out << " +" << ToSeconds(n.span->end - n.span->start) << "s]";
    } else {
      out << " OPEN]";
    }
    for (const auto& [k, v] : n.span->notes) out << " " << k << "=" << v;
    out << "\n";
    for (const SpanNode& c : n.children) rec(c, depth + 1);
  };
  for (const SpanNode& root : Tree(trace_id)) rec(root, 0);
  return out.str();
}

}  // namespace telemetry
}  // namespace mind
