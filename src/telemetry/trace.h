// Sim-time trace spans: per-operation span trees for the distributed insert
// and query paths, plus a bounded flight recorder for post-mortem analysis
// after injected failures.
//
// A *trace* is all the spans sharing one trace id (a query id or insert id);
// a *span* is one named interval on the sim clock, optionally parented to
// another span of the same trace, tagged with the node it ran on and
// free-form key/value notes. Spans may start on one node and end on another
// (the simulation is single-process), which is how cross-node intervals like
// route->arrival or reply->receipt are measured.
//
// The recorder is a ring buffer over whole traces: when more than
// `max_traces` distinct trace ids are live, the oldest trace is evicted.
// This bounds memory for always-on tracing in long runs while keeping the
// most recent operations inspectable after a failure.
#ifndef MIND_TELEMETRY_TRACE_H_
#define MIND_TELEMETRY_TRACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace mind {
namespace telemetry {

struct TraceSpan {
  uint64_t span_id = 0;
  uint64_t trace_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  int node = -1;  // NodeId of the node that started the span
  SimTime start = 0;
  SimTime end = 0;
  bool closed = false;
  std::vector<std::pair<std::string, std::string>> notes;
};

/// A span tree node (assembled view of one trace).
struct SpanNode {
  const TraceSpan* span = nullptr;
  std::vector<SpanNode> children;
};

class Tracer {
 public:
  /// `clock` supplies the current sim time; `max_traces` bounds the flight
  /// recorder (whole-trace FIFO eviction).
  explicit Tracer(std::function<SimTime()> clock, size_t max_traces = 256,
                  size_t max_spans_per_trace = 1024);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Opens a span; returns its id (0 when disabled — every other call
  /// accepts 0 as a no-op handle).
  uint64_t StartSpan(uint64_t trace_id, std::string name,
                     uint64_t parent_id = 0, int node = -1);
  /// Closes a span at the current sim time. No-op for unknown/evicted ids.
  void EndSpan(uint64_t span_id);
  /// Attaches a key/value note to an open or closed span.
  void Note(uint64_t span_id, const std::string& key, std::string value);

  /// All spans of a trace in start order; nullptr if unknown or evicted.
  const std::vector<TraceSpan>* GetTrace(uint64_t trace_id) const;
  /// Root spans of a trace with children nested (tree assembly).
  std::vector<SpanNode> Tree(uint64_t trace_id) const;
  /// Indented human-readable dump of one trace (post-mortem aid).
  std::string Dump(uint64_t trace_id) const;

  size_t trace_count() const { return traces_.size(); }
  uint64_t spans_dropped() const { return spans_dropped_; }
  uint64_t traces_evicted() const { return traces_evicted_; }

 private:
  struct TraceBuf {
    std::vector<TraceSpan> spans;
  };
  // Direct handle into a trace's span vector. TraceBuf pointers are stable
  // (node-based map) until the trace is erased, and every index_ entry of an
  // erased trace is erased with it, so a SpanRef can never dangle.
  struct SpanRef {
    TraceBuf* buf;
    size_t idx;
  };

  using TraceMap = std::unordered_map<uint64_t, TraceBuf>;
  using IndexMap = std::unordered_map<uint64_t, SpanRef>;

  TraceBuf* GetOrCreateTrace(uint64_t trace_id);
  void EvictOldest();

  std::function<SimTime()> clock_;
  size_t max_traces_;
  size_t max_spans_per_trace_;
#ifdef MIND_TELEMETRY_DISABLED
  bool enabled_ = false;
#else
  bool enabled_ = true;
#endif

  TraceMap traces_;
  std::deque<uint64_t> order_;  // trace ids in first-seen order
  IndexMap index_;              // span id -> its slot
  // One-entry MRU for GetOrCreateTrace: the insert/query paths open several
  // spans on the same trace back to back.
  uint64_t mru_id_ = 0;
  TraceBuf* mru_ = nullptr;
  // Recycled map nodes: at steady state every new trace evicts one, so
  // reusing the extracted nodes (and the TraceBuf's span capacity) makes the
  // recorder allocation-free.
  TraceMap::node_type spare_trace_;
  std::vector<IndexMap::node_type> spare_index_;
  uint64_t next_span_id_ = 1;
  uint64_t spans_dropped_ = 0;
  uint64_t traces_evicted_ = 0;
};

}  // namespace telemetry
}  // namespace mind

#endif  // MIND_TELEMETRY_TRACE_H_
