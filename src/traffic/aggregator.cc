#include "traffic/aggregator.h"

#include "util/logging.h"

namespace mind {

Aggregator::Aggregator(AggregatorOptions options) : options_(options) {
  MIND_CHECK_GT(options_.window_sec, 0.0);
}

void Aggregator::Add(const FlowRecord& f) {
  Key key;
  key.window = static_cast<uint64_t>(f.time_sec / options_.window_sec);
  key.router = f.router;
  key.src_base = IpPrefix(f.src_ip, options_.prefix_len).First();
  key.dst_base = IpPrefix(f.dst_ip, options_.prefix_len).First();
  Accum& acc = windows_[key];
  acc.octets += f.bytes;
  acc.flows += 1;
  if (f.bytes <= options_.short_flow_bytes) acc.fanout += 1;
  acc.dsts.insert(f.dst_ip);
  acc.ports[f.dst_port] += 1;
}

AggregateRecord Aggregator::Finish(const Key& key, Accum& acc) const {
  AggregateRecord rec;
  rec.src_prefix = IpPrefix(key.src_base, options_.prefix_len);
  rec.dst_prefix = IpPrefix(key.dst_base, options_.prefix_len);
  rec.window_start =
      static_cast<uint64_t>(static_cast<double>(key.window) * options_.window_sec);
  rec.octets = acc.octets;
  rec.fanout = acc.fanout;
  rec.distinct_dsts = static_cast<uint32_t>(acc.dsts.size());
  rec.flows = acc.flows;
  rec.avg_flow_size = acc.flows > 0 ? acc.octets / acc.flows : 0;
  uint32_t best = 0;
  for (const auto& [port, count] : acc.ports) {
    if (count > best || (count == best && port < rec.top_dst_port)) {
      best = count;
      rec.top_dst_port = port;
    }
  }
  rec.router = key.router;
  return rec;
}

std::vector<AggregateRecord> Aggregator::DrainCompleted(double time_sec) {
  uint64_t cutoff = static_cast<uint64_t>(time_sec / options_.window_sec);
  std::vector<AggregateRecord> out;
  auto it = windows_.begin();
  while (it != windows_.end() && it->first.window < cutoff) {
    out.push_back(Finish(it->first, it->second));
    it = windows_.erase(it);
  }
  return out;
}

std::vector<AggregateRecord> Aggregator::DrainAll() {
  std::vector<AggregateRecord> out;
  out.reserve(windows_.size());
  for (auto& [key, acc] : windows_) out.push_back(Finish(key, acc));
  windows_.clear();
  return out;
}

std::vector<AggregateRecord> AggregateAll(const std::vector<FlowRecord>& flows,
                                          AggregatorOptions options) {
  Aggregator agg(options);
  for (const auto& f : flows) agg.Add(f);
  return agg.DrainAll();
}

}  // namespace mind
