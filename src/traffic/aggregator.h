// Time-window aggregation of raw flow records into the records MIND indexes
// (paper §2.2: aggregate over 30 s windows by prefix pair, then filter out
// small/uninteresting records — the pre-filtering that buys two orders of
// magnitude of volume reduction, Figure 1).
#ifndef MIND_TRAFFIC_AGGREGATOR_H_
#define MIND_TRAFFIC_AGGREGATOR_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "traffic/flow.h"

namespace mind {

struct AggregatorOptions {
  /// Aggregation window (paper experiments use 30 s).
  double window_sec = 30.0;
  /// Prefix granularity for the (src, dst) aggregation key.
  int prefix_len = 16;
  /// Flows at or below this byte count count toward `fanout` (short
  /// connection attempts).
  uint64_t short_flow_bytes = 300;
};

/// \brief Streaming aggregator: feed raw records (roughly time-ordered),
/// collect completed windows.
class Aggregator {
 public:
  explicit Aggregator(AggregatorOptions options = {});

  /// Adds one raw record to its window.
  void Add(const FlowRecord& f);

  /// Emits and clears all windows that end at or before `time_sec` (safe
  /// once no more records older than that will arrive).
  std::vector<AggregateRecord> DrainCompleted(double time_sec);

  /// Emits everything buffered.
  std::vector<AggregateRecord> DrainAll();

  size_t buffered_windows() const { return windows_.size(); }

 private:
  struct Key {
    uint64_t window = 0;
    int router = -1;
    IpAddr src_base = 0;
    IpAddr dst_base = 0;
    bool operator<(const Key& o) const {
      if (window != o.window) return window < o.window;
      if (router != o.router) return router < o.router;
      if (src_base != o.src_base) return src_base < o.src_base;
      return dst_base < o.dst_base;
    }
  };
  struct Accum {
    uint64_t octets = 0;
    uint32_t fanout = 0;
    uint32_t flows = 0;
    std::unordered_set<IpAddr> dsts;
    std::unordered_map<uint16_t, uint32_t> ports;
  };

  AggregateRecord Finish(const Key& key, Accum& acc) const;

  AggregatorOptions options_;
  std::map<Key, Accum> windows_;
};

/// One-shot helper: aggregate a whole batch.
std::vector<AggregateRecord> AggregateAll(const std::vector<FlowRecord>& flows,
                                          AggregatorOptions options = {});

}  // namespace mind

#endif  // MIND_TRAFFIC_AGGREGATOR_H_
