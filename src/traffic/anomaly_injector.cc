#include "traffic/anomaly_injector.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mind {

const char* AnomalyTypeName(AnomalyType t) {
  switch (t) {
    case AnomalyType::kAlphaFlow: return "alpha-flow";
    case AnomalyType::kDos: return "dos";
    case AnomalyType::kPortScan: return "port-scan";
  }
  return "?";
}

std::vector<FlowRecord> AnomalyInjector::Generate(const AnomalyEvent& event,
                                                  double t0_sec,
                                                  double t1_sec) const {
  std::vector<FlowRecord> out;
  double lo = std::max(t0_sec, event.start_sec);
  double hi = std::min(t1_sec, event.start_sec + event.duration_sec);
  if (lo >= hi) return out;

  const Topology& topo = generator_->topology();
  const IpPrefix& src = generator_->prefix(event.src_prefix);
  const IpPrefix& dst = generator_->prefix(event.dst_prefix);
  int src_router = generator_->HomeRouter(event.src_prefix);
  int dst_router = generator_->HomeRouter(event.dst_prefix);

  uint64_t key = (static_cast<uint64_t>(event.day) << 40) ^
                 (static_cast<uint64_t>(event.start_sec) << 16) ^
                 (event.src_prefix << 8) ^ event.dst_prefix ^
                 static_cast<uint64_t>(event.type);
  Rng rng = Rng(seed_).Fork(key);

  auto emit_at = [&](FlowRecord f) {
    int observers[2] = {src_router, dst_router};
    int n_obs = observers[0] == observers[1] ? 1 : 2;
    for (int o = 0; o < n_obs; ++o) {
      double p = Topology::SamplingRate(topo.router(observers[o]).backbone);
      double keep =
          1.0 - std::pow(1.0 - p, static_cast<double>(std::max(1u, f.packets)));
      if (!rng.Bernoulli(keep)) continue;
      FlowRecord obs = f;
      obs.router = observers[o];
      obs.bytes = static_cast<uint64_t>(
          std::max(40.0, static_cast<double>(f.bytes) * p));
      obs.packets = static_cast<uint32_t>(
          std::max(1.0, static_cast<double>(f.packets) * p));
      out.push_back(obs);
    }
  };

  switch (event.type) {
    case AnomalyType::kAlphaFlow: {
      // One very large point-to-point transfer: report it once per 10 s
      // slice so it lands in every aggregation window it spans.
      IpAddr s = src.First() + static_cast<IpAddr>(rng.Uniform(src.Size()));
      IpAddr d = dst.First() + static_cast<IpAddr>(rng.Uniform(dst.Size()));
      double slice = 10.0;
      double bytes_per_slice =
          event.magnitude * slice / event.duration_sec;
      for (double t = lo; t < hi; t += slice) {
        FlowRecord f;
        f.src_ip = s;
        f.dst_ip = d;
        f.src_port = 33000;
        f.dst_port = 443;
        f.bytes = static_cast<uint64_t>(bytes_per_slice);
        f.packets =
            static_cast<uint32_t>(std::max(1.0, bytes_per_slice / 1400.0));
        f.time_sec = static_cast<double>(event.day) * 86400.0 + t +
                     rng.UniformDouble() * slice * 0.5;
        emit_at(f);
      }
      break;
    }
    case AnomalyType::kDos:
    case AnomalyType::kPortScan: {
      // Probe floods: rather than iterating millions of raw packets, draw
      // the number of *sampled* records per observer directly
      // (Poisson(raw_rate * duration * sampling_rate)).
      const bool is_dos = event.type == AnomalyType::kDos;
      const bool distributed = is_dos && event.distributed;
      IpAddr victim = dst.First() + static_cast<IpAddr>(rng.Uniform(dst.Size()));
      IpAddr scanner = src.First() + static_cast<IpAddr>(rng.Uniform(src.Size()));
      int observers[2] = {src_router, dst_router};
      int n_obs = observers[0] == observers[1] ? 1 : 2;
      if (distributed) {
        // Sources are everywhere; the victim's home router sees the flood.
        observers[0] = dst_router;
        n_obs = 1;
      }
      for (int o = 0; o < n_obs; ++o) {
        int router = observers[o];
        double p = Topology::SamplingRate(topo.router(router).backbone);
        uint64_t k = rng.Poisson(event.magnitude * (hi - lo) * p);
        for (uint64_t i = 0; i < k; ++i) {
          FlowRecord f;
          if (is_dos) {
            // Many spoofed sources, one victim.
            if (distributed) {
              const IpPrefix& sp = generator_->prefix(
                  rng.Uniform(generator_->prefix_count()));
              f.src_ip =
                  sp.First() + static_cast<IpAddr>(rng.Uniform(sp.Size()));
            } else {
              f.src_ip =
                  src.First() + static_cast<IpAddr>(rng.Uniform(src.Size()));
            }
            f.dst_ip = victim;
            f.dst_port = 80;
          } else {
            // One scanner, many probed hosts.
            f.src_ip = scanner;
            f.dst_ip = dst.First() + static_cast<IpAddr>(rng.Uniform(dst.Size()));
            f.dst_port = static_cast<uint16_t>(rng.Bernoulli(0.5) ? 3306 : 445);
          }
          f.src_port = static_cast<uint16_t>(1024 + rng.Uniform(64512));
          f.bytes = 40;
          f.packets = 1;
          f.time_sec = static_cast<double>(event.day) * 86400.0 + lo +
                       rng.UniformDouble() * (hi - lo);
          f.router = router;
          out.push_back(f);
        }
      }
      break;
    }
  }
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.time_sec < b.time_sec;
  });
  return out;
}

}  // namespace mind
