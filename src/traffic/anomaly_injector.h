// Injects the three anomaly classes of the paper's §5 experiment (alpha
// flows, DoS attacks, port scans) into the synthetic trace, replacing the
// Lakhina et al. Abilene anomalies of December 18, 2003.
#ifndef MIND_TRAFFIC_ANOMALY_INJECTOR_H_
#define MIND_TRAFFIC_ANOMALY_INJECTOR_H_

#include <string>
#include <vector>

#include "traffic/flow.h"
#include "traffic/flow_generator.h"

namespace mind {

enum class AnomalyType { kAlphaFlow, kDos, kPortScan };

const char* AnomalyTypeName(AnomalyType t);

struct AnomalyEvent {
  AnomalyType type = AnomalyType::kAlphaFlow;
  int day = 0;
  double start_sec = 0;       // within the day
  double duration_sec = 120;  // anomaly length
  size_t src_prefix = 0;      // index into the generator's prefix universe
  size_t dst_prefix = 0;
  /// Alpha flow: raw bytes transferred. DoS: flood packets per second.
  /// Port scan: probed hosts per second.
  double magnitude = 0;
  /// DoS only: when true the flood is *distributed* — spoofed sources span
  /// the whole prefix universe, so aggregation yields one record per source
  /// prefix per window, all destined for the victim's region (a storage and
  /// routing hotspot); observed at the victim's home router.
  bool distributed = false;
};

/// \brief Produces the extra raw flow records an anomaly adds to the trace.
///
/// Like legitimate traffic, anomalous flows are observed (with sampling) at
/// the source's and destination's home routers — so the query result's
/// origin set identifies the monitors on the anomaly's path (§5).
class AnomalyInjector {
 public:
  explicit AnomalyInjector(const FlowGenerator* generator, uint64_t seed = 0xbad)
      : generator_(generator), seed_(seed) {}

  /// Records the event contributes within [t0_sec, t1_sec) of event.day
  /// (times within the day).
  std::vector<FlowRecord> Generate(const AnomalyEvent& event, double t0_sec,
                                   double t1_sec) const;

 private:
  const FlowGenerator* generator_;
  uint64_t seed_;
};

}  // namespace mind

#endif  // MIND_TRAFFIC_ANOMALY_INJECTOR_H_
