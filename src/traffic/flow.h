// Raw (sampled NetFlow-style) flow records and the aggregated records MIND
// indexes (paper §2.2, §4.1).
#ifndef MIND_TRAFFIC_FLOW_H_
#define MIND_TRAFFIC_FLOW_H_

#include <cstdint>

#include "util/ip.h"

namespace mind {

/// One sampled NetFlow record as exported by a backbone router.
struct FlowRecord {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  /// Bytes reported by the router (post-sampling estimate).
  uint64_t bytes = 0;
  uint32_t packets = 0;
  /// Observation time in seconds since the trace epoch (day * 86400 + tod).
  double time_sec = 0;
  /// Observing router (monitor) index in the topology.
  int router = -1;
};

/// One aggregated record: traffic between a source and destination prefix in
/// one time window at one monitor. Aggregation (30 s windows) plus threshold
/// filtering reduces record volume by ~2 orders of magnitude (Figure 1).
struct AggregateRecord {
  IpPrefix src_prefix;
  IpPrefix dst_prefix;
  /// Window start, seconds since trace epoch.
  uint64_t window_start = 0;
  /// Total bytes in the window.
  uint64_t octets = 0;
  /// Short connection attempts in the window (the paper's Index-1 fanout:
  /// scan probes and DoS floods both drive it up).
  uint32_t fanout = 0;
  /// Distinct destination hosts contacted.
  uint32_t distinct_dsts = 0;
  /// Number of flows aggregated.
  uint32_t flows = 0;
  /// Average bytes per flow (the paper's Index-3 flow_size).
  uint64_t avg_flow_size = 0;
  /// Most frequent destination port in the window.
  uint16_t top_dst_port = 0;
  /// Observing monitor.
  int router = -1;
};

}  // namespace mind

#endif  // MIND_TRAFFIC_FLOW_H_
