#include "traffic/flow_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mind {

FlowGenerator::FlowGenerator(const Topology& topology,
                             FlowGeneratorOptions options)
    : topology_(topology),
      options_(options),
      popularity_(static_cast<size_t>(topology.size()) *
                      static_cast<size_t>(options.prefixes_per_router),
                  options.popularity_exponent),
      diurnal_(options.diurnal_floor),
      common_ports_({80, 443, 25, 53, 110, 143, 22, 21, 3306, 8080, 6881,
                     1433, 135, 445, 139}),
      port_popularity_(15, 1.2) {
  MIND_CHECK_GE(options.prefixes_per_router, 1);
  size_t n = topology.size() * static_cast<size_t>(options.prefixes_per_router);
  prefixes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Customer /16s spread across the routable space (as real allocations
    // are): a coarse histogram over the dst_prefix dimension must be able to
    // tell customers apart, or no embedding could balance it.
    IpAddr a = 10u + static_cast<IpAddr>((i * 37) % 180);
    IpAddr b = static_cast<IpAddr>((i * 151) % 256);
    prefixes_.emplace_back((a << 24) | (b << 16), options.prefix_len);
  }
}

bool FlowGenerator::InHotSet(size_t prefix_idx, int hour) const {
  // ~5% of prefixes are "hot" each hour; the set is keyed by hour alone so
  // the same diurnal mixture repeats every day (Figure 3's stationarity).
  uint64_t h = (prefix_idx * 0x9E3779B97F4A7C15ull) ^
               (static_cast<uint64_t>(hour) * 0x85EBCA6B0ull) ^ options_.seed;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return (h % 100) < 5;
}

const std::vector<size_t>& FlowGenerator::DayPermutation(int day) {
  MIND_CHECK_GE(day, 0);
  while (static_cast<int>(day_perms_.size()) <= day) {
    if (day_perms_.empty()) {
      // Day 0: a fixed random assignment of prefixes to popularity ranks.
      std::vector<size_t> perm(prefixes_.size());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      Rng rng = Rng(options_.seed).Fork(0xDA40);
      rng.Shuffle(&perm);
      day_perms_.push_back(std::move(perm));
    } else {
      // Next day: bounded drift — a few random rank transpositions.
      std::vector<size_t> perm = day_perms_.back();
      Rng rng = Rng(options_.seed).Fork(0xDA41 + day_perms_.size());
      size_t swaps = static_cast<size_t>(
          options_.day_drift * static_cast<double>(perm.size()));
      for (size_t s = 0; s < swaps; ++s) {
        size_t a = rng.Uniform(perm.size());
        size_t b = rng.Uniform(perm.size());
        std::swap(perm[a], perm[b]);
      }
      day_perms_.push_back(std::move(perm));
    }
  }
  return day_perms_[day];
}

size_t FlowGenerator::RankOnDay(int day, size_t prefix_idx) {
  const auto& perm = DayPermutation(day);
  for (size_t rank = 0; rank < perm.size(); ++rank) {
    if (perm[rank] == prefix_idx) return rank;
  }
  MIND_LOG(Fatal) << "prefix index out of range";
  return 0;
}

double FlowGenerator::HourNoise(int day, int router, int hour) {
  // Deterministic per-(day, router, hour) log-normal multiplier.
  uint64_t key = (static_cast<uint64_t>(day) << 32) ^
                 (static_cast<uint64_t>(router) << 8) ^
                 static_cast<uint64_t>(hour);
  Rng rng = Rng(options_.seed).Fork(0xA0153 ^ key);
  return rng.LogNormal(0.0, options_.hour_noise_sigma);
}

void FlowGenerator::Generate(
    int day, double t0_sec, double t1_sec,
    const std::function<void(const FlowRecord&)>& emit) {
  MIND_CHECK(t0_sec >= 0 && t1_sec <= 86400.0 && t0_sec <= t1_sec);
  const auto& perm = DayPermutation(day);
  uint64_t window_key = (static_cast<uint64_t>(day) << 20) ^
                        (static_cast<uint64_t>(t0_sec * 16));
  Rng rng = Rng(options_.seed).Fork(0xF70 ^ window_key);

  // Generate flow arrivals router by router (arrivals are attributed to the
  // source prefix's home router; the destination's home router observes the
  // same flow too).
  const size_t n_routers = topology_.size();
  for (size_t r = 0; r < n_routers; ++r) {
    double rate = options_.peak_flows_per_router_sec;
    double t = t0_sec;
    while (t < t1_sec) {
      int hour = static_cast<int>(t / 3600.0);
      double level = diurnal_.At(t) * HourNoise(day, static_cast<int>(r), hour);
      double lambda = std::max(1e-6, rate * level);
      t += rng.Exponential(lambda);
      if (t >= t1_sec) break;

      // Source prefix: a prefix homed at router r, biased by popularity.
      // Sample global ranks until one homed here (bounded retries), else
      // pick a uniform local prefix.
      size_t src_idx = prefixes_.size();
      for (int attempt = 0; attempt < 8; ++attempt) {
        size_t candidate = perm[popularity_.Sample(&rng)];
        if (HomeRouter(candidate) == static_cast<int>(r)) {
          src_idx = candidate;
          break;
        }
      }
      if (src_idx == prefixes_.size()) {
        src_idx = r + n_routers * rng.Uniform(
                          static_cast<uint64_t>(options_.prefixes_per_router));
      }
      // Destination prefix: half the traffic follows the hour's hot set
      // (the mixture that shifts hour-to-hour but repeats day-to-day), the
      // rest is popularity-weighted over the whole universe (gravity model).
      size_t dst_idx;
      if (rng.Bernoulli(options_.hot_set_fraction)) {
        size_t pick = rng.Uniform(prefixes_.size());
        for (size_t probe = 0; probe < prefixes_.size(); ++probe) {
          size_t candidate = (pick + probe) % prefixes_.size();
          if (InHotSet(candidate, hour)) {
            pick = candidate;
            break;
          }
        }
        dst_idx = pick;
      } else {
        dst_idx = perm[popularity_.Sample(&rng)];
      }

      FlowRecord f;
      f.src_ip = prefixes_[src_idx].First() +
                 static_cast<IpAddr>(rng.Uniform(prefixes_[src_idx].Size()));
      f.dst_ip = prefixes_[dst_idx].First() +
                 static_cast<IpAddr>(rng.Uniform(prefixes_[dst_idx].Size()));
      f.src_port = static_cast<uint16_t>(1024 + rng.Uniform(64512));
      f.dst_port = common_ports_[port_popularity_.Sample(&rng)];
      bool short_flow = rng.Bernoulli(options_.short_flow_fraction);
      double raw_bytes;
      if (short_flow) {
        raw_bytes = 40.0 + rng.UniformDouble() * 400.0;
      } else if (rng.Bernoulli(options_.elephant_fraction)) {
        // Bulk transfers: the alpha-flow population of Index-2. (Capped at
        // what fits in one reporting window; larger transfers span windows.)
        raw_bytes = std::min(5.0e8, rng.Pareto(options_.elephant_scale, 1.1));
      } else {
        raw_bytes = std::min(5.0e8, rng.Pareto(options_.flow_bytes_scale,
                                               options_.flow_bytes_shape));
      }
      uint32_t raw_packets = static_cast<uint32_t>(
          std::max(1.0, raw_bytes / 700.0));
      f.time_sec = static_cast<double>(day) * 86400.0 + t;

      // The flow is observed (subject to per-network packet sampling) at the
      // source's and the destination's home routers.
      int observers[2] = {static_cast<int>(r), HomeRouter(dst_idx)};
      int n_obs = observers[0] == observers[1] ? 1 : 2;
      for (int o = 0; o < n_obs; ++o) {
        int router = observers[o];
        double p = Topology::SamplingRate(topology_.router(router).backbone);
        double keep = 1.0 - std::pow(1.0 - p, static_cast<double>(raw_packets));
        if (!rng.Bernoulli(keep)) continue;
        FlowRecord obs = f;
        obs.router = router;
        // NetFlow with sampling reports the sampled volume.
        obs.bytes = static_cast<uint64_t>(std::max(40.0, raw_bytes * p));
        obs.packets = static_cast<uint32_t>(
            std::max(1.0, static_cast<double>(raw_packets) * p));
        emit(obs);
      }
    }

    // Endemic background scanning from this router's customers (worm and
    // scan noise): bursts of tiny probes toward one destination prefix.
    double expected_scans =
        options_.scans_per_router_hour * (t1_sec - t0_sec) / 3600.0;
    uint64_t n_scans = rng.Poisson(expected_scans);
    for (uint64_t s = 0; s < n_scans; ++s) {
      double t_start = t0_sec + rng.UniformDouble() * (t1_sec - t0_sec);
      double t_end = std::min(t1_sec, t_start + 5.0 + rng.UniformDouble() * 25.0);
      size_t src_idx =
          r + n_routers * rng.Uniform(
                  static_cast<uint64_t>(options_.prefixes_per_router));
      size_t dst_idx = rng.Uniform(prefixes_.size());
      IpAddr scanner = prefixes_[src_idx].First() +
                       static_cast<IpAddr>(rng.Uniform(prefixes_[src_idx].Size()));
      double raw_probes = std::clamp(
          options_.scan_probes_scale * rng.Pareto(1.0, 1.3), 100.0, 200000.0);
      uint16_t port = rng.Bernoulli(0.5) ? 445 : 3306;

      int observers[2] = {static_cast<int>(r), HomeRouter(dst_idx)};
      int n_obs = observers[0] == observers[1] ? 1 : 2;
      for (int o = 0; o < n_obs; ++o) {
        int router = observers[o];
        double p = Topology::SamplingRate(topology_.router(router).backbone);
        uint64_t k = rng.Poisson(raw_probes * p);
        for (uint64_t i = 0; i < k; ++i) {
          FlowRecord f;
          f.src_ip = scanner;
          f.dst_ip = prefixes_[dst_idx].First() +
                     static_cast<IpAddr>(rng.Uniform(prefixes_[dst_idx].Size()));
          f.src_port = 40000;
          f.dst_port = port;
          f.bytes = 40 + rng.Uniform(20);
          f.packets = 1;
          f.time_sec = static_cast<double>(day) * 86400.0 + t_start +
                       rng.UniformDouble() * (t_end - t_start);
          f.router = router;
          emit(f);
        }
      }
    }
  }
}

std::vector<FlowRecord> FlowGenerator::GenerateVec(int day, double t0_sec,
                                                   double t1_sec) {
  std::vector<FlowRecord> out;
  Generate(day, t0_sec, t1_sec,
           [&out](const FlowRecord& f) { out.push_back(f); });
  return out;
}

}  // namespace mind
