// Synthetic backbone trace generator, replacing the paper's Abilene/GÉANT
// NetFlow datasets (DESIGN.md §2).
//
// Statistical properties reproduced (each feeds a specific experiment):
//  * heavy-tailed flow sizes (Pareto) and Zipf prefix popularity -> the
//    storage skew of Figure 2 and the balancing gains of Figure 13;
//  * gravity-model origin-destination matrix over prefixes homed at real
//    routers -> per-monitor streams and the §5 "which monitors saw it" lists;
//  * diurnal rate modulation, stable popularity ranks with bounded day-to-day
//    drift, and per-hour mixture noise -> the mismatch behaviour of Figure 3
//    (small day-to-day, near-1 hour-to-hour at fine granularity);
//  * packet sampling (1/100 Abilene, 1/1000 GÉANT) -> the traffic imbalance
//    of Figure 12.
#ifndef MIND_TRAFFIC_FLOW_GENERATOR_H_
#define MIND_TRAFFIC_FLOW_GENERATOR_H_

#include <functional>
#include <vector>

#include "traffic/flow.h"
#include "traffic/topology.h"
#include "util/rng.h"

namespace mind {

struct FlowGeneratorOptions {
  /// Customer prefixes homed per router (prefix universe size = routers x this).
  int prefixes_per_router = 8;
  /// Prefix length of the customer blocks.
  int prefix_len = 16;
  /// Peak (diurnal max) flow arrival rate per router, flows/second, before
  /// sampling.
  double peak_flows_per_router_sec = 60.0;
  /// Zipf exponent for prefix popularity.
  double popularity_exponent = 0.9;
  /// Pareto shape/scale for flow bytes.
  double flow_bytes_shape = 1.15;
  double flow_bytes_scale = 500.0;
  /// Fraction of prefix-popularity rank pairs transposed per day (drives the
  /// day-to-day mismatch level of Figure 3).
  double day_drift = 0.03;
  /// Log-normal sigma of per-(router, day, hour) rate noise.
  double hour_noise_sigma = 0.12;
  /// Fraction of flows that are short connection attempts (few packets).
  double short_flow_fraction = 0.55;
  /// Fraction of traffic directed at the hour's "hot" prefixes — the
  /// mixture component that shifts hour-to-hour but repeats across days.
  double hot_set_fraction = 0.5;
  /// Fraction of long flows that are "elephants" (bulk transfers) — the
  /// population the paper's Index-2 alpha-flow monitoring tracks.
  double elephant_fraction = 0.003;
  /// Pareto scale of elephant raw bytes.
  double elephant_scale = 2.0e6;
  /// Endemic background scanning (worm/scan noise, ubiquitous on 2004-era
  /// backbones — what populates Index-1): scan bursts per router-hour.
  double scans_per_router_hour = 6.0;
  /// Pareto scale of raw probes per scan burst.
  double scan_probes_scale = 2000.0;
  /// Night-time fraction of peak rate.
  double diurnal_floor = 0.35;
  uint64_t seed = 0xf10f;
};

/// \brief Deterministic synthetic NetFlow source for a topology.
class FlowGenerator {
 public:
  FlowGenerator(const Topology& topology, FlowGeneratorOptions options);

  const Topology& topology() const { return topology_; }
  const FlowGeneratorOptions& options() const { return options_; }

  size_t prefix_count() const { return prefixes_.size(); }
  const IpPrefix& prefix(size_t i) const { return prefixes_[i]; }
  /// Router index a prefix is homed at.
  int HomeRouter(size_t prefix_idx) const {
    return static_cast<int>(prefix_idx % topology_.size());
  }

  /// Generates the raw sampled flow records observed across all routers in
  /// [t0_sec, t1_sec) of `day`, invoking `emit` per record in time order per
  /// router batch. A logical flow is observed at both endpoint home routers.
  void Generate(int day, double t0_sec, double t1_sec,
                const std::function<void(const FlowRecord&)>& emit);

  /// Convenience: materializes a window's records.
  std::vector<FlowRecord> GenerateVec(int day, double t0_sec, double t1_sec);

  /// The popularity rank of a prefix on a given day (rank 0 most popular);
  /// exposes the day-drift model for tests.
  size_t RankOnDay(int day, size_t prefix_idx);

  /// Whether a prefix belongs to the given hour's hot set.
  bool InHotSet(size_t prefix_idx, int hour) const;

 private:
  const std::vector<size_t>& DayPermutation(int day);
  double HourNoise(int day, int router, int hour);

  Topology topology_;
  FlowGeneratorOptions options_;
  std::vector<IpPrefix> prefixes_;
  ZipfSampler popularity_;
  DiurnalCurve diurnal_;
  // perm[day][rank] = prefix index at that rank
  std::vector<std::vector<size_t>> day_perms_;
  std::vector<uint16_t> common_ports_;
  ZipfSampler port_popularity_;
};

}  // namespace mind

#endif  // MIND_TRAFFIC_FLOW_GENERATOR_H_
