#include "traffic/indices.h"

#include <algorithm>

namespace mind {

namespace {
Value Clamp(uint64_t v, uint64_t max) { return std::min<uint64_t>(v, max); }
}  // namespace

IndexDef MakeIndex1(const PaperIndexOptions& opts) {
  IndexDef def;
  def.name = "index1_fanout";
  def.schema = Schema({{"dst_prefix", 0, 0xFFFFFFFFull},
                       {"timestamp", 0, opts.max_time_sec},
                       {"fanout", 0, opts.index1_max_fanout}});
  def.carried = {"src_prefix", "node"};
  def.time_attr = 1;
  return def;
}

IndexDef MakeIndex2(const PaperIndexOptions& opts) {
  IndexDef def;
  def.name = "index2_octets";
  def.schema = Schema({{"dst_prefix", 0, 0xFFFFFFFFull},
                       {"timestamp", 0, opts.max_time_sec},
                       {"octets", 0, opts.index2_max_octets}});
  def.carried = {"src_prefix", "node"};
  def.time_attr = 1;
  return def;
}

IndexDef MakeIndex3(const PaperIndexOptions& opts) {
  IndexDef def;
  def.name = "index3_flowsize";
  def.schema = Schema({{"dst_prefix", 0, 0xFFFFFFFFull},
                       {"timestamp", 0, opts.max_time_sec},
                       {"flow_size", 0, opts.index3_max_flow_size}});
  def.carried = {"src_prefix", "dst_port", "node"};
  def.time_attr = 1;
  return def;
}

std::optional<Tuple> ToIndex1Tuple(const AggregateRecord& rec, uint64_t seq,
                                   const PaperIndexOptions& opts) {
  if (rec.fanout < opts.index1_min_fanout) return std::nullopt;
  Tuple t;
  t.point = {rec.dst_prefix.First(), rec.window_start,
             Clamp(rec.fanout, opts.index1_max_fanout)};
  t.extra = {rec.src_prefix.First(), static_cast<Value>(rec.router)};
  t.origin = rec.router;
  t.seq = seq;
  return t;
}

std::optional<Tuple> ToIndex2Tuple(const AggregateRecord& rec, uint64_t seq,
                                   const PaperIndexOptions& opts) {
  if (rec.octets < opts.index2_min_octets) return std::nullopt;
  Tuple t;
  t.point = {rec.dst_prefix.First(), rec.window_start,
             Clamp(rec.octets, opts.index2_max_octets)};
  t.extra = {rec.src_prefix.First(), static_cast<Value>(rec.router)};
  t.origin = rec.router;
  t.seq = seq;
  return t;
}

std::optional<Tuple> ToIndex3Tuple(const AggregateRecord& rec, uint64_t seq,
                                   const PaperIndexOptions& opts) {
  if (rec.avg_flow_size < opts.index3_min_flow_size ||
      rec.flows < opts.index3_min_flows) {
    return std::nullopt;
  }
  Tuple t;
  t.point = {rec.dst_prefix.First(), rec.window_start,
             Clamp(rec.avg_flow_size, opts.index3_max_flow_size)};
  t.extra = {rec.src_prefix.First(), static_cast<Value>(rec.top_dst_port),
             static_cast<Value>(rec.router)};
  t.origin = rec.router;
  t.seq = seq;
  return t;
}

}  // namespace mind
