// The three network-monitoring indices of the paper's evaluation (§4.1) and
// the aggregate-record -> tuple conversions with their filtering thresholds.
//
//   Index-1 (dst_prefix, timestamp, fanout | src_prefix, node):
//       port scans / DoS ("sources that attempted to connect to more than F
//       hosts in destination prefix D within T"). Filter: fanout >= 16.
//   Index-2 (dst_prefix, timestamp, octets | src_prefix, node):
//       alpha flows ("flows destined for D carrying at least O octets within
//       T"). Filter: octets >= 80 KB.
//   Index-3 (dst_prefix, timestamp, flow_size | src_prefix, dst_port, node):
//       applications hiding on well-known ports / tunnels. Filter:
//       avg flow size >= 1.5 KB.
//
// Attribute upper bounds follow the paper's footnote (5024, 2 MB, 128 KB —
// exceeded by <0.1% of tuples; larger values clamp to the top of the range).
#ifndef MIND_TRAFFIC_INDICES_H_
#define MIND_TRAFFIC_INDICES_H_

#include <optional>

#include "mind/index_def.h"
#include "storage/tuple.h"
#include "traffic/flow.h"

namespace mind {

struct PaperIndexOptions {
  /// Trace horizon for the timestamp domain, in seconds.
  uint64_t max_time_sec = 14 * 86400;
  uint32_t index1_min_fanout = 16;
  uint64_t index2_min_octets = 80 * 1024;
  uint64_t index3_min_flow_size = 1536;
  /// Index-3 tracks per-connection averages of traffic *aggregates*; a
  /// singleton flow is not an aggregate pattern.
  uint32_t index3_min_flows = 2;
  uint32_t index1_max_fanout = 5024;
  uint64_t index2_max_octets = 2 * 1024 * 1024;
  uint64_t index3_max_flow_size = 128 * 1024;
};

/// Definitions of the paper's three indices.
IndexDef MakeIndex1(const PaperIndexOptions& opts = {});
IndexDef MakeIndex2(const PaperIndexOptions& opts = {});
IndexDef MakeIndex3(const PaperIndexOptions& opts = {});

/// Conversions; nullopt when the record is filtered out (below threshold).
/// `seq` must be unique per (record origin). The observing monitor is
/// carried both as Tuple::origin and as the trailing carried attribute.
std::optional<Tuple> ToIndex1Tuple(const AggregateRecord& rec, uint64_t seq,
                                   const PaperIndexOptions& opts = {});
std::optional<Tuple> ToIndex2Tuple(const AggregateRecord& rec, uint64_t seq,
                                   const PaperIndexOptions& opts = {});
std::optional<Tuple> ToIndex3Tuple(const AggregateRecord& rec, uint64_t seq,
                                   const PaperIndexOptions& opts = {});

}  // namespace mind

#endif  // MIND_TRAFFIC_INDICES_H_
