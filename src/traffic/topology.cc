#include "traffic/topology.h"

namespace mind {

Topology Topology::Abilene() {
  // The 11 Abilene backbone routers, 2004 (names as in the paper's §5 DoS
  // path listings).
  return Topology({
      {"STTL", "Seattle", Backbone::kAbilene, {47.61, -122.33}},
      {"SNVA", "Sunnyvale", Backbone::kAbilene, {37.37, -122.04}},
      {"LOSA", "Los Angeles", Backbone::kAbilene, {34.05, -118.24}},
      {"DNVR", "Denver", Backbone::kAbilene, {39.74, -104.99}},
      {"KSCY", "Kansas City", Backbone::kAbilene, {39.10, -94.58}},
      {"HSTN", "Houston", Backbone::kAbilene, {29.76, -95.37}},
      {"CHIN", "Chicago", Backbone::kAbilene, {41.88, -87.63}},
      {"IPLS", "Indianapolis", Backbone::kAbilene, {39.77, -86.16}},
      {"ATLA", "Atlanta", Backbone::kAbilene, {33.75, -84.39}},
      {"WASH", "Washington DC", Backbone::kAbilene, {38.91, -77.04}},
      {"NYCM", "New York", Backbone::kAbilene, {40.71, -74.01}},
  });
}

Topology Topology::Geant() {
  // 23 GÉANT PoPs circa 2004.
  return Topology({
      {"AT", "Vienna", Backbone::kGeant, {48.21, 16.37}},
      {"BE", "Brussels", Backbone::kGeant, {50.85, 4.35}},
      {"CH", "Geneva", Backbone::kGeant, {46.20, 6.14}},
      {"CY", "Nicosia", Backbone::kGeant, {35.19, 33.38}},
      {"CZ", "Prague", Backbone::kGeant, {50.09, 14.42}},
      {"DE", "Frankfurt", Backbone::kGeant, {50.11, 8.68}},
      {"DK", "Copenhagen", Backbone::kGeant, {55.68, 12.57}},
      {"ES", "Madrid", Backbone::kGeant, {40.42, -3.70}},
      {"FR", "Paris", Backbone::kGeant, {48.86, 2.35}},
      {"GR", "Athens", Backbone::kGeant, {37.98, 23.73}},
      {"HR", "Zagreb", Backbone::kGeant, {45.81, 15.98}},
      {"HU", "Budapest", Backbone::kGeant, {47.50, 19.04}},
      {"IE", "Dublin", Backbone::kGeant, {53.35, -6.26}},
      {"IL", "Tel Aviv", Backbone::kGeant, {32.07, 34.78}},
      {"IT", "Milan", Backbone::kGeant, {45.46, 9.19}},
      {"LU", "Luxembourg", Backbone::kGeant, {49.61, 6.13}},
      {"NL", "Amsterdam", Backbone::kGeant, {52.37, 4.90}},
      {"PL", "Poznan", Backbone::kGeant, {52.41, 16.93}},
      {"PT", "Lisbon", Backbone::kGeant, {38.72, -9.14}},
      {"SE", "Stockholm", Backbone::kGeant, {59.33, 18.07}},
      {"SI", "Ljubljana", Backbone::kGeant, {46.06, 14.51}},
      {"SK", "Bratislava", Backbone::kGeant, {48.15, 17.11}},
      {"UK", "London", Backbone::kGeant, {51.51, -0.13}},
  });
}

Topology Topology::AbileneGeant() {
  std::vector<RouterInfo> routers = Abilene().routers_;
  for (const auto& r : Geant().routers_) routers.push_back(r);
  return Topology(std::move(routers));
}

int Topology::FindRouter(const std::string& name) const {
  for (size_t i = 0; i < routers_.size(); ++i) {
    if (routers_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<GeoPoint> Topology::Positions() const {
  std::vector<GeoPoint> out;
  out.reserve(routers_.size());
  for (const auto& r : routers_) out.push_back(r.position);
  return out;
}

}  // namespace mind
