// Backbone topologies: the 11 Abilene routers and 23 GÉANT PoPs (2004-era),
// with real city coordinates. These drive both the geographic latency model
// of the simulated deployment (the paper placed PlanetLab nodes to match
// router locations, §4.2) and prefix-to-router homing in the traffic
// generator.
#ifndef MIND_TRAFFIC_TOPOLOGY_H_
#define MIND_TRAFFIC_TOPOLOGY_H_

#include <string>
#include <vector>

#include "sim/network.h"

namespace mind {

enum class Backbone { kAbilene, kGeant };

struct RouterInfo {
  std::string name;   // Abilene router code or GÉANT PoP city
  std::string city;
  Backbone backbone;
  GeoPoint position;
};

/// \brief A set of backbone routers (monitor locations).
class Topology {
 public:
  /// The 11 Abilene backbone routers (2004).
  static Topology Abilene();
  /// 23 GÉANT points of presence (2004).
  static Topology Geant();
  /// Abilene + GÉANT: the 34-node deployment of the baseline experiment.
  static Topology AbileneGeant();

  size_t size() const { return routers_.size(); }
  const RouterInfo& router(size_t i) const { return routers_[i]; }
  const std::vector<RouterInfo>& routers() const { return routers_; }

  /// Index of the router with the given name, or -1.
  int FindRouter(const std::string& name) const;

  /// Geographic positions in router order (feed to MindNetOptions).
  std::vector<GeoPoint> Positions() const;

  /// Packet sampling rate applied by this router's NetFlow config
  /// (1/100 on Abilene, 1/1000 on GÉANT; §4.2).
  static double SamplingRate(Backbone b) {
    return b == Backbone::kAbilene ? 1.0 / 100 : 1.0 / 1000;
  }

 private:
  explicit Topology(std::vector<RouterInfo> routers)
      : routers_(std::move(routers)) {}
  std::vector<RouterInfo> routers_;
};

}  // namespace mind

#endif  // MIND_TRAFFIC_TOPOLOGY_H_
