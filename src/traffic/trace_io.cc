#include "traffic/trace_io.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <iomanip>
#include <sstream>
#include <string>

namespace mind {

namespace {

constexpr char kFlowHeader[] =
    "src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router";
constexpr char kAggrHeader[] =
    "src_prefix,dst_prefix,window_start,octets,fanout,distinct_dsts,flows,"
    "avg_flow_size,top_dst_port,router";

Result<std::vector<std::string>> SplitFields(const std::string& line,
                                             size_t expect) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  if (fields.size() != expect) {
    return Status::InvalidArgument("expected " + std::to_string(expect) +
                                   " fields, got " +
                                   std::to_string(fields.size()) + ": " + line);
  }
  return fields;
}

Result<uint64_t> ParseU64(const std::string& s) {
  try {
    size_t pos = 0;
    uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) return Status::InvalidArgument("bad integer: " + s);
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad integer: " + s);
  }
}

Result<double> ParseF64(const std::string& s) {
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) return Status::InvalidArgument("bad number: " + s);
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad number: " + s);
  }
}

}  // namespace

Status WriteFlowsCsv(std::ostream& out, const std::vector<FlowRecord>& flows) {
  out << kFlowHeader << "\n";
  out << std::setprecision(15);  // sub-millisecond timestamps survive the trip
  for (const auto& f : flows) {
    out << IpToString(f.src_ip) << ',' << IpToString(f.dst_ip) << ','
        << f.src_port << ',' << f.dst_port << ',' << f.bytes << ','
        << f.packets << ',' << f.time_sec << ',' << f.router << "\n";
  }
  if (!out.good()) return Status::Internal("flow CSV write failed");
  return Status::OK();
}

Result<std::vector<FlowRecord>> ReadFlowsCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(kFlowHeader, 0) != 0) {
    return Status::InvalidArgument("missing flow CSV header");
  }
  std::vector<FlowRecord> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    MIND_ASSIGN_OR_RETURN(auto fields, SplitFields(line, 8));
    FlowRecord f;
    MIND_ASSIGN_OR_RETURN(f.src_ip, ParseIp(fields[0]));
    MIND_ASSIGN_OR_RETURN(f.dst_ip, ParseIp(fields[1]));
    MIND_ASSIGN_OR_RETURN(uint64_t sp, ParseU64(fields[2]));
    MIND_ASSIGN_OR_RETURN(uint64_t dp, ParseU64(fields[3]));
    if (sp > 65535 || dp > 65535) {
      return Status::InvalidArgument("port out of range: " + line);
    }
    f.src_port = static_cast<uint16_t>(sp);
    f.dst_port = static_cast<uint16_t>(dp);
    MIND_ASSIGN_OR_RETURN(f.bytes, ParseU64(fields[4]));
    MIND_ASSIGN_OR_RETURN(uint64_t pk, ParseU64(fields[5]));
    f.packets = static_cast<uint32_t>(pk);
    MIND_ASSIGN_OR_RETURN(f.time_sec, ParseF64(fields[6]));
    MIND_ASSIGN_OR_RETURN(uint64_t r, ParseU64(fields[7]));
    f.router = static_cast<int>(r);
    out.push_back(f);
  }
  return out;
}

Status WriteAggregatesCsv(std::ostream& out,
                          const std::vector<AggregateRecord>& aggregates) {
  out << kAggrHeader << "\n";
  for (const auto& a : aggregates) {
    out << a.src_prefix.ToString() << ',' << a.dst_prefix.ToString() << ','
        << a.window_start << ',' << a.octets << ',' << a.fanout << ','
        << a.distinct_dsts << ',' << a.flows << ',' << a.avg_flow_size << ','
        << a.top_dst_port << ',' << a.router << "\n";
  }
  if (!out.good()) return Status::Internal("aggregate CSV write failed");
  return Status::OK();
}

Result<std::vector<AggregateRecord>> ReadAggregatesCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(kAggrHeader, 0) != 0) {
    return Status::InvalidArgument("missing aggregate CSV header");
  }
  std::vector<AggregateRecord> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    MIND_ASSIGN_OR_RETURN(auto fields, SplitFields(line, 10));
    AggregateRecord a;
    MIND_ASSIGN_OR_RETURN(a.src_prefix, IpPrefix::Parse(fields[0]));
    MIND_ASSIGN_OR_RETURN(a.dst_prefix, IpPrefix::Parse(fields[1]));
    MIND_ASSIGN_OR_RETURN(a.window_start, ParseU64(fields[2]));
    MIND_ASSIGN_OR_RETURN(a.octets, ParseU64(fields[3]));
    MIND_ASSIGN_OR_RETURN(uint64_t fo, ParseU64(fields[4]));
    a.fanout = static_cast<uint32_t>(fo);
    MIND_ASSIGN_OR_RETURN(uint64_t dd, ParseU64(fields[5]));
    a.distinct_dsts = static_cast<uint32_t>(dd);
    MIND_ASSIGN_OR_RETURN(uint64_t fl, ParseU64(fields[6]));
    a.flows = static_cast<uint32_t>(fl);
    MIND_ASSIGN_OR_RETURN(a.avg_flow_size, ParseU64(fields[7]));
    MIND_ASSIGN_OR_RETURN(uint64_t tp, ParseU64(fields[8]));
    a.top_dst_port = static_cast<uint16_t>(tp);
    MIND_ASSIGN_OR_RETURN(uint64_t r, ParseU64(fields[9]));
    a.router = static_cast<int>(r);
    out.push_back(a);
  }
  return out;
}

// ----------------------------------------------------------- binary (MFT1)

namespace {

constexpr uint32_t kBinMagic = 0x3154464Du;  // "MFT1" little-endian
constexpr uint16_t kBinVersion = 1;
constexpr uint16_t kBinRecordBytes = 36;
constexpr size_t kBinHeaderBytes = 16;

// Explicit little-endian packing so files travel between hosts.
void PutU16(unsigned char* p, uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
void PutU32(unsigned char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void PutU64(unsigned char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void EncodeRecord(const FlowRecord& f, unsigned char* p) {
  PutU32(p + 0, f.src_ip);
  PutU32(p + 4, f.dst_ip);
  PutU16(p + 8, f.src_port);
  PutU16(p + 10, f.dst_port);
  PutU32(p + 12, f.packets);
  PutU64(p + 16, f.bytes);
  uint64_t bits;
  std::memcpy(&bits, &f.time_sec, sizeof(bits));
  PutU64(p + 24, bits);
  PutU32(p + 32, static_cast<uint32_t>(static_cast<int32_t>(f.router)));
}

// Field-level bounds checks shared by the batch and streaming readers;
// `which` is the zero-based record index for the error message.
Status DecodeRecord(const unsigned char* p, uint64_t which, FlowRecord* out) {
  FlowRecord f;
  f.src_ip = GetU32(p + 0);
  f.dst_ip = GetU32(p + 4);
  f.src_port = GetU16(p + 8);
  f.dst_port = GetU16(p + 10);
  f.packets = GetU32(p + 12);
  f.bytes = GetU64(p + 16);
  uint64_t bits = GetU64(p + 24);
  std::memcpy(&f.time_sec, &bits, sizeof(f.time_sec));
  f.router = static_cast<int>(static_cast<int32_t>(GetU32(p + 32)));
  if (!std::isfinite(f.time_sec) || f.time_sec < 0) {
    return Status::InvalidArgument(
        "binary flow trace: record " + std::to_string(which) +
        " has a non-finite or negative time_sec");
  }
  if (f.router < -1) {
    return Status::InvalidArgument("binary flow trace: record " +
                                   std::to_string(which) +
                                   " has router < -1");
  }
  *out = f;
  return Status::OK();
}

}  // namespace

Status WriteFlowsBinary(std::ostream& out,
                        const std::vector<FlowRecord>& flows) {
  unsigned char hdr[kBinHeaderBytes];
  PutU32(hdr + 0, kBinMagic);
  PutU16(hdr + 4, kBinVersion);
  PutU16(hdr + 6, kBinRecordBytes);
  PutU64(hdr + 8, static_cast<uint64_t>(flows.size()));
  out.write(reinterpret_cast<const char*>(hdr), sizeof(hdr));
  unsigned char rec[kBinRecordBytes];
  for (const auto& f : flows) {
    EncodeRecord(f, rec);
    out.write(reinterpret_cast<const char*>(rec), sizeof(rec));
  }
  if (!out.good()) return Status::Internal("binary flow trace write failed");
  return Status::OK();
}

Status BinaryFlowReader::Open() {
  unsigned char hdr[kBinHeaderBytes];
  in_->read(reinterpret_cast<char*>(hdr), sizeof(hdr));
  if (in_->gcount() != static_cast<std::streamsize>(sizeof(hdr))) {
    return Status::InvalidArgument(
        "binary flow trace: stream shorter than the 16-byte header (got " +
        std::to_string(in_->gcount()) + " bytes)");
  }
  if (GetU32(hdr + 0) != kBinMagic) {
    return Status::InvalidArgument(
        "binary flow trace: bad magic (not an MFT1 file)");
  }
  uint16_t version = GetU16(hdr + 4);
  if (version != kBinVersion) {
    return Status::InvalidArgument(
        "binary flow trace: unsupported version " + std::to_string(version) +
        " (reader supports " + std::to_string(kBinVersion) + ")");
  }
  uint16_t record_bytes = GetU16(hdr + 6);
  if (record_bytes != kBinRecordBytes) {
    return Status::InvalidArgument(
        "binary flow trace: header declares " + std::to_string(record_bytes) +
        "-byte records, reader expects " + std::to_string(kBinRecordBytes));
  }
  record_count_ = GetU64(hdr + 8);
  opened_ = true;
  return Status::OK();
}

Result<bool> BinaryFlowReader::Next(FlowRecord* out) {
  if (!opened_) return Status::Internal("BinaryFlowReader: Next before Open");
  if (records_read_ == record_count_) {
    // Clean end: the declared count is consumed. Trailing bytes mean the
    // header lied about the count — surface that rather than ignoring data.
    char extra;
    if (in_->read(&extra, 1), in_->gcount() != 0) {
      return Status::InvalidArgument(
          "binary flow trace: trailing bytes after the declared " +
          std::to_string(record_count_) + " records");
    }
    return false;
  }
  unsigned char rec[kBinRecordBytes];
  in_->read(reinterpret_cast<char*>(rec), sizeof(rec));
  if (in_->gcount() != static_cast<std::streamsize>(sizeof(rec))) {
    return Status::InvalidArgument(
        "binary flow trace: truncated at record " +
        std::to_string(records_read_) + " of " +
        std::to_string(record_count_) + " (short read of " +
        std::to_string(in_->gcount()) + " bytes)");
  }
  MIND_RETURN_NOT_OK(DecodeRecord(rec, records_read_, out));
  ++records_read_;
  return true;
}

Result<std::vector<FlowRecord>> ReadFlowsBinary(std::istream& in) {
  BinaryFlowReader reader(&in);
  MIND_RETURN_NOT_OK(reader.Open());
  std::vector<FlowRecord> out;
  out.reserve(reader.record_count());
  FlowRecord f;
  while (true) {
    MIND_ASSIGN_OR_RETURN(bool more, reader.Next(&f));
    if (!more) break;
    out.push_back(f);
  }
  return out;
}

}  // namespace mind
