#include "traffic/trace_io.h"

#include <istream>
#include <ostream>
#include <iomanip>
#include <sstream>
#include <string>

namespace mind {

namespace {

constexpr char kFlowHeader[] =
    "src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router";
constexpr char kAggrHeader[] =
    "src_prefix,dst_prefix,window_start,octets,fanout,distinct_dsts,flows,"
    "avg_flow_size,top_dst_port,router";

Result<std::vector<std::string>> SplitFields(const std::string& line,
                                             size_t expect) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  if (fields.size() != expect) {
    return Status::InvalidArgument("expected " + std::to_string(expect) +
                                   " fields, got " +
                                   std::to_string(fields.size()) + ": " + line);
  }
  return fields;
}

Result<uint64_t> ParseU64(const std::string& s) {
  try {
    size_t pos = 0;
    uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) return Status::InvalidArgument("bad integer: " + s);
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad integer: " + s);
  }
}

Result<double> ParseF64(const std::string& s) {
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) return Status::InvalidArgument("bad number: " + s);
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad number: " + s);
  }
}

}  // namespace

Status WriteFlowsCsv(std::ostream& out, const std::vector<FlowRecord>& flows) {
  out << kFlowHeader << "\n";
  out << std::setprecision(15);  // sub-millisecond timestamps survive the trip
  for (const auto& f : flows) {
    out << IpToString(f.src_ip) << ',' << IpToString(f.dst_ip) << ','
        << f.src_port << ',' << f.dst_port << ',' << f.bytes << ','
        << f.packets << ',' << f.time_sec << ',' << f.router << "\n";
  }
  if (!out.good()) return Status::Internal("flow CSV write failed");
  return Status::OK();
}

Result<std::vector<FlowRecord>> ReadFlowsCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(kFlowHeader, 0) != 0) {
    return Status::InvalidArgument("missing flow CSV header");
  }
  std::vector<FlowRecord> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    MIND_ASSIGN_OR_RETURN(auto fields, SplitFields(line, 8));
    FlowRecord f;
    MIND_ASSIGN_OR_RETURN(f.src_ip, ParseIp(fields[0]));
    MIND_ASSIGN_OR_RETURN(f.dst_ip, ParseIp(fields[1]));
    MIND_ASSIGN_OR_RETURN(uint64_t sp, ParseU64(fields[2]));
    MIND_ASSIGN_OR_RETURN(uint64_t dp, ParseU64(fields[3]));
    if (sp > 65535 || dp > 65535) {
      return Status::InvalidArgument("port out of range: " + line);
    }
    f.src_port = static_cast<uint16_t>(sp);
    f.dst_port = static_cast<uint16_t>(dp);
    MIND_ASSIGN_OR_RETURN(f.bytes, ParseU64(fields[4]));
    MIND_ASSIGN_OR_RETURN(uint64_t pk, ParseU64(fields[5]));
    f.packets = static_cast<uint32_t>(pk);
    MIND_ASSIGN_OR_RETURN(f.time_sec, ParseF64(fields[6]));
    MIND_ASSIGN_OR_RETURN(uint64_t r, ParseU64(fields[7]));
    f.router = static_cast<int>(r);
    out.push_back(f);
  }
  return out;
}

Status WriteAggregatesCsv(std::ostream& out,
                          const std::vector<AggregateRecord>& aggregates) {
  out << kAggrHeader << "\n";
  for (const auto& a : aggregates) {
    out << a.src_prefix.ToString() << ',' << a.dst_prefix.ToString() << ','
        << a.window_start << ',' << a.octets << ',' << a.fanout << ','
        << a.distinct_dsts << ',' << a.flows << ',' << a.avg_flow_size << ','
        << a.top_dst_port << ',' << a.router << "\n";
  }
  if (!out.good()) return Status::Internal("aggregate CSV write failed");
  return Status::OK();
}

Result<std::vector<AggregateRecord>> ReadAggregatesCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind(kAggrHeader, 0) != 0) {
    return Status::InvalidArgument("missing aggregate CSV header");
  }
  std::vector<AggregateRecord> out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    MIND_ASSIGN_OR_RETURN(auto fields, SplitFields(line, 10));
    AggregateRecord a;
    MIND_ASSIGN_OR_RETURN(a.src_prefix, IpPrefix::Parse(fields[0]));
    MIND_ASSIGN_OR_RETURN(a.dst_prefix, IpPrefix::Parse(fields[1]));
    MIND_ASSIGN_OR_RETURN(a.window_start, ParseU64(fields[2]));
    MIND_ASSIGN_OR_RETURN(a.octets, ParseU64(fields[3]));
    MIND_ASSIGN_OR_RETURN(uint64_t fo, ParseU64(fields[4]));
    a.fanout = static_cast<uint32_t>(fo);
    MIND_ASSIGN_OR_RETURN(uint64_t dd, ParseU64(fields[5]));
    a.distinct_dsts = static_cast<uint32_t>(dd);
    MIND_ASSIGN_OR_RETURN(uint64_t fl, ParseU64(fields[6]));
    a.flows = static_cast<uint32_t>(fl);
    MIND_ASSIGN_OR_RETURN(a.avg_flow_size, ParseU64(fields[7]));
    MIND_ASSIGN_OR_RETURN(uint64_t tp, ParseU64(fields[8]));
    a.top_dst_port = static_cast<uint16_t>(tp);
    MIND_ASSIGN_OR_RETURN(uint64_t r, ParseU64(fields[9]));
    a.router = static_cast<int>(r);
    out.push_back(a);
  }
  return out;
}

}  // namespace mind
