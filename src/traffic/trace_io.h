// CSV import/export of raw flow records and aggregate records, so generated
// traces can be persisted, inspected with standard tools, or replaced by
// real NetFlow exports converted to the same format.
//
// Formats (one record per line, header row included):
//   flows:      src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router
//   aggregates: src_prefix,dst_prefix,window_start,octets,fanout,
//               distinct_dsts,flows,avg_flow_size,top_dst_port,router
#ifndef MIND_TRAFFIC_TRACE_IO_H_
#define MIND_TRAFFIC_TRACE_IO_H_

#include <iosfwd>
#include <vector>

#include "traffic/flow.h"
#include "util/status.h"

namespace mind {

/// Writes raw flow records as CSV.
Status WriteFlowsCsv(std::ostream& out, const std::vector<FlowRecord>& flows);

/// Reads raw flow records from CSV (header required).
Result<std::vector<FlowRecord>> ReadFlowsCsv(std::istream& in);

/// Writes aggregate records as CSV.
Status WriteAggregatesCsv(std::ostream& out,
                          const std::vector<AggregateRecord>& aggregates);

/// Reads aggregate records from CSV (header required).
Result<std::vector<AggregateRecord>> ReadAggregatesCsv(std::istream& in);

}  // namespace mind

#endif  // MIND_TRAFFIC_TRACE_IO_H_
