// Import/export of raw flow records and aggregate records, so generated
// traces can be persisted, inspected with standard tools, or replaced by
// real NetFlow exports converted to the same format.
//
// Text formats (one record per line, header row included):
//   flows:      src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router
//   aggregates: src_prefix,dst_prefix,window_start,octets,fanout,
//               distinct_dsts,flows,avg_flow_size,top_dst_port,router
//
// Binary flow-trace format "MFT1" (the live front-end's ingest format,
// little-endian, streamable):
//   file header (16 bytes): magic "MFT1", version u16 (= 1),
//                           record_bytes u16 (= 36), record_count u64
//   then record_count records of exactly record_bytes each:
//     src_ip u32, dst_ip u32, src_port u16, dst_port u16, packets u32,
//     bytes u64, time_sec f64 (IEEE bits), router i32
// Every header field is validated on open and every record on read —
// corruption yields a precise InvalidArgument (which record, what is wrong)
// rather than a silently truncated trace.
#ifndef MIND_TRAFFIC_TRACE_IO_H_
#define MIND_TRAFFIC_TRACE_IO_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "traffic/flow.h"
#include "util/status.h"

namespace mind {

/// Writes raw flow records as CSV.
Status WriteFlowsCsv(std::ostream& out, const std::vector<FlowRecord>& flows);

/// Reads raw flow records from CSV (header required).
Result<std::vector<FlowRecord>> ReadFlowsCsv(std::istream& in);

/// Writes raw flow records in the MFT1 binary format described above.
Status WriteFlowsBinary(std::ostream& out, const std::vector<FlowRecord>& flows);

/// Reads a whole MFT1 stream (validating header and every record).
Result<std::vector<FlowRecord>> ReadFlowsBinary(std::istream& in);

/// \brief Streaming MFT1 reader: validates the file header up front, then
/// yields one record per Next() call so multi-hour traces never need to be
/// materialized. The live front-end's TraceSource wraps this.
class BinaryFlowReader {
 public:
  /// Does not take ownership; `in` must outlive the reader.
  explicit BinaryFlowReader(std::istream* in) : in_(in) {}

  /// Reads and validates the file header. Must be called (once) before
  /// Next(); returns a precise InvalidArgument on any malformed field.
  Status Open();

  /// Reads the next record into `*out`. Returns false at a clean end of
  /// stream (exactly record_count records consumed); a short read, a record
  /// past the declared count, or an out-of-bounds field is an error naming
  /// the offending record.
  Result<bool> Next(FlowRecord* out);

  /// Declared record count (valid after Open()).
  uint64_t record_count() const { return record_count_; }
  uint64_t records_read() const { return records_read_; }

 private:
  std::istream* in_;
  bool opened_ = false;
  uint64_t record_count_ = 0;
  uint64_t records_read_ = 0;
};

/// Writes aggregate records as CSV.
Status WriteAggregatesCsv(std::ostream& out,
                          const std::vector<AggregateRecord>& aggregates);

/// Reads aggregate records from CSV (header required).
Result<std::vector<AggregateRecord>> ReadAggregatesCsv(std::istream& in);

}  // namespace mind

#endif  // MIND_TRAFFIC_TRACE_IO_H_
