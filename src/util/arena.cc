#include "util/arena.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace mind {
namespace pool {
namespace {

constexpr size_t kSlabBytes = 256 * 1024;

// Aggregate live/peak accounting shared by every cache. Relaxed is enough:
// the counters are telemetry, and GatherStats() runs in serial context.
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void NoteLiveDelta(int64_t delta) {
  const int64_t live =
      g_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

int ClassFor(size_t n) {
  for (size_t c = 0; c < kClassCount; ++c) {
    if (n <= kClassSizes[c]) return static_cast<int>(c);
  }
  return -1;
}

// One slab: a raw chunk blocks are carved from. Slabs are only released when
// their owning cache retires *and* the depot is destroyed at process exit.
struct Slab {
  Slab* next = nullptr;
  size_t size = 0;
  size_t used = 0;
  // Block storage follows the header, max_align_t aligned.
  unsigned char* base() {
    return reinterpret_cast<unsigned char*>(this) + HeaderBytes();
  }
  static size_t HeaderBytes() {
    const size_t a = alignof(std::max_align_t);
    return (sizeof(Slab) + a - 1) & ~(a - 1);
  }
};

struct FreeBlock {
  FreeBlock* next;
};

// Per-thread cache: one free list per class plus a slab chain.
struct ThreadCache {
  FreeBlock* free_lists[kClassCount] = {};
  Slab* slabs = nullptr;
  // Counters (monotone; aggregated by GatherStats).
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t slab_bytes = 0;
  uint64_t oversize_allocs = 0;
  uint64_t oversize_bytes = 0;

  ThreadCache();
  ~ThreadCache();
};

// Depot of retired caches' state: free lists, slabs and counter totals live
// on after their thread exits; the next cache to spin up adopts them.
struct Depot {
  std::mutex mu;
  FreeBlock* free_lists[kClassCount] = {};
  Slab* slabs = nullptr;
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t slab_bytes = 0;
  uint64_t oversize_allocs = 0;
  uint64_t oversize_bytes = 0;
  std::vector<ThreadCache*> live_caches;

  static Depot& Get() {
    // Leaked intentionally: worker-thread caches retire into the depot at
    // thread exit, whose order against static destruction is unspecified.
    static Depot* d = new Depot();
    return *d;
  }
};

ThreadCache::ThreadCache() {
  Depot& depot = Depot::Get();
  std::lock_guard<std::mutex> lock(depot.mu);
  // Adopt any retired free blocks and slabs before growing fresh ones.
  for (size_t cls = 0; cls < kClassCount; ++cls) {
    free_lists[cls] = depot.free_lists[cls];
    depot.free_lists[cls] = nullptr;
  }
  slabs = depot.slabs;
  depot.slabs = nullptr;
  depot.live_caches.push_back(this);
}

ThreadCache::~ThreadCache() {
  Depot& depot = Depot::Get();
  std::lock_guard<std::mutex> lock(depot.mu);
  for (size_t c = 0; c < kClassCount; ++c) {
    while (FreeBlock* b = free_lists[c]) {
      free_lists[c] = b->next;
      b->next = depot.free_lists[c];
      depot.free_lists[c] = b;
    }
  }
  while (Slab* s = slabs) {
    slabs = s->next;
    s->next = depot.slabs;
    depot.slabs = s;
  }
  depot.allocs += allocs;
  depot.frees += frees;
  depot.slab_bytes += slab_bytes;
  depot.oversize_allocs += oversize_allocs;
  depot.oversize_bytes += oversize_bytes;
  for (auto it = depot.live_caches.begin(); it != depot.live_caches.end();
       ++it) {
    if (*it == this) {
      depot.live_caches.erase(it);
      break;
    }
  }
}

// The cache is a value-type thread_local so its destructor runs at thread
// exit and donates slabs + free lists to the depot — a destroyed parallel
// engine's workers hand their memory to the next engine's workers instead of
// stranding it.
ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

void* CarveFromSlab(ThreadCache& cache, size_t block_bytes) {
  Slab* s = cache.slabs;
  if (s == nullptr || s->used + block_bytes > s->size) {
    const size_t payload = kSlabBytes - Slab::HeaderBytes();
    const size_t size = block_bytes > payload ? block_bytes : payload;
    void* mem = ::operator new(Slab::HeaderBytes() + size,
                               std::align_val_t{alignof(std::max_align_t)});
    s = new (mem) Slab();
    s->size = size;
    s->next = cache.slabs;
    cache.slabs = s;
    cache.slab_bytes += Slab::HeaderBytes() + size;
  }
  void* p = s->base() + s->used;
  s->used += block_bytes;
  return p;
}

}  // namespace

void* Allocate(size_t n) {
  if (n == 0) n = 1;
  const int cls = ClassFor(n);
  ThreadCache& cache = Cache();
  if (cls < 0) {
    ++cache.oversize_allocs;
    cache.oversize_bytes += n;
    return ::operator new(n, std::align_val_t{alignof(std::max_align_t)});
  }
  const size_t block = kClassSizes[cls];
  ++cache.allocs;
  NoteLiveDelta(static_cast<int64_t>(block));
  if (FreeBlock* b = cache.free_lists[cls]) {
    cache.free_lists[cls] = b->next;
    return b;
  }
  return CarveFromSlab(cache, block);
}

void Deallocate(void* p, size_t n) noexcept {
  if (p == nullptr) return;
  if (n == 0) n = 1;
  const int cls = ClassFor(n);
  if (cls < 0) {
    ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
    return;
  }
  ThreadCache& cache = Cache();
  ++cache.frees;
  NoteLiveDelta(-static_cast<int64_t>(kClassSizes[cls]));
  auto* b = static_cast<FreeBlock*>(p);
  b->next = cache.free_lists[cls];
  cache.free_lists[cls] = b;
}

Stats GatherStats() {
  Stats out;
  out.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  out.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  Depot& depot = Depot::Get();
  std::lock_guard<std::mutex> lock(depot.mu);
  out.allocs = depot.allocs;
  out.frees = depot.frees;
  out.slab_bytes = depot.slab_bytes;
  out.oversize_allocs = depot.oversize_allocs;
  out.oversize_bytes = depot.oversize_bytes;
  for (const ThreadCache* c : depot.live_caches) {
    out.allocs += c->allocs;
    out.frees += c->frees;
    out.slab_bytes += c->slab_bytes;
    out.oversize_allocs += c->oversize_allocs;
    out.oversize_bytes += c->oversize_bytes;
  }
  return out;
}

void ResetPeak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

}  // namespace pool
}  // namespace mind
