// Arena / pool allocation for the bounded-memory scale layer (CoMo's
// memory.c/pool.c idiom, DESIGN.md §14).
//
// Two allocators, both built for the simulator's steady-state churn — a
// message or event payload is allocated, lives for one network hop or one
// window, and dies — where general-purpose malloc pays metadata, locking and
// fragmentation for no benefit:
//
//  * pool::Allocate / pool::Deallocate — fixed-size free-list pools over a
//    small set of size classes. Freed blocks are recycled, slab memory is
//    carved in large chunks and never returned mid-run, so the pool's
//    footprint is the high-water mark of *live* objects, not of allocation
//    traffic. Each thread owns a cache (free lists + slabs); a block freed on
//    a different thread than it was allocated on simply migrates to the
//    freeing thread's cache. Retired caches (worker threads of a destroyed
//    parallel engine) park their slabs in a central depot for the next
//    engine's workers to adopt, so repeated engine construction cannot grow
//    memory.
//  * Arena — a bump allocator for per-window scratch: allocation is a pointer
//    increment, and Reset() reclaims the whole epoch at once. Nothing is
//    individually freed.
//
// Determinism: pool state is storage recycling only. No address, counter or
// high-water mark may feed back into simulation behaviour; stats exist for
// telemetry gauges (`memory.pool.*`) published from serial context.
//
// This header lives in src/util (outside the mind_lint concurrency fence) on
// purpose: the thread cache registry needs one mutex and two relaxed atomics,
// and every linted directory gets pooled allocation through MakeMessage /
// EventFn instead of raw new (the `raw-alloc` lint enforces this).
#ifndef MIND_UTIL_ARENA_H_
#define MIND_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mind {
namespace pool {

/// Size classes, in bytes. Requests above the largest class take the
/// ::operator new fallback and are counted in Stats::oversize_allocs — the
/// "allocations outside pools" telemetry the fig22 bench gates on.
inline constexpr size_t kClassSizes[] = {64, 128, 256, 512, 1024};
inline constexpr size_t kClassCount = sizeof(kClassSizes) / sizeof(size_t);
inline constexpr size_t kMaxPooledBytes = kClassSizes[kClassCount - 1];

/// Allocates `n` bytes from the calling thread's pool cache (max_align_t
/// aligned). Falls back to ::operator new above kMaxPooledBytes.
void* Allocate(size_t n);

/// Returns a block to the calling thread's cache; `n` must be the size passed
/// to Allocate.
void Deallocate(void* p, size_t n) noexcept;

/// Aggregate pool statistics across all thread caches (live and retired).
/// Telemetry-only: never feed these back into simulation state.
struct Stats {
  int64_t live_bytes = 0;      ///< pooled bytes currently handed out
  int64_t peak_bytes = 0;      ///< high-water mark of live_bytes
  uint64_t slab_bytes = 0;     ///< bytes reserved from the OS in slabs
  uint64_t allocs = 0;         ///< pooled allocations served
  uint64_t frees = 0;          ///< pooled blocks returned
  uint64_t oversize_allocs = 0;  ///< requests above kMaxPooledBytes
  uint64_t oversize_bytes = 0;   ///< bytes of those requests (cumulative)
};

/// Sums the counters of every cache plus the retired-cache depot. Cheap
/// enough to call per bench sample; serial context recommended (worker
/// threads may still be mutating their own counters mid-phase).
Stats GatherStats();

/// Resets the aggregate peak to the current live volume (serial context).
void ResetPeak();

/// std-allocator adapter over the pool, for std::allocate_shared message
/// construction (sim/message.h MakeMessage) and small pooled containers.
template <typename T>
struct PooledAllocator {
  using value_type = T;

  PooledAllocator() = default;
  template <typename U>
  PooledAllocator(const PooledAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) { return static_cast<T*>(Allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t n) noexcept { Deallocate(p, n * sizeof(T)); }

  friend bool operator==(const PooledAllocator&, const PooledAllocator&) {
    return true;
  }
  friend bool operator!=(const PooledAllocator&, const PooledAllocator&) {
    return false;
  }
};

}  // namespace pool

/// \brief Epoch-reclaimed bump allocator for per-window scratch.
///
/// Allocation bumps a cursor through chunked slabs; Reset() rewinds to empty
/// while keeping the slabs, so a window's worth of scratch costs zero
/// allocator traffic after warm-up. Not thread-safe: one Arena per owner
/// (per shard, per bench loop).
class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `n` bytes, max_align_t aligned. Oversized requests get a dedicated
  /// chunk; they are reclaimed at Reset() like everything else.
  void* Allocate(size_t n) {
    n = Align(n);
    if (cursor_ + n > limit_) Grow(n);
    void* p = cursor_;
    cursor_ += n;
    live_bytes_ += n;
    if (live_bytes_ > peak_bytes_) peak_bytes_ = live_bytes_;
    return p;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors; use trivially destructible "
                  "scratch types");
    return ::new (Allocate(sizeof(T))) T(std::forward<Args>(args)...);
  }

  /// Reclaims the whole epoch: every pointer handed out becomes invalid,
  /// chunk memory is kept for the next epoch.
  void Reset() {
    chunk_index_ = 0;
    if (!chunks_.empty()) {
      cursor_ = chunks_[0].data.get();
      limit_ = cursor_ + chunks_[0].size;
    } else {
      cursor_ = limit_ = nullptr;
    }
    live_bytes_ = 0;
  }

  size_t live_bytes() const { return live_bytes_; }
  size_t peak_bytes() const { return peak_bytes_; }
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  static size_t Align(size_t n) {
    const size_t a = alignof(std::max_align_t);
    return (n + a - 1) & ~(a - 1);
  }

  void Grow(size_t need) {
    // Advance to the next retained chunk if it fits; else append one.
    while (++chunk_index_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_index_];
      if (c.size >= need) {
        cursor_ = c.data.get();
        limit_ = cursor_ + c.size;
        return;
      }
    }
    const size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    chunks_.push_back({std::make_unique<unsigned char[]>(size), size});
    chunk_index_ = chunks_.size() - 1;
    cursor_ = chunks_.back().data.get();
    limit_ = cursor_ + size;
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t chunk_index_ = 0;
  unsigned char* cursor_ = nullptr;
  unsigned char* limit_ = nullptr;
  size_t live_bytes_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace mind

#endif  // MIND_UTIL_ARENA_H_
