#include "util/bitcode.h"

#include <bit>

namespace mind {

BitCode BitCode::FromBits(uint64_t bits, int len) {
  MIND_CHECK(len >= 0 && len <= kMaxLen);
  BitCode c;
  c.len_ = len;
  c.bits_ = (len == 0) ? 0 : (len == 64 ? bits : (bits & ((uint64_t{1} << len) - 1)));
  return c;
}

BitCode BitCode::FromString(const std::string& s) {
  BitCode c;
  for (char ch : s) {
    MIND_CHECK(ch == '0' || ch == '1') << "bad bit char '" << ch << "'";
    c.PushBack(ch - '0');
  }
  return c;
}

int BitCode::CommonPrefixLen(const BitCode& other) const {
  int min_len = std::min(len_, other.len_);
  if (min_len == 0) return 0;
  // Left-align both codes in 64 bits, XOR, count leading zeros.
  uint64_t a = bits_ << (kMaxLen - len_);
  uint64_t b = other.bits_ << (kMaxLen - other.len_);
  uint64_t x = a ^ b;
  int lz = (x == 0) ? kMaxLen : std::countl_zero(x);
  return std::min(lz, min_len);
}

std::string BitCode::ToString() const {
  if (len_ == 0) return "(empty)";
  std::string s;
  s.reserve(len_);
  for (int i = 0; i < len_; ++i) s.push_back(static_cast<char>('0' + bit(i)));
  return s;
}

bool operator<(const BitCode& a, const BitCode& b) {
  int cpl = a.CommonPrefixLen(b);
  if (cpl == a.len_ || cpl == b.len_) {
    return a.len_ < b.len_;  // prefix sorts first; equal -> false
  }
  return a.bit(cpl) < b.bit(cpl);
}

}  // namespace mind
