#include "util/bitcode.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace mind {

BitCode BitCode::FromBits(uint64_t bits, int len) {
  MIND_CHECK(len >= 0 && len <= kMaxLen);
  BitCode c;
  c.len_ = len;
  c.bits_ = (len == 0) ? 0 : (len == 64 ? bits : (bits & ((uint64_t{1} << len) - 1)));
  return c;
}

BitCode BitCode::FromString(const std::string& s) {
  BitCode c;
  for (char ch : s) {
    MIND_CHECK(ch == '0' || ch == '1') << "bad bit char '" << ch << "'";
    c.PushBack(ch - '0');
  }
  return c;
}

int BitCode::CommonPrefixLen(const BitCode& other) const {
  int min_len = std::min(len_, other.len_);
  if (min_len == 0) return 0;
  // Left-align both codes in 64 bits, XOR, count leading zeros.
  uint64_t a = bits_ << (kMaxLen - len_);
  uint64_t b = other.bits_ << (kMaxLen - other.len_);
  uint64_t x = a ^ b;
  int lz = (x == 0) ? kMaxLen : std::countl_zero(x);
  return std::min(lz, min_len);
}

std::string BitCode::ToString() const {
  if (len_ == 0) return "(empty)";
  std::string s;
  s.reserve(len_);
  for (int i = 0; i < len_; ++i) s.push_back(static_cast<char>('0' + bit(i)));
  return s;
}

namespace {

// Left-aligns a code's bits in 64 bits so lexicographic order over codes
// matches numeric order over keys.
uint64_t AlignedBits(const BitCode& c) {
  return c.empty() ? 0 : c.bits() << (BitCode::kMaxLen - c.length());
}

}  // namespace

Status CheckCompleteCover(const std::vector<BitCode>& codes) {
  if (codes.empty()) {
    return Status::Internal("complete-cover: no codes (empty set covers nothing)");
  }
  // Sort by left-aligned bits, shorter code first on ties. Any prefix
  // relation (including duplicates) then appears between adjacent entries.
  std::vector<BitCode> sorted = codes;
  std::sort(sorted.begin(), sorted.end(), [](const BitCode& a, const BitCode& b) {
    uint64_t ka = AlignedBits(a);
    uint64_t kb = AlignedBits(b);
    if (ka != kb) return ka < kb;
    return a.length() < b.length();
  });
  for (size_t i = 1; i < sorted.size(); ++i) {
    const BitCode& prev = sorted[i - 1];
    const BitCode& cur = sorted[i];
    if (prev.IsPrefixOf(cur)) {
      std::ostringstream oss;
      if (prev == cur) {
        oss << "complete-cover: duplicate code " << cur.ToString();
      } else {
        oss << "complete-cover: code " << prev.ToString() << " is a prefix of "
            << cur.ToString() << " (regions overlap)";
      }
      return Status::Internal(oss.str());
    }
  }
  // Prefix-free => regions are disjoint; exact measures must sum to the
  // whole space. A code of length L covers 2^(64-L) of the 2^64 key space;
  // 128-bit accumulation because the target itself is 2^64.
  unsigned __int128 covered = 0;
  for (const BitCode& c : sorted) {
    covered += static_cast<unsigned __int128>(1) << (BitCode::kMaxLen - c.length());
  }
  const unsigned __int128 whole = static_cast<unsigned __int128>(1) << BitCode::kMaxLen;
  if (covered != whole) {
    // covered < whole here (overlap was excluded above), so the deficit
    // fits in 64 bits ... unless codes repeat measure; report in 2^-64ths.
    std::ostringstream oss;
    oss << "complete-cover: gap of " << static_cast<uint64_t>(whole - covered)
        << "/2^64 of the space uncovered (" << sorted.size() << " codes)";
    return Status::Internal(oss.str());
  }
  return Status::OK();
}

bool operator<(const BitCode& a, const BitCode& b) {
  int cpl = a.CommonPrefixLen(b);
  if (cpl == a.len_ || cpl == b.len_) {
    return a.len_ < b.len_;  // prefix sorts first; equal -> false
  }
  return a.bit(cpl) < b.bit(cpl);
}

}  // namespace mind
