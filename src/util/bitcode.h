// BitCode: a variable-length binary string of up to 64 bits.
//
// BitCodes serve two roles in MIND (the paper keeps them deliberately
// symmetric):
//   * the hypercube overlay address of a node ("vertex code"), and
//   * the label of a hyper-rectangle produced by recursively cutting an
//     index's data space.
// Routing and storage placement only ever compare codes: a tuple is stored at
// the node whose code maximally matches the tuple's data-space code.
#ifndef MIND_UTIL_BITCODE_H_
#define MIND_UTIL_BITCODE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace mind {

class BitCode {
 public:
  static constexpr int kMaxLen = 64;

  /// Empty code (length 0) — the root / the whole data space.
  BitCode() = default;

  /// Builds a code from the low `len` bits of `bits`; the most significant of
  /// those is bit 0 of the code.
  static BitCode FromBits(uint64_t bits, int len);

  /// Parses a string of '0'/'1' characters.
  static BitCode FromString(const std::string& s);

  int length() const { return len_; }
  bool empty() const { return len_ == 0; }

  /// Bit at position `i` (0 = first / most significant cut).
  int bit(int i) const {
    MIND_CHECK(i >= 0 && i < len_);
    return static_cast<int>((bits_ >> (len_ - 1 - i)) & 1u);
  }

  /// Appends one bit.
  void PushBack(int b) {
    MIND_CHECK(len_ < kMaxLen);
    MIND_CHECK(b == 0 || b == 1);
    bits_ = (bits_ << 1) | static_cast<uint64_t>(b);
    ++len_;
  }

  /// Removes the last bit; requires non-empty.
  void PopBack() {
    MIND_CHECK_GT(len_, 0);
    bits_ >>= 1;
    --len_;
  }

  /// Returns this code with one extra bit appended.
  BitCode Child(int b) const {
    BitCode c = *this;
    c.PushBack(b);
    return c;
  }

  /// Returns the code with the last bit dropped; requires non-empty.
  BitCode Parent() const {
    BitCode c = *this;
    c.PopBack();
    return c;
  }

  /// Returns the code with the last bit flipped; requires non-empty.
  /// On the virtual binary tree of codes this is the sibling leaf.
  BitCode Sibling() const { return WithBitFlipped(len_ - 1); }

  /// Returns the code with bit `i` flipped.
  BitCode WithBitFlipped(int i) const {
    MIND_CHECK(i >= 0 && i < len_);
    BitCode c = *this;
    c.bits_ ^= (uint64_t{1} << (len_ - 1 - i));
    return c;
  }

  /// First `n` bits (n <= length()).
  BitCode Prefix(int n) const {
    MIND_CHECK(n >= 0 && n <= len_);
    return FromBits(bits_ >> (len_ - n), n);
  }

  /// Number of leading bits shared with `other`.
  int CommonPrefixLen(const BitCode& other) const;

  /// True if this code is a prefix of `other` (equal codes count).
  bool IsPrefixOf(const BitCode& other) const {
    return len_ <= other.len_ && CommonPrefixLen(other) == len_;
  }

  /// Raw bits, right-aligned (low `length()` bits).
  uint64_t bits() const { return bits_; }

  /// '0'/'1' rendering; "(empty)" for the empty code.
  std::string ToString() const;

  friend bool operator==(const BitCode& a, const BitCode& b) {
    return a.len_ == b.len_ && a.bits_ == b.bits_;
  }
  friend bool operator!=(const BitCode& a, const BitCode& b) { return !(a == b); }

  /// Lexicographic order with the convention that a proper prefix sorts
  /// before its extensions (tree pre-order).
  friend bool operator<(const BitCode& a, const BitCode& b);

  struct Hash {
    size_t operator()(const BitCode& c) const {
      uint64_t x = c.bits_ * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(c.len_);
      x ^= x >> 32;
      return static_cast<size_t>(x * 0xbf58476d1ce4e5b9ull);
    }
  };

 private:
  uint64_t bits_ = 0;  // right-aligned: bit 0 of the code is the MSB of the low len_ bits
  int len_ = 0;
};

/// Checks that `codes` is prefix-free and exactly tiles the code space: the
/// hyper-rectangles they label partition the data space with no gap and no
/// overlap. Exact integer arithmetic (each code of length L covers
/// 2^(64-L)/2^64 of the space) — no floating-point epsilon. Returns OK or an
/// Internal status naming the offending codes / the covered fraction.
Status CheckCompleteCover(const std::vector<BitCode>& codes);

}  // namespace mind

#endif  // MIND_UTIL_BITCODE_H_
