#include "util/digest.h"

namespace mind {

std::string DigestToHex(uint64_t digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace mind
