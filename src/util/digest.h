// FNV-1a 64-bit streaming digest for deterministic replay verification.
//
// Structures expose DigestInto(Fnv64*) (or a StateDigest() convenience)
// that folds their logical state — node codes, stored tuples, pending
// events — into the stream. Two simulation runs are considered replays of
// each other iff their final digests are bit-identical. The digest covers
// *logical* state only: no pointers, no capacities, no telemetry counters,
// so a -DMIND_TELEMETRY=OFF build must produce the same digest as ON.
//
// For containers whose in-memory order is not canonical (e.g. TupleStore
// rows between lazy sorts), use the order-independent pattern: hash each
// element into its own Fnv64 and combine the per-element digests with
// OrderIndependentAccumulator, whose commutative sum makes the result
// independent of iteration order.
#ifndef MIND_UTIL_DIGEST_H_
#define MIND_UTIL_DIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mind {

/// Streaming FNV-1a 64-bit hash.
class Fnv64 {
 public:
  static constexpr uint64_t kOffsetBasis = 1469598103934665603ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  void MixByte(uint8_t b) { h_ = (h_ ^ b) * kPrime; }

  /// Mixes a 64-bit value, little-endian byte order.
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  /// Mixes a length-prefixed byte string (length prefix keeps "ab","c"
  /// distinct from "a","bc").
  void Mix(std::string_view s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) MixByte(static_cast<uint8_t>(c));
  }

  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kOffsetBasis;
};

/// Combines per-element digests commutatively (wrapping sum), so the result
/// does not depend on the order elements are visited.
class OrderIndependentAccumulator {
 public:
  void Add(uint64_t element_digest) {
    sum_ += element_digest;
    ++count_;
  }

  /// Folds the accumulated multiset digest into `out` (count then sum).
  void DigestInto(Fnv64* out) const {
    out->Mix(count_);
    out->Mix(sum_);
  }

 private:
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

/// Renders a digest as fixed-width lowercase hex ("00112233aabbccdd").
std::string DigestToHex(uint64_t digest);

}  // namespace mind

#endif  // MIND_UTIL_DIGEST_H_
