#include "util/ip.h"

#include <cstdio>

#include "util/logging.h"

namespace mind {

std::string IpToString(IpAddr ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

Result<IpAddr> ParseIp(const std::string& s) {
  unsigned a, b, c, d;
  char tail;
  int n = std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return Status::InvalidArgument("bad IPv4 address: " + s);
  }
  return static_cast<IpAddr>((a << 24) | (b << 16) | (c << 8) | d);
}

IpPrefix::IpPrefix(IpAddr base, int len) : len_(len) {
  MIND_CHECK(len >= 0 && len <= 32);
  base_ = (len == 0) ? 0 : (base & (0xFFFFFFFFu << (32 - len)));
}

Result<IpPrefix> IpPrefix::Parse(const std::string& s) {
  auto slash = s.find('/');
  if (slash == std::string::npos) {
    return Status::InvalidArgument("prefix missing '/': " + s);
  }
  MIND_ASSIGN_OR_RETURN(IpAddr base, ParseIp(s.substr(0, slash)));
  int len = 0;
  try {
    len = std::stoi(s.substr(slash + 1));
  } catch (...) {
    return Status::InvalidArgument("bad prefix length: " + s);
  }
  if (len < 0 || len > 32) {
    return Status::InvalidArgument("prefix length out of range: " + s);
  }
  return IpPrefix(base, len);
}

std::string IpPrefix::ToString() const {
  return IpToString(base_) + "/" + std::to_string(len_);
}

}  // namespace mind
