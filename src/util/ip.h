// IPv4 address and prefix arithmetic used by the traffic generator and the
// network-monitoring indices (addresses are index attributes; customer
// prefixes define query ranges).
#ifndef MIND_UTIL_IP_H_
#define MIND_UTIL_IP_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mind {

/// An IPv4 address as a host-order 32-bit integer.
using IpAddr = uint32_t;

/// Renders a.b.c.d.
std::string IpToString(IpAddr ip);

/// Parses "a.b.c.d".
Result<IpAddr> ParseIp(const std::string& s);

/// \brief An IPv4 prefix (CIDR block), e.g. 192.168.32.0/20.
///
/// A prefix is a contiguous address range [First(), Last()], which is what
/// makes prefix predicates expressible as one-dimensional range constraints
/// in MIND queries.
class IpPrefix {
 public:
  IpPrefix() = default;
  /// Builds `base`/`len`; host bits of `base` are zeroed.
  IpPrefix(IpAddr base, int len);

  /// Parses "a.b.c.d/len".
  static Result<IpPrefix> Parse(const std::string& s);

  IpAddr First() const { return base_; }
  IpAddr Last() const {
    return len_ == 32 ? base_ : (base_ | (0xFFFFFFFFu >> len_));
  }

  int length() const { return len_; }

  /// Number of addresses covered (2^(32-len)); 2^32 clamps to UINT32_MAX+1
  /// represented as uint64.
  uint64_t Size() const { return uint64_t{1} << (32 - len_); }

  bool Contains(IpAddr ip) const {
    if (len_ == 0) return true;
    return (ip >> (32 - len_)) == (base_ >> (32 - len_));
  }

  bool Contains(const IpPrefix& other) const {
    return other.len_ >= len_ && Contains(other.base_);
  }

  /// "a.b.c.d/len".
  std::string ToString() const;

  friend bool operator==(const IpPrefix& a, const IpPrefix& b) {
    return a.base_ == b.base_ && a.len_ == b.len_;
  }

 private:
  IpAddr base_ = 0;
  int len_ = 0;
};

}  // namespace mind

#endif  // MIND_UTIL_IP_H_
