#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mind {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

// Sim clock for log prefixes. Single-threaded like the simulator itself.
const void* g_clock_owner = nullptr;
std::function<uint64_t()> g_clock;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void SetLogClock(const void* owner, std::function<uint64_t()> micros) {
  g_clock_owner = owner;
  g_clock = std::move(micros);
}

void ClearLogClock(const void* owner) {
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock = nullptr;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_threshold.load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "]";
    if (g_clock) {
      char t[32];
      std::snprintf(t, sizeof(t), " t=%.6fs",
                    static_cast<double>(g_clock()) / 1e6);
      stream_ << t;
    }
    stream_ << " ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace mind
