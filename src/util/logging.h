// Minimal logging and invariant-check facility.
//
// CHECK macros are for programmer errors (precondition violations inside the
// library); fallible operations return Status instead (see util/status.h).
#ifndef MIND_UTIL_LOGGING_H_
#define MIND_UTIL_LOGGING_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace mind {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Stream-style log sink; emits on destruction. FATAL aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the minimum level that is actually emitted (default: kWarning, so
/// tests and benchmarks stay quiet).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// Registers a virtual-time source (microseconds) so log lines carry the sim
/// clock ("t=1.250s") and share one timeline with the telemetry subsystem.
/// `owner` identifies the registrant (usually the Simulator): a later
/// SetLogClock replaces the clock, and ClearLogClock only unregisters when
/// the owner still matches — so a new Simulator that registers before an old
/// one is destroyed keeps its clock.
void SetLogClock(const void* owner, std::function<uint64_t()> micros);
void ClearLogClock(const void* owner);

#define MIND_LOG(level)                                                  \
  ::mind::internal::LogMessage(::mind::LogLevel::k##level, __FILE__, __LINE__)

#define MIND_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  MIND_LOG(Fatal) << "Check failed: " #cond " "

#define MIND_CHECK_OK(expr)                                               \
  do {                                                                    \
    ::mind::Status _st_chk = (expr);                                      \
    if (!_st_chk.ok())                                                    \
      MIND_LOG(Fatal) << "Status not OK: " << _st_chk.ToString();         \
  } while (0)

#define MIND_CHECK_EQ(a, b) MIND_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MIND_CHECK_NE(a, b) MIND_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MIND_CHECK_LT(a, b) MIND_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MIND_CHECK_LE(a, b) MIND_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MIND_CHECK_GT(a, b) MIND_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MIND_CHECK_GE(a, b) MIND_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace mind

#endif  // MIND_UTIL_LOGGING_H_
