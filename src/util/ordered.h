// Deterministic-iteration helpers for unordered containers.
//
// Iterating a std::unordered_map/set directly is fine when the loop's
// effect is order-independent (building a count, taking a max). It is a
// determinism hazard when the loop emits messages, schedules events, or
// otherwise leaks iteration order into simulation behavior: the order
// depends on the hash function, bucket count, and insertion history, and
// differs across standard libraries. tools/mind_lint.py flags such loops;
// the fix is to iterate over SortedKeys(map) instead.
#ifndef MIND_UTIL_ORDERED_H_
#define MIND_UTIL_ORDERED_H_

#include <algorithm>
#include <vector>

namespace mind {

/// Returns the keys of an associative container, sorted ascending.
/// Copies keys by value; intended for small per-node maps (peers, watches).
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Returns the elements of a set-like container, sorted ascending.
template <typename Set>
std::vector<typename Set::value_type> SortedValues(const Set& s) {
  std::vector<typename Set::value_type> vals(s.begin(), s.end());
  std::sort(vals.begin(), vals.end());
  return vals;
}

}  // namespace mind

#endif  // MIND_UTIL_ORDERED_H_
