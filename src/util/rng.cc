#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace mind {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  MIND_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  MIND_CHECK_LE(lo, hi);
  uint64_t span = hi - lo;
  if (span == UINT64_MAX) return Next();
  return lo + Uniform(span + 1);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  MIND_CHECK_GT(lambda, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

double Rng::Pareto(double x_m, double alpha) {
  MIND_CHECK_GT(x_m, 0.0);
  MIND_CHECK_GT(alpha, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::Poisson(double mean) {
  MIND_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > l);
    return k - 1;
  }
  double v = Normal(mean, std::sqrt(mean));
  return v <= 0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 == 0.0);
  u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

uint64_t CounterMix(uint64_t seed, uint64_t stream, uint64_t counter) {
  // Three SplitMix64 finalization rounds over a seed/stream/counter blend.
  // Not cryptographic; the goal is full avalanche so that adjacent counters
  // and adjacent streams are statistically independent.
  uint64_t x = seed ^ Rotl(stream, 24) ^ 0x9e3779b97f4a7c15ull;
  x += counter * 0xd1342543de82ef95ull;
  for (int round = 0; round < 3; ++round) {
    x ^= stream + 0x2545f4914f6cdd1dull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return x;
}

double CounterUniformDouble(uint64_t seed, uint64_t stream, uint64_t counter) {
  // 53-bit mantissa, shifted into (0, 1] so log() is always finite.
  uint64_t bits = CounterMix(seed, stream, counter) >> 11;
  return (static_cast<double>(bits) + 1.0) * 0x1.0p-53;
}

double CounterLogNormal(uint64_t seed, uint64_t stream, uint64_t counter,
                        double mu, double sigma) {
  // Two lanes of the same (stream, counter) draw feed Box-Muller; the cos
  // branch is used and the sin branch discarded (no cross-call cache, so the
  // value cannot depend on who drew before us).
  double u1 = CounterUniformDouble(seed, stream, counter * 2);
  double u2 = CounterUniformDouble(seed, stream, counter * 2 + 1);
  double normal = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu + sigma * normal);
}

Rng::State Rng::SaveState() const {
  State st;
  for (int i = 0; i < 4; ++i) st.words[i] = s_[i];
  st.words[4] = seed_;
  st.words[5] = have_cached_normal_ ? 1 : 0;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(cached_normal_));
  std::memcpy(&bits, &cached_normal_, sizeof(bits));
  st.words[6] = bits;
  return st;
}

void Rng::LoadState(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.words[i];
  seed_ = st.words[4];
  have_cached_normal_ = st.words[5] != 0;
  std::memcpy(&cached_normal_, &st.words[6], sizeof(cached_normal_));
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Derive a child seed from the parent seed and stream id; independent of
  // how much of the parent stream has been consumed.
  uint64_t x = seed_ ^ (stream_id * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  return Rng(SplitMix64(&x));
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  MIND_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(size_t rank) const {
  MIND_CHECK_LT(rank, cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiurnalCurve::DiurnalCurve(double floor, double peak_second)
    : floor_(floor), peak_second_(peak_second) {
  MIND_CHECK(floor > 0.0 && floor <= 1.0);
}

double DiurnalCurve::At(double sec) const {
  double t = std::fmod(sec, 86400.0);
  if (t < 0) t += 86400.0;
  // Raised cosine centred on the peak: 1 at peak, floor at the antipode.
  double phase = 2.0 * M_PI * (t - peak_second_) / 86400.0;
  double w = 0.5 * (1.0 + std::cos(phase));  // 1 at peak, 0 at trough
  return floor_ + (1.0 - floor_) * w;
}

}  // namespace mind
