// Seedable random number generation and the heavy-tailed samplers used by the
// synthetic backbone-traffic generator.
//
// All randomness in the repository flows through Rng instances so that every
// experiment is reproducible bit-for-bit from its seed.
#ifndef MIND_UTIL_RNG_H_
#define MIND_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mind {

/// xoshiro256** PRNG seeded via SplitMix64. Not cryptographic; fast and
/// statistically solid for simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed flow sizes).
  double Pareto(double x_m, double alpha);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation beyond).
  uint64_t Poisson(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// A new Rng whose stream is a deterministic function of this one's seed
  /// and `stream_id`; use to give independent generators to sub-components.
  Rng Fork(uint64_t stream_id) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Full generator state as 7 words for snapshotting: s_[0..3], seed, the
  /// cached-normal flag, and the cached normal's IEEE-754 bits. Restoring
  /// these words reproduces the exact draw sequence mid-stream.
  struct State {
    uint64_t words[7];
  };
  State SaveState() const;
  void LoadState(const State& st);

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Counter-based (stateless) random draws, philox-style: each value is a pure
/// function of (seed, stream, counter) rather than of how many draws other
/// components have made. Used for per-directed-link jitter streams so the
/// delivery path is deterministic under any event interleaving — sequential or
/// sharded-parallel — as long as each link counts its own sends.
uint64_t CounterMix(uint64_t seed, uint64_t stream, uint64_t counter);

/// Uniform double in (0, 1] from a counter draw (never 0, safe for log()).
double CounterUniformDouble(uint64_t seed, uint64_t stream, uint64_t counter);

/// Log-normal sample from two lanes of the (seed, stream, counter) draw via
/// Box-Muller; `mu`/`sigma` parameterize the underlying normal.
double CounterLogNormal(uint64_t seed, uint64_t stream, uint64_t counter,
                        double mu, double sigma);

/// Zipf(n, s) sampler over ranks {0, .., n-1} with exponent s, using the
/// inverse-CDF table method (O(n) setup, O(log n) per sample). Used for
/// popularity of prefixes/ports in traffic generation.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Rank in [0, n); rank 0 is the most popular.
  size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Piecewise-linear diurnal modulation curve: value in [floor, 1] as a
/// function of seconds-of-day, peaking mid-day. Models the day/night traffic
/// cycle of backbone links.
class DiurnalCurve {
 public:
  /// `floor` is the night-time fraction of peak rate; `peak_second` is when
  /// the curve peaks (default 14:00).
  explicit DiurnalCurve(double floor = 0.35, double peak_second = 14 * 3600.0);

  /// Multiplier in [floor, 1] for time-of-day `sec` (seconds, wraps at 86400).
  double At(double sec) const;

 private:
  double floor_;
  double peak_second_;
};

}  // namespace mind

#endif  // MIND_UTIL_RNG_H_
