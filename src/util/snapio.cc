#include "util/snapio.h"

#include <cstdio>
#include <istream>
#include <ostream>

namespace mind {

namespace {

// Little-endian encode/decode without alignment assumptions.
template <typename T>
void EncodeLE(T v, unsigned char* out) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

template <typename T>
T DecodeLE(const unsigned char* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void SnapWriter::Bytes(const void* p, size_t n) {
  out_->write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  const auto* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) checksum_.MixByte(b[i]);
  offset_ += n;
}

void SnapWriter::U16(uint16_t v) {
  unsigned char b[2];
  EncodeLE(v, b);
  Bytes(b, sizeof(b));
}

void SnapWriter::U32(uint32_t v) {
  unsigned char b[4];
  EncodeLE(v, b);
  Bytes(b, sizeof(b));
}

void SnapWriter::U64(uint64_t v) {
  unsigned char b[8];
  EncodeLE(v, b);
  Bytes(b, sizeof(b));
}

void SnapWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  Bytes(s.data(), s.size());
}

Status SnapWriter::status() const {
  if (!out_->good()) {
    return Status::Internal("snapshot: write failed at offset " +
                            std::to_string(offset_));
  }
  return Status::OK();
}

Status SnapReader::Bytes(void* p, size_t n, const char* field) {
  in_->read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::InvalidArgument(
        "snapshot: truncated reading " + std::string(field) + " at offset " +
        std::to_string(offset_) + " (wanted " + std::to_string(n) +
        " bytes, got " + std::to_string(in_->gcount()) + ")");
  }
  const auto* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) checksum_.MixByte(b[i]);
  offset_ += n;
  return Status::OK();
}

Result<uint8_t> SnapReader::U8(const char* field) {
  unsigned char b[1];
  MIND_RETURN_NOT_OK(Bytes(b, sizeof(b), field));
  return static_cast<uint8_t>(b[0]);
}

Result<uint16_t> SnapReader::U16(const char* field) {
  unsigned char b[2];
  MIND_RETURN_NOT_OK(Bytes(b, sizeof(b), field));
  return DecodeLE<uint16_t>(b);
}

Result<uint32_t> SnapReader::U32(const char* field) {
  unsigned char b[4];
  MIND_RETURN_NOT_OK(Bytes(b, sizeof(b), field));
  return DecodeLE<uint32_t>(b);
}

Result<uint64_t> SnapReader::U64(const char* field) {
  unsigned char b[8];
  MIND_RETURN_NOT_OK(Bytes(b, sizeof(b), field));
  return DecodeLE<uint64_t>(b);
}

Result<double> SnapReader::F64(const char* field) {
  auto bits = U64(field);
  MIND_RETURN_NOT_OK(bits.status());
  double v;
  std::memcpy(&v, &bits.value(), sizeof(v));
  return v;
}

Result<std::string> SnapReader::Str(const char* field, uint32_t max_len) {
  const uint64_t at = offset_;
  auto len = U32(field);
  MIND_RETURN_NOT_OK(len.status());
  if (len.value() > max_len) {
    return Status::InvalidArgument(
        "snapshot: implausible length " + std::to_string(len.value()) +
        " reading " + std::string(field) + " at offset " + std::to_string(at) +
        " (max " + std::to_string(max_len) + ")");
  }
  std::string s(len.value(), '\0');
  MIND_RETURN_NOT_OK(Bytes(s.data(), s.size(), field));
  return s;
}

Status SnapReader::Expect64(uint64_t expect, const char* field) {
  const uint64_t at = offset_;
  auto got = U64(field);
  MIND_RETURN_NOT_OK(got.status());
  if (got.value() != expect) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "0x%llx, wanted 0x%llx",
                  static_cast<unsigned long long>(got.value()),
                  static_cast<unsigned long long>(expect));
    return Status::InvalidArgument("snapshot: bad marker reading " +
                                   std::string(field) + " at offset " +
                                   std::to_string(at) + " (got " + buf + ")");
  }
  return Status::OK();
}

Status SnapReader::FieldError(const char* field, const std::string& why) const {
  return Status::InvalidArgument("snapshot: invalid " + std::string(field) +
                                 " at offset " + std::to_string(offset_) +
                                 ": " + why);
}

void WriteRngState(SnapWriter* w, const Rng& rng) {
  const Rng::State st = rng.SaveState();
  for (uint64_t word : st.words) w->U64(word);
}

Status ReadRngState(SnapReader* r, Rng* rng, const char* field) {
  Rng::State st;
  for (uint64_t& word : st.words) {
    MIND_ASSIGN_OR_RETURN(word, r->U64(field));
  }
  rng->LoadState(st);
  return Status::OK();
}

}  // namespace mind
