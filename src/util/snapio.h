// Typed binary snapshot I/O: the byte-level layer under the MSN1 simulator
// snapshot format (DESIGN.md §14).
//
// Follows the MFT1 trace-format discipline (traffic/trace_io.h): everything
// is little-endian and streamable, every read is bounds-checked, and a
// malformed or truncated stream yields a precise InvalidArgument naming the
// field being read and the byte offset — never a silently corrupted restore.
//
// Writers and readers carry a running FNV-1a 64 checksum of every payload
// byte; the format's trailer compares them so truncation or bit-rot anywhere
// in the stream is caught even for fields whose domain accepts any value.
#ifndef MIND_UTIL_SNAPIO_H_
#define MIND_UTIL_SNAPIO_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/digest.h"
#include "util/rng.h"
#include "util/status.h"

namespace mind {

/// \brief Little-endian typed writer over a std::ostream.
class SnapWriter {
 public:
  /// Does not take ownership; `out` must outlive the writer.
  explicit SnapWriter(std::ostream* out) : out_(out) {}

  void U8(uint8_t v) { Bytes(&v, 1); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// IEEE-754 bits of `v`, as a u64.
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(const std::string& s);
  void Bytes(const void* p, size_t n);

  /// Bytes written so far.
  uint64_t offset() const { return offset_; }
  /// FNV-1a 64 of every byte written so far.
  uint64_t checksum() const { return checksum_.value(); }

  /// Forwards the stream's failure state (disk full etc.).
  Status status() const;

 private:
  std::ostream* out_;
  uint64_t offset_ = 0;
  Fnv64 checksum_;
};

/// \brief Bounds-checked little-endian reader over a std::istream.
///
/// Every accessor takes the field's name; failures produce
/// `InvalidArgument("snapshot: <what> reading <field> at offset N")`.
class SnapReader {
 public:
  /// Does not take ownership; `in` must outlive the reader.
  explicit SnapReader(std::istream* in) : in_(in) {}

  Result<uint8_t> U8(const char* field);
  Result<uint16_t> U16(const char* field);
  Result<uint32_t> U32(const char* field);
  Result<uint64_t> U64(const char* field);
  Result<double> F64(const char* field);
  /// u32 length + raw bytes; `max_len` guards against a corrupt length
  /// pulling gigabytes.
  Result<std::string> Str(const char* field, uint32_t max_len = 1 << 20);
  Status Bytes(void* p, size_t n, const char* field);

  /// Reads a u64 and errors unless it equals `expect` (section markers).
  Status Expect64(uint64_t expect, const char* field);

  /// Bytes consumed so far.
  uint64_t offset() const { return offset_; }
  /// FNV-1a 64 of every byte consumed so far.
  uint64_t checksum() const { return checksum_.value(); }

  /// InvalidArgument tagged with the current offset — for callers rejecting
  /// a structurally valid but semantically impossible field value.
  Status FieldError(const char* field, const std::string& why) const;

 private:
  std::istream* in_;
  uint64_t offset_ = 0;
  Fnv64 checksum_;
};

/// Writes an Rng's full 7-word state (see Rng::SaveState).
void WriteRngState(SnapWriter* w, const Rng& rng);
/// Reads an Rng state written by WriteRngState into `rng`.
Status ReadRngState(SnapReader* r, Rng* rng, const char* field);

}  // namespace mind

#endif  // MIND_UTIL_SNAPIO_H_
