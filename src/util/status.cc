#include "util/status.h"

namespace mind {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotImplemented: return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code());
  s += ": ";
  s += message();
  return s;
}

}  // namespace mind
