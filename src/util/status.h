// Status and Result<T>: error handling without exceptions, in the style of
// Apache Arrow / RocksDB. Library code on fallible paths returns Status (or
// Result<T> when it produces a value); programmer errors use CHECK macros
// from util/logging.h.
#ifndef MIND_UTIL_STATUS_H_
#define MIND_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace mind {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnavailable,
  kTimedOut,
  kAborted,
  kInternal,
  kNotImplemented,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK Status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and to copy when OK.
class Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}     // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  /// Value access; requires ok().
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

// Propagate a non-OK Status from an expression.
#define MIND_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::mind::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define MIND_CONCAT_IMPL(a, b) a##b
#define MIND_CONCAT(a, b) MIND_CONCAT_IMPL(a, b)

// Assign the value of a Result expression to `lhs`, or propagate its error.
#define MIND_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto MIND_CONCAT(_res_, __LINE__) = (expr);                  \
  if (!MIND_CONCAT(_res_, __LINE__).ok())                      \
    return MIND_CONCAT(_res_, __LINE__).status();              \
  lhs = std::move(MIND_CONCAT(_res_, __LINE__)).value()

}  // namespace mind

#endif  // MIND_UTIL_STATUS_H_
