// Runtime invariant validation support.
//
// Two tiers, both compiled out when MIND_VALIDATORS_DISABLED is defined
// (the default for Release builds; see the MIND_VALIDATORS CMake option):
//
//  - MIND_DCHECK*: debug-only counterparts of the MIND_CHECK family from
//    util/logging.h. Use them on hot paths where a release build must not
//    pay for the check.
//  - MIND_VALIDATE: building block for Status-returning ValidateInvariants()
//    methods. On failure it returns Status::Internal with a streamed
//    diagnostic naming the exact violation, so corruption tests (and
//    operators reading logs) see *which* invariant broke and where.
//
// ValidateInvariants() bodies are themselves wrapped so that a disabled
// build keeps the symbol (callers need not care) but the body collapses to
// `return Status::OK()`.
#ifndef MIND_UTIL_VALIDATE_H_
#define MIND_UTIL_VALIDATE_H_

#include <sstream>

#include "util/logging.h"
#include "util/status.h"

#if defined(MIND_VALIDATORS_DISABLED)
#define MIND_VALIDATORS_ENABLED 0
#else
#define MIND_VALIDATORS_ENABLED 1
#endif

namespace mind {

/// True when this build carries the validator bodies (MIND_VALIDATORS=ON).
constexpr bool ValidatorsEnabled() { return MIND_VALIDATORS_ENABLED != 0; }

}  // namespace mind

#if MIND_VALIDATORS_ENABLED

#define MIND_DCHECK(cond) MIND_CHECK(cond)
#define MIND_DCHECK_OK(expr) MIND_CHECK_OK(expr)
#define MIND_DCHECK_EQ(a, b) MIND_CHECK_EQ(a, b)
#define MIND_DCHECK_NE(a, b) MIND_CHECK_NE(a, b)
#define MIND_DCHECK_LT(a, b) MIND_CHECK_LT(a, b)
#define MIND_DCHECK_LE(a, b) MIND_CHECK_LE(a, b)
#define MIND_DCHECK_GT(a, b) MIND_CHECK_GT(a, b)
#define MIND_DCHECK_GE(a, b) MIND_CHECK_GE(a, b)

// Fails a ValidateInvariants() body with a precise diagnostic. `msg` is a
// stream expression: MIND_VALIDATE(a == b, "slot " << i << " mismatch").
#define MIND_VALIDATE(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      std::ostringstream _mind_validate_oss;                      \
      _mind_validate_oss << msg;                                  \
      return ::mind::Status::Internal(_mind_validate_oss.str());  \
    }                                                             \
  } while (0)

#else  // !MIND_VALIDATORS_ENABLED

// The `while (false)` guard swallows the condition and any streamed
// operands without evaluating them, while keeping them syntax-checked.
#define MIND_DCHECK(cond) \
  while (false) MIND_CHECK(cond)
#define MIND_DCHECK_OK(expr) \
  do {                       \
  } while (false)
#define MIND_DCHECK_EQ(a, b) MIND_DCHECK((a) == (b))
#define MIND_DCHECK_NE(a, b) MIND_DCHECK((a) != (b))
#define MIND_DCHECK_LT(a, b) MIND_DCHECK((a) < (b))
#define MIND_DCHECK_LE(a, b) MIND_DCHECK((a) <= (b))
#define MIND_DCHECK_GT(a, b) MIND_DCHECK((a) > (b))
#define MIND_DCHECK_GE(a, b) MIND_DCHECK((a) >= (b))

#define MIND_VALIDATE(cond, msg) \
  do {                           \
  } while (false)

#endif  // MIND_VALIDATORS_ENABLED

#endif  // MIND_UTIL_VALIDATE_H_
