// Fixture: backend-purity. Classes deriving from IndexBackend must not
// reference telemetry, Rng, EventQueue or other simulation-visible types;
// the sanctioned exception is an optional counter with a reasoned allow
// (docs/BACKENDS.md).

namespace telemetry {
class MetricsRegistry;
class Counter;
}  // namespace telemetry

namespace mind {

class IndexBackend {
 public:
  virtual ~IndexBackend() = default;
  virtual void Append(int row) = 0;
  virtual int size() const = 0;
};

// Clean: pure data structure.
class PureBackend : public IndexBackend {
 public:
  void Append(int row) override { rows_ += row; }
  int size() const override { return rows_; }

 private:
  int rows_ = 0;
};

// Violation: names a telemetry type without a reasoned allow.
class ChattyBackend : public IndexBackend {
 public:
  void Append(int row) override { rows_ += row; }
  int size() const override { return rows_; }

 private:
  telemetry::Counter* appends_ = nullptr;  // analyze-expect: backend-purity
  int rows_ = 0;
};

// Transitive: deriving from a derived backend is still a backend.
class GrandchildBackend : public ChattyBackend {
 private:
  telemetry::Counter* merges_ = nullptr;  // analyze-expect: backend-purity
};

// Sanctioned: optional counter with the documented allow.
class BlessedBackend : public IndexBackend {
 public:
  void Append(int row) override { rows_ += row; }
  int size() const override { return rows_; }

 private:
  // mind-lint: allow(backend-purity): optional counter per docs/BACKENDS.md
  telemetry::Counter* appends_ = nullptr;
  int rows_ = 0;
};

// Not a backend: free to reference telemetry.
class Recorder {
 private:
  telemetry::Counter* events_ = nullptr;
};

}  // namespace mind
