// Fixture: digest-coverage. Every non-exempt data member of a class that
// defines DigestInto must be folded into the digest (same-class callees
// count) or carry a reasoned `// mind-digest: skip(...)`.
//
// `// analyze-expect: <rule>` marks the lines where the analyzer must
// report; tests/analyze/run_fixture_tests.py asserts the exact set.
#include <cstdint>

namespace mind {

class Fnv64 {
 public:
  void Mix(uint64_t v) { state_ = (state_ ^ v) * 1099511628211ull; }
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 1469598103934665603ull;
};

struct Telemetry;  // opaque sink, only ever held by pointer

// The happy path plus every exemption class in one type.
class Widget {
 public:
  void DigestInto(Fnv64* out) const {
    out->Mix(count_);
    DigestRows(out);
  }

 private:
  void DigestRows(Fnv64* out) const { out->Mix(rows_); }

  uint64_t count_ = 0;
  uint64_t rows_ = 0;           // covered through the DigestRows callee
  uint64_t lost_ = 0;           // analyze-expect: digest-coverage
  // mind-digest: skip(scratch buffer; rebuilt before every use)
  uint64_t scratch_ = 0;
  Telemetry* sink_ = nullptr;   // raw pointer: identity, exempt
  mutable uint64_t cache_ = 0;  // mutable: derived state, exempt
  static uint64_t total_;       // static: not per-instance state, exempt
};

class Meter;

// Instrument structs (all-pointer plumbing) are exempt as a whole.
class Gadget {
 public:
  void DigestInto(Fnv64* out) const { out->Mix(value_); }

 private:
  struct Instruments {
    Meter* reads = nullptr;
    Meter* writes = nullptr;
  };

  uint64_t value_ = 0;
  Instruments tm_;  // every member is a pointer => nothing to digest
};

// No DigestInto: the rule does not apply at all.
class Plain {
 private:
  uint64_t whatever_ = 0;
};

}  // namespace mind
