// Fixture: phase-safety. In a class that guards world mutation with
// MIND_CHECK(!InParallelPhase()), every method writing a data member needs
// the guard (directly or via a same-class callee) or a reasoned allow.

#define MIND_CHECK(cond) (void)(cond)

namespace mind {

class Engine {
 public:
  bool in_parallel_phase() const { return phase_; }

 private:
  bool phase_ = false;
};

class World {
 public:
  explicit World(int size) { size_ = size; }  // construction precedes sharing

  void SetSize(int size) {
    MIND_CHECK(!InParallelPhase());
    size_ = size;
  }

  // Guarded transitively: the mutation happens inside guarded SetSize().
  void Grow() { SetSize(size_ + 1); }

  void Shrink() { size_ -= 1; }  // analyze-expect: phase-safety

  void Reindex() {
    labels_ = size_;  // analyze-expect: phase-safety
  }

  void Bump() {
    // mind-lint: allow(phase-safety): diagnostic tick counter, not world state
    ticks_ += 1;
  }

  int size() const { return size_; }  // reads are always phase-safe

 private:
  bool InParallelPhase() const {
    return engine_ != nullptr && engine_->in_parallel_phase();
  }

  Engine* engine_ = nullptr;
  int size_ = 0;
  int labels_ = 0;
  int ticks_ = 0;
};

// No guard anywhere: the class opted out of the phase protocol entirely and
// the rule stays silent (plain single-threaded types mutate freely).
class Sandbox {
 public:
  void Poke() { pokes_ += 1; }

 private:
  int pokes_ = 0;
};

}  // namespace mind
