// Fixture: suppression-reason. Every suppression must state a reason; a
// bare allow()/skip() still suppresses its target rule but is itself
// reported, so silent opt-outs cannot accumulate.
#include <cstdint>

namespace mind {

class Fnv64 {
 public:
  void Mix(uint64_t v) { state_ ^= v; }

 private:
  uint64_t state_ = 0;
};

class Box {
 public:
  void DigestInto(Fnv64* out) const { out->Mix(kept_); }

 private:
  uint64_t kept_ = 0;
  // mind-digest: skip()   analyze-expect: suppression-reason
  uint64_t dropped_ = 0;
  // mind-digest: skip(superseded by kept_; retired field drained at load)
  uint64_t retired_ = 0;
};

class Thing {
 public:
  void Tick() {
    // mind-lint: allow(unordered-emit)   analyze-expect: suppression-reason
    count_ += 1;
  }

 private:
  int count_ = 0;
};

}  // namespace mind
