// Fixture: unordered-emit (v2). A range-for over anything that *resolves*
// to an unordered container — spelled type, class alias, auto local — may
// not emit messages/events from the loop body.

#include <cstdint>
#include <map>
#include <unordered_map>

namespace mind {

using NodeId = int;

class Net {
 public:
  void Send(NodeId to, int payload) {
    last_to_ = to;
    last_payload_ = payload;
  }

 private:
  NodeId last_to_ = 0;
  int last_payload_ = 0;
};

class Router {
 public:
  using PeerMap = std::unordered_map<NodeId, int>;

  void FloodDirect() {
    for (const auto& kv : peers_) {  // analyze-expect: unordered-emit
      net_.Send(kv.first, kv.second);
    }
  }

  // The member's declared type is a class alias; only resolution sees the
  // unordered container underneath.
  void FloodAlias() {
    for (const auto& kv : routes_) {  // analyze-expect: unordered-emit
      net_.Send(kv.first, kv.second);
    }
  }

  // The range is an auto local bound to an unordered member.
  void FloodLocalRef() {
    auto& live = peers_;
    for (const auto& kv : live) {  // analyze-expect: unordered-emit
      net_.Send(kv.first, kv.second);
    }
  }

  // Ordered container: emission order is deterministic. Clean.
  void FloodOrdered() {
    for (const auto& kv : sorted_) {
      net_.Send(kv.first, kv.second);
    }
  }

  // Unordered iteration without emission is fine (aggregation is
  // order-independent). Clean.
  int CountPayloads() {
    int n = 0;
    for (const auto& kv : peers_) n += kv.second;
    return n;
  }

  // Reasoned opt-out.
  void FloodBlessed() {
    // mind-lint: allow(unordered-emit): delivery is keyed, order-independent
    for (const auto& kv : peers_) {
      net_.Send(kv.first, kv.second);
    }
  }

 private:
  std::unordered_map<NodeId, int> peers_;
  PeerMap routes_;
  std::map<NodeId, int> sorted_;
  Net net_;
};

}  // namespace mind
