#!/usr/bin/env python3
"""Golden tests for the semantic contract analyzer (tools/analyze/).

Each fixture under fixtures/ is a self-contained C++ file annotated with
`analyze-expect: <rule>` on every line where the analyzer must report a
finding. This runner asserts, per fixture:

  1. the reported (line, rule) set matches the annotated set exactly —
     a broken or silently-skipped check fails the test because its expected
     findings never appear, and a over-eager check fails it with extras;
  2. disabling a rule via the --disable path removes exactly that rule's
     findings (proving findings are attributable to their check, and that
     the disable plumbing works).

Run directly (`python3 tests/analyze/run_fixture_tests.py`) or via ctest
(`analyze_fixtures`). Exit 0 on success.
"""

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, REPO)

from tools.analyze import checks  # noqa: E402
from tools.analyze.cpp_model import Model  # noqa: E402
from tools.analyze.cpp_parser import parse_file  # noqa: E402

EXPECT_RE = re.compile(r"analyze-expect:\s*([\w-]+)")


def expected_findings(path):
    out = set()
    with open(path, encoding="utf-8") as f:
        for idx, line in enumerate(f):
            for m in EXPECT_RE.finditer(line):
                out.add((idx + 1, m.group(1)))
    return out


def run_fixture(path):
    rel = os.path.relpath(path, REPO)
    model = Model()
    model.add_file(parse_file(path, rel))

    expected = expected_findings(path)
    got_full = checks.run_checks(model)
    got = {(f.line, f.rule) for f in got_full}

    errors = []
    for ln, rule in sorted(expected - got):
        errors.append("  MISSING  %s:%d: [%s] (annotated, not reported)"
                      % (rel, ln, rule))
    for ln, rule in sorted(got - expected):
        msg = next(f.message for f in got_full
                   if (f.line, f.rule) == (ln, rule))
        errors.append("  SPURIOUS %s:%d: [%s] %s" % (rel, ln, rule, msg))

    # The --disable proof: with a rule off, its findings (and only its
    # findings) must disappear.
    for rule in sorted({r for _, r in expected}):
        got_disabled = {(f.line, f.rule)
                        for f in checks.run_checks(model, disabled={rule})}
        if any(r == rule for _, r in got_disabled):
            errors.append("  DISABLE  %s: [%s] still reported with the rule "
                          "disabled" % (rel, rule))
        survivors = {(ln, r) for ln, r in expected if r != rule}
        if not survivors <= got_disabled:
            errors.append("  DISABLE  %s: [%s] disabling it also dropped "
                          "other rules' findings" % (rel, rule))
    return errors


def main():
    fixture_dir = os.path.join(HERE, "fixtures")
    fixtures = sorted(
        os.path.join(fixture_dir, f) for f in os.listdir(fixture_dir)
        if f.endswith((".cc", ".h")))
    if not fixtures:
        print("run_fixture_tests: no fixtures found", file=sys.stderr)
        return 2

    failures = 0
    for path in fixtures:
        errors = run_fixture(path)
        name = os.path.basename(path)
        if errors:
            failures += 1
            print("FAIL %s" % name)
            for e in errors:
                print(e)
        else:
            print("ok   %s" % name)
    if failures:
        print("run_fixture_tests: %d of %d fixtures failed"
              % (failures, len(fixtures)), file=sys.stderr)
        return 1
    print("run_fixture_tests: all %d fixtures pass" % len(fixtures))
    return 0


if __name__ == "__main__":
    sys.exit(main())
