#include <gtest/gtest.h>

#include "anomaly/ground_truth.h"
#include "anomaly/mind_detector.h"
#include "traffic/aggregator.h"
#include "traffic/flow_generator.h"
#include "traffic/indices.h"
#include "traffic/topology.h"

namespace mind {
namespace {

// ---------------------------------------------------------------- GroundTruth

AggregateRecord Rec(IpAddr src, IpAddr dst, uint64_t window, uint64_t octets,
                    uint32_t fanout, uint32_t distinct, int router) {
  AggregateRecord r;
  r.src_prefix = IpPrefix(src, 16);
  r.dst_prefix = IpPrefix(dst, 16);
  r.window_start = window;
  r.octets = octets;
  r.fanout = fanout;
  r.distinct_dsts = distinct;
  r.flows = fanout + 1;
  r.avg_flow_size = octets / std::max(1u, r.flows);
  r.router = router;
  return r;
}

TEST(GroundTruthTest, DetectsAlphaFlow) {
  GroundTruthDetector det;
  std::vector<AggregateRecord> recs = {
      Rec(0x0A010000, 0x0A020000, 300, 10'000'000, 0, 1, 2),
      Rec(0x0A010000, 0x0A020000, 330, 9'000'000, 0, 1, 2),
      Rec(0x0A010000, 0x0A020000, 330, 9'000'000, 0, 1, 7),  // second monitor
      Rec(0x0A030000, 0x0A040000, 300, 1'000, 0, 1, 0),      // normal
  };
  auto anomalies = det.Detect(recs);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kAlphaFlow);
  EXPECT_EQ(anomalies[0].first_window, 300u);
  EXPECT_EQ(anomalies[0].last_window, 330u);
  EXPECT_EQ(anomalies[0].record_count, 3u);
  EXPECT_EQ(anomalies[0].observers, (std::set<int>{2, 7}));
  EXPECT_EQ(anomalies[0].peak, 10'000'000u);
}

TEST(GroundTruthTest, DistinguishesDosFromScan) {
  GroundTruthDetector det;
  std::vector<AggregateRecord> recs = {
      Rec(0x0A010000, 0x0A020000, 300, 100'000, 2000, 1, 0),     // DoS
      Rec(0x0A050000, 0x0A060000, 600, 90'000, 2000, 4000, 1),   // scan
  };
  auto anomalies = det.Detect(recs);
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kDos);
  EXPECT_EQ(anomalies[1].type, AnomalyType::kPortScan);
}

TEST(GroundTruthTest, ThresholdsRespectOptions) {
  GroundTruthOptions opts;
  opts.alpha_octets = 1000;
  opts.fanout = 10;
  GroundTruthDetector det(opts);
  std::vector<AggregateRecord> recs = {
      Rec(0x0A010000, 0x0A020000, 300, 2000, 0, 1, 0),
      Rec(0x0A030000, 0x0A040000, 300, 10, 11, 11, 0),
  };
  EXPECT_EQ(det.Detect(recs).size(), 2u);
  GroundTruthDetector strict;  // default: much higher thresholds
  EXPECT_TRUE(strict.Detect(recs).empty());
}

TEST(GroundTruthTest, EmptyInputEmptyOutput) {
  GroundTruthDetector det;
  EXPECT_TRUE(det.Detect({}).empty());
}

// An end-to-end check of the detector against the injector.
TEST(GroundTruthTest, DetectsInjectedAnomalies) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 31;
  FlowGenerator gen(topo, gopts);
  AnomalyInjector inj(&gen);

  std::vector<FlowRecord> raw = gen.GenerateVec(0, 42000, 43200);
  AnomalyEvent alpha;
  alpha.type = AnomalyType::kAlphaFlow;
  alpha.start_sec = 42300;
  alpha.duration_sec = 120;
  alpha.src_prefix = 0;
  alpha.dst_prefix = 7;
  alpha.magnitude = 6e9;
  AnomalyEvent scan;
  scan.type = AnomalyType::kPortScan;
  scan.start_sec = 42700;
  scan.duration_sec = 180;
  scan.src_prefix = 2;
  scan.dst_prefix = 9;
  scan.magnitude = 20000;
  for (const auto& ev : {alpha, scan}) {
    for (auto& f : inj.Generate(ev, 42000, 43200)) raw.push_back(f);
  }

  auto aggregated = AggregateAll(raw, {30.0, 16, 300});
  auto anomalies = GroundTruthDetector().Detect(aggregated);
  bool saw_alpha = false, saw_scan = false;
  for (const auto& a : anomalies) {
    if (a.type == AnomalyType::kAlphaFlow) saw_alpha = true;
    if (a.type == AnomalyType::kPortScan) saw_scan = true;
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_scan);
}

// ---------------------------------------------------------------- Captures

TEST(MindDetectorTest, CapturesMatchesPrefixAndWindow) {
  DetectedAnomaly anomaly;
  anomaly.dst_prefix = IpPrefix(0x0A020000, 16);
  anomaly.first_window = 300;
  anomaly.last_window = 360;

  DetectionOutcome outcome;
  Tuple hit;
  hit.point = {0x0A020000, 330, 2000};
  outcome.tuples.push_back(hit);
  EXPECT_TRUE(MindAnomalyDetector::Captures(outcome, anomaly));

  outcome.tuples[0].point[1] = 500;  // outside window span
  EXPECT_FALSE(MindAnomalyDetector::Captures(outcome, anomaly));
  outcome.tuples[0].point[1] = 330;
  outcome.tuples[0].point[0] = 0x0A030000;  // other prefix
  EXPECT_FALSE(MindAnomalyDetector::Captures(outcome, anomaly));
}

}  // namespace
}  // namespace mind
